#!/usr/bin/env python3
"""Re-plot the paper's figures from the bench binaries' CSV output.

Usage:
    build/bench/bench_fig4_mix         > fig4.csv
    build/bench/bench_fig5_cache_size  > fig5.csv
    build/bench/bench_fig6_scaling     > fig6.csv
    tools/plot_figures.py fig4.csv fig5.csv fig6.csv -o figures/

Each input is one bench's stdout: '#'-prefixed comment lines, one header
line naming the columns, then 'series,x,y[,...]' rows. One PNG (or, without
matplotlib, one gnuplot-ready .dat file) is written per input.
"""
import argparse
import collections
import os
import sys


def parse_bench_csv(path):
    """Returns (title, x_label, y_label, {series: [(x, y), ...]})."""
    series = collections.OrderedDict()
    title, columns = os.path.basename(path), None
    with open(path) as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if title == os.path.basename(path) and len(line) > 2:
                    title = line[1:].strip()
                continue
            if columns is None:
                columns = line.split(",")
                continue
            fields = line.split(",")
            if len(fields) < 3:
                continue
            try:
                x = float(fields[1])
                y = float(fields[2])
            except ValueError:
                continue  # non-numeric rows (e.g. metrics summaries)
            series.setdefault(fields[0], []).append((x, y))
    x_label = columns[1] if columns and len(columns) > 1 else "x"
    y_label = columns[2] if columns and len(columns) > 2 else "y"
    return title, x_label, y_label, series


def write_dat(path, out_dir, title, x_label, y_label, series):
    """Gnuplot-friendly fallback when matplotlib is unavailable."""
    base = os.path.splitext(os.path.basename(path))[0]
    out = os.path.join(out_dir, base + ".dat")
    with open(out, "w") as stream:
        stream.write(f"# {title}\n# x: {x_label}  y: {y_label}\n")
        for name, points in series.items():
            stream.write(f'\n\n# series "{name}"\n')
            for x, y in points:
                stream.write(f"{x} {y}\n")
    print(f"wrote {out} (plot with: gnuplot -e \"plot for [i=0:*] '{out}' "
          f"index i with linespoints\")")


def plot_png(plt, path, out_dir, title, x_label, y_label, series):
    base = os.path.splitext(os.path.basename(path))[0]
    out = os.path.join(out_dir, base + ".png")
    figure, axes = plt.subplots(figsize=(6, 4))
    for name, points in series.items():
        points = sorted(points)
        axes.plot([p[0] for p in points], [p[1] for p in points],
                  marker="o", label=name)
    axes.set_title(title, fontsize=9)
    axes.set_xlabel(x_label)
    axes.set_ylabel(y_label)
    axes.grid(True, alpha=0.3)
    axes.legend(fontsize=8)
    figure.tight_layout()
    figure.savefig(out, dpi=150)
    plt.close(figure)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="bench stdout captures")
    parser.add_argument("-o", "--out-dir", default=".", help="output directory")
    args = parser.parse_args()
    os.makedirs(args.out_dir, exist_ok=True)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available; writing gnuplot .dat files instead",
              file=sys.stderr)

    for path in args.inputs:
        title, x_label, y_label, series = parse_bench_csv(path)
        if not series:
            print(f"{path}: no plottable rows, skipped", file=sys.stderr)
            continue
        if plt is not None:
            plot_png(plt, path, args.out_dir, title, x_label, y_label, series)
        else:
            write_dat(path, args.out_dir, title, x_label, y_label, series)


if __name__ == "__main__":
    main()
