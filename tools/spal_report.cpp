// spal_report: validate and diff the JSON reports the benches emit with
// --json[=path] (schema in DESIGN.md, "JSON report schema").
//
// Usage:
//   spal_report --check report.json
//       Verify every cross-component invariant of a report: per-LC latency
//       counts sum to the router total, per-LC cache counters sum to
//       cache_total, the hit breakdown is consistent, fabric messages plus
//       dropped messages equal remote requests + replies, the fan-out
//       matrix sums to the request count, and the fault-recovery ledger
//       balances (every timeout is a retransmit or a degraded fallback,
//       recovery actions cover every dropped message, every degraded
//       fallback resolves at least one packet). Exit 0 when all points
//       hold, 1 otherwise — CI runs this on a small bench so a broken
//       counter fails the build.
//       Points whose result carries `"kind": "lpm_batch"` (bench_lpm_batch)
//       are checked against that schema instead: positive timings, rate and
//       speedup consistent with ns_per_lookup, batch == scalar results, and
//       a non-empty `simd` dispatch level on every point.
//       Points carrying an `engine` field (bench_parallel) additionally
//       require threads/shards >= 1, positive wall_ms and speedup, and
//       `identical == true` — a sharded run that diverged from the
//       sequential oracle fails the report even if its timings look fine.
//       bench_scale points carry their own kinds: `"kind": "scale_build"`
//       (positive table_size/build_ms/storage, speedup == baseline/build)
//       and `"kind": "tier_curve"` (per-LC byte bounds ordered, mean
//       cycles >= matching overhead, tier placed_bytes summing to
//       storage_bytes). Router points that carry a `memory` object get the
//       memory-tier ledger checked too: lookups == fe_lookups, charged ==
//       matching + per-tier cycles, placed bytes == storage bytes, and FE
//       busy cycles == charged + update cycles. Points that carry a
//       `failover` object (replication/migration runs) get the failover
//       ledger checked too: control messages decompose into the protocol's
//       message kinds, cutovers == migrations + resync cutovers, the probe
//       and rejoin orderings hold, and the generalized update conservation
//       rules (update messages == applications - resync entries, the
//       acting-primary invalidation fan-out) balance.
//       bench_loadbalance points carrying `"kind": "partition_balance"`
//       check the traffic-aware partitioning conservation rule instead:
//       the per-LC expected loads sum to the total trace weight and the
//       Jain/max-share fairness metrics match their inputs. Router points
//       that carry a `rebalancer` object get the online-rebalancer ledger
//       checked: every skew detection is acted on or accounted to exactly
//       one skipped_* counter, completed + aborted migrations never exceed
//       the triggered count, and the failover block's migration count
//       equals completed_migrations.
//
//   spal_report base.json new.json [--tolerance=PCT]
//       Diff two reports point-by-point (matched by label): flags points
//       whose mean/p99 lookup cycles rose or whose hit rate fell by more
//       than PCT percent (default 2). Timing points are only compared when
//       both sides ran at the same `simd` level; mismatched pairs are
//       skipped. Exit 1 when any regression is found.
//
// The parser below is a deliberately small recursive-descent reader for the
// reports' fixed schema — the toolchain has no JSON library, and the tool
// must not grow a dependency the benches don't have.
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace {

// --- minimal JSON value + parser -----------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const char* key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Returns false (with a message in error()) on malformed input.
  bool parse(JsonValue& out) {
    pos_ = 0;
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing bytes after document");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const char* message) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer, "%s (offset %zu)", message, pos_);
    error_ = buffer;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' in object");
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: return fail("unsupported escape in string");
        }
        continue;
      }
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected boolean");
  }

  bool parse_null(JsonValue& out) {
    out.kind = JsonValue::Kind::kNull;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return fail("expected null");
  }

  bool parse_number(JsonValue& out) {
    out.kind = JsonValue::Kind::kNumber;
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- report access helpers ------------------------------------------------

/// Fetches a numeric field along an object path, failing loudly: a missing
/// counter in a report is a schema bug, not a zero.
bool get_number(const JsonValue& root, std::initializer_list<const char*> path,
                double& out, std::string& where) {
  const JsonValue* node = &root;
  where.clear();
  for (const char* key : path) {
    if (!where.empty()) where += '.';
    where += key;
    node = node->find(key);
    if (node == nullptr) return false;
  }
  if (node->kind != JsonValue::Kind::kNumber) return false;
  out = node->number;
  return true;
}

bool load_file(const char* path, std::string& out) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return false;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    out.append(buffer, n);
  }
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

// --- invariant checking (--check) ----------------------------------------

struct CheckContext {
  const char* file = nullptr;
  std::string label;
  int failures = 0;

  void fail(const char* fmt, ...) {
    std::fprintf(stderr, "%s [%s]: ", file, label.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    ++failures;
  }
};

/// Exact equality between counters parsed from the report. Counts are
/// integers well below 2^53, so double comparison is exact.
void expect_eq(CheckContext& ctx, const char* what, double actual,
               double expected) {
  if (actual != expected) {
    ctx.fail("%s: %.0f != %.0f", what, actual, expected);
  }
}

void expect_le(CheckContext& ctx, const char* what, double lhs, double rhs) {
  if (lhs > rhs) {
    ctx.fail("%s: %.0f > %.0f", what, lhs, rhs);
  }
}

double require(CheckContext& ctx, const JsonValue& result,
               std::initializer_list<const char*> path) {
  double value = 0.0;
  std::string where;
  if (!get_number(result, path, value, where)) {
    ctx.fail("missing numeric field '%s'", where.c_str());
  }
  return value;
}

/// Sums `key` across every per-LC cache object.
double per_lc_cache_sum(const JsonValue& per_lc, const char* key) {
  double sum = 0.0;
  for (const JsonValue& lc : per_lc.array) {
    const JsonValue* cache = lc.find("cache");
    if (cache == nullptr) continue;
    const JsonValue* field = cache->find(key);
    if (field != nullptr) sum += field->number;
  }
  return sum;
}

void check_result(CheckContext& ctx, const JsonValue& result) {
  const double resolved = require(ctx, result, {"resolved_packets"});
  const double latency_count = require(ctx, result, {"latency", "count"});
  expect_eq(ctx, "latency.count vs resolved_packets", latency_count, resolved);

  // Hit breakdown: every completed hit is LOC- or REM-homed; victim hits
  // are a subset; probes split into hits, misses, and waiting matches.
  const double hits = require(ctx, result, {"cache_total", "hits"});
  const double loc = require(ctx, result, {"cache_total", "loc_hits"});
  const double rem = require(ctx, result, {"cache_total", "rem_hits"});
  const double victim = require(ctx, result, {"cache_total", "victim_hits"});
  const double waiting = require(ctx, result, {"cache_total", "waiting_hits"});
  const double misses = require(ctx, result, {"cache_total", "misses"});
  const double probes = require(ctx, result, {"cache_total", "probes"});
  expect_eq(ctx, "cache_total.hits vs loc_hits+rem_hits", hits, loc + rem);
  expect_le(ctx, "cache_total.victim_hits vs hits", victim, hits);
  expect_eq(ctx, "cache_total.probes vs hits+misses+waiting_hits", probes,
            hits + misses + waiting);

  // Fabric: requests and replies count transmission attempts; a message
  // either traverses the fabric (messages) or is lost at injection
  // (dropped). Delivered messages leave one port and enter another; drops
  // are charged to the injecting port.
  const double remote_requests = require(ctx, result, {"remote_requests"});
  const double remote_replies = require(ctx, result, {"remote_replies"});
  const double messages = require(ctx, result, {"fabric", "messages"});
  const double dropped = require(ctx, result, {"fabric", "dropped"});
  const double update_messages = require(ctx, result, {"update", "update_messages"});
  const double invalidation_messages =
      require(ctx, result, {"update", "invalidation_messages"});
  // Failover ledger (optional block: present when replication or migration
  // was configured). Its control traffic rides the same fabric, and its
  // deferral/resync machinery generalizes the update conservation rules;
  // with the block absent every failover term below is zero and the rules
  // reduce to their pre-failover forms.
  const JsonValue* failover = result.find("failover");
  double fo_control = 0.0, fo_resync_entries = 0.0, fo_replica_apps = 0.0,
         fo_acting = 0.0, fo_probes_sent = 0.0, fo_probe_replies_sent = 0.0;
  if (failover != nullptr) {
    fo_control = require(ctx, *failover, {"control_messages"});
    fo_resync_entries = require(ctx, *failover, {"resync_entries"});
    fo_replica_apps = require(ctx, *failover, {"replica_update_applications"});
    fo_acting = require(ctx, *failover, {"acting_primary_applications"});
    fo_probes_sent = require(ctx, *failover, {"probes_sent"});
    fo_probe_replies_sent = require(ctx, *failover, {"probe_replies_sent"});
  }
  expect_eq(ctx,
            "fabric.messages+dropped vs remote_requests+remote_replies"
            "+update_messages+invalidation_messages+control_messages",
            messages + dropped,
            remote_requests + remote_replies + update_messages +
                invalidation_messages + fo_control);

  // Live route-update ledger. All zero with the pipeline off, so these
  // hold for every router point.
  const double u_applied = require(ctx, result, {"update", "applied"});
  const double u_announces = require(ctx, result, {"update", "announces"});
  const double u_withdraws = require(ctx, result, {"update", "withdraws"});
  const double u_hop_changes = require(ctx, result, {"update", "hop_changes"});
  const double u_applications = require(ctx, result, {"update", "applications"});
  const double u_incremental = require(ctx, result, {"update", "fe_incremental"});
  const double u_rebuilds = require(ctx, result, {"update", "fe_rebuilds"});
  const double u_invalidated =
      require(ctx, result, {"update", "blocks_invalidated"});
  expect_eq(ctx, "update.applied vs announces+withdraws+hop_changes", u_applied,
            u_announces + u_withdraws + u_hop_changes);
  expect_eq(ctx, "update.applications vs fe_incremental+fe_rebuilds",
            u_applications, u_incremental + u_rebuilds);
  // A prefix with star control bits replicates into several fragments, so
  // each update applies at one or more home LCs.
  expect_le(ctx, "update.applied vs update.applications", u_applied,
            u_applications);
  // Resync re-applies arrive bundled inside resync chunks (control
  // messages), not as per-application update messages.
  expect_eq(ctx, "update.update_messages vs applications-resync_entries",
            update_messages, u_applications - fo_resync_entries);
  // Every application invalidates on the other ψ−1 LCs (when caches exist)
  // — except replica-copy applications (the primary's own broadcast already
  // covers the router) and resync re-applies (local invalidate only), while
  // an acting replica standing in for a dead primary broadcasts for it.
  const double psi = static_cast<double>(
      result.find("per_lc") != nullptr ? result.find("per_lc")->array.size() : 0);
  if (probes > 0 && psi > 0) {
    expect_eq(ctx,
              "update.invalidation_messages vs (applications-replica-resync"
              "+acting)*(psi-1)",
              invalidation_messages,
              (u_applications - fo_replica_apps - fo_resync_entries +
               fo_acting) *
                  (psi - 1));
  } else {
    expect_eq(ctx, "update.invalidation_messages (no caches)",
              invalidation_messages, 0.0);
  }
  // Both the legacy flush path and the live pipeline drop blocks through
  // invalidate_matching, whose counter is invalidated_blocks.
  expect_le(ctx, "update.blocks_invalidated vs blocks_invalidated",
            u_invalidated, require(ctx, result, {"blocks_invalidated"}));
  expect_eq(ctx, "blocks_invalidated vs cache_total.invalidated_blocks",
            require(ctx, result, {"blocks_invalidated"}),
            require(ctx, result, {"cache_total", "invalidated_blocks"}));
  if (const JsonValue* ports = result.find("fabric")
                                   ? result.find("fabric")->find("ports")
                                   : nullptr) {
    double sent = 0.0, received = 0.0, port_dropped = 0.0;
    for (const JsonValue& port : ports->array) {
      if (const JsonValue* v = port.find("sent")) sent += v->number;
      if (const JsonValue* v = port.find("received")) received += v->number;
      if (const JsonValue* v = port.find("dropped")) port_dropped += v->number;
    }
    expect_eq(ctx, "sum(ports.sent) vs fabric.messages", sent, messages);
    expect_eq(ctx, "sum(ports.received) vs fabric.messages", received,
              messages);
    expect_eq(ctx, "sum(ports.dropped) vs fabric.dropped", port_dropped,
              dropped);
  } else {
    ctx.fail("missing fabric.ports array");
  }

  // Fault-recovery ledger. All zero in a fault-free run, so the invariants
  // hold (and are checked) for every router point.
  const double f_drops = require(ctx, result, {"fault", "drops"});
  const double f_outage = require(ctx, result, {"fault", "outage_drops"});
  const double f_jitter = require(ctx, result, {"fault", "jitter_events"});
  const double timeouts = require(ctx, result, {"fault", "timeouts"});
  const double retransmits = require(ctx, result, {"fault", "retransmits"});
  const double fallbacks =
      require(ctx, result, {"fault", "degraded_fallbacks"});
  const double degraded = require(ctx, result, {"fault", "degraded_lookups"});
  const double reclaimed =
      require(ctx, result, {"fault", "reclaimed_waiting_blocks"});
  expect_eq(ctx, "fault.drops vs fabric.dropped", f_drops, dropped);
  expect_le(ctx, "fault.outage_drops vs fault.drops", f_outage, f_drops);
  expect_eq(ctx, "fault.jitter_events vs fabric.jitter_events", f_jitter,
            require(ctx, result, {"fabric", "jitter_events"}));
  // Every non-stale timeout is answered: a retransmit while the retry
  // budget lasts, a degraded fallback when it is exhausted.
  expect_eq(ctx, "fault.timeouts vs retransmits+degraded_fallbacks", timeouts,
            retransmits + fallbacks);
  // Every dropped message belongs to some attempt of some request, and a
  // lost attempt always times out into a retransmit or a fallback — except
  // probes and probe replies, which are fire-and-forget and may be lost
  // without any recovery action (their terms are zero without failover).
  expect_le(ctx,
            "fault.drops vs retransmits+degraded_fallbacks+probes"
            "+probe_replies_sent",
            f_drops,
            retransmits + fallbacks + fo_probes_sent + fo_probe_replies_sent);
  // Each fallback resolves at least the request's own packet (plus any
  // packets parked behind its block).
  expect_le(ctx, "fault.degraded_fallbacks vs degraded_lookups", fallbacks,
            degraded);
  // cancel_waiting() is only invoked by the fallback path, so the router's
  // reclaim counter and the caches' cancellation counter must agree.
  expect_eq(ctx,
            "fault.reclaimed_waiting_blocks vs "
            "cache_total.cancelled_reservations",
            reclaimed,
            require(ctx, result, {"cache_total", "cancelled_reservations"}));
  expect_le(ctx, "fault.reclaimed_waiting_blocks vs degraded_fallbacks",
            reclaimed, fallbacks);

  // Failover-internal conservation: control messages decompose exactly into
  // the protocol's message kinds, every cutover is a migration or a resync
  // completing, probe replies can't outnumber probes, a rejoin needs both a
  // probe reply and a recovery, reaching down passes through suspect, and
  // re-applied entries never exceed the deferrals that produced them.
  if (failover != nullptr) {
    const double probe_replies = require(ctx, *failover, {"probe_replies"});
    const double suspects = require(ctx, *failover, {"suspect_transitions"});
    const double downs = require(ctx, *failover, {"down_transitions"});
    const double recoveries = require(ctx, *failover, {"recoveries"});
    const double rejoins = require(ctx, *failover, {"rejoins"});
    const double missed = require(ctx, *failover, {"missed_updates"});
    const double resync_fetches = require(ctx, *failover, {"resync_fetches"});
    const double resync_chunks = require(ctx, *failover, {"resync_chunks"});
    const double resync_cutovers =
        require(ctx, *failover, {"resync_cutovers"});
    const double migrations = require(ctx, *failover, {"migrations"});
    const double migration_chunks =
        require(ctx, *failover, {"migration_chunks"});
    const double doubled =
        require(ctx, *failover, {"double_delivered_updates"});
    const double cutover_msgs = require(ctx, *failover, {"cutover_messages"});
    const double cutovers = require(ctx, *failover, {"cutovers"});
    const double rerouted = require(ctx, *failover, {"rerouted_requests"});
    const double replica_lookups =
        require(ctx, *failover, {"replica_lookups"});
    const double local_serves =
        require(ctx, *failover, {"local_replica_serves"});
    expect_eq(ctx,
              "failover.control_messages vs probes+probe_replies_sent"
              "+resync_fetches+resync_chunks+migration_chunks"
              "+double_delivered+cutover_messages",
              fo_control,
              fo_probes_sent + fo_probe_replies_sent + resync_fetches +
                  resync_chunks + migration_chunks + doubled + cutover_msgs);
    expect_eq(ctx, "failover.cutovers vs migrations+resync_cutovers",
              cutovers, migrations + resync_cutovers);
    expect_le(ctx, "failover.probe_replies vs probe_replies_sent",
              probe_replies, fo_probe_replies_sent);
    expect_le(ctx, "failover.probe_replies_sent vs probes_sent",
              fo_probe_replies_sent, fo_probes_sent);
    expect_le(ctx, "failover.rejoins vs probe_replies", rejoins,
              probe_replies);
    expect_le(ctx, "failover.rejoins vs recoveries", rejoins, recoveries);
    expect_le(ctx, "failover.down_transitions vs suspect_transitions", downs,
              suspects);
    expect_le(ctx, "failover.resync_entries vs missed_updates",
              fo_resync_entries, missed);
    // A fetch only starts with deferred entries queued, so its chain always
    // ships at least one chunk.
    expect_le(ctx, "failover.resync_fetches vs resync_chunks", resync_fetches,
              resync_chunks);
    expect_le(ctx, "failover.rerouted_requests vs remote_requests", rerouted,
              remote_requests);
    expect_le(ctx, "failover.local_replica_serves vs replica_lookups",
              local_serves, replica_lookups);
    expect_le(ctx, "failover.acting_primary_applications vs replica applies",
              fo_acting, fo_replica_apps);
  }

  // Online-rebalancer ledger (optional block: present when the rebalancer
  // was enabled). Every skew detection is acted on or accounted to exactly
  // one skipped_* counter; a migration that finished (or rolled back) was
  // first triggered; and — the rebalancer being the only migration driver
  // when enabled — the failover block's migration count must agree.
  if (const JsonValue* rebalancer = result.find("rebalancer")) {
    const double windows = require(ctx, *rebalancer, {"windows"});
    const double detections = require(ctx, *rebalancer, {"skew_detections"});
    const double triggered =
        require(ctx, *rebalancer, {"migrations_triggered"});
    const double in_flight = require(ctx, *rebalancer, {"skipped_in_flight"});
    const double no_target = require(ctx, *rebalancer, {"skipped_no_target"});
    const double budget = require(ctx, *rebalancer, {"skipped_budget"});
    const double completed =
        require(ctx, *rebalancer, {"completed_migrations"});
    const double aborted = require(ctx, *rebalancer, {"aborted_migrations"});
    expect_le(ctx, "rebalancer.skew_detections vs windows", detections,
              windows);
    expect_eq(ctx,
              "rebalancer.skew_detections vs triggered+skipped_in_flight"
              "+skipped_no_target+skipped_budget",
              detections, triggered + in_flight + no_target + budget);
    expect_le(ctx, "rebalancer.completed+aborted vs migrations_triggered",
              completed + aborted, triggered);
    if (failover != nullptr) {
      expect_eq(ctx, "failover.migrations vs rebalancer.completed_migrations",
                require(ctx, *failover, {"migrations"}), completed);
    } else {
      ctx.fail("rebalancer block without a failover block");
    }
  }

  // Outage-window latency is a restriction of the full latency histogram.
  if (const JsonValue* outage_latency = result.find("outage_latency")) {
    expect_le(ctx, "outage_latency.count vs latency.count",
              require(ctx, *outage_latency, {"count"}), latency_count);
  }

  // Fan-out matrix: one cell increment per remote request.
  if (const JsonValue* fanout = result.find("remote_fanout")) {
    double sum = 0.0;
    for (const JsonValue& row : fanout->array) {
      for (const JsonValue& cell : row.array) sum += cell.number;
    }
    expect_eq(ctx, "sum(remote_fanout) vs remote_requests", sum,
              remote_requests);
  } else {
    ctx.fail("missing remote_fanout matrix");
  }

  // Per-LC decomposition: latency counts, cache counters, and FE lookups
  // all sum to the router-wide totals.
  const JsonValue* per_lc = result.find("per_lc");
  if (per_lc == nullptr || per_lc->kind != JsonValue::Kind::kArray ||
      per_lc->array.empty()) {
    ctx.fail("missing per_lc array");
    return;
  }
  double lc_latency = 0.0, lc_fe = 0.0, lc_busy = 0.0;
  for (const JsonValue& lc : per_lc->array) {
    if (const JsonValue* latency = lc.find("latency")) {
      if (const JsonValue* count = latency->find("count")) {
        lc_latency += count->number;
      }
    }
    if (const JsonValue* fe = lc.find("fe")) {
      if (const JsonValue* lookups = fe->find("lookups")) {
        lc_fe += lookups->number;
      }
      if (const JsonValue* busy = fe->find("busy_cycles")) {
        lc_busy += busy->number;
      }
    }
  }
  expect_eq(ctx, "sum(per_lc.latency.count) vs latency.count", lc_latency,
            latency_count);
  expect_eq(ctx, "sum(per_lc.fe.lookups) vs fe_lookups", lc_fe,
            require(ctx, result, {"fe_lookups"}));
  static const char* kCacheCounters[] = {
      "probes",       "hits",           "loc_hits",
      "rem_hits",     "victim_hits",    "waiting_hits",
      "misses",       "reservations",   "failed_reservations",
      "quota_bypasses", "failed_promotions", "fills",
      "orphan_fills", "cancelled_reservations", "evictions",
      "flushes",      "invalidated_blocks"};
  for (const char* counter : kCacheCounters) {
    char what[96];
    std::snprintf(what, sizeof what, "sum(per_lc.cache.%s) vs cache_total.%s",
                  counter, counter);
    expect_eq(ctx, what, per_lc_cache_sum(*per_lc, counter),
              require(ctx, result, {"cache_total", counter}));
  }

  // Memory-tier ledger — present only when the run priced FE jobs with the
  // CRAM-lens model. Every FE job is a priced counted lookup, the charged
  // cycles decompose exactly into matching overhead plus per-tier access
  // cycles, the placed bytes cover the FEs' whole storage, and all FE busy
  // time is either priced lookups or update applications.
  if (const JsonValue* memory = result.find("memory")) {
    const double m_lookups = require(ctx, *memory, {"lookups"});
    const double m_overhead =
        require(ctx, *memory, {"matching_overhead_cycles"});
    const double m_matching = require(ctx, *memory, {"matching_cycles"});
    const double m_charged = require(ctx, *memory, {"charged_cycles"});
    const double m_storage = require(ctx, *memory, {"storage_bytes"});
    expect_eq(ctx, "memory.lookups vs fe_lookups", m_lookups,
              require(ctx, result, {"fe_lookups"}));
    expect_eq(ctx, "memory.matching_cycles vs lookups*overhead", m_matching,
              m_lookups * m_overhead);
    const JsonValue* tiers = memory->find("tiers");
    if (tiers == nullptr || tiers->kind != JsonValue::Kind::kArray ||
        tiers->array.empty()) {
      ctx.fail("missing memory.tiers array");
    } else {
      double placed = 0.0, tier_cycles = 0.0;
      for (const JsonValue& tier : tiers->array) {
        if (const JsonValue* v = tier.find("placed_bytes")) placed += v->number;
        if (const JsonValue* v = tier.find("cycles")) tier_cycles += v->number;
      }
      expect_eq(ctx, "sum(memory.tiers.placed_bytes) vs memory.storage_bytes",
                placed, m_storage);
      expect_eq(ctx, "memory.charged_cycles vs matching+tier cycles",
                m_charged, m_matching + tier_cycles);
      // Cumulative capacity: the packing never overfills a bounded tier
      // prefix (the last, unbounded tier absorbs any spill). Capacities are
      // per LC, so the budget scales with ψ.
      double capacity_prefix = 0.0, placed_prefix = 0.0;
      bool bounded = true;
      for (std::size_t t = 0; t + 1 < tiers->array.size() && bounded; ++t) {
        const JsonValue& tier = tiers->array[t];
        const double capacity = require(ctx, tier, {"capacity_bytes"});
        if (capacity <= 0.0) {
          bounded = false;
          break;
        }
        capacity_prefix += capacity;
        placed_prefix += require(ctx, tier, {"placed_bytes"});
        char what[96];
        std::snprintf(what, sizeof what,
                      "memory tier prefix 0..%zu placed vs psi*capacity", t);
        expect_le(ctx, what, placed_prefix, psi * capacity_prefix);
      }
    }
    expect_eq(ctx, "sum(per_lc.fe.busy_cycles) vs memory+update cycles",
              lc_busy,
              m_charged + require(ctx, result, {"update", "update_cost_cycles"}));
  }
}

/// Relative-tolerance comparison for derived metrics a bench emits alongside
/// their inputs (rounded independently when printed).
void expect_close(CheckContext& ctx, const char* what, double actual,
                  double expected, double rel_tolerance) {
  const double scale = expected < 0 ? -expected : expected;
  const double diff = actual - expected;
  if ((diff < 0 ? -diff : diff) > rel_tolerance * (scale > 1.0 ? scale : 1.0)) {
    ctx.fail("%s: %g not within %.2g%% of %g", what, actual,
             100.0 * rel_tolerance, expected);
  }
}

/// bench_lpm_batch point ("kind": "lpm_batch"): host-side timing sanity and
/// the batch-equals-scalar guarantee.
void check_lpm_result(CheckContext& ctx, const JsonValue& result) {
  const double lookups = require(ctx, result, {"lookups"});
  const double batch = require(ctx, result, {"batch"});
  const double table_size = require(ctx, result, {"table_size"});
  const double storage = require(ctx, result, {"storage_bytes"});
  const double ns = require(ctx, result, {"ns_per_lookup"});
  const double rate = require(ctx, result, {"lookups_per_second"});
  const double scalar_ns = require(ctx, result, {"scalar_ns_per_lookup"});
  const double speedup = require(ctx, result, {"speedup_vs_scalar"});
  if (lookups <= 0) ctx.fail("lookups: %.0f not positive", lookups);
  if (batch < 1) ctx.fail("batch: %.0f below 1", batch);
  if (table_size <= 0) ctx.fail("table_size: %.0f not positive", table_size);
  if (storage <= 0) ctx.fail("storage_bytes: %.0f not positive", storage);
  if (ns <= 0.0 || scalar_ns <= 0.0) {
    ctx.fail("ns_per_lookup: %g / scalar %g not positive", ns, scalar_ns);
  } else {
    expect_close(ctx, "lookups_per_second vs 1e9/ns_per_lookup", rate, 1e9 / ns,
                 0.01);
    expect_close(ctx, "speedup_vs_scalar vs scalar_ns/ns", speedup,
                 scalar_ns / ns, 0.01);
  }
  const JsonValue* match = result.find("match");
  if (match == nullptr || match->kind != JsonValue::Kind::kBool) {
    ctx.fail("missing boolean 'match'");
  } else if (!match->boolean) {
    ctx.fail("batch/scalar next-hop divergence (match == false)");
  }
  // Every timing point must name the dispatch level it ran at — perf
  // numbers from different SIMD tiers are not comparable.
  const JsonValue* simd = result.find("simd");
  if (simd == nullptr || simd->kind != JsonValue::Kind::kString ||
      simd->string.empty()) {
    ctx.fail("missing string 'simd' (batch-lookup dispatch level)");
  }
}

/// bench_scale build point ("kind": "scale_build"): bulk-build timing for
/// one trie kind at one table size, with the per-entry baseline and its
/// speedup when that kind has a per-entry path (baseline_ms == 0 otherwise).
void check_scale_build(CheckContext& ctx, const JsonValue& result) {
  const double table_size = require(ctx, result, {"table_size"});
  const double build_ms = require(ctx, result, {"build_ms"});
  const double baseline_ms = require(ctx, result, {"baseline_ms"});
  const double speedup = require(ctx, result, {"speedup"});
  const double storage = require(ctx, result, {"storage_bytes"});
  if (table_size <= 0) ctx.fail("table_size: %.0f not positive", table_size);
  if (build_ms <= 0.0) ctx.fail("build_ms: %g not positive", build_ms);
  if (storage <= 0) ctx.fail("storage_bytes: %.0f not positive", storage);
  if (baseline_ms > 0.0) {
    expect_close(ctx, "speedup vs baseline_ms/build_ms", speedup,
                 baseline_ms / build_ms, 0.01);
  } else {
    expect_eq(ctx, "speedup (no per-entry baseline)", speedup, 0.0);
  }
  const JsonValue* trie = result.find("trie");
  if (trie == nullptr || trie->kind != JsonValue::Kind::kString ||
      trie->string.empty()) {
    ctx.fail("missing string 'trie'");
  }
}

/// bench_scale SRAM-budget point ("kind": "tier_curve"): arena placement of
/// the per-LC fragments under one SRAM budget, plus the mean priced lookup.
/// The placed bytes must cover the fragments' whole storage and the mean
/// cycles can never dip below the fixed matching overhead.
void check_tier_curve(CheckContext& ctx, const JsonValue& result) {
  const double table_size = require(ctx, result, {"table_size"});
  const double psi = require(ctx, result, {"psi"});
  const double budget = require(ctx, result, {"sram_budget_bytes"});
  const double storage = require(ctx, result, {"storage_bytes"});
  const double per_lc_min = require(ctx, result, {"per_lc_bytes_min"});
  const double per_lc_max = require(ctx, result, {"per_lc_bytes_max"});
  const double overhead = require(ctx, result, {"matching_overhead_cycles"});
  const double mean_cycles = require(ctx, result, {"mean_lookup_cycles"});
  if (table_size <= 0) ctx.fail("table_size: %.0f not positive", table_size);
  if (psi < 1) ctx.fail("psi: %.0f below 1", psi);
  if (budget <= 0) ctx.fail("sram_budget_bytes: %.0f not positive", budget);
  expect_le(ctx, "per_lc_bytes_min vs per_lc_bytes_max", per_lc_min,
            per_lc_max);
  expect_le(ctx, "per_lc_bytes_max vs storage_bytes", per_lc_max, storage);
  expect_le(ctx, "matching overhead vs mean_lookup_cycles", overhead,
            mean_cycles);
  const JsonValue* tiers = result.find("tiers");
  if (tiers == nullptr || tiers->kind != JsonValue::Kind::kArray ||
      tiers->array.empty()) {
    ctx.fail("missing tiers array");
    return;
  }
  double placed = 0.0;
  for (const JsonValue& tier : tiers->array) {
    placed += require(ctx, tier, {"placed_bytes"});
  }
  expect_eq(ctx, "sum(tiers.placed_bytes) vs storage_bytes", placed, storage);
}

/// bench_loadbalance partition point ("kind": "partition_balance"): the
/// per-LC expected loads of one partitioning policy under one workload's
/// traffic weights. Conservation: the loads sum to the total trace weight
/// (a prefix replicated by star control bits splits its traffic, never
/// duplicates it), and the derived fairness metrics match their inputs.
void check_partition_balance(CheckContext& ctx, const JsonValue& result) {
  const double psi = require(ctx, result, {"psi"});
  const double total = require(ctx, result, {"total_weight"});
  const double jain = require(ctx, result, {"jain_fairness"});
  const double max_share = require(ctx, result, {"max_share"});
  if (psi < 1) ctx.fail("psi: %.0f below 1", psi);
  if (total <= 0.0) ctx.fail("total_weight: %g not positive", total);
  const JsonValue* loads = result.find("per_lc_loads");
  if (loads == nullptr || loads->kind != JsonValue::Kind::kArray) {
    ctx.fail("missing per_lc_loads array");
    return;
  }
  if (static_cast<double>(loads->array.size()) != psi) {
    ctx.fail("per_lc_loads has %zu entries, psi is %.0f",
             loads->array.size(), psi);
    return;
  }
  double sum = 0.0, sum_sq = 0.0, max_load = 0.0;
  for (const JsonValue& load : loads->array) {
    if (load.kind != JsonValue::Kind::kNumber || load.number < 0.0) {
      ctx.fail("per_lc_loads entry not a non-negative number");
      return;
    }
    sum += load.number;
    sum_sq += load.number * load.number;
    if (load.number > max_load) max_load = load.number;
  }
  expect_close(ctx, "sum(per_lc_loads) vs total_weight", sum, total, 1e-6);
  if (sum_sq > 0.0) {
    expect_close(ctx, "jain_fairness vs (sum^2)/(psi*sum_sq)", jain,
                 sum * sum / (psi * sum_sq), 1e-6);
  }
  if (sum > 0.0) {
    expect_close(ctx, "max_share vs max(per_lc_loads)/sum", max_share,
                 max_load / sum, 1e-6);
    // 1/psi (perfect balance) bounds the share from below.
    if (max_share * psi < 1.0 - 1e-6) {
      ctx.fail("max_share %g below 1/psi", max_share);
    }
  }
  const JsonValue* balance = result.find("balance");
  if (balance == nullptr || balance->kind != JsonValue::Kind::kString ||
      (balance->string != "count" && balance->string != "traffic")) {
    ctx.fail("missing or invalid 'balance' (expected count|traffic)");
  }
}

/// bench_parallel point: engine/threads/shards/wall_ms/speedup/identical live
/// at the point level (the 'result' is a normal RouterResult, checked by the
/// caller). Bit-identity with the sequential oracle is a hard invariant —
/// `identical == false` fails the report regardless of the speedup numbers.
void check_parallel_point(CheckContext& ctx, const JsonValue& point,
                          const JsonValue& engine) {
  if (engine.kind != JsonValue::Kind::kString ||
      (engine.string != "sequential" && engine.string != "sharded")) {
    ctx.fail("engine: expected \"sequential\" or \"sharded\"");
  }
  const double threads = require(ctx, point, {"threads"});
  const double shards = require(ctx, point, {"shards"});
  const double wall_ms = require(ctx, point, {"wall_ms"});
  const double speedup = require(ctx, point, {"speedup"});
  if (threads < 1) ctx.fail("threads: %.0f below 1", threads);
  if (shards < 1) ctx.fail("shards: %.0f below 1", shards);
  if (wall_ms <= 0.0) ctx.fail("wall_ms: %g not positive", wall_ms);
  if (speedup <= 0.0) ctx.fail("speedup: %g not positive", speedup);
  const JsonValue* identical = point.find("identical");
  if (identical == nullptr || identical->kind != JsonValue::Kind::kBool) {
    ctx.fail("missing boolean 'identical'");
  } else if (!identical->boolean) {
    ctx.fail("sharded result diverged from the sequential oracle "
             "(identical == false)");
  }
}

bool load_report(const char* path, JsonValue& out) {
  std::string text;
  if (!load_file(path, text)) {
    std::fprintf(stderr, "spal_report: cannot read '%s'\n", path);
    return false;
  }
  JsonParser parser(text);
  if (!parser.parse(out)) {
    std::fprintf(stderr, "spal_report: %s: %s\n", path, parser.error().c_str());
    return false;
  }
  if (out.find("points") == nullptr ||
      out.find("points")->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "spal_report: %s: no 'points' array\n", path);
    return false;
  }
  return true;
}

int run_check(const char* path) {
  JsonValue report;
  if (!load_report(path, report)) return 1;
  const JsonValue* points = report.find("points");
  if (points->array.empty()) {
    std::fprintf(stderr, "spal_report: %s: empty 'points' array\n", path);
    return 1;
  }
  CheckContext ctx;
  ctx.file = path;
  for (const JsonValue& point : points->array) {
    const JsonValue* label = point.find("label");
    const JsonValue* result = point.find("result");
    ctx.label = label != nullptr ? label->string : "<unlabelled>";
    if (result == nullptr) {
      ctx.fail("point has no 'result' object");
      continue;
    }
    // bench_parallel points carry the engine/timing fields at the point
    // level; their 'result' is a normal RouterResult, checked below.
    if (const JsonValue* engine = point.find("engine")) {
      check_parallel_point(ctx, point, *engine);
    }
    const JsonValue* kind = result->find("kind");
    if (kind != nullptr && kind->string == "lpm_batch") {
      check_lpm_result(ctx, *result);
    } else if (kind != nullptr && kind->string == "scale_build") {
      check_scale_build(ctx, *result);
    } else if (kind != nullptr && kind->string == "tier_curve") {
      check_tier_curve(ctx, *result);
    } else if (kind != nullptr && kind->string == "partition_balance") {
      check_partition_balance(ctx, *result);
    } else {
      check_result(ctx, *result);
    }
  }
  if (ctx.failures > 0) {
    std::fprintf(stderr, "spal_report: %d invariant failure(s) in %s\n",
                 ctx.failures, path);
    return 1;
  }
  std::printf("spal_report: %zu point(s) in %s satisfy all invariants\n",
              points->array.size(), path);
  return 0;
}

// --- regression diff ------------------------------------------------------

const JsonValue* find_point(const JsonValue& report, const std::string& label) {
  for (const JsonValue& point : report.find("points")->array) {
    const JsonValue* l = point.find("label");
    if (l != nullptr && l->string == label) return &point;
  }
  return nullptr;
}

int run_diff(const char* base_path, const char* new_path, double tolerance_pct) {
  JsonValue base, next;
  if (!load_report(base_path, base) || !load_report(new_path, next)) return 1;

  // Metric, path into result, and direction (+1: an increase is a
  // regression; -1: a decrease is).
  struct Metric {
    const char* name;
    std::initializer_list<const char*> path;
    int bad_direction;
  };
  static const Metric kMetrics[] = {
      {"mean_cycles", {"latency", "mean_cycles"}, +1},
      {"p99_cycles", {"latency", "p99"}, +1},
      {"worst_cycles", {"latency", "worst_cycles"}, +1},
      {"hit_rate", {"cache_total", "hit_rate"}, -1},
      // lpm_batch points (router points skip these: the fields are absent).
      {"ns_per_lookup", {"ns_per_lookup"}, +1},
      {"speedup_vs_scalar", {"speedup_vs_scalar"}, -1},
  };

  int regressions = 0;
  int compared = 0;
  for (const JsonValue& point : next.find("points")->array) {
    const JsonValue* label = point.find("label");
    const JsonValue* result = point.find("result");
    if (label == nullptr || result == nullptr) continue;
    const JsonValue* base_point = find_point(base, label->string);
    if (base_point == nullptr) {
      std::printf("  new point (no baseline): %s\n", label->string.c_str());
      continue;
    }
    const JsonValue* base_result = base_point->find("result");
    if (base_result == nullptr) continue;
    // Timing points are only comparable at the same SIMD dispatch level:
    // skip pairs whose levels differ or where only one side records one
    // (labels normally encode the level, so this guards edited reports).
    const JsonValue* base_simd = base_result->find("simd");
    const JsonValue* new_simd = result->find("simd");
    const bool base_has_simd =
        base_simd != nullptr && base_simd->kind == JsonValue::Kind::kString;
    const bool new_has_simd =
        new_simd != nullptr && new_simd->kind == JsonValue::Kind::kString;
    if (base_has_simd != new_has_simd ||
        (base_has_simd && base_simd->string != new_simd->string)) {
      std::printf("  skipped (simd level mismatch): %s\n",
                  label->string.c_str());
      continue;
    }
    ++compared;
    for (const Metric& metric : kMetrics) {
      double before = 0.0, after = 0.0;
      std::string where;
      if (!get_number(*base_result, metric.path, before, where) ||
          !get_number(*result, metric.path, after, where)) {
        continue;
      }
      if (before == 0.0) continue;
      const double change_pct = 100.0 * (after - before) / before;
      if (change_pct * metric.bad_direction > tolerance_pct) {
        std::printf("REGRESSION %s: %s %.6g -> %.6g (%+.2f%%)\n",
                    label->string.c_str(), metric.name, before, after,
                    change_pct);
        ++regressions;
      }
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "spal_report: no shared labels between %s and %s\n",
                 base_path, new_path);
    return 1;
  }
  if (regressions > 0) {
    std::printf("spal_report: %d regression(s) beyond %.2f%% across %d "
                "shared point(s)\n",
                regressions, tolerance_pct, compared);
    return 1;
  }
  std::printf("spal_report: no regressions beyond %.2f%% across %d shared "
              "point(s)\n",
              tolerance_pct, compared);
  return 0;
}

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: spal_report --check report.json\n"
               "       spal_report base.json new.json [--tolerance=PCT]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--check") == 0) {
    if (argc != 3) usage();
    return run_check(argv[2]);
  }
  if (argc >= 3 && argv[1][0] != '-' && argv[2][0] != '-') {
    double tolerance = 2.0;
    for (int i = 3; i < argc; ++i) {
      if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
        char* end = nullptr;
        tolerance = std::strtod(argv[i] + 12, &end);
        if (end == argv[i] + 12 || *end != '\0' || tolerance < 0.0) usage();
      } else {
        usage();
      }
    }
    return run_diff(argv[1], argv[2], tolerance);
  }
  usage();
}
