// Synthetic BGP-like routing-table generator.
//
// The paper evaluates on two real tables: RT_1 (FUNET, 41,709 prefixes) and
// RT_2 (an AS1221 snapshot, 140,838 prefixes). Neither is shipped here, so
// this generator produces tables with the structural properties the paper's
// experiments depend on:
//   * the published prefix-length distribution (mass concentrated on /24,
//     heavy /16-/24 body, >83% of prefixes no longer than /24, and a tail of
//     /25-/32 "exception" prefixes including host routes);
//   * aggregation structure: a fraction of prefixes are more-specific
//     exceptions nested inside shorter covering prefixes, which is what
//     exercises LPM backtracking and the partitioner's Φ* replication; and
//   * first-octet mass concentrated in the historically allocated ranges.
// See DESIGN.md ("Substitutions") for the full rationale.
#pragma once

#include <array>
#include <cstdint>
#include <random>

#include "net/route_table.h"

namespace spal::net {

/// Tuning knobs for the generator. Defaults reproduce a 2003-era backbone
/// table shape.
struct TableGenConfig {
  std::size_t size = 100'000;   ///< exact number of distinct prefixes
  std::uint64_t seed = 1;       ///< deterministic output per seed
  std::uint32_t next_hops = 16; ///< next hops drawn uniformly from [0, next_hops)
  /// Probability that a new prefix is generated as a more-specific exception
  /// nested inside an already-generated shorter prefix.
  double nested_fraction = 0.35;
  /// Per-length weights, index = prefix length 0..32. Normalized internally.
  std::array<double, Prefix::kMaxLength + 1> length_weights = default_length_weights();

  static std::array<double, Prefix::kMaxLength + 1> default_length_weights();
};

/// Generates a synthetic routing table per `config`. Deterministic in
/// (size, seed, next_hops, nested_fraction, length_weights).
///
/// At internet scale the per-length weights are capacity-capped (see
/// effective_length_weights) so the rejection loop cannot stall on a length
/// whose whole generatable population is smaller than its nominal share;
/// the cap never engages at the paper's table sizes, so those tables are
/// bit-identical to earlier versions.
RouteTable generate_table(const TableGenConfig& config);

/// The per-length weights generate_table actually samples from: the
/// configured weights, with each length capped so its expected count stays
/// at or below half its generatable population (usable first octets times
/// 2^(len-8)). This is the histogram model large-N tests check against.
std::array<double, Prefix::kMaxLength + 1> effective_length_weights(
    const TableGenConfig& config);

/// RT_1 stand-in: 41,709 prefixes (the FUNET table size the paper uses).
RouteTable make_rt1();

/// RT_2 stand-in: 140,838 prefixes (the AS1221 snapshot size the paper uses).
RouteTable make_rt2();

/// Modern-internet stand-in: `size` prefixes (default the ~1M-route IPv4
/// table of the mid-2020s BGP default-free zone), same structural model as
/// the paper-era tables with the weight caps active.
RouteTable make_rt_internet(std::size_t size = 1'000'000);

/// Uniformly random address inside `prefix` (host bits randomized).
Ipv4Addr random_address_in(const Prefix& prefix, std::mt19937_64& rng);

}  // namespace spal::net
