// BGP-style routing-table update streams.
//
// The paper's Sec. 3.2 leans on measured update rates — "the routing table
// of a backbone router gets updated some 20 times per second on an average
// (and possibly as many as 100 times)" [3, 15] — and flushes all LR-caches
// per update. This module generates realistic update sequences (announce /
// withdraw / next-hop change) against an evolving table so the per-update
// costs (trie rebuilds, cache disturbance) can be measured.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "net/prefix6.h"
#include "net/route_table.h"

namespace spal::net {

enum class UpdateKind : std::uint8_t {
  kAnnounce,   ///< a new prefix appears
  kWithdraw,   ///< an existing prefix is removed
  kHopChange,  ///< an existing prefix's next hop changes (re-announcement)
};

struct TableUpdate {
  UpdateKind kind;
  Prefix prefix;
  NextHop next_hop = kNoRoute;  ///< unused for withdrawals

  friend constexpr auto operator<=>(const TableUpdate&, const TableUpdate&) = default;
};

struct UpdateStreamConfig {
  std::size_t count = 1'000;
  std::uint64_t seed = 1;
  /// Mix of update kinds; hop changes take the remainder. BGP update
  /// studies put re-announcements well ahead of genuine topology changes.
  double announce_fraction = 0.25;
  double withdraw_fraction = 0.25;
  std::uint32_t next_hops = 16;
};

/// Generates `config.count` updates that are valid when applied in order
/// starting from `initial` (withdrawals always name a live prefix,
/// announcements a genuinely new one). Deterministic per seed.
std::vector<TableUpdate> generate_update_stream(const RouteTable& initial,
                                                const UpdateStreamConfig& config);

/// Applies one update to `table`. Returns false if the update was a no-op
/// (withdrawing an absent prefix); generated streams never produce those.
bool apply_update(RouteTable& table, const TableUpdate& update);

/// IPv6 counterpart of TableUpdate.
struct TableUpdate6 {
  UpdateKind kind;
  Prefix6 prefix;
  NextHop next_hop = kNoRoute;  ///< unused for withdrawals

  friend constexpr auto operator<=>(const TableUpdate6&, const TableUpdate6&) = default;
};

/// IPv6 update stream: same kind mix as the v4 generator; announcements use
/// the v6 table generator's length model inside 2000::/3.
std::vector<TableUpdate6> generate_update_stream6(const RouteTable6& initial,
                                                  const UpdateStreamConfig& config);

bool apply_update(RouteTable6& table, const TableUpdate6& update);

}  // namespace spal::net
