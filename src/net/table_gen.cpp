#include "net/table_gen.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace spal::net {
namespace {

/// First-octet weights: concentrates address mass where 2003-era BGP tables
/// had it (former class A legacy blocks, 24/8 cable space, 6x-8x, the class B
/// 128-191 range and the heavily announced 192-220 class C space).
double first_octet_weight(int octet) {
  if (octet == 0 || octet == 10 || octet == 127 || octet >= 224) return 0.0;  // reserved
  if (octet >= 24 && octet <= 24) return 4.0;
  if (octet >= 60 && octet <= 90) return 2.5;
  if (octet >= 128 && octet <= 170) return 2.0;
  if (octet >= 192 && octet <= 220) return 3.0;
  return 1.0;
}

}  // namespace

std::array<double, Prefix::kMaxLength + 1> TableGenConfig::default_length_weights() {
  std::array<double, Prefix::kMaxLength + 1> w{};
  // Percent mass per length, shaped after the distributions in Huston's
  // "Analyzing the Internet's BGP Routing Table" and the potaroo.net
  // AS1221 snapshots the paper cites: /24 dominates, /16 spikes, and a thin
  // /25-/32 exception tail (including /32 host routes, which the paper calls
  // out as forcing range granularity down to 1).
  w[8] = 0.02;  w[9] = 0.03;  w[10] = 0.05; w[11] = 0.10; w[12] = 0.20;
  w[13] = 0.40; w[14] = 0.70; w[15] = 0.90; w[16] = 7.50; w[17] = 1.50;
  w[18] = 2.50; w[19] = 4.50; w[20] = 3.50; w[21] = 3.50; w[22] = 5.00;
  w[23] = 5.50; w[24] = 58.0; w[25] = 0.70; w[26] = 0.90; w[27] = 0.60;
  w[28] = 0.50; w[29] = 0.70; w[30] = 1.00; w[31] = 0.05; w[32] = 1.60;
  return w;
}

std::array<double, Prefix::kMaxLength + 1> effective_length_weights(
    const TableGenConfig& config) {
  // Distinct prefixes the non-nested path can produce at length len:
  // one usable first octet (first_octet_weight > 0) times the remaining
  // len - 8 free bits (lengths below 8 are bumped to 8 when drawn).
  std::size_t usable_octets = 0;
  for (int octet = 0; octet < 256; ++octet) {
    if (first_octet_weight(octet) > 0.0) ++usable_octets;
  }
  double sum = 0.0;
  for (const double w : config.length_weights) sum += w;
  std::array<double, Prefix::kMaxLength + 1> weights = config.length_weights;
  if (sum <= 0.0) return weights;
  for (int len = 0; len <= Prefix::kMaxLength; ++len) {
    const int free_bits = std::max(len, 8) - 8;
    const double population =
        static_cast<double>(usable_octets) *
        static_cast<double>(std::uint64_t{1} << free_bits);
    // Expected count at or below half the population keeps the duplicate
    // rejection loop fast; weights below the cap are left untouched (not
    // renormalized), so sub-cap configurations sample the exact same
    // distribution as before.
    const double cap =
        0.5 * population / static_cast<double>(config.size) * sum;
    if (weights[static_cast<std::size_t>(len)] > cap) {
      weights[static_cast<std::size_t>(len)] = cap;
    }
  }
  return weights;
}

RouteTable generate_table(const TableGenConfig& config) {
  std::mt19937_64 rng(config.seed);
  const auto weights = effective_length_weights(config);
  std::discrete_distribution<int> length_dist(weights.begin(), weights.end());
  std::vector<double> octet_weights(256);
  for (int i = 0; i < 256; ++i) octet_weights[static_cast<std::size_t>(i)] = first_octet_weight(i);
  std::discrete_distribution<int> octet_dist(octet_weights.begin(), octet_weights.end());
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<std::uint32_t> word;
  std::uniform_int_distribution<NextHop> hop_dist(0, config.next_hops == 0 ? 0 : config.next_hops - 1);

  std::unordered_set<std::uint64_t> seen;  // (bits << 6) | length
  std::vector<RouteEntry> entries;
  entries.reserve(config.size);
  // Prefixes shorter than /24, candidates for hosting nested exceptions.
  std::vector<Prefix> nestable;

  auto key_of = [](const Prefix& p) {
    return (std::uint64_t{p.bits()} << 6) | static_cast<std::uint64_t>(p.length());
  };

  while (entries.size() < config.size) {
    int length = length_dist(rng);
    std::uint32_t bits = 0;
    // More-specific exception: extend an existing shorter prefix. A parent
    // shorter than the sampled target length is searched for (a few random
    // draws) so the length histogram stays exactly the sampled distribution.
    const Prefix* parent = nullptr;
    if (!nestable.empty() && unit(rng) < config.nested_fraction) {
      for (int attempt = 0; attempt < 4 && parent == nullptr; ++attempt) {
        const Prefix& candidate = nestable[std::uniform_int_distribution<std::size_t>(
            0, nestable.size() - 1)(rng)];
        if (candidate.length() < length) parent = &candidate;
      }
    }
    if (parent != nullptr) {
      // Keep the parent's fixed bits; randomize only the extension bits.
      const std::uint32_t parent_mask =
          parent->length() == 0 ? 0 : (~std::uint32_t{0} << (32 - parent->length()));
      bits = (parent->bits() & parent_mask) | (word(rng) & ~parent_mask);
    } else {
      if (length < 8) length = 8;
      const std::uint32_t octet = static_cast<std::uint32_t>(octet_dist(rng));
      bits = (octet << 24) | (word(rng) & 0x00ffffffu);
    }
    const Prefix prefix(Ipv4Addr{bits}, length);
    if (!seen.insert(key_of(prefix)).second) continue;
    entries.push_back(RouteEntry{prefix, hop_dist(rng)});
    if (prefix.length() <= 24) nestable.push_back(prefix);
  }
  return RouteTable(std::move(entries));
}

RouteTable make_rt1() {
  TableGenConfig config;
  config.size = 41'709;
  config.seed = 0x5eed'0001;
  return generate_table(config);
}

RouteTable make_rt2() {
  TableGenConfig config;
  config.size = 140'838;
  config.seed = 0x5eed'0002;
  return generate_table(config);
}

RouteTable make_rt_internet(std::size_t size) {
  TableGenConfig config;
  config.size = size;
  config.seed = 0x5eed'0010;
  config.next_hops = 64;  // a modern default-free zone peers widely
  return generate_table(config);
}

Ipv4Addr random_address_in(const Prefix& prefix, std::mt19937_64& rng) {
  const std::uint32_t fixed_mask =
      prefix.length() == 0 ? 0 : (~std::uint32_t{0} << (32 - prefix.length()));
  const std::uint32_t host = static_cast<std::uint32_t>(rng()) & ~fixed_mask;
  return Ipv4Addr{prefix.bits() | host};
}

}  // namespace spal::net
