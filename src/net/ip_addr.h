// IPv4 / IPv6 address value types used throughout the SPAL library.
//
// Addresses are small value types with explicit bit-position accessors.
// SPAL's table partitioning (Sec. 3.1 of the paper) is defined in terms of
// bit positions b0 (most significant) .. b31 (least significant) of an IPv4
// destination address, so the bit numbering here follows the paper: bit 0 is
// the MSB.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

namespace spal::net {

/// An IPv4 address. Thin wrapper over a host-order 32-bit integer.
class Ipv4Addr {
 public:
  static constexpr int kBits = 32;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c, std::uint8_t d) {
    return Ipv4Addr((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// syntax error (missing octet, value > 255, trailing junk).
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }

  /// Bit at position `pos` where position 0 is the MOST significant bit
  /// (the paper's b0). Returns 0 or 1.
  constexpr int bit(int pos) const {
    return static_cast<int>((value_ >> (kBits - 1 - pos)) & 1u);
  }

  /// Extracts `count` bits starting at MSB-relative position `pos`,
  /// packed into the low bits of the result (earlier position = higher bit).
  constexpr std::uint32_t bits(int pos, int count) const {
    if (count == 0) return 0;
    return (value_ >> (kBits - pos - count)) &
           (count >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << count) - 1));
  }

  /// Dotted-quad representation.
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A 128-bit IPv6 address, stored as two host-order 64-bit halves.
/// Provided for the paper's "SPAL is feasibly applicable to IPv6" extension;
/// the partitioner and binary trie accept either address family.
class Ipv6Addr {
 public:
  static constexpr int kBits = 128;

  constexpr Ipv6Addr() = default;
  constexpr Ipv6Addr(std::uint64_t hi, std::uint64_t lo) : hi_(hi), lo_(lo) {}

  constexpr std::uint64_t hi() const { return hi_; }
  constexpr std::uint64_t lo() const { return lo_; }

  /// Bit at MSB-relative position `pos` (0 = most significant). 0 or 1.
  constexpr int bit(int pos) const {
    return pos < 64 ? static_cast<int>((hi_ >> (63 - pos)) & 1u)
                    : static_cast<int>((lo_ >> (127 - pos)) & 1u);
  }

  /// Extracts `count` (<= 32) bits starting at MSB-relative position `pos`,
  /// packed into the low bits of the result; the field may straddle the
  /// 64-bit halves. pos + count must be <= 128.
  constexpr std::uint32_t bits(int pos, int count) const {
    if (count == 0) return 0;
    const std::uint32_t mask =
        count >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << count) - 1);
    if (pos + count <= 64) {
      return static_cast<std::uint32_t>(hi_ >> (64 - pos - count)) & mask;
    }
    if (pos >= 64) {
      return static_cast<std::uint32_t>(lo_ >> (128 - pos - count)) & mask;
    }
    // Straddles the halves: the low (64 - pos) bits of hi_ form the top of
    // the field, the top (pos + count - 64) bits of lo_ the bottom.
    const int from_lo = pos + count - 64;
    const std::uint64_t high_part = hi_ & (~std::uint64_t{0} >> pos);
    return static_cast<std::uint32_t>(
               (high_part << from_lo) | (lo_ >> (64 - from_lo))) &
           mask;
  }

  /// Hex-groups representation (full, non-compressed form).
  std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Addr&, const Ipv6Addr&) = default;

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

}  // namespace spal::net
