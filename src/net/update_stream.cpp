#include "net/update_stream.h"

#include "net/table_gen.h"

namespace spal::net {

std::vector<TableUpdate> generate_update_stream(const RouteTable& initial,
                                                const UpdateStreamConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<NextHop> hop_dist(
      0, config.next_hops == 0 ? 0 : config.next_hops - 1);
  // Lengths for announcements follow the same distribution the table
  // generator uses, so the table's shape is preserved as it evolves.
  const auto weights = TableGenConfig::default_length_weights();
  std::discrete_distribution<int> length_dist(weights.begin(), weights.end());
  std::uniform_int_distribution<std::uint32_t> word;

  // Track the live prefix set to keep withdrawals/changes valid.
  std::vector<Prefix> live;
  live.reserve(initial.size() + config.count);
  for (const RouteEntry& e : initial.entries()) live.push_back(e.prefix);

  RouteTable working = initial;  // for announce-uniqueness checks
  std::vector<TableUpdate> updates;
  updates.reserve(config.count);
  while (updates.size() < config.count) {
    const double kind_draw = unit(rng);
    if (kind_draw < config.announce_fraction || live.empty()) {
      // Announce: synthesize a prefix not currently in the table.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int length = std::max(8, length_dist(rng));
        const Prefix prefix(Ipv4Addr{word(rng)}, length);
        if (working.find(prefix).has_value()) continue;
        const NextHop hop = hop_dist(rng);
        updates.push_back(TableUpdate{UpdateKind::kAnnounce, prefix, hop});
        working.add(prefix, hop);
        live.push_back(prefix);
        break;
      }
    } else if (kind_draw < config.announce_fraction + config.withdraw_fraction) {
      // Withdraw a live prefix.
      const std::size_t index =
          std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
      const Prefix prefix = live[index];
      updates.push_back(TableUpdate{UpdateKind::kWithdraw, prefix, kNoRoute});
      working.remove(prefix);
      live[index] = live.back();
      live.pop_back();
    } else {
      // Next-hop change of a live prefix.
      const Prefix prefix =
          live[std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng)];
      const NextHop hop = hop_dist(rng);
      updates.push_back(TableUpdate{UpdateKind::kHopChange, prefix, hop});
      working.add(prefix, hop);
    }
  }
  return updates;
}

bool apply_update(RouteTable& table, const TableUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kAnnounce:
    case UpdateKind::kHopChange:
      table.add(update.prefix, update.next_hop);
      return true;
    case UpdateKind::kWithdraw:
      return table.remove(update.prefix);
  }
  return false;
}

}  // namespace spal::net
