#include "net/update_stream.h"

#include "net/table_gen.h"

namespace spal::net {

std::vector<TableUpdate> generate_update_stream(const RouteTable& initial,
                                                const UpdateStreamConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<NextHop> hop_dist(
      0, config.next_hops == 0 ? 0 : config.next_hops - 1);
  // Lengths for announcements follow the same distribution the table
  // generator uses, so the table's shape is preserved as it evolves.
  const auto weights = TableGenConfig::default_length_weights();
  std::discrete_distribution<int> length_dist(weights.begin(), weights.end());
  std::uniform_int_distribution<std::uint32_t> word;

  // Track the live prefix set to keep withdrawals/changes valid.
  std::vector<Prefix> live;
  live.reserve(initial.size() + config.count);
  for (const RouteEntry& e : initial.entries()) live.push_back(e.prefix);

  RouteTable working = initial;  // for announce-uniqueness checks
  std::vector<TableUpdate> updates;
  updates.reserve(config.count);
  while (updates.size() < config.count) {
    const double kind_draw = unit(rng);
    if (kind_draw < config.announce_fraction || live.empty()) {
      // Announce: synthesize a prefix not currently in the table.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int length = std::max(8, length_dist(rng));
        const Prefix prefix(Ipv4Addr{word(rng)}, length);
        if (working.find(prefix).has_value()) continue;
        const NextHop hop = hop_dist(rng);
        updates.push_back(TableUpdate{UpdateKind::kAnnounce, prefix, hop});
        working.add(prefix, hop);
        live.push_back(prefix);
        break;
      }
    } else if (kind_draw < config.announce_fraction + config.withdraw_fraction) {
      // Withdraw a live prefix.
      const std::size_t index =
          std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
      const Prefix prefix = live[index];
      updates.push_back(TableUpdate{UpdateKind::kWithdraw, prefix, kNoRoute});
      working.remove(prefix);
      live[index] = live.back();
      live.pop_back();
    } else {
      // Next-hop change of a live prefix.
      const Prefix prefix =
          live[std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng)];
      const NextHop hop = hop_dist(rng);
      updates.push_back(TableUpdate{UpdateKind::kHopChange, prefix, hop});
      working.add(prefix, hop);
    }
  }
  return updates;
}

bool apply_update(RouteTable& table, const TableUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kAnnounce:
    case UpdateKind::kHopChange:
      table.add(update.prefix, update.next_hop);
      return true;
    case UpdateKind::kWithdraw:
      return table.remove(update.prefix);
  }
  return false;
}

std::vector<TableUpdate6> generate_update_stream6(const RouteTable6& initial,
                                                  const UpdateStreamConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<NextHop> hop_dist(
      0, config.next_hops == 0 ? 0 : config.next_hops - 1);
  // Announcement lengths follow the v6 table generator's BGP-shaped model
  // (/48 dominant, /32 spike); see generate_table6.
  std::array<double, Prefix6::kMaxLength + 1> weights{};
  weights[29] = 2.0;
  weights[32] = 22.0;
  weights[36] = 4.0;
  weights[40] = 5.0;
  weights[44] = 6.0;
  weights[48] = 48.0;
  weights[52] = 2.0;
  weights[56] = 4.0;
  weights[64] = 6.0;
  for (int len = 30; len < 48; ++len) {
    if (weights[static_cast<std::size_t>(len)] == 0.0) {
      weights[static_cast<std::size_t>(len)] = 0.3;
    }
  }
  std::discrete_distribution<int> length_dist(weights.begin(), weights.end());
  std::uniform_int_distribution<std::uint64_t> word;

  std::vector<Prefix6> live;
  live.reserve(initial.size() + config.count);
  for (const RouteEntry6& e : initial.entries()) live.push_back(e.prefix);

  RouteTable6 working = initial;  // for announce-uniqueness checks
  std::vector<TableUpdate6> updates;
  updates.reserve(config.count);
  while (updates.size() < config.count) {
    const double kind_draw = unit(rng);
    if (kind_draw < config.announce_fraction || live.empty()) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int length = std::max(16, length_dist(rng));
        // Global unicast 2000::/3, same space as the table generator.
        const std::uint64_t hi =
            (word(rng) & 0x1fffffffffffffffULL) | 0x2000000000000000ULL;
        const Prefix6 prefix(Ipv6Addr{hi, word(rng)}, length);
        if (working.find(prefix).has_value()) continue;
        const NextHop hop = hop_dist(rng);
        updates.push_back(TableUpdate6{UpdateKind::kAnnounce, prefix, hop});
        working.add(prefix, hop);
        live.push_back(prefix);
        break;
      }
    } else if (kind_draw < config.announce_fraction + config.withdraw_fraction) {
      const std::size_t index =
          std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
      const Prefix6 prefix = live[index];
      updates.push_back(TableUpdate6{UpdateKind::kWithdraw, prefix, kNoRoute});
      working.remove(prefix);
      live[index] = live.back();
      live.pop_back();
    } else {
      const Prefix6 prefix =
          live[std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng)];
      const NextHop hop = hop_dist(rng);
      updates.push_back(TableUpdate6{UpdateKind::kHopChange, prefix, hop});
      working.add(prefix, hop);
    }
  }
  return updates;
}

bool apply_update(RouteTable6& table, const TableUpdate6& update) {
  switch (update.kind) {
    case UpdateKind::kAnnounce:
    case UpdateKind::kHopChange:
      table.add(update.prefix, update.next_hop);
      return true;
    case UpdateKind::kWithdraw:
      return table.remove(update.prefix);
  }
  return false;
}

}  // namespace spal::net
