// Routing-table container: an ordered, de-duplicated set of
// <prefix, next hop> entries, plus summary statistics used by the
// partitioner and the experiment harnesses.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/prefix.h"

namespace spal::net {

/// Lookup result payload. In SPAL this is the Next_hop_LC# the packet should
/// be switched to; any small integer identifier works.
using NextHop = std::uint32_t;

/// Returned when no prefix in the table matches an address.
inline constexpr NextHop kNoRoute = ~NextHop{0};

struct RouteEntry {
  Prefix prefix;
  NextHop next_hop = kNoRoute;

  friend constexpr auto operator<=>(const RouteEntry&, const RouteEntry&) = default;
};

/// A routing table. Entries are kept sorted by (prefix bits, length) with at
/// most one entry per distinct prefix (the latest insertion wins), which is
/// the form every trie builder in src/trie consumes.
class RouteTable {
 public:
  RouteTable() = default;
  explicit RouteTable(std::vector<RouteEntry> entries);

  /// Inserts or replaces the entry for `prefix`.
  void add(const Prefix& prefix, NextHop next_hop);

  /// Removes the entry for exactly `prefix`. Returns true if present.
  bool remove(const Prefix& prefix);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::span<const RouteEntry> entries() const { return entries_; }

  /// Exact-prefix fetch (not longest-match). Nullopt if absent.
  std::optional<NextHop> find(const Prefix& prefix) const;

  /// Reference longest-prefix-match by linear scan. O(n); intended as the
  /// correctness oracle for the tries and for small tables only.
  NextHop lookup_linear(Ipv4Addr addr) const;

  /// Number of prefixes per length 0..32 (index = length).
  std::array<std::size_t, Prefix::kMaxLength + 1> length_histogram() const;

  /// Count of prefixes with length <= `length`.
  std::size_t count_length_at_most(int length) const;

  /// Serialization: one "a.b.c.d/len next_hop" line per entry.
  void save(std::ostream& out) const;
  static std::optional<RouteTable> load(std::istream& in);

  friend bool operator==(const RouteTable&, const RouteTable&) = default;

 private:
  void normalize();

  std::vector<RouteEntry> entries_;  // sorted by prefix, unique
};

}  // namespace spal::net
