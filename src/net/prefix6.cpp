#include "net/prefix6.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

namespace spal::net {

std::optional<Prefix6> Prefix6::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view len_part = text.substr(slash + 1);
  int length = 0;
  auto [next, ec] =
      std::from_chars(len_part.data(), len_part.data() + len_part.size(), length);
  if (ec != std::errc{} || next != len_part.data() + len_part.size() ||
      length < 0 || length > kMaxLength) {
    return std::nullopt;
  }
  // Eight 16-bit hex groups separated by ':' (full form, no "::").
  std::string_view addr_part = text.substr(0, slash);
  std::uint64_t hi = 0, lo = 0;
  for (int group = 0; group < 8; ++group) {
    if (group > 0) {
      if (addr_part.empty() || addr_part.front() != ':') return std::nullopt;
      addr_part.remove_prefix(1);
    }
    std::uint32_t value = 0;
    auto [gnext, gec] = std::from_chars(
        addr_part.data(), addr_part.data() + std::min<std::size_t>(4, addr_part.size()),
        value, 16);
    if (gec != std::errc{} || gnext == addr_part.data() || value > 0xffff) {
      return std::nullopt;
    }
    addr_part.remove_prefix(static_cast<std::size_t>(gnext - addr_part.data()));
    if (group < 4) {
      hi = (hi << 16) | value;
    } else {
      lo = (lo << 16) | value;
    }
  }
  if (!addr_part.empty()) return std::nullopt;
  return Prefix6(Ipv6Addr{hi, lo}, length);
}

RouteTable6::RouteTable6(std::vector<RouteEntry6> entries)
    : entries_(std::move(entries)) {
  normalize();
}

void RouteTable6::normalize() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const RouteEntry6& a, const RouteEntry6& b) {
                     return std::tuple(a.prefix.address(), a.prefix.length()) <
                            std::tuple(b.prefix.address(), b.prefix.length());
                   });
  auto last_wins = std::unique(
      entries_.rbegin(), entries_.rend(),
      [](const RouteEntry6& a, const RouteEntry6& b) { return a.prefix == b.prefix; });
  entries_.erase(entries_.begin(), last_wins.base());
}

void RouteTable6::add(const Prefix6& prefix, NextHop next_hop) {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RouteEntry6& e, const Prefix6& p) {
        return std::tuple(e.prefix.address(), e.prefix.length()) <
               std::tuple(p.address(), p.length());
      });
  if (pos != entries_.end() && pos->prefix == prefix) {
    pos->next_hop = next_hop;
  } else {
    entries_.insert(pos, RouteEntry6{prefix, next_hop});
  }
}

bool RouteTable6::remove(const Prefix6& prefix) {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RouteEntry6& e, const Prefix6& p) {
        return std::tuple(e.prefix.address(), e.prefix.length()) <
               std::tuple(p.address(), p.length());
      });
  if (pos == entries_.end() || pos->prefix != prefix) return false;
  entries_.erase(pos);
  return true;
}

std::optional<NextHop> RouteTable6::find(const Prefix6& prefix) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RouteEntry6& e, const Prefix6& p) {
        return std::tuple(e.prefix.address(), e.prefix.length()) <
               std::tuple(p.address(), p.length());
      });
  if (pos == entries_.end() || pos->prefix != prefix) return std::nullopt;
  return pos->next_hop;
}

NextHop RouteTable6::lookup_linear(const Ipv6Addr& addr) const {
  int best_len = -1;
  NextHop best = kNoRoute;
  for (const RouteEntry6& e : entries_) {
    if (e.prefix.length() > best_len && e.prefix.matches(addr)) {
      best_len = e.prefix.length();
      best = e.next_hop;
    }
  }
  return best;
}

std::array<std::size_t, Prefix6::kMaxLength + 1> RouteTable6::length_histogram() const {
  std::array<std::size_t, Prefix6::kMaxLength + 1> hist{};
  for (const RouteEntry6& e : entries_) {
    hist[static_cast<std::size_t>(e.prefix.length())]++;
  }
  return hist;
}

void RouteTable6::save(std::ostream& out) const {
  for (const RouteEntry6& e : entries_) {
    out << e.prefix.to_string() << ' ' << e.next_hop << '\n';
  }
}

std::optional<RouteTable6> RouteTable6::load(std::istream& in) {
  std::vector<RouteEntry6> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string prefix_text;
    NextHop next_hop = kNoRoute;
    if (!(fields >> prefix_text >> next_hop)) return std::nullopt;
    const auto prefix = Prefix6::parse(prefix_text);
    if (!prefix) return std::nullopt;
    entries.push_back(RouteEntry6{*prefix, next_hop});
  }
  return RouteTable6(std::move(entries));
}

RouteTable6 generate_table6(const TableGen6Config& config) {
  std::mt19937_64 rng(config.seed);
  // Length mass shaped after global IPv6 BGP tables: /48 dominates, /32
  // spikes (RIR allocations), body over /29-/44, thin /64+ tail.
  std::array<double, Prefix6::kMaxLength + 1> weights{};
  weights[29] = 2.0;
  weights[32] = 22.0;
  weights[36] = 4.0;
  weights[40] = 5.0;
  weights[44] = 6.0;
  weights[48] = 48.0;
  weights[52] = 2.0;
  weights[56] = 4.0;
  weights[64] = 6.0;
  for (int len = 30; len < 48; ++len) {
    if (weights[static_cast<std::size_t>(len)] == 0.0) {
      weights[static_cast<std::size_t>(len)] = 0.3;
    }
  }
  std::discrete_distribution<int> length_dist(weights.begin(), weights.end());
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<std::uint64_t> word;
  std::uniform_int_distribution<NextHop> hop_dist(
      0, config.next_hops == 0 ? 0 : config.next_hops - 1);

  std::vector<RouteEntry6> entries;
  entries.reserve(config.size);
  std::vector<Prefix6> nestable;
  // Hash on (hi, lo, len) for dedup.
  struct Key {
    std::uint64_t hi, lo;
    int len;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.hi * 0x9e3779b97f4a7c15ULL ^ k.lo) ^
             std::hash<int>{}(k.len);
    }
  };
  std::unordered_set<Key, KeyHash> seen;

  while (entries.size() < config.size) {
    const int length = length_dist(rng);
    Ipv6Addr addr;
    const Prefix6* parent = nullptr;
    if (!nestable.empty() && unit(rng) < config.nested_fraction) {
      for (int attempt = 0; attempt < 4 && parent == nullptr; ++attempt) {
        const Prefix6& candidate = nestable[std::uniform_int_distribution<std::size_t>(
            0, nestable.size() - 1)(rng)];
        if (candidate.length() < length) parent = &candidate;
      }
    }
    if (parent != nullptr) {
      addr = random_address_in6(*parent, rng);
    } else {
      // Global unicast 2000::/3.
      const std::uint64_t hi = (word(rng) & 0x1fffffffffffffffULL) | 0x2000000000000000ULL;
      addr = Ipv6Addr{hi, word(rng)};
    }
    const Prefix6 prefix(addr, length);
    const Key key{prefix.address().hi(), prefix.address().lo(), prefix.length()};
    if (!seen.insert(key).second) continue;
    entries.push_back(RouteEntry6{prefix, hop_dist(rng)});
    if (prefix.length() <= 48) nestable.push_back(prefix);
  }
  return RouteTable6(std::move(entries));
}

RouteTable6 make_rt6_internet(std::size_t size) {
  TableGen6Config config;
  config.size = size;
  config.seed = 0x5eed'0011;
  config.next_hops = 64;
  return generate_table6(config);
}

Ipv6Addr random_address_in6(const Prefix6& prefix, std::mt19937_64& rng) {
  const int len = prefix.length();
  const std::uint64_t hi_mask =
      len <= 0 ? 0 : (len >= 64 ? ~std::uint64_t{0} : ~std::uint64_t{0} << (64 - len));
  const std::uint64_t lo_mask =
      len <= 64 ? 0 : (len >= 128 ? ~std::uint64_t{0} : ~std::uint64_t{0} << (128 - len));
  const std::uint64_t hi = (prefix.address().hi() & hi_mask) | (rng() & ~hi_mask);
  const std::uint64_t lo = (prefix.address().lo() & lo_mask) | (rng() & ~lo_mask);
  return Ipv6Addr{hi, lo};
}

}  // namespace spal::net
