#include "net/prefix.h"

#include <charconv>

namespace spal::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  int length = kMaxLength;
  std::string_view addr_part = text;
  if (slash != std::string_view::npos) {
    addr_part = text.substr(0, slash);
    const std::string_view len_part = text.substr(slash + 1);
    auto [next, ec] =
        std::from_chars(len_part.data(), len_part.data() + len_part.size(), length);
    if (ec != std::errc{} || next != len_part.data() + len_part.size()) {
      return std::nullopt;
    }
    if (length < 0 || length > kMaxLength) return std::nullopt;
  }
  const auto addr = Ipv4Addr::parse(addr_part);
  if (!addr) return std::nullopt;
  return Prefix(*addr, length);
}

std::string Prefix::to_string() const {
  return address().to_string() + "/" + std::to_string(length());
}

}  // namespace spal::net
