#include "net/route_table.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace spal::net {

RouteTable::RouteTable(std::vector<RouteEntry> entries)
    : entries_(std::move(entries)) {
  normalize();
}

void RouteTable::normalize() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const RouteEntry& a, const RouteEntry& b) {
                     return std::pair(a.prefix.bits(), a.prefix.length()) <
                            std::pair(b.prefix.bits(), b.prefix.length());
                   });
  // Keep the LAST entry for each duplicated prefix (latest insertion wins).
  auto last_wins = std::unique(
      entries_.rbegin(), entries_.rend(),
      [](const RouteEntry& a, const RouteEntry& b) { return a.prefix == b.prefix; });
  entries_.erase(entries_.begin(), last_wins.base());
}

void RouteTable::add(const Prefix& prefix, NextHop next_hop) {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RouteEntry& e, const Prefix& p) {
        return std::pair(e.prefix.bits(), e.prefix.length()) <
               std::pair(p.bits(), p.length());
      });
  if (pos != entries_.end() && pos->prefix == prefix) {
    pos->next_hop = next_hop;
  } else {
    entries_.insert(pos, RouteEntry{prefix, next_hop});
  }
}

bool RouteTable::remove(const Prefix& prefix) {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RouteEntry& e, const Prefix& p) {
        return std::pair(e.prefix.bits(), e.prefix.length()) <
               std::pair(p.bits(), p.length());
      });
  if (pos == entries_.end() || pos->prefix != prefix) return false;
  entries_.erase(pos);
  return true;
}

std::optional<NextHop> RouteTable::find(const Prefix& prefix) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const RouteEntry& e, const Prefix& p) {
        return std::pair(e.prefix.bits(), e.prefix.length()) <
               std::pair(p.bits(), p.length());
      });
  if (pos == entries_.end() || pos->prefix != prefix) return std::nullopt;
  return pos->next_hop;
}

NextHop RouteTable::lookup_linear(Ipv4Addr addr) const {
  int best_len = -1;
  NextHop best = kNoRoute;
  for (const RouteEntry& e : entries_) {
    if (e.prefix.length() > best_len && e.prefix.matches(addr)) {
      best_len = e.prefix.length();
      best = e.next_hop;
    }
  }
  return best;
}

std::array<std::size_t, Prefix::kMaxLength + 1> RouteTable::length_histogram() const {
  std::array<std::size_t, Prefix::kMaxLength + 1> hist{};
  for (const RouteEntry& e : entries_) {
    hist[static_cast<std::size_t>(e.prefix.length())]++;
  }
  return hist;
}

std::size_t RouteTable::count_length_at_most(int length) const {
  std::size_t n = 0;
  for (const RouteEntry& e : entries_) {
    if (e.prefix.length() <= length) ++n;
  }
  return n;
}

void RouteTable::save(std::ostream& out) const {
  for (const RouteEntry& e : entries_) {
    out << e.prefix.to_string() << ' ' << e.next_hop << '\n';
  }
}

std::optional<RouteTable> RouteTable::load(std::istream& in) {
  std::vector<RouteEntry> entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string prefix_text;
    NextHop next_hop = kNoRoute;
    if (!(fields >> prefix_text >> next_hop)) return std::nullopt;
    const auto prefix = Prefix::parse(prefix_text);
    if (!prefix) return std::nullopt;
    entries.push_back(RouteEntry{*prefix, next_hop});
  }
  return RouteTable(std::move(entries));
}

}  // namespace spal::net
