#include "net/ip_addr.h"

#include <array>
#include <charconv>

namespace spal::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    auto [next, ec] = std::from_chars(p, end, octets[static_cast<std::size_t>(i)]);
    if (ec != std::errc{} || next == p) return std::nullopt;
    if (octets[static_cast<std::size_t>(i)] > 255) return std::nullopt;
    p = next;
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr::from_octets(
      static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
      static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string((value_ >> (24 - 8 * i)) & 0xffu);
  }
  return out;
}

std::string Ipv6Addr::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(39);
  for (int group = 0; group < 8; ++group) {
    if (group > 0) out.push_back(':');
    const std::uint64_t half = group < 4 ? hi_ : lo_;
    const int shift = 48 - 16 * (group % 4);
    const std::uint16_t v = static_cast<std::uint16_t>(half >> shift);
    out.push_back(kHex[(v >> 12) & 0xf]);
    out.push_back(kHex[(v >> 8) & 0xf]);
    out.push_back(kHex[(v >> 4) & 0xf]);
    out.push_back(kHex[v & 0xf]);
  }
  return out;
}

}  // namespace spal::net
