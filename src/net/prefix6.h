// IPv6 prefixes and routing tables — the paper's Sec. 6 extension ("SPAL is
// feasibly applicable to IPv6"; Sec. 4 notes the SRAM reduction "will be
// much larger under IPv6").
//
// Mirrors the IPv4 types in prefix.h / route_table.h at 128 bits. Only the
// pieces the SPAL experiments need are provided: tri-state bit access for
// the partitioner, longest-prefix matching, and summary statistics.
#pragma once

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "net/ip_addr.h"
#include "net/prefix.h"
#include "net/route_table.h"

namespace spal::net {

/// An IPv6 prefix: `length` leading bits of `addr` (low bits zeroed).
class Prefix6 {
 public:
  static constexpr int kMaxLength = 128;

  constexpr Prefix6() = default;

  constexpr Prefix6(Ipv6Addr addr, int length)
      : hi_(addr.hi() & hi_mask(length)),
        lo_(addr.lo() & lo_mask(length)),
        length_(static_cast<std::uint8_t>(length)) {}

  constexpr Ipv6Addr address() const { return Ipv6Addr{hi_, lo_}; }
  constexpr int length() const { return length_; }

  /// Tri-state bit at MSB-relative position `pos`: kStar iff pos >= length.
  constexpr PrefixBit bit(int pos) const {
    if (pos >= length_) return PrefixBit::kStar;
    return address().bit(pos) ? PrefixBit::kOne : PrefixBit::kZero;
  }

  constexpr bool matches(const Ipv6Addr& addr) const {
    return ((addr.hi() ^ hi_) & hi_mask(length_)) == 0 &&
           ((addr.lo() ^ lo_) & lo_mask(length_)) == 0;
  }

  constexpr bool covers(const Prefix6& other) const {
    return length_ <= other.length_ && matches(other.address());
  }

  /// "<full hex groups>/len".
  std::string to_string() const {
    return address().to_string() + "/" + std::to_string(length_);
  }

  /// Parses the full-form notation produced by to_string()
  /// ("xxxx:xxxx:...:xxxx/len"); nullopt on any syntax error.
  static std::optional<Prefix6> parse(std::string_view text);

  friend constexpr auto operator<=>(const Prefix6&, const Prefix6&) = default;

 private:
  static constexpr std::uint64_t hi_mask(int length) {
    if (length <= 0) return 0;
    if (length >= 64) return ~std::uint64_t{0};
    return ~std::uint64_t{0} << (64 - length);
  }
  static constexpr std::uint64_t lo_mask(int length) {
    if (length <= 64) return 0;
    if (length >= 128) return ~std::uint64_t{0};
    return ~std::uint64_t{0} << (128 - length);
  }

  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
  std::uint8_t length_ = 0;
};

struct RouteEntry6 {
  Prefix6 prefix;
  NextHop next_hop = kNoRoute;

  friend constexpr auto operator<=>(const RouteEntry6&, const RouteEntry6&) = default;
};

/// Sorted, de-duplicated IPv6 routing table (latest insertion wins).
class RouteTable6 {
 public:
  RouteTable6() = default;
  explicit RouteTable6(std::vector<RouteEntry6> entries);

  void add(const Prefix6& prefix, NextHop next_hop);

  /// Removes an exact prefix; false if absent.
  bool remove(const Prefix6& prefix);

  /// Exact-prefix lookup (not LPM); nullopt if absent.
  std::optional<NextHop> find(const Prefix6& prefix) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::span<const RouteEntry6> entries() const { return entries_; }

  /// Reference longest-prefix match by linear scan (oracle).
  NextHop lookup_linear(const Ipv6Addr& addr) const;

  std::array<std::size_t, Prefix6::kMaxLength + 1> length_histogram() const;

  /// Serialization: one "<full-hex-addr>/len next_hop" line per entry.
  void save(std::ostream& out) const;
  static std::optional<RouteTable6> load(std::istream& in);

  friend bool operator==(const RouteTable6&, const RouteTable6&) = default;

 private:
  void normalize();

  std::vector<RouteEntry6> entries_;
};

/// Synthetic IPv6 BGP-like table: mass concentrated on /48 and /32 with the
/// /29-/44 body and a /64+ tail observed in global v6 tables, within the
/// 2000::/3 global-unicast space.
struct TableGen6Config {
  std::size_t size = 20'000;
  std::uint64_t seed = 1;
  std::uint32_t next_hops = 16;
  double nested_fraction = 0.30;
};

RouteTable6 generate_table6(const TableGen6Config& config);

/// Modern-internet stand-in: `size` prefixes (default the ~220k-route IPv6
/// table of the mid-2020s BGP default-free zone).
RouteTable6 make_rt6_internet(std::size_t size = 220'000);

/// Uniformly random address inside `prefix` (host bits randomized).
Ipv6Addr random_address_in6(const Prefix6& prefix, std::mt19937_64& rng);

/// True iff the first `bits` bits of a and b agree (bits in [0, 128]).
constexpr bool equal_prefix_bits(const Ipv6Addr& a, const Ipv6Addr& b, int bits) {
  if (bits <= 0) return true;
  if (bits <= 64) {
    const std::uint64_t mask = ~std::uint64_t{0} << (64 - bits);
    return ((a.hi() ^ b.hi()) & mask) == 0;
  }
  if (a.hi() != b.hi()) return false;
  const std::uint64_t mask =
      bits >= 128 ? ~std::uint64_t{0} : (~std::uint64_t{0} << (128 - bits));
  return ((a.lo() ^ b.lo()) & mask) == 0;
}

/// Number of leading bits a and b share (0..128).
constexpr int common_prefix_bits(const Ipv6Addr& a, const Ipv6Addr& b) {
  if (a.hi() != b.hi()) return std::countl_zero(a.hi() ^ b.hi());
  if (a.lo() != b.lo()) return 64 + std::countl_zero(a.lo() ^ b.lo());
  return 128;
}

}  // namespace spal::net
