// IPv4 prefixes and the tri-state bit view SPAL's partitioner works with.
//
// A prefix of length L fixes bits b0..b(L-1) of an address; every later bit
// is "don't care" — the paper writes it "*". Partitioning (Sec. 3.1)
// classifies each prefix at a control-bit position as 0, 1, or *; prefixes
// that are * at a control bit are replicated into every matching partition.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip_addr.h"

namespace spal::net {

/// Tri-state value of one bit position of a prefix.
enum class PrefixBit : std::uint8_t { kZero = 0, kOne = 1, kStar = 2 };

/// An IPv4 prefix: `length` leading bits of `addr` (remaining bits zeroed).
class Prefix {
 public:
  static constexpr int kMaxLength = 32;

  constexpr Prefix() = default;

  /// Builds a prefix from an address and length; low (32 - length) bits of
  /// `addr` are masked off so equal prefixes compare equal.
  constexpr Prefix(Ipv4Addr addr, int length)
      : bits_(length == 0 ? 0 : (addr.value() & mask(length))),
        length_(static_cast<std::uint8_t>(length)) {}

  /// Parses "a.b.c.d/len". A bare address parses as a /32 host prefix.
  static std::optional<Prefix> parse(std::string_view text);

  constexpr std::uint32_t bits() const { return bits_; }
  constexpr int length() const { return length_; }
  constexpr Ipv4Addr address() const { return Ipv4Addr{bits_}; }

  /// Tri-state bit at MSB-relative position `pos`: kStar iff pos >= length.
  constexpr PrefixBit bit(int pos) const {
    if (pos >= length_) return PrefixBit::kStar;
    return ((bits_ >> (31 - pos)) & 1u) ? PrefixBit::kOne : PrefixBit::kZero;
  }

  /// True iff `addr` falls inside this prefix.
  constexpr bool matches(Ipv4Addr addr) const {
    return length_ == 0 || ((addr.value() ^ bits_) & mask(length_)) == 0;
  }

  /// True iff every address matched by `other` is also matched by *this
  /// (i.e. *this is a covering, shorter-or-equal prefix of `other`).
  constexpr bool covers(const Prefix& other) const {
    return length_ <= other.length_ && matches(Ipv4Addr{other.bits_});
  }

  /// Lowest / highest address inside this prefix.
  constexpr Ipv4Addr range_first() const { return Ipv4Addr{bits_}; }
  constexpr Ipv4Addr range_last() const {
    return Ipv4Addr{bits_ | (length_ == 0 ? ~std::uint32_t{0} : ~mask(length_))};
  }

  /// "a.b.c.d/len" notation.
  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0 : (~std::uint32_t{0} << (32 - length));
  }

  std::uint32_t bits_ = 0;
  std::uint8_t length_ = 0;
};

}  // namespace spal::net
