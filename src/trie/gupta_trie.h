// Two-level hardware lookup table, after Gupta, Lin & McKeown, "Routing
// Lookups in Hardware at Memory Access Speeds", INFOCOM 1998 — the
// hardware comparator of the SPAL paper's Sec. 2.1.
//
// Level 1 is a directly-indexed table with 2^24 entries addressed by the
// first 24 address bits; entries either hold a next hop or point to a
// 2^8-entry second-level chunk for prefixes longer than /24. Lookups cost
// one memory access for prefixes up to /24 and two otherwise — "IP lookups
// at the speed of memory accesses" — at the price the SPAL paper calls out:
// the level-1 table alone is 32 MB (2^24 × 2 bytes).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

class GuptaTrie final : public LpmIndex {
 public:
  explicit GuptaTrie(const net::RouteTable& table);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "gupta"; }

  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  // 16-bit entries as in the original: top bit selects next-hop vs chunk id.
  static constexpr std::uint16_t kChunkFlag = 0x8000;
  static constexpr std::uint16_t kNoEntry = 0x7fff;  ///< next-hop index "none"

  std::uint32_t intern_next_hop(net::NextHop hop);

  std::vector<std::uint16_t> level1_;              // 2^24 entries
  std::vector<std::array<std::uint16_t, 256>> chunks_;
  std::vector<net::NextHop> next_hop_table_;
};

}  // namespace spal::trie
