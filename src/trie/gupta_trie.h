// Two-level hardware lookup table, after Gupta, Lin & McKeown, "Routing
// Lookups in Hardware at Memory Access Speeds", INFOCOM 1998 — the
// hardware comparator of the SPAL paper's Sec. 2.1.
//
// Level 1 is a directly-indexed table with 2^24 entries addressed by the
// first 24 address bits; entries either hold a next hop or point to a
// 2^8-entry second-level chunk for prefixes longer than /24. Lookups cost
// one memory access for prefixes up to /24 and two otherwise — "IP lookups
// at the speed of memory accesses" — at the price the SPAL paper calls out:
// the level-1 table alone is 32 MB (2^24 × 2 bytes).
//
// Entry width is size-selected: the original 16-bit layout (top bit selects
// next-hop vs chunk id, 15-bit payload) holds every paper-era table, and a
// 32-bit layout engages automatically when an internet-scale table needs
// more than 2^15 - 1 chunks or next-hop ids. Paper-sized tables always pick
// the 16-bit layout, so their storage figures are unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

class GuptaTrie final : public LpmIndex {
 public:
  explicit GuptaTrie(const net::RouteTable& table);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "gupta"; }

  std::size_t chunk_count() const {
    return wide_ ? chunks32_.size() : chunks_.size();
  }
  /// True when the table overflowed the 15-bit ids and the 32-bit entry
  /// layout was selected.
  bool wide_layout() const { return wide_; }

 private:
  // 16-bit entries as in the original: top bit selects next-hop vs chunk id.
  static constexpr std::uint16_t kChunkFlag = 0x8000;
  static constexpr std::uint16_t kNoEntry = 0x7fff;  ///< next-hop index "none"
  // 32-bit layout for internet-scale tables, same bit discipline.
  static constexpr std::uint32_t kChunkFlag32 = 0x8000'0000u;
  static constexpr std::uint32_t kNoEntry32 = 0x7fff'ffffu;

  std::uint32_t intern_next_hop(net::NextHop hop);

  template <typename Entry, Entry Flag, Entry NoEntry>
  void build_into(const net::RouteTable& table, std::vector<Entry>& level1,
                  std::vector<std::array<Entry, 256>>& chunks);

  template <typename Entry, Entry Flag, Entry NoEntry, bool kCounted>
  net::NextHop lookup_in(const std::vector<Entry>& level1,
                         const std::vector<std::array<Entry, 256>>& chunks,
                         net::Ipv4Addr addr, MemAccessCounter* counter) const;

  bool wide_ = false;
  std::vector<std::uint16_t> level1_;              // 2^24 entries (narrow)
  std::vector<std::array<std::uint16_t, 256>> chunks_;
  std::vector<std::uint32_t> level1w_;             // 2^24 entries (wide)
  std::vector<std::array<std::uint32_t, 256>> chunks32_;
  std::vector<net::NextHop> next_hop_table_;
};

}  // namespace spal::trie
