// Fixed-stride multibit trie — the "multiple-bit inspection at each search
// step" family the paper's Sec. 2.1 describes via the Ruiz-Sanchez,
// Biersack & Dabbous survey [15]: the stride sequence trades lookup steps
// against memory (leaf pushing through controlled prefix expansion).
//
// Each level inspects `stride[i]` bits through a 2^stride[i]-entry node
// array; prefixes whose length falls inside a level are expanded to that
// level's boundary. Lookup cost is one memory access per level traversed.
// The Lulea trie is the compressed cousin of strides {16,8,8}; this
// uncompressed form shows the memory cost compression avoids.
#pragma once

#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

class StrideTrie final : public LpmIndex {
 public:
  /// `strides` must sum to 32; e.g. {16,8,8}, {8,8,8,8}, {24,8}.
  /// Throws std::invalid_argument otherwise.
  explicit StrideTrie(const net::RouteTable& table,
                      std::vector<int> strides = {16, 8, 8});

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "stride"; }

  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<int>& strides() const { return strides_; }

 private:
  /// One slot of a node array: a next hop valid up to this level plus an
  /// optional child node for longer prefixes (both may be present — the
  /// next hop acts as the default the child's misses fall back to, which
  /// lookup resolves by remembering the deepest next hop seen).
  struct Slot {
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t child = -1;
  };
  struct Node {
    std::uint32_t base = 0;  ///< offset into slots_
  };

  std::int32_t new_node(int level);
  Slot& slot_at(std::int32_t node, std::uint32_t index) {
    return slots_[nodes_[static_cast<std::size_t>(node)].base + index];
  }
  const Slot& slot_at(std::int32_t node, std::uint32_t index) const {
    return slots_[nodes_[static_cast<std::size_t>(node)].base + index];
  }

  std::vector<int> strides_;
  std::vector<int> level_of_node_;  ///< level (stride index) per node
  std::vector<Node> nodes_;
  std::vector<Slot> slots_;
};

}  // namespace spal::trie
