// LC-trie (level-compressed trie), after Nilsson & Karlsson, "IP-Address
// Lookup Using LC-Tries", IEEE JSAC 1999.
//
// The prefix set is split into a *base vector* (prefixes that are not proper
// prefixes of any other) and a *prefix vector* of internal prefixes chained
// from the base entries that they cover. A path- and level-compressed trie
// is built over the base vector: each node either branches on 2^branch bits
// (after skipping `skip` bits) or is a leaf naming a base entry. The branch
// factor is grown greedily while the fraction of non-empty children stays
// above the fill factor; empty children are filled with a neighbouring leaf
// and rejected by the explicit comparison search performs at the leaf — the
// paper's Sec. 2.1 notes exactly this "explicit comparison" step.
//
// The SPAL paper evaluates the LC-trie with fill factor 0.25 (Sec. 4).
//
// Host layout: trie nodes are packed into the 4-byte word the JSAC paper's
// storage model describes (5-bit branch, 7-bit skip, 20-bit adr), so 16
// nodes share a cache line and storage_bytes() reports actual host memory.
#pragma once

#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

namespace lc_detail {

/// Packed 4-byte LC-trie node: branch in the top 5 bits, skip in the next
/// 7, adr (children start, or base-vector index for leaves) in the low 20.
/// branch == 0 marks a leaf. The reachable value ranges fit: branch <= 31
/// (bounded by the address width minus one consumed bit), skip <= 127, and
/// builds exceeding 2^20 nodes (~500k base prefixes) throw length_error.
struct PackedNode {
  static constexpr std::uint32_t kAdrBits = 20;
  static constexpr std::uint32_t kAdrMask = (1u << kAdrBits) - 1;
  static constexpr std::uint32_t kSkipBits = 7;

  std::uint32_t word = 0;

  static PackedNode make(std::uint32_t branch, std::uint32_t skip,
                         std::uint32_t adr) {
    return PackedNode{(branch << (kAdrBits + kSkipBits)) | (skip << kAdrBits) |
                      adr};
  }
  std::uint32_t branch() const { return word >> (kAdrBits + kSkipBits); }
  std::uint32_t skip() const { return (word >> kAdrBits) & ((1u << kSkipBits) - 1); }
  std::uint32_t adr() const { return word & kAdrMask; }
};

}  // namespace lc_detail

class LcTrie final : public LpmIndex {
 public:
  explicit LcTrie(const net::RouteTable& table, double fill_factor = 0.25,
                  int max_root_branch = 16);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  void lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                    net::NextHop* out) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "lc"; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t base_count() const { return base_.size(); }
  std::size_t internal_count() const { return pre_.size(); }

 private:
  using Node = lc_detail::PackedNode;
  struct BaseEntry {
    std::uint32_t bits = 0;
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;  ///< chain of covering internal prefixes
  };
  struct PreEntry {
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;
  };

  void build(std::size_t first, std::size_t n, int prefix_pos, std::size_t node_index);
  int compute_branch(std::size_t first, std::size_t n, int pos, int* skip_out) const;

  /// Below this many keys lookup_batch uses the plain scalar loop (pipeline
  /// setup cost exceeds the overlap win; see BENCH_lpm.json small batches).
  static constexpr std::size_t kMinWaveWidth = 8;

  // Dispatch-level kernels (trie/simd_dispatch.h). There is no SSE4.2 tier:
  // the LC walk has no rank computation for POPCNT to accelerate, so the
  // sse42 level runs the generic pipeline. The AVX2 kernel (lc_trie_simd.cpp;
  // generic-calling stub off x86) runs the node walk and base comparison as
  // 8-lane gather waves.
  void lookup_batch_generic(const net::Ipv4Addr* keys, std::size_t n,
                            net::NextHop* out) const;
  void lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                         net::NextHop* out) const;

  template <bool kCounted>
  net::NextHop lookup_impl(net::Ipv4Addr addr, MemAccessCounter* counter) const;

  double fill_factor_;
  int max_root_branch_;
  std::vector<Node> nodes_;
  std::vector<BaseEntry> base_;
  std::vector<PreEntry> pre_;
};

}  // namespace spal::trie
