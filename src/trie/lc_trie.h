// LC-trie (level-compressed trie), after Nilsson & Karlsson, "IP-Address
// Lookup Using LC-Tries", IEEE JSAC 1999.
//
// The prefix set is split into a *base vector* (prefixes that are not proper
// prefixes of any other) and a *prefix vector* of internal prefixes chained
// from the base entries that they cover. A path- and level-compressed trie
// is built over the base vector: each node either branches on 2^branch bits
// (after skipping `skip` bits) or is a leaf naming a base entry. The branch
// factor is grown greedily while the fraction of non-empty children stays
// above the fill factor; empty children are filled with a neighbouring leaf
// and rejected by the explicit comparison search performs at the leaf — the
// paper's Sec. 2.1 notes exactly this "explicit comparison" step.
//
// The SPAL paper evaluates the LC-trie with fill factor 0.25 (Sec. 4).
//
// Host layout: trie nodes are packed into the 4-byte word the JSAC paper's
// storage model describes (5-bit branch, 7-bit skip, 20-bit adr), so 16
// nodes share a cache line and storage_bytes() reports actual host memory.
#pragma once

#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

namespace lc_detail {

/// Packed 4-byte LC-trie node: branch in the top 5 bits, skip in the next
/// 7, adr (children start, or base-vector index for leaves) in the low 20.
/// branch == 0 marks a leaf. The reachable value ranges fit: branch <= 31
/// (bounded by the address width minus one consumed bit), skip <= 127.
/// Structures outgrowing the 20-bit adr (~1.05M nodes or base entries, i.e.
/// internet-scale tables) are size-selected onto WideNode instead.
struct PackedNode {
  static constexpr std::uint32_t kAdrBits = 20;
  static constexpr std::uint32_t kAdrMask = (1u << kAdrBits) - 1;
  static constexpr std::uint32_t kSkipBits = 7;

  std::uint32_t word = 0;

  static PackedNode make(std::uint32_t branch, std::uint32_t skip,
                         std::uint32_t adr) {
    return PackedNode{(branch << (kAdrBits + kSkipBits)) | (skip << kAdrBits) |
                      adr};
  }
  std::uint32_t branch() const { return word >> (kAdrBits + kSkipBits); }
  std::uint32_t skip() const { return (word >> kAdrBits) & ((1u << kSkipBits) - 1); }
  std::uint32_t adr() const { return word & kAdrMask; }
};

/// 8-byte node with a full 32-bit adr: the build-time staging type, and the
/// lookup layout when the structure exceeds PackedNode's 20-bit adr. Same
/// accessor surface as PackedNode so the walk code is shared by template.
struct WideNode {
  std::uint32_t adr_ = 0;
  std::uint8_t branch_ = 0;
  std::uint8_t skip_ = 0;

  static WideNode make(std::uint32_t branch, std::uint32_t skip,
                       std::uint32_t adr) {
    return WideNode{adr, static_cast<std::uint8_t>(branch),
                    static_cast<std::uint8_t>(skip)};
  }
  std::uint32_t branch() const { return branch_; }
  std::uint32_t skip() const { return skip_; }
  std::uint32_t adr() const { return adr_; }
};

/// Arena indexes for counted-lookup attribution; must match the order the
/// LC tries' arenas() list their spans.
enum LcArena : std::size_t {
  kArenaNodes = 0,
  kArenaBase = 1,
  kArenaPre = 2,
};

}  // namespace lc_detail

class LcTrie final : public LpmIndex {
 public:
  /// `packed_limit` is the largest adr value the packed 4-byte layout may
  /// hold; structures whose node or base count exceeds it keep the 8-byte
  /// wide layout instead. The default is the format's real 20-bit ceiling —
  /// tests lower it to exercise the wide path without million-node builds.
  explicit LcTrie(const net::RouteTable& table, double fill_factor = 0.25,
                  int max_root_branch = 16,
                  std::size_t packed_limit = lc_detail::PackedNode::kAdrMask);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  void lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                    net::NextHop* out) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::vector<ArenaSpan> arenas() const override;
  std::string_view name() const override { return "lc"; }

  std::size_t node_count() const {
    return wide_nodes_.empty() ? nodes_.size() : wide_nodes_.size();
  }
  std::size_t base_count() const { return base_.size(); }
  std::size_t internal_count() const { return pre_.size(); }
  /// True when the structure outgrew the packed 20-bit adr and uses the
  /// 8-byte wide node layout.
  bool wide_layout() const { return !wide_nodes_.empty(); }

 private:
  using Node = lc_detail::PackedNode;
  using WideNode = lc_detail::WideNode;
  struct BaseEntry {
    std::uint32_t bits = 0;
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;  ///< chain of covering internal prefixes
  };
  struct PreEntry {
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;
  };

  /// Builds the trie into wide staging nodes: the root's children are
  /// partitioned into per-pattern subtrees built independently (over the
  /// sweep pool for large tables), then spliced into one exactly pre-sized
  /// array in DFS order — bit-for-bit the array the sequential recursion
  /// produces, because the recursion appends each child's whole subtree
  /// before its next sibling's.
  void build_nodes(std::vector<WideNode>& out) const;
  /// Appends the subtree over base_[first, first+n) with its root at
  /// out[node_index] (sequential recursion, shared by every build path).
  void build_at(std::vector<WideNode>& out, std::size_t node_index,
                std::size_t first, std::size_t n, int pos) const;
  int compute_branch(std::size_t first, std::size_t n, int pos, int* skip_out) const;

  /// Below this many keys lookup_batch uses the plain scalar loop (pipeline
  /// setup cost exceeds the overlap win; see BENCH_lpm.json small batches).
  static constexpr std::size_t kMinWaveWidth = 8;

  // Dispatch-level kernels (trie/simd_dispatch.h). There is no SSE4.2 tier:
  // the LC walk has no rank computation for POPCNT to accelerate, so the
  // sse42 level runs the generic pipeline. The AVX2 kernel (lc_trie_simd.cpp;
  // generic-calling stub off x86) runs the node walk and base comparison as
  // 8-lane gather waves over the packed layout; the wide layout always takes
  // the generic pipeline.
  void lookup_batch_generic(const net::Ipv4Addr* keys, std::size_t n,
                            net::NextHop* out) const;
  template <typename NodeT>
  void lookup_batch_pipeline(const NodeT* nodes, const net::Ipv4Addr* keys,
                             std::size_t n, net::NextHop* out) const;
  void lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                         net::NextHop* out) const;

  template <bool kCounted, typename NodeT>
  net::NextHop lookup_impl(const NodeT* nodes, net::Ipv4Addr addr,
                           MemAccessCounter* counter) const;

  double fill_factor_;
  int max_root_branch_;
  std::vector<Node> nodes_;           // packed layout (empty when wide)
  std::vector<WideNode> wide_nodes_;  // wide layout (empty when packed)
  std::vector<BaseEntry> base_;
  std::vector<PreEntry> pre_;
};

}  // namespace spal::trie
