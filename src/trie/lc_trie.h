// LC-trie (level-compressed trie), after Nilsson & Karlsson, "IP-Address
// Lookup Using LC-Tries", IEEE JSAC 1999.
//
// The prefix set is split into a *base vector* (prefixes that are not proper
// prefixes of any other) and a *prefix vector* of internal prefixes chained
// from the base entries that they cover. A path- and level-compressed trie
// is built over the base vector: each node either branches on 2^branch bits
// (after skipping `skip` bits) or is a leaf naming a base entry. The branch
// factor is grown greedily while the fraction of non-empty children stays
// above the fill factor; empty children are filled with a neighbouring leaf
// and rejected by the explicit comparison search performs at the leaf — the
// paper's Sec. 2.1 notes exactly this "explicit comparison" step.
//
// The SPAL paper evaluates the LC-trie with fill factor 0.25 (Sec. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

class LcTrie final : public LpmIndex {
 public:
  explicit LcTrie(const net::RouteTable& table, double fill_factor = 0.25,
                  int max_root_branch = 16);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "lc"; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t base_count() const { return base_.size(); }
  std::size_t internal_count() const { return pre_.size(); }

 private:
  struct Node {
    std::uint8_t branch = 0;  ///< 0 = leaf
    std::uint8_t skip = 0;
    std::uint32_t adr = 0;    ///< children start, or base index for leaves
  };
  struct BaseEntry {
    std::uint32_t bits = 0;
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;  ///< chain of covering internal prefixes
  };
  struct PreEntry {
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;
  };

  void build(std::size_t first, std::size_t n, int prefix_pos, std::size_t node_index);
  int compute_branch(std::size_t first, std::size_t n, int pos, int* skip_out) const;

  template <bool kCounted>
  net::NextHop lookup_impl(net::Ipv4Addr addr, MemAccessCounter* counter) const;

  double fill_factor_;
  int max_root_branch_;
  std::vector<Node> nodes_;
  std::vector<BaseEntry> base_;
  std::vector<PreEntry> pre_;
};

}  // namespace spal::trie
