// AVX2 tier of LcTrie::lookup_batch (dispatch contract in
// trie/simd_dispatch.h). The lockstep node walk becomes an 8-lane masked
// gather loop: every iteration gathers the packed 4-byte node for each
// still-walking lane, slices branch/skip/adr with shifts, and extracts the
// branch bits with variable shifts — the (32 - pos - count) & 31 clamp and
// the (1 << count) - 1 mask reproduce the generic pipeline's bits_at
// exactly (branch <= 31 by the 5-bit field). Lanes whose node is a leaf
// keep their base index via blend and drop out of the gather mask, so a
// retired lane performs no further memory access. The base-vector
// comparison is a 4-field gather wave; the covering-prefix chain (rare,
// data-dependent length) stays scalar per pending lane.
//
// Results are bit-identical to the scalar path; fuzzed per dispatch level
// in tests/test_lpm_batch.cpp.
#include <cstddef>
#include <cstdint>

#include "trie/lc_trie.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace spal::trie {

#pragma GCC push_options
#pragma GCC target("avx2,bmi2,popcnt")

namespace {

/// Scalar bits_at, identical to the generic pipeline's lambda.
inline std::uint32_t bits_at(std::uint32_t word, int pos, int count) {
  const std::uint32_t mask =
      count >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << count) - 1u);
  return (word >> ((32 - pos - count) & 31)) & mask;
}

}  // namespace

void LcTrie::lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                               net::NextHop* out) const {
  static_assert(sizeof(Node) == 4);
  static_assert(sizeof(BaseEntry) == 16 && offsetof(BaseEntry, bits) == 0 &&
                offsetof(BaseEntry, len) == 4 &&
                offsetof(BaseEntry, next_hop) == 8 &&
                offsetof(BaseEntry, pre) == 12);
  const int* const nodes = reinterpret_cast<const int*>(nodes_.data());
  const int* const bases = reinterpret_cast<const int*>(base_.data());

  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i v31 = _mm256_set1_epi32(31);
  const __m256i v32 = _mm256_set1_epi32(32);
  const __m256i vff = _mm256_set1_epi32(0xFF);
  const __m256i vskipmask = _mm256_set1_epi32((1 << Node::kSkipBits) - 1);
  const __m256i vadrmask =
      _mm256_set1_epi32(static_cast<int>(Node::kAdrMask));
  const __m256i vnoroute =
      _mm256_set1_epi32(static_cast<int>(net::kNoRoute));
  const __m256i vneg1 = _mm256_set1_epi32(-1);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i vidx = vzero;
    __m256i vpos = vzero;
    __m256i vactive = vneg1;
    do {
      const __m256i vnode = _mm256_mask_i32gather_epi32(vzero, nodes, vidx,
                                                        vactive, 4);
      const __m256i vbranch =
          _mm256_srli_epi32(vnode, Node::kAdrBits + Node::kSkipBits);
      const __m256i vskip = _mm256_and_si256(
          _mm256_srli_epi32(vnode, Node::kAdrBits), vskipmask);
      const __m256i vadr = _mm256_and_si256(vnode, vadrmask);
      const __m256i vp = _mm256_add_epi32(vpos, vskip);
      // bits_at(s, p, branch), branchless: shift (32-p-branch) & 31, mask
      // (1 << branch) - 1 (branch == 0 lanes get mask 0, so a leaf's child
      // index is just adr — the base-vector slot, as in the generic path).
      const __m256i vshift = _mm256_and_si256(
          _mm256_sub_epi32(v32, _mm256_add_epi32(vp, vbranch)), v31);
      const __m256i vbits = _mm256_and_si256(
          _mm256_srlv_epi32(vs, vshift),
          _mm256_sub_epi32(_mm256_sllv_epi32(vone, vbranch), vone));
      vidx = _mm256_blendv_epi8(vidx, _mm256_add_epi32(vadr, vbits), vactive);
      vpos =
          _mm256_blendv_epi8(vpos, _mm256_add_epi32(vp, vbranch), vactive);
      // Inactive lanes gathered node 0; their branch slice is 0 there, so
      // they stay retired without extra masking.
      vactive = _mm256_andnot_si256(_mm256_cmpeq_epi32(vbranch, vzero),
                                    vactive);
    } while (!_mm256_testz_si256(vactive, vactive));

    // Base wave: four 4-byte field gathers per lane (bits, len, next_hop,
    // pre), then the explicit prefix comparison. len is the low byte of its
    // word; len == 32 yields the all-ones mask via the shift-out-to-zero
    // of sllv, len == 0 matches everything (mask 0), both as in extract().
    const __m256i vbi = _mm256_slli_epi32(vidx, 2);
    const __m256i vbbits = _mm256_i32gather_epi32(bases, vbi, 4);
    const __m256i vlen = _mm256_and_si256(
        _mm256_i32gather_epi32(bases, _mm256_add_epi32(vbi, vone), 4), vff);
    const __m256i vhop = _mm256_i32gather_epi32(
        bases, _mm256_add_epi32(vbi, _mm256_set1_epi32(2)), 4);
    __m256i vpre = _mm256_i32gather_epi32(
        bases, _mm256_add_epi32(vbi, _mm256_set1_epi32(3)), 4);
    const __m256i vdiff = _mm256_xor_si256(vbbits, vs);
    const __m256i vlenshift =
        _mm256_and_si256(_mm256_sub_epi32(v32, vlen), v31);
    const __m256i vlenmask =
        _mm256_sub_epi32(_mm256_sllv_epi32(vone, vlen), vone);
    const __m256i vmatched = _mm256_cmpeq_epi32(
        _mm256_and_si256(_mm256_srlv_epi32(vdiff, vlenshift), vlenmask),
        vzero);
    const __m256i vout = _mm256_blendv_epi8(vnoroute, vhop, vmatched);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), vout);
    vpre = _mm256_blendv_epi8(vpre, vneg1, vmatched);

    // Covering-prefix chains: rare and of data-dependent length, walked
    // scalar per pending lane (same comparisons as the generic chain wave).
    int pending =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vpre, vneg1)));
    if (pending != 0) {
      alignas(32) std::uint32_t diff[8];
      alignas(32) std::int32_t pre[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(diff), vdiff);
      _mm256_store_si256(reinterpret_cast<__m256i*>(pre), vpre);
      while (pending != 0) {
        const int k = __builtin_ctz(static_cast<unsigned>(pending));
        pending &= pending - 1;
        std::int32_t p = pre[k];
        while (p >= 0) {
          const PreEntry& entry = pre_[static_cast<std::size_t>(p)];
          if (bits_at(diff[k], 0, entry.len) == 0) {
            out[i + k] = entry.next_hop;
            break;
          }
          p = entry.pre;
        }
      }
    }
  }
  for (; i < n; ++i) out[i] = lookup(keys[i]);
}

#pragma GCC pop_options

}  // namespace spal::trie

#else  // !x86: the dispatcher never selects this, but it must link.

namespace spal::trie {

void LcTrie::lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                               net::NextHop* out) const {
  lookup_batch_generic(keys, n, out);
}

}  // namespace spal::trie

#endif
