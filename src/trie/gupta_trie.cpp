#include "trie/gupta_trie.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace spal::trie {

std::uint32_t GuptaTrie::intern_next_hop(net::NextHop hop) {
  for (std::uint32_t i = 0; i < next_hop_table_.size(); ++i) {
    if (next_hop_table_[i] == hop) return i;
  }
  const std::uint64_t limit = wide_ ? kNoEntry32 : kNoEntry;
  if (next_hop_table_.size() >= limit) {
    throw std::length_error("GuptaTrie: next-hop table exceeds entry width");
  }
  next_hop_table_.push_back(hop);
  return static_cast<std::uint32_t>(next_hop_table_.size() - 1);
}

template <typename Entry, Entry Flag, Entry NoEntry>
void GuptaTrie::build_into(const net::RouteTable& table,
                           std::vector<Entry>& level1,
                           std::vector<std::array<Entry, 256>>& chunks) {
  level1.assign(std::size_t{1} << 24, NoEntry);
  // Paint prefixes of length <= 24 shortest-first so longer ones override.
  std::vector<net::RouteEntry> short_prefixes, long_prefixes;
  for (const net::RouteEntry& e : table.entries()) {
    (e.prefix.length() <= 24 ? short_prefixes : long_prefixes).push_back(e);
  }
  std::stable_sort(short_prefixes.begin(), short_prefixes.end(),
                   [](const net::RouteEntry& a, const net::RouteEntry& b) {
                     return a.prefix.length() < b.prefix.length();
                   });
  for (const net::RouteEntry& e : short_prefixes) {
    const std::uint32_t first = e.prefix.bits() >> 8;
    const std::uint32_t last = e.prefix.range_last().value() >> 8;
    const auto hop = static_cast<Entry>(intern_next_hop(e.next_hop));
    for (std::uint32_t s = first; s <= last; ++s) level1[s] = hop;
  }
  // Prefixes longer than /24: one 256-entry chunk per distinct /24 slot,
  // defaulted with the level-1 value (leaf pushing) then painted
  // shortest-first.
  std::stable_sort(long_prefixes.begin(), long_prefixes.end(),
                   [](const net::RouteEntry& a, const net::RouteEntry& b) {
                     return std::pair(a.prefix.bits() >> 8, a.prefix.length()) <
                            std::pair(b.prefix.bits() >> 8, b.prefix.length());
                   });
  for (std::size_t i = 0; i < long_prefixes.size();) {
    const std::uint32_t slot = long_prefixes[i].prefix.bits() >> 8;
    std::array<Entry, 256> chunk;
    chunk.fill(level1[slot]);
    while (i < long_prefixes.size() &&
           (long_prefixes[i].prefix.bits() >> 8) == slot) {
      const net::RouteEntry& e = long_prefixes[i];
      const std::uint32_t first = e.prefix.bits() & 0xffu;
      const std::uint32_t last = e.prefix.range_last().value() & 0xffu;
      const auto hop = static_cast<Entry>(intern_next_hop(e.next_hop));
      for (std::uint32_t u = first; u <= last; ++u) chunk[u] = hop;
      ++i;
    }
    if (chunks.size() >= static_cast<std::size_t>(NoEntry)) {
      throw std::length_error("GuptaTrie: more second-level chunks than entry ids");
    }
    level1[slot] = static_cast<Entry>(Flag | static_cast<Entry>(chunks.size()));
    chunks.push_back(chunk);
  }
}

GuptaTrie::GuptaTrie(const net::RouteTable& table) {
  // Pick the entry width up front (not by overflow-and-retry) so the
  // narrow path builds exactly the structures it always has: count the
  // distinct chunk slots and next hops the table needs.
  std::unordered_set<std::uint32_t> chunk_slots;
  std::unordered_set<net::NextHop> hops;
  for (const net::RouteEntry& e : table.entries()) {
    if (e.prefix.length() > 24) chunk_slots.insert(e.prefix.bits() >> 8);
    hops.insert(e.next_hop);
  }
  wide_ = chunk_slots.size() >= kNoEntry || hops.size() >= kNoEntry;
  if (wide_) {
    build_into<std::uint32_t, kChunkFlag32, kNoEntry32>(table, level1w_,
                                                        chunks32_);
  } else {
    build_into<std::uint16_t, kChunkFlag, kNoEntry>(table, level1_, chunks_);
  }
}

template <typename Entry, Entry Flag, Entry NoEntry, bool kCounted>
net::NextHop GuptaTrie::lookup_in(
    const std::vector<Entry>& level1,
    const std::vector<std::array<Entry, 256>>& chunks, net::Ipv4Addr addr,
    MemAccessCounter* counter) const {
  if constexpr (kCounted) counter->record();  // level-1 read
  Entry entry = level1[addr.value() >> 8];
  if (entry & Flag) {
    if constexpr (kCounted) counter->record();  // chunk read
    entry = chunks[entry & ~Flag][addr.value() & 0xffu];
  }
  return entry == NoEntry ? net::kNoRoute : next_hop_table_[entry];
}

net::NextHop GuptaTrie::lookup(net::Ipv4Addr addr) const {
  if (wide_) {
    return lookup_in<std::uint32_t, kChunkFlag32, kNoEntry32, false>(
        level1w_, chunks32_, addr, nullptr);
  }
  return lookup_in<std::uint16_t, kChunkFlag, kNoEntry, false>(
      level1_, chunks_, addr, nullptr);
}

net::NextHop GuptaTrie::lookup_counted(net::Ipv4Addr addr,
                                       MemAccessCounter& counter) const {
  if (wide_) {
    return lookup_in<std::uint32_t, kChunkFlag32, kNoEntry32, true>(
        level1w_, chunks32_, addr, &counter);
  }
  return lookup_in<std::uint16_t, kChunkFlag, kNoEntry, true>(
      level1_, chunks_, addr, &counter);
}

std::size_t GuptaTrie::storage_bytes() const {
  // Entry-width bytes at both levels plus the next-hop table: the narrow
  // level-1 table alone is the 32 MB the SPAL paper cites.
  if (wide_) {
    return level1w_.size() * 4 + chunks32_.size() * 256 * 4 +
           next_hop_table_.size() * 4;
  }
  return level1_.size() * 2 + chunks_.size() * 256 * 2 +
         next_hop_table_.size() * 4;
}

}  // namespace spal::trie
