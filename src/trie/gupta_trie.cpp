#include "trie/gupta_trie.h"

#include <algorithm>
#include <stdexcept>

namespace spal::trie {

std::uint32_t GuptaTrie::intern_next_hop(net::NextHop hop) {
  for (std::uint32_t i = 0; i < next_hop_table_.size(); ++i) {
    if (next_hop_table_[i] == hop) return i;
  }
  if (next_hop_table_.size() >= kNoEntry) {
    throw std::length_error("GuptaTrie: next-hop table exceeds 15-bit entries");
  }
  next_hop_table_.push_back(hop);
  return static_cast<std::uint32_t>(next_hop_table_.size() - 1);
}

GuptaTrie::GuptaTrie(const net::RouteTable& table)
    : level1_(std::size_t{1} << 24, kNoEntry) {
  // Paint prefixes of length <= 24 shortest-first so longer ones override.
  std::vector<net::RouteEntry> short_prefixes, long_prefixes;
  for (const net::RouteEntry& e : table.entries()) {
    (e.prefix.length() <= 24 ? short_prefixes : long_prefixes).push_back(e);
  }
  std::stable_sort(short_prefixes.begin(), short_prefixes.end(),
                   [](const net::RouteEntry& a, const net::RouteEntry& b) {
                     return a.prefix.length() < b.prefix.length();
                   });
  for (const net::RouteEntry& e : short_prefixes) {
    const std::uint32_t first = e.prefix.bits() >> 8;
    const std::uint32_t last = e.prefix.range_last().value() >> 8;
    const auto hop = static_cast<std::uint16_t>(intern_next_hop(e.next_hop));
    for (std::uint32_t s = first; s <= last; ++s) level1_[s] = hop;
  }
  // Prefixes longer than /24: one 256-entry chunk per distinct /24 slot,
  // defaulted with the level-1 value (leaf pushing) then painted
  // shortest-first.
  std::stable_sort(long_prefixes.begin(), long_prefixes.end(),
                   [](const net::RouteEntry& a, const net::RouteEntry& b) {
                     return std::pair(a.prefix.bits() >> 8, a.prefix.length()) <
                            std::pair(b.prefix.bits() >> 8, b.prefix.length());
                   });
  for (std::size_t i = 0; i < long_prefixes.size();) {
    const std::uint32_t slot = long_prefixes[i].prefix.bits() >> 8;
    std::array<std::uint16_t, 256> chunk;
    chunk.fill(level1_[slot]);
    while (i < long_prefixes.size() &&
           (long_prefixes[i].prefix.bits() >> 8) == slot) {
      const net::RouteEntry& e = long_prefixes[i];
      const std::uint32_t first = e.prefix.bits() & 0xffu;
      const std::uint32_t last = e.prefix.range_last().value() & 0xffu;
      const auto hop = static_cast<std::uint16_t>(intern_next_hop(e.next_hop));
      for (std::uint32_t u = first; u <= last; ++u) chunk[u] = hop;
      ++i;
    }
    if (chunks_.size() >= kNoEntry) {
      throw std::length_error("GuptaTrie: more second-level chunks than 15-bit ids");
    }
    level1_[slot] =
        static_cast<std::uint16_t>(kChunkFlag | static_cast<std::uint16_t>(chunks_.size()));
    chunks_.push_back(chunk);
  }
}

net::NextHop GuptaTrie::lookup(net::Ipv4Addr addr) const {
  std::uint16_t entry = level1_[addr.value() >> 8];
  if (entry & kChunkFlag) {
    entry = chunks_[entry & ~kChunkFlag][addr.value() & 0xffu];
  }
  return entry == kNoEntry ? net::kNoRoute : next_hop_table_[entry];
}

net::NextHop GuptaTrie::lookup_counted(net::Ipv4Addr addr,
                                       MemAccessCounter& counter) const {
  counter.record();  // level-1 read
  std::uint16_t entry = level1_[addr.value() >> 8];
  if (entry & kChunkFlag) {
    counter.record();  // chunk read
    entry = chunks_[entry & ~kChunkFlag][addr.value() & 0xffu];
  }
  return entry == kNoEntry ? net::kNoRoute : next_hop_table_[entry];
}

std::size_t GuptaTrie::storage_bytes() const {
  // 2-byte entries at both levels plus the next-hop table: the level-1
  // table alone is the 32 MB the SPAL paper cites.
  return level1_.size() * 2 + chunks_.size() * 256 * 2 + next_hop_table_.size() * 4;
}

}  // namespace spal::trie
