// LC-trie over IPv6 prefixes — the structure behind the paper's Sec. 2.1
// remark that software tries are "applicable to 128-bit IPv6 prefixes" but
// pay "far longer lookup times and bigger storage". Same algorithm as the
// IPv4 LcTrie (base/prefix vector split, level compression under a fill
// factor, explicit leaf comparison with a covering-prefix chain) over
// 128-bit strings.
//
// Storage model: 4-byte packed trie nodes, 24-byte base entries (16-byte
// string + length + next hop + chain pointer), 8-byte internal entries.
// Trie nodes use the same packed 4-byte host word as the IPv4 LcTrie
// (lc_detail::PackedNode — the 7-bit skip field covers the 128-bit strings'
// longer compressible runs).
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix6.h"
#include "trie/lc_trie.h"
#include "trie/lpm.h"

namespace spal::trie {

class LcTrie6 {
 public:
  explicit LcTrie6(const net::RouteTable6& table, double fill_factor = 0.25,
                   int max_branch = 16);

  net::NextHop lookup(const net::Ipv6Addr& addr) const;

  /// Batched lookups, bit-identical to the scalar path — the IPv6 analogue
  /// of LpmIndex::lookup_batch (interleaved walk with software prefetch).
  void lookup_batch(const net::Ipv6Addr* keys, std::size_t n,
                    net::NextHop* out) const;

  net::NextHop lookup_counted(const net::Ipv6Addr& addr,
                              MemAccessCounter& counter) const;

  std::size_t storage_bytes() const {
    return nodes_.size() * 4 + base_.size() * 24 + pre_.size() * 8;
  }
  /// Flat storage arenas, hottest first, mirroring LpmIndex::arenas(); the
  /// arena indexes counted lookups attribute are lc_detail::LcArena.
  std::vector<ArenaSpan> arenas() const {
    return {{"nodes", nodes_.size() * 4},
            {"base", base_.size() * 24},
            {"pre", pre_.size() * 8}};
  }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t base_count() const { return base_.size(); }
  std::size_t internal_count() const { return pre_.size(); }

 private:
  using Node = lc_detail::PackedNode;
  struct BaseEntry {
    net::Ipv6Addr bits;
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;
  };
  struct PreEntry {
    std::uint8_t len = 0;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t pre = -1;
  };

  /// Below this many keys lookup_batch uses the plain scalar loop (pipeline
  /// setup cost exceeds the overlap win, as for the IPv4 tries).
  static constexpr std::size_t kMinWaveWidth = 8;

  // Dispatch-level kernels (trie/simd_dispatch.h). As for LcTrie there is
  // no SSE4.2 tier (no rank computation to accelerate); the AVX2 kernel
  // (lc_trie6_simd.cpp; generic-calling stub off x86) walks four 128-bit
  // keys per vector with 64-bit-lane gathers and a branchless straddling
  // bit-field extraction.
  void lookup_batch_generic(const net::Ipv6Addr* keys, std::size_t n,
                            net::NextHop* out) const;
  void lookup_batch_avx2(const net::Ipv6Addr* keys, std::size_t n,
                         net::NextHop* out) const;

  using WideNode = lc_detail::WideNode;

  /// Builds the trie into wide staging nodes (per-root-pattern subtrees over
  /// the sweep pool for large tables, spliced in DFS order — bit-for-bit the
  /// sequential recursion's array; see LcTrie::build_nodes). The caller
  /// packs the staging nodes into the 4-byte layout.
  void build_nodes(std::vector<WideNode>& out) const;
  /// Appends the subtree over base_[first, first+n) with its root at
  /// out[node_index] (sequential recursion, shared by every build path).
  void build_at(std::vector<WideNode>& out, std::size_t node_index,
                std::size_t first, std::size_t n, int pos) const;
  int compute_branch(std::size_t first, std::size_t n, int pos, int* skip_out) const;

  template <bool kCounted>
  net::NextHop lookup_impl(const net::Ipv6Addr& addr,
                           MemAccessCounter* counter) const;

  double fill_factor_;
  int max_branch_;
  std::vector<Node> nodes_;
  std::vector<BaseEntry> base_;
  std::vector<PreEntry> pre_;
};

}  // namespace spal::trie
