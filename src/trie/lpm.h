// Common interface for longest-prefix-match (LPM) indexes.
//
// Every trie in this library implements LpmIndex. Two aspects matter to the
// SPAL experiments beyond plain correctness:
//   * storage_bytes(): the SRAM footprint of the built structure, using the
//     storage models stated in the paper (Sec. 4) — this drives Fig. 3; and
//   * counted lookups: the number of memory accesses a lookup performs,
//     which (at 12 ns per access + ~120 ns matching code, Sec. 5.1) sets the
//     forwarding engine's service time (≈40 cycles Lulea, ≈62 cycles DP).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "net/route_table.h"

namespace spal::trie {

/// One contiguous storage arena of a built LPM structure. arenas() lists
/// them hottest-first (the order the lookup path dereferences them); the
/// memory-tier cost model (src/core/memory_model.h) packs the spans into
/// SRAM/L2/LLC/DRAM tiers by cumulative footprint in exactly that order.
struct ArenaSpan {
  std::string_view name;   ///< stable identifier ("codewords", "nodes", ...)
  std::size_t bytes = 0;   ///< arena footprint; spans sum to storage_bytes()
};

/// Upper bound on the number of arenas any one structure reports. Per-arena
/// access counters are a fixed-size array so the counted path never
/// allocates.
inline constexpr std::size_t kMaxArenas = 8;

/// Counts memory accesses performed by an LPM lookup. An "access" is one
/// dependent read of a trie node / array element, i.e. the unit the paper
/// charges 12 ns for. Accesses may additionally be attributed to the arena
/// (index into the structure's arenas() order) they touch, which is what the
/// memory-tier cost model prices.
class MemAccessCounter {
 public:
  /// Untagged accesses land in arena 0 — exact for every single-arena
  /// structure (their one arenas() span is index 0).
  void record(std::uint64_t accesses = 1) { record_arena(0, accesses); }
  void record_arena(std::size_t arena, std::uint64_t accesses = 1) {
    total_ += accesses;
    per_arena_[arena < kMaxArenas ? arena : kMaxArenas - 1] += accesses;
  }
  std::uint64_t total() const { return total_; }
  std::uint64_t arena_total(std::size_t arena) const {
    return arena < kMaxArenas ? per_arena_[arena] : 0;
  }
  void reset() {
    total_ = 0;
    per_arena_ = {};
  }

 private:
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kMaxArenas> per_arena_{};
};

/// In-flight keys the batched lookup pipelines interleave (G in DESIGN.md,
/// "Batched lookup pipeline"): enough independent dependent-miss chains to
/// cover one cache-miss latency, small enough that lane state stays in
/// registers/L1.
inline constexpr std::size_t kLpmBatchLanes = 8;

/// A built longest-prefix-match index over a routing table. Most structures
/// are immutable after build; dynamic tries (binary, DP) additionally
/// support in-place announce/withdraw via the incremental-update interface
/// below, which the live route-update pipeline uses to avoid epoch rebuilds.
class LpmIndex {
 public:
  virtual ~LpmIndex() = default;

  /// Longest-prefix match; kNoRoute if nothing matches.
  virtual net::NextHop lookup(net::Ipv4Addr addr) const = 0;

  /// Looks up `n` independent keys, writing out[i] = lookup(keys[i]).
  /// Results are always bit-identical to the scalar path; structures with a
  /// batched pipeline (Lulea, LC) override this with an interleaved
  /// software-prefetch loop that hides one key's dependent misses behind the
  /// others'. The base implementation is the plain scalar loop.
  virtual void lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                            net::NextHop* out) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = lookup(keys[i]);
  }

  /// Same as lookup() but records every dependent memory access.
  virtual net::NextHop lookup_counted(net::Ipv4Addr addr,
                                      MemAccessCounter& counter) const = 0;

  /// SRAM bytes required to hold the structure, per the paper's per-trie
  /// storage model.
  virtual std::size_t storage_bytes() const = 0;

  /// The flat storage arenas that compose storage_bytes(), hottest first.
  /// Arena i here is the arena counted lookups attribute via
  /// MemAccessCounter::record_arena(i, ...). The spans always sum to exactly
  /// storage_bytes(). Default: one arena named after the structure.
  virtual std::vector<ArenaSpan> arenas() const {
    return {{name(), storage_bytes()}};
  }

  /// Human-readable algorithm name ("binary", "dp", "lulea", "lc").
  virtual std::string_view name() const = 0;

  // --- Incremental updates (dynamic tries only) ---------------------------
  // Callers must check supports_incremental_update() first; immutable
  // structures (Lulea, LC, Gupta, stride) keep the defaults and are updated
  // by an epoch rebuild (build_lpm over the changed table) instead.

  /// True iff insert()/remove() mutate the structure in place.
  virtual bool supports_incremental_update() const { return false; }

  /// Inserts or replaces `prefix` in place. No-op on immutable structures.
  virtual void insert(const net::Prefix& prefix, net::NextHop next_hop) {
    (void)prefix;
    (void)next_hop;
  }

  /// Removes `prefix` exactly; true if it was present. Always false on
  /// immutable structures.
  virtual bool remove(const net::Prefix& prefix) {
    (void)prefix;
    return false;
  }
};

/// Trie algorithm selector used by factories and experiment configs.
enum class TrieKind { kBinary, kDp, kLulea, kLc, kGupta, kStride };

std::string_view to_string(TrieKind kind);

/// Parses a trie-kind name as printed by to_string(); nullopt on anything
/// else (used by the bench CLIs' strict --trie flag).
std::optional<TrieKind> trie_kind_from_string(std::string_view name);

/// Options consumed by specific builders.
struct LpmBuildOptions {
  double lc_fill_factor = 0.25;  ///< LC-trie fill factor (the paper's Sec. 4 value)
  int lc_root_branch = 16;       ///< LC-trie first-level branching bits cap
  std::vector<int> strides = {16, 8, 8};  ///< fixed-stride trie level widths
};

/// Builds an LPM index of the requested kind over `table`.
std::unique_ptr<LpmIndex> build_lpm(TrieKind kind, const net::RouteTable& table,
                                    const LpmBuildOptions& options = {});

/// Mean memory accesses per lookup over `samples` random matched addresses
/// (deterministic per seed). Reproduces the Sec. 5.1 access-count table.
double mean_accesses_per_lookup(const LpmIndex& index, const net::RouteTable& table,
                                std::size_t samples, std::uint64_t seed);

}  // namespace spal::trie
