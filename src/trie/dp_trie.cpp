#include "trie/dp_trie.h"

#include <algorithm>

namespace spal::trie {
namespace {

/// Transient uncompressed binary-trie node used only during construction.
struct BuildNode {
  std::int32_t child[2] = {-1, -1};
  bool has_prefix = false;
  net::NextHop next_hop = net::kNoRoute;
};

}  // namespace

DpTrie::DpTrie(const net::RouteTable& table) {
  // Phase 1: uncompressed binary trie over all prefixes.
  std::vector<BuildNode> build;
  build.emplace_back();
  for (const net::RouteEntry& e : table.entries()) {
    std::int32_t node = 0;
    for (int depth = 0; depth < e.prefix.length(); ++depth) {
      const int bit = static_cast<int>(e.prefix.bit(depth));
      std::int32_t child = build[static_cast<std::size_t>(node)].child[bit];
      if (child < 0) {
        child = static_cast<std::int32_t>(build.size());
        build.emplace_back();
        build[static_cast<std::size_t>(node)].child[bit] = child;
      }
      node = child;
    }
    build[static_cast<std::size_t>(node)].has_prefix = true;
    build[static_cast<std::size_t>(node)].next_hop = e.next_hop;
  }

  // Phase 2: path compression. A node survives iff it is the root, stores a
  // prefix, or branches (two children); chains of pass-through nodes are
  // folded into the surviving child's key/index.
  struct Frame {
    std::int32_t build_node;
    std::int32_t compressed_parent;
    int parent_bit;          // which child slot of the parent we fill
    std::uint32_t path_bits; // bits accumulated from the root
    int depth;
  };
  nodes_.emplace_back();  // compressed root, depth 0
  std::vector<Frame> stack;
  const BuildNode& root = build[0];
  nodes_[0].has_prefix = root.has_prefix;
  nodes_[0].next_hop = root.next_hop;
  for (int bit = 0; bit < 2; ++bit) {
    if (root.child[bit] >= 0) {
      stack.push_back(Frame{root.child[bit], 0, bit,
                            bit ? (1u << 31) : 0u, 1});
    }
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    // Slide down pass-through nodes.
    const BuildNode* bn = &build[static_cast<std::size_t>(f.build_node)];
    while (!bn->has_prefix &&
           ((bn->child[0] >= 0) != (bn->child[1] >= 0))) {
      const int bit = bn->child[0] >= 0 ? 0 : 1;
      if (bit) f.path_bits |= (1u << (31 - f.depth));
      f.depth++;
      f.build_node = bn->child[bit];
      bn = &build[static_cast<std::size_t>(f.build_node)];
    }
    const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
    Node node;
    node.key = f.path_bits;
    node.index = static_cast<std::uint8_t>(f.depth);
    node.has_prefix = bn->has_prefix;
    node.next_hop = bn->next_hop;
    node.parent = f.compressed_parent;
    nodes_.push_back(node);
    nodes_[static_cast<std::size_t>(f.compressed_parent)].child[f.parent_bit] = id;
    for (int bit = 0; bit < 2; ++bit) {
      if (bn->child[bit] >= 0) {
        std::uint32_t child_path = f.path_bits;
        if (bit) child_path |= (1u << (31 - f.depth));
        stack.push_back(Frame{bn->child[bit], id, bit, child_path, f.depth + 1});
      }
    }
  }
}

template <bool kCounted>
net::NextHop DpTrie::lookup_impl(net::Ipv4Addr addr,
                                 MemAccessCounter* counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  while (node >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if constexpr (kCounted) counter->record();  // node (index + pointers) read
    // Keys are verified only where a key exists — at prefix nodes, the way
    // the DP trie dereferences its key pointers. Pass-through branch nodes
    // are descended optimistically; any prefix node below re-verifies the
    // whole path, so skipped-bit mismatches can never produce a false match.
    if (n.has_prefix) {
      if constexpr (kCounted) counter->record();  // key comparison read
      if (n.index > 0) {
        const std::uint32_t mask = ~std::uint32_t{0} << (32 - n.index);
        if (((addr.value() ^ n.key) & mask) != 0) break;
      }
      best = n.next_hop;
    }
    if (n.index >= net::Ipv4Addr::kBits) break;
    node = n.child[addr.bit(n.index)];
  }
  return best;
}

net::NextHop DpTrie::lookup(net::Ipv4Addr addr) const {
  MemAccessCounter unused;
  return lookup_impl<false>(addr, &unused);
}

net::NextHop DpTrie::lookup_counted(net::Ipv4Addr addr,
                                    MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

std::size_t DpTrie::storage_bytes() const {
  // The SPAL paper's stated DP-trie node layout: 1-byte index field plus
  // five 4-byte pointers (left, right, parent, key, prefix-data).
  return nodes_.size() * (1 + 5 * 4);
}

}  // namespace spal::trie
