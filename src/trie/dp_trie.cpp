#include "trie/dp_trie.h"

#include <algorithm>
#include <bit>

namespace spal::trie {
namespace {

/// Bit of an MSB-aligned 32-bit key at position `pos` (0 = MSB).
inline int key_bit(std::uint32_t key, int pos) {
  return static_cast<int>((key >> (31 - pos)) & 1u);
}

/// `key` truncated to its first `len` bits (low bits zeroed).
inline std::uint32_t key_head(std::uint32_t key, int len) {
  return len == 0 ? 0 : (key & (~std::uint32_t{0} << (32 - len)));
}

/// First position in [from, limit) where the keys differ; `limit` if none.
inline int first_divergence(std::uint32_t a, std::uint32_t b, int from,
                            int limit) {
  const std::uint32_t diff = (a ^ b) & (limit == 0 ? 0 : ~std::uint32_t{0}
                                                             << (32 - limit));
  if (diff == 0) return limit;
  const int pos = std::countl_zero(diff);
  return pos < from ? from : pos;  // callers guarantee agreement below `from`
}

}  // namespace

DpTrie::DpTrie(const net::RouteTable& table) {
  // Sort-based single-pass bulk build. The compressed structure is
  // canonical — its nodes are exactly the root, the stored prefixes, and
  // the branching points between them — so one left-to-right pass over the
  // sorted entries reconstructs the same trie per-entry insertion would,
  // in O(N): the classic rightmost-spine construction. The spine stack
  // holds the path from the root to the most recently added node (depths
  // strictly increasing); each new entry pops the spine back to its
  // divergence depth with the previous key and attaches there, inserting a
  // pass-through branch node when the divergence falls inside a compressed
  // edge. The arena is reserved to the 2N+1 structural bound up front
  // (every entry is at most one prefix node, branch nodes are strictly
  // fewer) so the pass never re-allocates.
  const auto& entries = table.entries();
  nodes_.emplace_back();  // root, depth 0
  std::size_t lo = 0;
  if (!entries.empty() && entries[0].prefix.length() == 0) {
    nodes_[0].has_prefix = true;
    nodes_[0].next_hop = entries[0].next_hop;
    lo = 1;
  }
  if (lo == entries.size()) return;
  nodes_.reserve(2 * (entries.size() - lo) + 1);

  // Spine of node ids; a node's depth is its index field.
  std::vector<std::int32_t> spine{0};
  spine.reserve(64);
  std::uint32_t prev_key = 0;
  for (std::size_t i = lo; i < entries.size(); ++i) {
    const std::uint32_t key = entries[i].prefix.bits();
    const int len = entries[i].prefix.length();
    // Depth where this key leaves the previous entry's path; the first
    // entry attaches under the root (d = 0 pops nothing). When the keys are
    // equal (same bits, longer length) nothing pops either and the entry
    // chains under the previous node, exactly like a per-entry insert.
    const int d = i == lo ? 0 : first_divergence(prev_key, key, 0, 32);
    prev_key = key;

    std::int32_t popped = -1;
    while (nodes_[static_cast<std::size_t>(spine.back())].index > d) {
      popped = spine.back();
      spine.pop_back();
    }
    std::int32_t parent = spine.back();
    const int parent_depth = nodes_[static_cast<std::size_t>(parent)].index;
    if (popped >= 0 && parent_depth < d) {
      // The divergence falls inside the compressed edge parent -> popped:
      // insert the pass-through branch node there. The old subtree keeps
      // bit 0 at depth d (keys ascend, so the new key has bit 1).
      const std::int32_t branch = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      Node& bn = nodes_.back();
      bn.key = key_head(key, d);
      bn.index = static_cast<std::uint8_t>(d);
      bn.parent = parent;
      bn.child[0] = popped;
      nodes_[static_cast<std::size_t>(popped)].parent = branch;
      nodes_[static_cast<std::size_t>(parent)]
          .child[key_bit(key, parent_depth)] = branch;
      spine.push_back(branch);
      parent = branch;
    }
    // Attach the entry's prefix node: after a pop the edge bit at the
    // attach depth is 1 by key order; with no pop the parent is the
    // previous entry's node (an ancestor prefix of this key) and the edge
    // bit is the key's bit at the parent's own depth.
    const std::int32_t id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    Node& n = nodes_.back();
    n.key = key_head(key, len);
    n.index = static_cast<std::uint8_t>(len);
    n.parent = parent;
    n.has_prefix = true;
    n.next_hop = entries[i].next_hop;
    Node& p = nodes_[static_cast<std::size_t>(parent)];
    p.child[key_bit(key, p.index)] = id;
    spine.push_back(id);
  }
}

std::int32_t DpTrie::alloc_node() {
  if (!free_.empty()) {
    const std::int32_t id = free_.back();
    free_.pop_back();
    nodes_[static_cast<std::size_t>(id)] = Node{};
    return id;
  }
  nodes_.emplace_back();
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void DpTrie::free_node(std::int32_t id) { free_.push_back(id); }

void DpTrie::insert(const net::Prefix& prefix, net::NextHop next_hop) {
  const int len = prefix.length();
  const std::uint32_t key = prefix.bits();  // already masked to `len` bits
  std::int32_t cur = 0;
  // Invariant: nodes_[cur].key agrees with `key` on min(index, len) bits and
  // nodes_[cur].index <= len.
  while (true) {
    Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.index == len) {  // exact node exists (possibly a pass-through)
      n.has_prefix = true;
      n.next_hop = next_hop;
      return;
    }
    const int slot = key_bit(key, n.index);
    const std::int32_t child = n.child[slot];
    if (child < 0) {
      const std::int32_t leaf = alloc_node();
      Node& ln = nodes_[static_cast<std::size_t>(leaf)];
      ln.key = key;
      ln.index = static_cast<std::uint8_t>(len);
      ln.has_prefix = true;
      ln.next_hop = next_hop;
      ln.parent = cur;
      nodes_[static_cast<std::size_t>(cur)].child[slot] = leaf;
      return;
    }
    Node& c = nodes_[static_cast<std::size_t>(child)];
    const int edge_end = std::min<int>(c.index, len);
    const int d = first_divergence(key, c.key, n.index, edge_end);
    if (d == edge_end && c.index <= len) {
      cur = child;  // the child's whole compressed edge matches: descend
      continue;
    }
    if (d == edge_end) {
      // len < c.index, keys agree on all `len` bits: the new prefix sits on
      // the compressed edge itself. Split the edge with a prefix node.
      const std::int32_t mid = alloc_node();
      Node& mn = nodes_[static_cast<std::size_t>(mid)];
      Node& cc = nodes_[static_cast<std::size_t>(child)];
      mn.key = key;
      mn.index = static_cast<std::uint8_t>(len);
      mn.has_prefix = true;
      mn.next_hop = next_hop;
      mn.parent = cur;
      mn.child[key_bit(cc.key, len)] = child;
      cc.parent = mid;
      nodes_[static_cast<std::size_t>(cur)].child[slot] = mid;
      return;
    }
    // Keys diverge at bit d (< both len and c.index): split the edge with a
    // branch node holding the old subtree on one side, a new leaf on the
    // other — the announce-that-splits-a-compressed-path case.
    const std::int32_t branch = alloc_node();
    const std::int32_t leaf = alloc_node();
    Node& bn = nodes_[static_cast<std::size_t>(branch)];
    Node& ln = nodes_[static_cast<std::size_t>(leaf)];
    Node& cc = nodes_[static_cast<std::size_t>(child)];
    bn.key = key_head(key, d);
    bn.index = static_cast<std::uint8_t>(d);
    bn.parent = cur;
    bn.child[key_bit(cc.key, d)] = child;
    bn.child[key_bit(key, d)] = leaf;
    cc.parent = branch;
    ln.key = key;
    ln.index = static_cast<std::uint8_t>(len);
    ln.has_prefix = true;
    ln.next_hop = next_hop;
    ln.parent = branch;
    nodes_[static_cast<std::size_t>(cur)].child[slot] = branch;
    return;
  }
}

void DpTrie::maybe_splice(std::int32_t id) {
  while (id > 0) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.has_prefix) return;
    const int children = (n.child[0] >= 0 ? 1 : 0) + (n.child[1] >= 0 ? 1 : 0);
    if (children >= 2) return;
    const std::int32_t parent = n.parent;
    Node& p = nodes_[static_cast<std::size_t>(parent)];
    const int slot = p.child[0] == id ? 0 : 1;
    if (children == 1) {
      // Pass-through: fold this node back into the child's compressed edge.
      const std::int32_t child = n.child[0] >= 0 ? n.child[0] : n.child[1];
      p.child[slot] = child;
      nodes_[static_cast<std::size_t>(child)].parent = parent;
      free_node(id);
      return;  // parent's child count is unchanged
    }
    p.child[slot] = -1;  // empty subtree: drop and re-check the parent
    free_node(id);
    id = parent;
  }
}

bool DpTrie::remove(const net::Prefix& prefix) {
  const int len = prefix.length();
  const std::uint32_t key = prefix.bits();
  std::int32_t cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].index < len) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const std::int32_t child = n.child[key_bit(key, n.index)];
    if (child < 0) return false;
    const Node& c = nodes_[static_cast<std::size_t>(child)];
    if (c.index > len || key_head(c.key, c.index) != key_head(key, c.index)) {
      return false;  // the compressed edge skips past or diverges from `key`
    }
    cur = child;
  }
  Node& n = nodes_[static_cast<std::size_t>(cur)];
  if (n.index != len || !n.has_prefix || key_head(n.key, len) != key) {
    return false;
  }
  n.has_prefix = false;
  n.next_hop = net::kNoRoute;
  maybe_splice(cur);
  return true;
}

template <bool kCounted>
net::NextHop DpTrie::lookup_impl(net::Ipv4Addr addr,
                                 MemAccessCounter* counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  while (node >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if constexpr (kCounted) counter->record();  // node (index + pointers) read
    // Keys are verified only where a key exists — at prefix nodes, the way
    // the DP trie dereferences its key pointers. Pass-through branch nodes
    // are descended optimistically; any prefix node below re-verifies the
    // whole path, so skipped-bit mismatches can never produce a false match.
    if (n.has_prefix) {
      if constexpr (kCounted) counter->record();  // key comparison read
      if (n.index > 0) {
        const std::uint32_t mask = ~std::uint32_t{0} << (32 - n.index);
        if (((addr.value() ^ n.key) & mask) != 0) break;
      }
      best = n.next_hop;
    }
    if (n.index >= net::Ipv4Addr::kBits) break;
    node = n.child[addr.bit(n.index)];
  }
  return best;
}

net::NextHop DpTrie::lookup(net::Ipv4Addr addr) const {
  MemAccessCounter unused;
  return lookup_impl<false>(addr, &unused);
}

net::NextHop DpTrie::lookup_counted(net::Ipv4Addr addr,
                                    MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

std::size_t DpTrie::storage_bytes() const {
  // The SPAL paper's stated DP-trie node layout: 1-byte index field plus
  // five 4-byte pointers (left, right, parent, key, prefix-data). Freed
  // slots are reusable, so only live nodes count.
  return node_count() * (1 + 5 * 4);
}

}  // namespace spal::trie
