#include "trie/binary_trie6.h"

namespace spal::trie {

BinaryTrie6::BinaryTrie6() { nodes_.emplace_back(); }

BinaryTrie6::BinaryTrie6(const net::RouteTable6& table) : BinaryTrie6() {
  for (const net::RouteEntry6& e : table.entries()) insert(e.prefix, e.next_hop);
}

void BinaryTrie6::insert(const net::Prefix6& prefix, net::NextHop next_hop) {
  std::int32_t node = 0;
  const net::Ipv6Addr addr = prefix.address();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int bit = addr.bit(depth);
    std::int32_t child = nodes_[static_cast<std::size_t>(node)].child[bit];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      nodes_[static_cast<std::size_t>(node)].child[bit] = child;
    }
    node = child;
  }
  nodes_[static_cast<std::size_t>(node)].next_hop = next_hop;
}

bool BinaryTrie6::remove(const net::Prefix6& prefix) {
  std::int32_t node = 0;
  const net::Ipv6Addr addr = prefix.address();
  for (int depth = 0; depth < prefix.length(); ++depth) {
    node = nodes_[static_cast<std::size_t>(node)].child[addr.bit(depth)];
    if (node < 0) return false;
  }
  Node& target = nodes_[static_cast<std::size_t>(node)];
  if (target.next_hop == net::kNoRoute) return false;
  target.next_hop = net::kNoRoute;
  return true;
}

net::NextHop BinaryTrie6::lookup(const net::Ipv6Addr& addr) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  for (int depth = 0; node >= 0 && depth <= net::Ipv6Addr::kBits; ++depth) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.next_hop != net::kNoRoute) best = n.next_hop;
    if (depth == net::Ipv6Addr::kBits) break;
    node = n.child[addr.bit(depth)];
  }
  return best;
}

net::NextHop BinaryTrie6::lookup_counted(const net::Ipv6Addr& addr,
                                         MemAccessCounter& counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  for (int depth = 0; node >= 0 && depth <= net::Ipv6Addr::kBits; ++depth) {
    counter.record();
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.next_hop != net::kNoRoute) best = n.next_hop;
    if (depth == net::Ipv6Addr::kBits) break;
    node = n.child[addr.bit(depth)];
  }
  return best;
}

}  // namespace spal::trie
