#include "trie/lpm.h"

#include <random>

#include "net/table_gen.h"
#include "trie/binary_trie.h"
#include "trie/dp_trie.h"
#include "trie/gupta_trie.h"
#include "trie/lc_trie.h"
#include "trie/lulea_trie.h"
#include "trie/stride_trie.h"

namespace spal::trie {

std::string_view to_string(TrieKind kind) {
  switch (kind) {
    case TrieKind::kBinary: return "binary";
    case TrieKind::kDp: return "dp";
    case TrieKind::kLulea: return "lulea";
    case TrieKind::kLc: return "lc";
    case TrieKind::kGupta: return "gupta";
    case TrieKind::kStride: return "stride";
  }
  return "?";
}

std::optional<TrieKind> trie_kind_from_string(std::string_view name) {
  for (const TrieKind kind :
       {TrieKind::kBinary, TrieKind::kDp, TrieKind::kLulea, TrieKind::kLc,
        TrieKind::kGupta, TrieKind::kStride}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<LpmIndex> build_lpm(TrieKind kind, const net::RouteTable& table,
                                    const LpmBuildOptions& options) {
  switch (kind) {
    case TrieKind::kBinary: return std::make_unique<BinaryTrie>(table);
    case TrieKind::kDp: return std::make_unique<DpTrie>(table);
    case TrieKind::kLulea: return std::make_unique<LuleaTrie>(table);
    case TrieKind::kLc:
      return std::make_unique<LcTrie>(table, options.lc_fill_factor,
                                      options.lc_root_branch);
    case TrieKind::kGupta: return std::make_unique<GuptaTrie>(table);
    case TrieKind::kStride:
      return std::make_unique<StrideTrie>(table, options.strides);
  }
  return nullptr;
}

double mean_accesses_per_lookup(const LpmIndex& index, const net::RouteTable& table,
                                std::size_t samples, std::uint64_t seed) {
  if (table.empty() || samples == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  MemAccessCounter counter;
  for (std::size_t i = 0; i < samples; ++i) {
    // Sample addresses that actually match table prefixes, the way lookup
    // traffic does: choose an entry, randomize its host bits.
    const net::Prefix& prefix = table.entries()[pick(rng)].prefix;
    (void)index.lookup_counted(net::random_address_in(prefix, rng), counter);
  }
  return static_cast<double>(counter.total()) / static_cast<double>(samples);
}

}  // namespace spal::trie
