// Path-compressed (DP-style) trie over IPv6 prefixes — the 128-bit
// counterpart of dp_trie.h, and the forwarding-engine structure the IPv6
// router uses by default. A plain binary trie walks up to 128 levels for
// IPv6; path compression bounds the walk by the prefix population instead,
// which is exactly the property the paper's Sec. 6 feasibility claim needs.
//
// Storage model: the DP node layout scaled to v6 — a 1-byte index field,
// five 4-byte pointers, and a 16-byte key = 37 bytes per node.
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix6.h"
#include "trie/lpm.h"

namespace spal::trie {

class DpTrie6 {
 public:
  explicit DpTrie6(const net::RouteTable6& table);

  net::NextHop lookup(const net::Ipv6Addr& addr) const;
  net::NextHop lookup_counted(const net::Ipv6Addr& addr,
                              MemAccessCounter& counter) const;

  // Incremental updates — same edge split/splice as DpTrie (see dp_trie.h),
  // over 128-bit keys. The IPv6 router's live-update path relies on these.
  void insert(const net::Prefix6& prefix, net::NextHop next_hop);
  bool remove(const net::Prefix6& prefix);

  std::size_t storage_bytes() const { return node_count() * 37; }
  std::size_t node_count() const { return nodes_.size() - free_.size(); }

  /// Single node arena (counted lookups tag arena 0 implicitly), mirroring
  /// LpmIndex::arenas() for the memory-tier cost model.
  std::vector<ArenaSpan> arenas() const {
    return {{"nodes", storage_bytes()}};
  }

 private:
  struct Node {
    net::Ipv6Addr key;           ///< path bits down to this node
    std::uint8_t index = 0;      ///< depth: number of fixed key bits
    bool has_prefix = false;
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t child[2] = {-1, -1};
    std::int32_t parent = -1;
  };

  /// True iff the first `bits` bits of a and b agree.
  static bool match_bits(const net::Ipv6Addr& a, const net::Ipv6Addr& b, int bits);

  template <bool kCounted>
  net::NextHop lookup_impl(const net::Ipv6Addr& addr,
                           MemAccessCounter* counter) const;

  std::int32_t alloc_node();
  void maybe_splice(std::int32_t id);

  std::vector<Node> nodes_;  // nodes_[0] is the root
  std::vector<std::int32_t> free_;  // reclaimed slots
};

}  // namespace spal::trie
