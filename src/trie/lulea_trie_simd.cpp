// SSE4.2 and AVX2+BMI2 tiers of LuleaTrie::lookup_batch (see
// trie/simd_dispatch.h for the dispatch contract). Both tiers exploit the
// same identity: the maptable stores, per interned 16-bit bitmask, the
// exclusive popcount of every position — so
//   rank_inclusive(row, low) == popcount(mask[row] & ((2 << low) - 1))
// and the dependent 8-byte nibble-row read can be replaced by a popcount of
// the (independently gathered) mask itself.
//
// The SSE4.2 tier keeps the generic stage-synchronous wave structure and
// only swaps the rank computation for POPCNT. The AVX2 tier runs whole
// 8-lane waves as vector code: unmasked gathers over the flat
// codeword/base/pointer arenas at level 1, masked gathers below it (a
// masked-off lane performs no memory access, so divergence costs nothing),
// pshufb-LUT popcounts for ranks, and a byte-compare + maddubs horizontal
// sum for the sparse-chunk head scan. Early-exit lanes retire by mask: the
// final masked next-hop gather doubles as the blend with already-resolved
// results. Sub-vector tails use a scalar walk whose ranks come from
// POPCNT + BMI2 BZHI.
//
// Every path is bit-identical to the scalar lookup(); tests/test_lpm_batch
// fuzzes each dispatch level against the binary-trie oracle and
// bench_lpm_batch exits nonzero on any element-wise divergence.
#include <cstddef>
#include <cstdint>

#include "trie/lulea_trie.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace spal::trie {

using lulea_detail::ChunkRef;
using lulea_detail::Codeword;
using lulea_detail::Pointer;

// The gather kernels address the arenas as flat int arrays; pin the layouts
// they assume.
static_assert(sizeof(Codeword) == 4 && offsetof(Codeword, row) == 0 &&
              offsetof(Codeword, offset) == 2);
static_assert(sizeof(Pointer) == 4);
static_assert(sizeof(ChunkRef) == 8 && offsetof(ChunkRef, meta) == 0 &&
              offsetof(ChunkRef, ptr_base) == 4);
static_assert(sizeof(net::NextHop) == 4);

namespace {

inline void prefetch(const void* address) { __builtin_prefetch(address, 0, 3); }

/// Branch-free sparse-chunk head scan (same contract as the generic
/// pipeline's helper): index of the last valid head offset <= pos given the
/// zero-padded ascending byte block.
inline std::uint32_t sparse_head_index(std::uint64_t block,
                                       std::uint32_t count_minus_1,
                                       std::uint32_t pos) {
  std::uint32_t le = 0;
  for (int j = 0; j < 8; ++j) {
    le += ((block >> (8 * j)) & 0xFFu) <= pos ? 1u : 0u;
  }
  return le + count_minus_1 - 8;
}

}  // namespace

// ---------------------------------------------------------------------------
// SSE4.2 tier: the generic wave pipeline with POPCNT ranks.
// ---------------------------------------------------------------------------
#pragma GCC push_options
#pragma GCC target("sse4.2,popcnt")

namespace {

/// rank_inclusive via the mask identity; `low` is pos & 15.
inline std::uint32_t rank_popcnt(std::uint32_t mask, std::uint32_t low) {
  return static_cast<std::uint32_t>(
      __builtin_popcount(mask & ((2u << low) - 1u)));
}

}  // namespace

void LuleaTrie::lookup_batch_sse42(const net::Ipv4Addr* keys, std::size_t n,
                                   net::NextHop* out) const {
  // Wave structure identical to lookup_batch_generic (see lulea_trie.cpp for
  // the stage commentary); the only change is that the maptable row read of
  // the rank wave becomes a popcount over the gathered 16-bit mask, removing
  // one dependent load per rank.
  constexpr std::size_t G = 2 * kLpmBatchLanes;
  static constexpr ChunkRef kNoChunk{};
  const ChunkRef* const level2 = level2_.empty() ? &kNoChunk : level2_.data();
  const ChunkRef* const level3 = level3_.empty() ? &kNoChunk : level3_.data();
  const std::uint32_t* const masks = maptable_.masks_data();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = i + G <= n ? G : n - i;
    std::uint32_t addr[G];
    std::uint32_t pos[G];
    std::uint32_t partial[G];
    std::uint32_t pidx[G];
    std::uint16_t row[G];

    for (std::size_t k = 0; k < g; ++k) {
      addr[k] = keys[i + k].value();
      pos[k] = addr[k] >> 16;
      const std::uint32_t m = pos[k] >> 4;
      const Codeword cw = codewords_[level1_.cw_base + m];
      const std::uint32_t base = bases_[(level1_.cw_base >> 2) + (m >> 2)];
      partial[k] = base + cw.offset;
      row[k] = cw.row;
      prefetch(maptable_.mask_addr(cw.row));
    }
    for (std::size_t k = 0; k < g; ++k) {
      const std::uint32_t rank =
          partial[k] + rank_popcnt(masks[row[k]], pos[k] & 15u);
      pidx[k] = level1_.ptr_base + rank - 1;
      prefetch(&pointers_[pidx[k]]);
    }
    std::uint32_t cmeta[G];
    std::uint32_t cptr[G];
    std::uint8_t dlane[G];
    std::uint8_t slane[G];
    std::size_t dn = 0;
    std::size_t sn = 0;
    for (std::size_t k = 0; k < g; ++k) {
      const Pointer p = pointers_[pidx[k]];
      const bool descend = p.is_chunk();
      out[i + k] = next_hop_table_[descend ? 0u : p.value()];
      const ChunkRef ch = level2[descend ? p.value() : 0u];
      pos[k] = (addr[k] >> 8) & 0xffu;
      cmeta[k] = ch.meta;
      cptr[k] = ch.ptr_base;
      const bool sp = ch.is_sparse();
      dlane[dn] = static_cast<std::uint8_t>(k);
      dn += (descend && !sp) ? 1 : 0;
      slane[sn] = static_cast<std::uint8_t>(k);
      sn += (descend && sp) ? 1 : 0;
      prefetch(sp ? static_cast<const void*>(sparse_heads_.data() +
                                             (ch.meta & ChunkRef::kHeadsMask))
                  : static_cast<const void*>(codewords_.data() + ch.meta +
                                             (pos[k] >> 4)));
      prefetch(sp ? static_cast<const void*>(sparse_heads_.data() +
                                             (ch.meta & ChunkRef::kHeadsMask))
                  : static_cast<const void*>(bases_.data() + (ch.meta >> 2) +
                                             (pos[k] >> 6)));
    }

    for (int level = 2; level <= 3 && dn + sn > 0; ++level) {
      for (std::size_t c = 0; c < sn; ++c) {
        const std::size_t k = slane[c];
        const std::uint64_t block =
            sparse_heads_[cmeta[k] & ChunkRef::kHeadsMask];
        pidx[k] = cptr[k] +
                  sparse_head_index(block, (cmeta[k] >> 27) & 7u, pos[k]);
        prefetch(&pointers_[pidx[k]]);
      }
      for (std::size_t c = 0; c < dn; ++c) {
        const std::size_t k = dlane[c];
        const std::uint32_t m = pos[k] >> 4;
        const Codeword cw = codewords_[cmeta[k] + m];
        const std::uint32_t base = bases_[(cmeta[k] >> 2) + (m >> 2)];
        partial[k] = base + cw.offset;
        row[k] = cw.row;
        prefetch(maptable_.mask_addr(cw.row));
      }
      for (std::size_t c = 0; c < dn; ++c) {
        const std::size_t k = dlane[c];
        const std::uint32_t rank =
            partial[k] + rank_popcnt(masks[row[k]], pos[k] & 15u);
        pidx[k] = cptr[k] + rank - 1;
        prefetch(&pointers_[pidx[k]]);
      }
      std::uint8_t live[G];
      std::size_t ln = 0;
      for (std::size_t c = 0; c < dn; ++c) live[ln++] = dlane[c];
      for (std::size_t c = 0; c < sn; ++c) live[ln++] = slane[c];
      dn = 0;
      sn = 0;
      for (std::size_t c = 0; c < ln; ++c) {
        const std::size_t k = live[c];
        const Pointer p = pointers_[pidx[k]];
        const bool descend = level == 2 && p.is_chunk();
        out[i + k] = next_hop_table_[descend ? 0u : p.value()];
        const ChunkRef ch = level3[descend ? p.value() : 0u];
        pos[k] = addr[k] & 0xffu;
        cmeta[k] = ch.meta;
        cptr[k] = ch.ptr_base;
        const bool sp = ch.is_sparse();
        dlane[dn] = static_cast<std::uint8_t>(k);
        dn += (descend && !sp) ? 1 : 0;
        slane[sn] = static_cast<std::uint8_t>(k);
        sn += (descend && sp) ? 1 : 0;
        prefetch(sp ? static_cast<const void*>(
                          sparse_heads_.data() + (ch.meta & ChunkRef::kHeadsMask))
                    : static_cast<const void*>(codewords_.data() + ch.meta +
                                               (pos[k] >> 4)));
      }
    }
    i += g;
  }
}

net::NextHop LuleaTrie::lookup_scalar_popcnt(net::Ipv4Addr addr) const {
  // Same dependent reads as lookup(); ranks come from POPCNT over the
  // interned mask (rank_popcnt), skipping the nibble-row read — which is
  // why this also serves sub-wave batches at the SSE4.2 level.
  const std::uint32_t* const masks = maptable_.masks_data();
  const auto dense = [&](std::uint32_t cw_base, std::uint32_t ptr_base,
                         std::uint32_t pos) {
    const std::uint32_t m = pos >> 4;
    const Codeword cw = codewords_[cw_base + m];
    const std::uint32_t base = bases_[(cw_base >> 2) + (m >> 2)];
    const std::uint32_t rank =
        base + cw.offset + rank_popcnt(masks[cw.row], pos & 15u);
    return pointers_[ptr_base + rank - 1];
  };
  const auto chunk = [&](const ChunkRef& ch, std::uint32_t pos) {
    if (!ch.is_sparse()) return dense(ch.meta, ch.ptr_base, pos);
    const std::uint64_t block = sparse_heads_[ch.meta & ChunkRef::kHeadsMask];
    return pointers_[ch.ptr_base +
                     sparse_head_index(block, (ch.meta >> 27) & 7u, pos)];
  };
  Pointer p = dense(level1_.cw_base, level1_.ptr_base, addr.value() >> 16);
  if (p.is_chunk()) {
    p = chunk(level2_[p.value()], (addr.value() >> 8) & 0xffu);
    if (p.is_chunk()) {
      p = chunk(level3_[p.value()], addr.value() & 0xffu);
    }
  }
  return next_hop_table_[p.value()];
}

#pragma GCC pop_options

// ---------------------------------------------------------------------------
// AVX2 + BMI2 tier: full-vector lane waves.
// ---------------------------------------------------------------------------
#pragma GCC push_options
#pragma GCC target("avx2,bmi2,popcnt")

namespace {

/// Per-32-bit-lane popcount via the classic pshufb nibble LUT, reduced with
/// maddubs/madd. Inputs are 16-bit masks, but the helper is general.
inline __m256i popcnt_epi32(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low4);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low4);
  const __m256i per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
  return _mm256_madd_epi16(_mm256_maddubs_epi16(per_byte, _mm256_set1_epi8(1)),
                           _mm256_set1_epi16(1));
}

/// Horizontal per-lane sum of 0/1 bytes (the sparse head-scan tally).
inline __m256i byte_sum_epi32(__m256i bytes01) {
  return _mm256_madd_epi16(_mm256_maddubs_epi16(bytes01, _mm256_set1_epi8(1)),
                           _mm256_set1_epi16(1));
}

/// Masked gather shorthand: lanes with the mask MSB clear keep `src` and
/// make no memory access at all.
inline __m256i mgather(__m256i src, const int* base, __m256i idx,
                       __m256i mask) {
  return _mm256_mask_i32gather_epi32(src, base, idx, mask, 4);
}

}  // namespace

net::NextHop LuleaTrie::lookup_scalar_bmi2(net::Ipv4Addr addr) const {
  // Same dependent reads as lookup(); ranks come from POPCNT over the mask
  // with BZHI building the inclusive below-mask, instead of the nibble row.
  const std::uint32_t* const masks = maptable_.masks_data();
  const auto dense = [&](std::uint32_t cw_base, std::uint32_t ptr_base,
                         std::uint32_t pos) {
    const std::uint32_t m = pos >> 4;
    const Codeword cw = codewords_[cw_base + m];
    const std::uint32_t base = bases_[(cw_base >> 2) + (m >> 2)];
    const std::uint32_t rank =
        base + cw.offset +
        static_cast<std::uint32_t>(
            _mm_popcnt_u32(_bzhi_u32(masks[cw.row], (pos & 15u) + 1u)));
    return pointers_[ptr_base + rank - 1];
  };
  const auto chunk = [&](const ChunkRef& ch, std::uint32_t pos) {
    if (!ch.is_sparse()) return dense(ch.meta, ch.ptr_base, pos);
    const std::uint64_t block = sparse_heads_[ch.meta & ChunkRef::kHeadsMask];
    return pointers_[ch.ptr_base +
                     sparse_head_index(block, (ch.meta >> 27) & 7u, pos)];
  };
  Pointer p = dense(level1_.cw_base, level1_.ptr_base, addr.value() >> 16);
  if (p.is_chunk()) {
    p = chunk(level2_[p.value()], (addr.value() >> 8) & 0xffu);
    if (p.is_chunk()) {
      p = chunk(level3_[p.value()], addr.value() & 0xffu);
    }
  }
  return next_hop_table_[p.value()];
}

/// Everything the vector waves index, hoisted once per batch call. The
/// kernel functions below are plain data transforms over these arrays.
struct Arenas {
  const int* cws;
  const int* bas;
  const int* ptrs;
  const int* masks;
  const int* hops;
  const int* sheads;
  const int* chunks2;
  const int* chunks3;
  std::uint32_t l1cw = 0;
  std::uint32_t l1b = 0;
  std::uint32_t l1p = 0;
};

namespace {

/// One level-2/3 step for up to two interleaved 8-lane halves: chunk
/// descriptor gathers for the active lanes, branchless dense rank / sparse
/// head scan, pointer gather, and a masked next-hop gather that doubles as
/// the blend into vout. Each stage runs for every half before the next
/// stage consumes its results, so the two halves' dependent gather chains
/// overlap in the memory system. Returns nonzero if any lane still
/// descends. always_inline so the half count H is a compile-time constant
/// at both call sites and the h-loops fully unroll.
__attribute__((always_inline)) inline int lulea_chunk_level_avx2(
    const Arenas& a, const int* chunks, const __m256i* vpos, __m256i* vactive,
    __m256i* vval, __m256i* vout, const int H) {
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vtwo = _mm256_set1_epi32(2);
  const __m256i v15 = _mm256_set1_epi32(15);
  const __m256i vffff = _mm256_set1_epi32(0xFFFF);
  const __m256i vff = _mm256_set1_epi32(0xFF);
  const __m256i vvalmask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i vheads =
      _mm256_set1_epi32(static_cast<int>(ChunkRef::kHeadsMask));
  const __m256i vrep = _mm256_set1_epi32(0x01010101);

  __m256i vmeta[4], vpbase[4], vsparse[4], vdense[4], vsp[4];
  __m256i vcw[4], vbase[4], vmask16[4], vpidx[4];
  for (int h = 0; h < H; ++h) {
    const __m256i vci = _mm256_slli_epi32(vval[h], 1);  // ChunkRef = two ints
    vmeta[h] = mgather(vzero, chunks, vci, vactive[h]);
    vpbase[h] =
        mgather(vzero, chunks, _mm256_add_epi32(vci, vone), vactive[h]);
  }
  for (int h = 0; h < H; ++h) {
    vsparse[h] = _mm256_srai_epi32(vmeta[h], 31);
    vdense[h] = _mm256_andnot_si256(vsparse[h], vactive[h]);
    vsp[h] = _mm256_and_si256(vsparse[h], vactive[h]);
    // Dense lanes: same rank machinery as level 1, chunk-relative.
    const __m256i vm = _mm256_srli_epi32(vpos[h], 4);
    vcw[h] =
        mgather(vzero, a.cws, _mm256_add_epi32(vmeta[h], vm), vdense[h]);
    vbase[h] = mgather(vzero, a.bas,
                       _mm256_add_epi32(_mm256_srli_epi32(vmeta[h], 2),
                                        _mm256_srli_epi32(vm, 2)),
                       vdense[h]);
  }
  for (int h = 0; h < H; ++h) {
    vmask16[h] = mgather(vzero, a.masks, _mm256_and_si256(vcw[h], vffff),
                         vdense[h]);
  }
  int anysp = 0;
  for (int h = 0; h < H; ++h) {
    const __m256i voff =
        _mm256_and_si256(_mm256_srli_epi32(vcw[h], 16), vff);
    const __m256i vbelow = _mm256_sub_epi32(
        _mm256_sllv_epi32(vtwo, _mm256_and_si256(vpos[h], v15)), vone);
    __m256i vrank = popcnt_epi32(_mm256_and_si256(vmask16[h], vbelow));
    vrank = _mm256_add_epi32(vrank, _mm256_add_epi32(vbase[h], voff));
    vpidx[h] = _mm256_sub_epi32(
        _mm256_add_epi32(vpbase[h], vrank), vone);
    anysp |= !_mm256_testz_si256(vsp[h], vsp[h]);
  }
  if (anysp) {
    // Sparse lanes: count head bytes <= pos in the 8-byte block. The pos
    // byte is broadcast into every byte of the lane; min/cmpeq is the
    // unsigned byte <=; the zero-padding overcount is cancelled by the
    // stored head_count-1 exactly as in the scalar helper.
    __m256i vblo[4], vbhi[4];
    for (int h = 0; h < H; ++h) {
      const __m256i vbi =
          _mm256_slli_epi32(_mm256_and_si256(vmeta[h], vheads), 1);
      vblo[h] = mgather(vzero, a.sheads, vbi, vsp[h]);
      vbhi[h] =
          mgather(vzero, a.sheads, _mm256_add_epi32(vbi, vone), vsp[h]);
    }
    for (int h = 0; h < H; ++h) {
      const __m256i vposb = _mm256_mullo_epi32(vpos[h], vrep);
      const __m256i vle = _mm256_add_epi32(
          byte_sum_epi32(_mm256_and_si256(
              _mm256_cmpeq_epi8(_mm256_min_epu8(vblo[h], vposb), vblo[h]),
              _mm256_set1_epi8(1))),
          byte_sum_epi32(_mm256_and_si256(
              _mm256_cmpeq_epi8(_mm256_min_epu8(vbhi[h], vposb), vbhi[h]),
              _mm256_set1_epi8(1))));
      const __m256i vcm1 = _mm256_and_si256(
          _mm256_srli_epi32(vmeta[h], 27), _mm256_set1_epi32(7));
      const __m256i vsidx = _mm256_add_epi32(
          vpbase[h], _mm256_sub_epi32(_mm256_add_epi32(vle, vcm1),
                                      _mm256_set1_epi32(8)));
      vpidx[h] = _mm256_blendv_epi8(vpidx[h], vsidx, vsparse[h]);
    }
  }
  __m256i vptr[4];
  for (int h = 0; h < H; ++h) {
    vptr[h] = mgather(vzero, a.ptrs, vpidx[h], vactive[h]);
  }
  int any = 0;
  for (int h = 0; h < H; ++h) {
    const __m256i vnext =
        _mm256_and_si256(vactive[h], _mm256_srai_epi32(vptr[h], 31));
    vval[h] = _mm256_and_si256(vptr[h], vvalmask);
    // Lanes that resolved at this level fold their hop into vout; the
    // masked gather doubles as the blend.
    vout[h] = mgather(vout[h], a.hops, vval[h],
                      _mm256_andnot_si256(vnext, vactive[h]));
    vactive[h] = vnext;
    any |= !_mm256_testz_si256(vnext, vnext);
  }
  return any;
}

/// One group of H * 8 keys through all three levels. H == 4 keeps
/// thirty-two lanes in flight: each wave stage issues every half's gathers
/// before any dependent stage runs, multiplying the memory-level
/// parallelism of the dependent chain (spilled halves cost L1 reloads, far
/// cheaper than serialized gathers; narrower variants serve remainders).
__attribute__((always_inline)) inline void lulea_group_avx2(
    const Arenas& a, const net::Ipv4Addr* keys, net::NextHop* out,
    const int H) {
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vtwo = _mm256_set1_epi32(2);
  const __m256i v15 = _mm256_set1_epi32(15);
  const __m256i vffff = _mm256_set1_epi32(0xFFFF);
  const __m256i vff = _mm256_set1_epi32(0xFF);
  const __m256i vvalmask = _mm256_set1_epi32(0x7FFFFFFF);
  const __m256i vl1cw = _mm256_set1_epi32(static_cast<int>(a.l1cw));
  const __m256i vl1b = _mm256_set1_epi32(static_cast<int>(a.l1b));
  const __m256i vl1p = _mm256_set1_epi32(static_cast<int>(a.l1p));

  __m256i vaddr[4], vpos[4], vcw[4], vbase[4], vmask16[4], vpidx[4];
  __m256i vptr[4], vactive[4], vval[4], vout[4];
  // Level 1: dense rank over the full waves (no masking needed).
  for (int h = 0; h < H; ++h) {
    vaddr[h] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + 8 * h));
    vpos[h] = _mm256_srli_epi32(vaddr[h], 16);
    const __m256i vm = _mm256_srli_epi32(vpos[h], 4);
    vcw[h] = _mm256_i32gather_epi32(a.cws, _mm256_add_epi32(vl1cw, vm), 4);
    vbase[h] = _mm256_i32gather_epi32(
        a.bas, _mm256_add_epi32(vl1b, _mm256_srli_epi32(vm, 2)), 4);
  }
  for (int h = 0; h < H; ++h) {
    vmask16[h] =
        _mm256_i32gather_epi32(a.masks, _mm256_and_si256(vcw[h], vffff), 4);
  }
  for (int h = 0; h < H; ++h) {
    const __m256i voff =
        _mm256_and_si256(_mm256_srli_epi32(vcw[h], 16), vff);
    const __m256i vbelow = _mm256_sub_epi32(
        _mm256_sllv_epi32(vtwo, _mm256_and_si256(vpos[h], v15)), vone);
    __m256i vrank = popcnt_epi32(_mm256_and_si256(vmask16[h], vbelow));
    vrank = _mm256_add_epi32(vrank, _mm256_add_epi32(vbase[h], voff));
    vpidx[h] = _mm256_sub_epi32(_mm256_add_epi32(vl1p, vrank), vone);
  }
  for (int h = 0; h < H; ++h) {
    vptr[h] = _mm256_i32gather_epi32(a.ptrs, vpidx[h], 4);
  }
  int any = 0;
  for (int h = 0; h < H; ++h) {
    vactive[h] = _mm256_srai_epi32(vptr[h], 31);  // chunk flag = sign bit
    vval[h] = _mm256_and_si256(vptr[h], vvalmask);
    // Resolved lanes read their hop now; descending lanes read hops[0] as
    // a harmless placeholder (index 0 always exists: kNoRoute is interned
    // first).
    vout[h] = _mm256_i32gather_epi32(
        a.hops, _mm256_andnot_si256(vactive[h], vval[h]), 4);
    any |= !_mm256_testz_si256(vactive[h], vactive[h]);
  }
  if (any) {
    __m256i vposl[4];
    for (int h = 0; h < H; ++h) {
      vposl[h] = _mm256_and_si256(_mm256_srli_epi32(vaddr[h], 8), vff);
    }
    any = lulea_chunk_level_avx2(a, a.chunks2, vposl, vactive, vval, vout, H);
    if (any) {
      // Level-3 pointers are always next hops by build invariant, so the
      // step's descend set empties and its return value is ignored.
      for (int h = 0; h < H; ++h) {
        vposl[h] = _mm256_and_si256(vaddr[h], vff);
      }
      (void)lulea_chunk_level_avx2(a, a.chunks3, vposl, vactive, vval, vout,
                                   H);
    }
  }
  for (int h = 0; h < H; ++h) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * h), vout[h]);
  }
}

}  // namespace

void LuleaTrie::lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                                  net::NextHop* out) const {
  static constexpr ChunkRef kNoChunk{};
  Arenas a;
  a.cws = reinterpret_cast<const int*>(codewords_.data());
  a.bas = reinterpret_cast<const int*>(bases_.data());
  a.ptrs = reinterpret_cast<const int*>(pointers_.data());
  a.masks = reinterpret_cast<const int*>(maptable_.masks_data());
  a.hops = reinterpret_cast<const int*>(next_hop_table_.data());
  a.sheads = reinterpret_cast<const int*>(sparse_heads_.data());
  // Branch-free descriptor gathers need a valid address even when a level
  // has no chunks at all (tables with no long prefixes).
  a.chunks2 = reinterpret_cast<const int*>(
      level2_.empty() ? &kNoChunk : level2_.data());
  a.chunks3 = reinterpret_cast<const int*>(
      level3_.empty() ? &kNoChunk : level3_.data());
  a.l1cw = level1_.cw_base;
  a.l1b = level1_.cw_base >> 2;
  a.l1p = level1_.ptr_base;

  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) lulea_group_avx2(a, keys + i, out + i, 4);
  for (; i + 16 <= n; i += 16) lulea_group_avx2(a, keys + i, out + i, 2);
  for (; i + 8 <= n; i += 8) lulea_group_avx2(a, keys + i, out + i, 1);
  for (; i < n; ++i) out[i] = lookup_scalar_bmi2(keys[i]);
}


#pragma GCC pop_options

}  // namespace spal::trie

#else  // !x86: the dispatcher never selects these, but they must link.

namespace spal::trie {

void LuleaTrie::lookup_batch_sse42(const net::Ipv4Addr* keys, std::size_t n,
                                   net::NextHop* out) const {
  lookup_batch_generic(keys, n, out);
}

void LuleaTrie::lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                                  net::NextHop* out) const {
  lookup_batch_generic(keys, n, out);
}

net::NextHop LuleaTrie::lookup_scalar_bmi2(net::Ipv4Addr addr) const {
  return lookup(addr);
}

net::NextHop LuleaTrie::lookup_scalar_popcnt(net::Ipv4Addr addr) const {
  return lookup(addr);
}

}  // namespace spal::trie

#endif
