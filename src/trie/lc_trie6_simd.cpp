// AVX2 tier of LcTrie6::lookup_batch (dispatch contract in
// trie/simd_dispatch.h): four 128-bit keys per vector, held as split
// hi/lo 64-bit lanes. The node walk gathers packed 4-byte nodes through
// 64-bit indices (masked, so retired lanes make no access) and extracts the
// branch bit-field with a branchless three-term formula
//   ((hi >> (64-p-c)) | (hi << (p+c-64)) | (lo >> (128-p-c))) & ((1<<c)-1)
// whose out-of-range shifts vanish under the variable-shift semantics
// (sllv/srlv yield 0 for counts >= 64), reproducing Ipv6Addr::bits for all
// three cases — field in hi, field in lo, and straddling the halves. The
// base comparison builds the hi/lo prefix masks the same way
// (~(~0 >> len) and ~0 << (128-len)), matching equal_prefix_bits for every
// len in [0, 128]. The covering-prefix chain stays scalar per pending lane.
//
// Results are bit-identical to the scalar path; fuzzed per dispatch level
// in tests/test_lpm_batch.cpp.
#include <cstddef>
#include <cstdint>

#include "trie/lc_trie6.h"

#if defined(__x86_64__) || defined(__i386__)

#include <array>
#include <bit>
#include <immintrin.h>

namespace spal::trie {

#pragma GCC push_options
#pragma GCC target("avx2,bmi2,popcnt")

void LcTrie6::lookup_batch_avx2(const net::Ipv6Addr* keys, std::size_t n,
                                net::NextHop* out) const {
  static_assert(sizeof(Node) == 4);
  static_assert(sizeof(net::Ipv6Addr) == 16);
  // The gathers read hi at entry offset 0 and lo at offset 8.
  static_assert(
      std::bit_cast<std::array<std::uint64_t, 2>>(net::Ipv6Addr{1, 2})[0] == 1);
  static_assert(sizeof(BaseEntry) == 32 && offsetof(BaseEntry, bits) == 0 &&
                offsetof(BaseEntry, len) == 16 &&
                offsetof(BaseEntry, next_hop) == 20 &&
                offsetof(BaseEntry, pre) == 24);
  const int* const nodes = reinterpret_cast<const int*>(nodes_.data());
  const long long* const bases =
      reinterpret_cast<const long long*>(base_.data());

  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i v64 = _mm256_set1_epi64x(64);
  const __m256i v128 = _mm256_set1_epi64x(128);
  const __m256i vff = _mm256_set1_epi64x(0xFF);
  const __m256i vneg1 = _mm256_set1_epi64x(-1);
  const __m256i vskipmask = _mm256_set1_epi64x((1 << Node::kSkipBits) - 1);
  const __m256i vadrmask = _mm256_set1_epi64x(Node::kAdrMask);
  const __m256i vnoroute = _mm256_set1_epi64x(net::kNoRoute);
  // Lane selectors: low dwords of the four 64-bit lanes (for packing 32-bit
  // results out) and high dwords (for deriving the 32-bit gather mask).
  const __m256i vpacklow = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i vpackhigh = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vhi = _mm256_setr_epi64x(
        static_cast<long long>(keys[i].hi()),
        static_cast<long long>(keys[i + 1].hi()),
        static_cast<long long>(keys[i + 2].hi()),
        static_cast<long long>(keys[i + 3].hi()));
    const __m256i vlo = _mm256_setr_epi64x(
        static_cast<long long>(keys[i].lo()),
        static_cast<long long>(keys[i + 1].lo()),
        static_cast<long long>(keys[i + 2].lo()),
        static_cast<long long>(keys[i + 3].lo()));
    __m256i vidx = vzero;
    __m256i vpos = vzero;
    __m256i vactive = vneg1;
    do {
      const __m128i vmask32 = _mm256_castsi256_si128(
          _mm256_permutevar8x32_epi32(vactive, vpackhigh));
      const __m256i vnode = _mm256_cvtepu32_epi64(_mm256_mask_i64gather_epi32(
          _mm_setzero_si128(), nodes, vidx, vmask32, 4));
      const __m256i vbranch =
          _mm256_srli_epi64(vnode, Node::kAdrBits + Node::kSkipBits);
      const __m256i vskip = _mm256_and_si256(
          _mm256_srli_epi64(vnode, Node::kAdrBits), vskipmask);
      const __m256i vadr = _mm256_and_si256(vnode, vadrmask);
      const __m256i vpc =
          _mm256_add_epi64(_mm256_add_epi64(vpos, vskip), vbranch);
      const __m256i vbits = _mm256_and_si256(
          _mm256_or_si256(
              _mm256_or_si256(
                  _mm256_srlv_epi64(vhi, _mm256_sub_epi64(v64, vpc)),
                  _mm256_sllv_epi64(vhi, _mm256_sub_epi64(vpc, v64))),
              _mm256_srlv_epi64(vlo, _mm256_sub_epi64(v128, vpc))),
          _mm256_sub_epi64(_mm256_sllv_epi64(vone, vbranch), vone));
      vidx = _mm256_blendv_epi8(vidx, _mm256_add_epi64(vadr, vbits), vactive);
      vpos = _mm256_blendv_epi8(vpos, vpc, vactive);
      // Retired lanes gathered node 0 (branch slice 0) and stay retired.
      vactive = _mm256_andnot_si256(_mm256_cmpeq_epi64(vbranch, vzero),
                                    vactive);
    } while (!_mm256_testz_si256(vactive, vactive));

    // Base wave: 32-byte entries gathered as qwords — bits.hi, bits.lo,
    // then [len | next_hop] and [pre | pad].
    const __m256i vbi = _mm256_slli_epi64(vidx, 2);
    const __m256i vbhi = _mm256_i64gather_epi64(bases, vbi, 8);
    const __m256i vblo =
        _mm256_i64gather_epi64(bases, _mm256_add_epi64(vbi, vone), 8);
    const __m256i vmeta = _mm256_i64gather_epi64(
        bases, _mm256_add_epi64(vbi, _mm256_set1_epi64x(2)), 8);
    const __m256i vpre = _mm256_i64gather_epi64(
        bases, _mm256_add_epi64(vbi, _mm256_set1_epi64x(3)), 8);
    const __m256i vlen = _mm256_and_si256(vmeta, vff);
    const __m256i vhop = _mm256_srli_epi64(vmeta, 32);
    const __m256i vmaskhi = _mm256_xor_si256(
        _mm256_srlv_epi64(vneg1, vlen), vneg1);
    const __m256i vmasklo =
        _mm256_sllv_epi64(vneg1, _mm256_sub_epi64(v128, vlen));
    const __m256i vmatched = _mm256_and_si256(
        _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_xor_si256(vhi, vbhi), vmaskhi), vzero),
        _mm256_cmpeq_epi64(
            _mm256_and_si256(_mm256_xor_si256(vlo, vblo), vmasklo), vzero));
    const __m256i vout = _mm256_blendv_epi8(vnoroute, vhop, vmatched);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(out + i),
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(vout, vpacklow)));

    // Covering-prefix chains, scalar per pending lane; the comparison uses
    // the leaf's base bits exactly as the generic chain wave does. The pre
    // gather's high dword is struct padding, so test the int32 sign bit by
    // shifting it up to the qword sign position.
    const __m256i vpreneg =
        _mm256_cmpgt_epi64(vzero, _mm256_slli_epi64(vpre, 32));
    const __m256i vpending =
        _mm256_andnot_si256(_mm256_or_si256(vmatched, vpreneg), vneg1);
    if (!_mm256_testz_si256(vpending, vpending)) {
      alignas(32) std::int64_t pre[4];
      alignas(32) std::int64_t idx[4];
      alignas(32) std::int64_t matched[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(pre), vpre);
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx), vidx);
      _mm256_store_si256(reinterpret_cast<__m256i*>(matched), vmatched);
      for (int k = 0; k < 4; ++k) {
        std::int32_t p = static_cast<std::int32_t>(pre[k]);
        if (matched[k] != 0 || p < 0) continue;
        const net::Ipv6Addr& leaf_bits =
            base_[static_cast<std::size_t>(idx[k])].bits;
        while (p >= 0) {
          const PreEntry& entry = pre_[static_cast<std::size_t>(p)];
          if (net::equal_prefix_bits(keys[i + k], leaf_bits, entry.len)) {
            out[i + k] = entry.next_hop;
            break;
          }
          p = entry.pre;
        }
      }
    }
  }
  for (; i < n; ++i) out[i] = lookup(keys[i]);
}

#pragma GCC pop_options

}  // namespace spal::trie

#else  // !x86: the dispatcher never selects this, but it must link.

namespace spal::trie {

void LcTrie6::lookup_batch_avx2(const net::Ipv6Addr* keys, std::size_t n,
                                net::NextHop* out) const {
  lookup_batch_generic(keys, n, out);
}

}  // namespace spal::trie

#endif
