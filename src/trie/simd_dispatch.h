// Runtime SIMD dispatch for the batched LPM pipelines.
//
// The batch lookup paths (LuleaTrie, LcTrie, LcTrie6) come in up to three
// tiers per structure: the portable stage-synchronous scalar pipeline
// ("generic"), an SSE4.2 tier that replaces the Lulea maptable nibble read
// with a POPCNT over the interned bitmask, and an AVX2+BMI2 tier that runs
// whole lane waves as vector gathers over the flat arenas. The tier is
// picked once per process from CPUID (detected_simd_level), can be capped
// for testing via the SPAL_SIMD environment variable or a bench --simd flag
// (set_simd_mode), and is never raised above what the CPU supports. Every
// tier returns bit-identical results; the tests and benches verify this
// element-wise against the scalar oracle.
#pragma once

#include <atomic>
#include <optional>
#include <string_view>

namespace spal::trie {

/// Dispatch tiers, ordered: a level's kernels may use every feature of the
/// levels below it. kAvx2 implies BMI2 and POPCNT (checked together at
/// detection; Haswell+ ships all three), kSse42 implies POPCNT (Nehalem+).
enum class SimdLevel { kGeneric = 0, kSse42 = 1, kAvx2 = 2 };

/// Requested cap: kAuto resolves to whatever CPUID detects.
enum class SimdMode {
  kAuto = -1,
  kGeneric = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

/// Best level this CPU can run, probed once via CPUID. kGeneric on
/// non-x86 builds.
SimdLevel detected_simd_level();

namespace simd_detail {
/// Cached resolved level (-1 = not yet computed). Written only by
/// simd_dispatch.cpp; read inline below so the per-lookup_batch dispatch
/// costs one relaxed load even for tiny batches.
extern std::atomic<int> g_resolved;
SimdLevel resolve_slow();
}  // namespace simd_detail

/// The level batch lookups dispatch on right now: min(requested, detected).
/// The request defaults to SPAL_SIMD (generic|sse42|avx2|auto; unset or
/// invalid values mean auto) and can be changed at runtime with
/// set_simd_mode(). Thread-safe; one relaxed atomic load per call (the env
/// read and CPUID probe run once, on the first call).
inline SimdLevel resolved_simd_level() {
  const int v = simd_detail::g_resolved.load(std::memory_order_relaxed);
  return v >= 0 ? static_cast<SimdLevel>(v) : simd_detail::resolve_slow();
}

/// Current request as set by SPAL_SIMD / set_simd_mode (kAuto if neither).
SimdMode simd_mode();

/// Sets the process-wide requested level and returns the resolved one
/// (clamped to detected_simd_level(); a clamp warns once on stderr).
SimdLevel set_simd_mode(SimdMode mode);

std::string_view to_string(SimdLevel level);
std::string_view to_string(SimdMode mode);

/// Parses "generic" | "sse42" | "avx2" | "auto"; nullopt on anything else
/// (used by the bench CLIs' strict --simd flag).
std::optional<SimdMode> simd_mode_from_string(std::string_view name);

}  // namespace spal::trie
