// Plain one-bit-at-a-time binary trie.
//
// This is the library's correctness oracle: the simplest possible LPM
// structure, supporting incremental insert/remove (used by the update tests)
// as well as the immutable LpmIndex interface. It is also the "no
// compression" reference point the other tries are judged against.
#pragma once

#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

class BinaryTrie final : public LpmIndex {
 public:
  BinaryTrie();
  explicit BinaryTrie(const net::RouteTable& table);

  /// Inserts or replaces `prefix`.
  void insert(const net::Prefix& prefix, net::NextHop next_hop) override;

  /// Removes `prefix` exactly; returns true if it was present.
  /// (Nodes are not reclaimed; the empty chain left behind costs 12 bytes a
  /// node and never changes lookup results.)
  bool remove(const net::Prefix& prefix) override;

  bool supports_incremental_update() const override { return true; }

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "binary"; }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    net::NextHop next_hop = net::kNoRoute;
  };

  std::int32_t descend_or_create(const net::Prefix& prefix);

  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace spal::trie
