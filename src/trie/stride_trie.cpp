#include "trie/stride_trie.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace spal::trie {

std::int32_t StrideTrie::new_node(int level) {
  // Node.base and Slot.child are 32-bit; at internet scale the slot arena
  // can reach hundreds of millions of entries, so fail loudly instead of
  // silently truncating the offset.
  if (slots_.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("StrideTrie: slot arena exceeds 32-bit offsets");
  }
  if (nodes_.size() >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::length_error("StrideTrie: node count exceeds 31-bit ids");
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{static_cast<std::uint32_t>(slots_.size())});
  slots_.resize(slots_.size() + (std::size_t{1} << strides_[static_cast<std::size_t>(level)]));
  level_of_node_.push_back(level);
  return id;
}

StrideTrie::StrideTrie(const net::RouteTable& table, std::vector<int> strides)
    : strides_(std::move(strides)) {
  if (std::accumulate(strides_.begin(), strides_.end(), 0) != 32 ||
      std::any_of(strides_.begin(), strides_.end(), [](int s) { return s <= 0; })) {
    throw std::invalid_argument("StrideTrie: strides must be positive and sum to 32");
  }
  new_node(0);  // root

  // Level bit boundaries: level i covers (boundary[i], boundary[i+1]].
  std::vector<int> boundary(strides_.size() + 1, 0);
  for (std::size_t i = 0; i < strides_.size(); ++i) {
    boundary[i + 1] = boundary[i] + strides_[i];
  }

  // Insert shortest-first so longer prefixes override overlapping
  // expansions (controlled prefix expansion).
  std::vector<net::RouteEntry> entries(table.entries().begin(), table.entries().end());
  std::stable_sort(entries.begin(), entries.end(),
                   [](const net::RouteEntry& a, const net::RouteEntry& b) {
                     return a.prefix.length() < b.prefix.length();
                   });
  for (const net::RouteEntry& e : entries) {
    const int len = e.prefix.length();
    // Locate the level whose boundary the prefix expands to.
    std::size_t level = 0;
    while (len > boundary[level + 1]) ++level;
    // Walk/create the single-slot path through the earlier levels.
    std::int32_t node = 0;
    for (std::size_t i = 0; i < level; ++i) {
      const std::uint32_t index = e.prefix.address().bits(
          boundary[i], strides_[i]);
      std::int32_t child = slot_at(node, index).child;
      if (child < 0) {
        // new_node() grows slots_, so re-fetch the slot afterwards.
        child = new_node(static_cast<int>(i + 1));
        slot_at(node, index).child = child;
      }
      node = child;
    }
    // Expand within the level: the prefix fixes (len - boundary[level]) of
    // the level's stride bits; all completions get its next hop.
    const int fixed = len - boundary[level];
    const int free_bits = strides_[level] - fixed;
    const std::uint32_t base_index =
        fixed == 0 ? 0
                   : e.prefix.address().bits(boundary[level], fixed)
                         << free_bits;
    for (std::uint32_t completion = 0; completion < (1u << free_bits); ++completion) {
      slot_at(node, base_index + completion).next_hop = e.next_hop;
    }
  }
}

net::NextHop StrideTrie::lookup(net::Ipv4Addr addr) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  int pos = 0;
  for (std::size_t level = 0; level < strides_.size(); ++level) {
    const Slot& slot = slot_at(node, addr.bits(pos, strides_[level]));
    if (slot.next_hop != net::kNoRoute) best = slot.next_hop;
    if (slot.child < 0) break;
    node = slot.child;
    pos += strides_[level];
  }
  return best;
}

net::NextHop StrideTrie::lookup_counted(net::Ipv4Addr addr,
                                        MemAccessCounter& counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  int pos = 0;
  for (std::size_t level = 0; level < strides_.size(); ++level) {
    counter.record();  // one node-array read per level
    const Slot& slot = slot_at(node, addr.bits(pos, strides_[level]));
    if (slot.next_hop != net::kNoRoute) best = slot.next_hop;
    if (slot.child < 0) break;
    node = slot.child;
    pos += strides_[level];
  }
  return best;
}

std::size_t StrideTrie::storage_bytes() const {
  // Each slot holds a next hop and a child pointer (4 bytes each).
  return slots_.size() * 8;
}

}  // namespace spal::trie
