#include "trie/dp_trie6.h"

namespace spal::trie {
namespace {

struct BuildNode {
  std::int32_t child[2] = {-1, -1};
  bool has_prefix = false;
  net::NextHop next_hop = net::kNoRoute;
};

net::Ipv6Addr with_bit(const net::Ipv6Addr& addr, int pos) {
  if (pos < 64) {
    return net::Ipv6Addr{addr.hi() | (1ULL << (63 - pos)), addr.lo()};
  }
  return net::Ipv6Addr{addr.hi(), addr.lo() | (1ULL << (127 - pos))};
}

}  // namespace

bool DpTrie6::match_bits(const net::Ipv6Addr& a, const net::Ipv6Addr& b, int bits) {
  if (bits <= 0) return true;
  if (bits <= 64) {
    const std::uint64_t mask = ~std::uint64_t{0} << (64 - bits);
    return ((a.hi() ^ b.hi()) & mask) == 0;
  }
  if (a.hi() != b.hi()) return false;
  const std::uint64_t mask =
      bits >= 128 ? ~std::uint64_t{0} : (~std::uint64_t{0} << (128 - bits));
  return ((a.lo() ^ b.lo()) & mask) == 0;
}

DpTrie6::DpTrie6(const net::RouteTable6& table) {
  // Phase 1: uncompressed binary trie.
  std::vector<BuildNode> build;
  build.emplace_back();
  for (const net::RouteEntry6& e : table.entries()) {
    std::int32_t node = 0;
    const net::Ipv6Addr addr = e.prefix.address();
    for (int depth = 0; depth < e.prefix.length(); ++depth) {
      const int bit = addr.bit(depth);
      std::int32_t child = build[static_cast<std::size_t>(node)].child[bit];
      if (child < 0) {
        child = static_cast<std::int32_t>(build.size());
        build.emplace_back();
        build[static_cast<std::size_t>(node)].child[bit] = child;
      }
      node = child;
    }
    build[static_cast<std::size_t>(node)].has_prefix = true;
    build[static_cast<std::size_t>(node)].next_hop = e.next_hop;
  }

  // Phase 2: path compression (prefix nodes + branch points survive).
  struct Frame {
    std::int32_t build_node;
    std::int32_t compressed_parent;
    int parent_bit;
    net::Ipv6Addr path;
    int depth;
  };
  nodes_.emplace_back();  // compressed root, depth 0
  const BuildNode& root = build[0];
  nodes_[0].has_prefix = root.has_prefix;
  nodes_[0].next_hop = root.next_hop;
  std::vector<Frame> stack;
  for (int bit = 0; bit < 2; ++bit) {
    if (root.child[bit] >= 0) {
      const net::Ipv6Addr path =
          bit ? with_bit(net::Ipv6Addr{}, 0) : net::Ipv6Addr{};
      stack.push_back(Frame{root.child[bit], 0, bit, path, 1});
    }
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const BuildNode* bn = &build[static_cast<std::size_t>(f.build_node)];
    while (!bn->has_prefix && ((bn->child[0] >= 0) != (bn->child[1] >= 0))) {
      const int bit = bn->child[0] >= 0 ? 0 : 1;
      if (bit) f.path = with_bit(f.path, f.depth);
      ++f.depth;
      f.build_node = bn->child[bit];
      bn = &build[static_cast<std::size_t>(f.build_node)];
    }
    const auto id = static_cast<std::int32_t>(nodes_.size());
    Node node;
    node.key = f.path;
    node.index = static_cast<std::uint8_t>(f.depth);
    node.has_prefix = bn->has_prefix;
    node.next_hop = bn->next_hop;
    nodes_.push_back(node);
    nodes_[static_cast<std::size_t>(f.compressed_parent)].child[f.parent_bit] = id;
    for (int bit = 0; bit < 2; ++bit) {
      if (bn->child[bit] >= 0) {
        net::Ipv6Addr child_path = f.path;
        if (bit) child_path = with_bit(child_path, f.depth);
        stack.push_back(Frame{bn->child[bit], id, bit, child_path, f.depth + 1});
      }
    }
  }
}

template <bool kCounted>
net::NextHop DpTrie6::lookup_impl(const net::Ipv6Addr& addr,
                                  MemAccessCounter* counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  while (node >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if constexpr (kCounted) counter->record();  // node read
    // Keys are verified at prefix nodes only (see dp_trie.cpp): branch
    // nodes descend optimistically, deeper prefix nodes re-verify the path.
    if (n.has_prefix) {
      if constexpr (kCounted) counter->record();  // key comparison read
      if (!match_bits(addr, n.key, n.index)) break;
      best = n.next_hop;
    }
    if (n.index >= net::Ipv6Addr::kBits) break;
    node = n.child[addr.bit(n.index)];
  }
  return best;
}

net::NextHop DpTrie6::lookup(const net::Ipv6Addr& addr) const {
  MemAccessCounter unused;
  return lookup_impl<false>(addr, &unused);
}

net::NextHop DpTrie6::lookup_counted(const net::Ipv6Addr& addr,
                                     MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

}  // namespace spal::trie
