#include "trie/dp_trie6.h"

namespace spal::trie {
namespace {

struct BuildNode {
  std::int32_t child[2] = {-1, -1};
  bool has_prefix = false;
  net::NextHop next_hop = net::kNoRoute;
};

net::Ipv6Addr with_bit(const net::Ipv6Addr& addr, int pos) {
  if (pos < 64) {
    return net::Ipv6Addr{addr.hi() | (1ULL << (63 - pos)), addr.lo()};
  }
  return net::Ipv6Addr{addr.hi(), addr.lo() | (1ULL << (127 - pos))};
}

}  // namespace

bool DpTrie6::match_bits(const net::Ipv6Addr& a, const net::Ipv6Addr& b, int bits) {
  if (bits <= 0) return true;
  if (bits <= 64) {
    const std::uint64_t mask = ~std::uint64_t{0} << (64 - bits);
    return ((a.hi() ^ b.hi()) & mask) == 0;
  }
  if (a.hi() != b.hi()) return false;
  const std::uint64_t mask =
      bits >= 128 ? ~std::uint64_t{0} : (~std::uint64_t{0} << (128 - bits));
  return ((a.lo() ^ b.lo()) & mask) == 0;
}

DpTrie6::DpTrie6(const net::RouteTable6& table) {
  // Phase 1: uncompressed binary trie.
  std::vector<BuildNode> build;
  build.emplace_back();
  for (const net::RouteEntry6& e : table.entries()) {
    std::int32_t node = 0;
    const net::Ipv6Addr addr = e.prefix.address();
    for (int depth = 0; depth < e.prefix.length(); ++depth) {
      const int bit = addr.bit(depth);
      std::int32_t child = build[static_cast<std::size_t>(node)].child[bit];
      if (child < 0) {
        child = static_cast<std::int32_t>(build.size());
        build.emplace_back();
        build[static_cast<std::size_t>(node)].child[bit] = child;
      }
      node = child;
    }
    build[static_cast<std::size_t>(node)].has_prefix = true;
    build[static_cast<std::size_t>(node)].next_hop = e.next_hop;
  }

  // Phase 2: path compression (prefix nodes + branch points survive).
  struct Frame {
    std::int32_t build_node;
    std::int32_t compressed_parent;
    int parent_bit;
    net::Ipv6Addr path;
    int depth;
  };
  nodes_.emplace_back();  // compressed root, depth 0
  const BuildNode& root = build[0];
  nodes_[0].has_prefix = root.has_prefix;
  nodes_[0].next_hop = root.next_hop;
  std::vector<Frame> stack;
  for (int bit = 0; bit < 2; ++bit) {
    if (root.child[bit] >= 0) {
      const net::Ipv6Addr path =
          bit ? with_bit(net::Ipv6Addr{}, 0) : net::Ipv6Addr{};
      stack.push_back(Frame{root.child[bit], 0, bit, path, 1});
    }
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const BuildNode* bn = &build[static_cast<std::size_t>(f.build_node)];
    while (!bn->has_prefix && ((bn->child[0] >= 0) != (bn->child[1] >= 0))) {
      const int bit = bn->child[0] >= 0 ? 0 : 1;
      if (bit) f.path = with_bit(f.path, f.depth);
      ++f.depth;
      f.build_node = bn->child[bit];
      bn = &build[static_cast<std::size_t>(f.build_node)];
    }
    const auto id = static_cast<std::int32_t>(nodes_.size());
    Node node;
    node.key = f.path;
    node.index = static_cast<std::uint8_t>(f.depth);
    node.has_prefix = bn->has_prefix;
    node.next_hop = bn->next_hop;
    node.parent = f.compressed_parent;
    nodes_.push_back(node);
    nodes_[static_cast<std::size_t>(f.compressed_parent)].child[f.parent_bit] = id;
    for (int bit = 0; bit < 2; ++bit) {
      if (bn->child[bit] >= 0) {
        net::Ipv6Addr child_path = f.path;
        if (bit) child_path = with_bit(child_path, f.depth);
        stack.push_back(Frame{bn->child[bit], id, bit, child_path, f.depth + 1});
      }
    }
  }
}

std::int32_t DpTrie6::alloc_node() {
  if (!free_.empty()) {
    const std::int32_t id = free_.back();
    free_.pop_back();
    nodes_[static_cast<std::size_t>(id)] = Node{};
    return id;
  }
  nodes_.emplace_back();
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void DpTrie6::insert(const net::Prefix6& prefix, net::NextHop next_hop) {
  const int len = prefix.length();
  const net::Ipv6Addr key = prefix.address();  // masked to `len` bits
  std::int32_t cur = 0;
  // Invariant: nodes_[cur].key agrees with `key` on min(index, len) bits
  // and nodes_[cur].index <= len (see dp_trie.cpp for the IPv4 original).
  while (true) {
    Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.index == len) {
      n.has_prefix = true;
      n.next_hop = next_hop;
      return;
    }
    const int slot = key.bit(n.index);
    const std::int32_t child = n.child[slot];
    if (child < 0) {
      const std::int32_t leaf = alloc_node();
      Node& ln = nodes_[static_cast<std::size_t>(leaf)];
      ln.key = key;
      ln.index = static_cast<std::uint8_t>(len);
      ln.has_prefix = true;
      ln.next_hop = next_hop;
      ln.parent = cur;
      nodes_[static_cast<std::size_t>(cur)].child[slot] = leaf;
      return;
    }
    const Node& c = nodes_[static_cast<std::size_t>(child)];
    const int edge_end = std::min<int>(c.index, len);
    const int common = net::common_prefix_bits(key, c.key);
    const int d = common < edge_end ? common : edge_end;
    if (d == edge_end && c.index <= len) {
      cur = child;
      continue;
    }
    if (d == edge_end) {
      // len < c.index, keys agree on all len bits: split the edge with a
      // prefix node on it.
      const std::int32_t mid = alloc_node();
      Node& mn = nodes_[static_cast<std::size_t>(mid)];
      Node& cc = nodes_[static_cast<std::size_t>(child)];
      mn.key = key;
      mn.index = static_cast<std::uint8_t>(len);
      mn.has_prefix = true;
      mn.next_hop = next_hop;
      mn.parent = cur;
      mn.child[cc.key.bit(len)] = child;
      cc.parent = mid;
      nodes_[static_cast<std::size_t>(cur)].child[slot] = mid;
      return;
    }
    // Divergence at bit d: branch node + new leaf.
    const std::int32_t branch = alloc_node();
    const std::int32_t leaf = alloc_node();
    Node& bn = nodes_[static_cast<std::size_t>(branch)];
    Node& ln = nodes_[static_cast<std::size_t>(leaf)];
    Node& cc = nodes_[static_cast<std::size_t>(child)];
    bn.key = net::Prefix6(key, d).address();
    bn.index = static_cast<std::uint8_t>(d);
    bn.parent = cur;
    bn.child[cc.key.bit(d)] = child;
    bn.child[key.bit(d)] = leaf;
    cc.parent = branch;
    ln.key = key;
    ln.index = static_cast<std::uint8_t>(len);
    ln.has_prefix = true;
    ln.next_hop = next_hop;
    ln.parent = branch;
    nodes_[static_cast<std::size_t>(cur)].child[slot] = branch;
    return;
  }
}

void DpTrie6::maybe_splice(std::int32_t id) {
  while (id > 0) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.has_prefix) return;
    const int children = (n.child[0] >= 0 ? 1 : 0) + (n.child[1] >= 0 ? 1 : 0);
    if (children >= 2) return;
    const std::int32_t parent = n.parent;
    Node& p = nodes_[static_cast<std::size_t>(parent)];
    const int slot = p.child[0] == id ? 0 : 1;
    if (children == 1) {
      const std::int32_t child = n.child[0] >= 0 ? n.child[0] : n.child[1];
      p.child[slot] = child;
      nodes_[static_cast<std::size_t>(child)].parent = parent;
      free_.push_back(id);
      return;
    }
    p.child[slot] = -1;
    free_.push_back(id);
    id = parent;
  }
}

bool DpTrie6::remove(const net::Prefix6& prefix) {
  const int len = prefix.length();
  const net::Ipv6Addr key = prefix.address();
  std::int32_t cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].index < len) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const std::int32_t child = n.child[key.bit(n.index)];
    if (child < 0) return false;
    const Node& c = nodes_[static_cast<std::size_t>(child)];
    if (c.index > len || !match_bits(key, c.key, c.index)) return false;
    cur = child;
  }
  Node& n = nodes_[static_cast<std::size_t>(cur)];
  if (n.index != len || !n.has_prefix || !match_bits(key, n.key, len)) {
    return false;
  }
  n.has_prefix = false;
  n.next_hop = net::kNoRoute;
  maybe_splice(cur);
  return true;
}

template <bool kCounted>
net::NextHop DpTrie6::lookup_impl(const net::Ipv6Addr& addr,
                                  MemAccessCounter* counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  while (node >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if constexpr (kCounted) counter->record();  // node read
    // Keys are verified at prefix nodes only (see dp_trie.cpp): branch
    // nodes descend optimistically, deeper prefix nodes re-verify the path.
    if (n.has_prefix) {
      if constexpr (kCounted) counter->record();  // key comparison read
      if (!match_bits(addr, n.key, n.index)) break;
      best = n.next_hop;
    }
    if (n.index >= net::Ipv6Addr::kBits) break;
    node = n.child[addr.bit(n.index)];
  }
  return best;
}

net::NextHop DpTrie6::lookup(const net::Ipv6Addr& addr) const {
  MemAccessCounter unused;
  return lookup_impl<false>(addr, &unused);
}

net::NextHop DpTrie6::lookup_counted(const net::Ipv6Addr& addr,
                                     MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

}  // namespace spal::trie
