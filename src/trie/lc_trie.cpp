#include "trie/lc_trie.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/sweep.h"
#include "trie/simd_dispatch.h"

namespace spal::trie {
namespace {

/// `count` bits of `word` starting at MSB-relative `pos`, right-aligned.
inline std::uint32_t extract(int pos, int count, std::uint32_t word) {
  if (count == 0) return 0;
  return (word >> (32 - pos - count)) &
         (count >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << count) - 1));
}

inline void prefetch(const void* address) { __builtin_prefetch(address, 0, 3); }

/// Below this many base entries the bulk build runs its per-pattern subtree
/// pass inline: small builds (including shard-thread epoch rebuilds, which
/// must not spawn nested pools) gain nothing from the sweep pool.
constexpr std::size_t kParallelBuildMin = 65536;

/// Root patterns handled per sweep task; 256 keeps task count well above
/// thread count at the default 16-bit root without per-task overhead
/// dominating.
constexpr std::size_t kPatternBatch = 256;

}  // namespace

LcTrie::LcTrie(const net::RouteTable& table, double fill_factor,
               int max_root_branch, std::size_t packed_limit)
    : fill_factor_(fill_factor), max_root_branch_(max_root_branch) {
  // Split into base vector (non-covering prefixes) and internal prefix
  // vector. Entries arrive sorted by (bits, length), so a prefix is internal
  // iff it covers the immediately following entry, and a stack of currently
  // open internal prefixes yields each entry's covering chain.
  const auto entries = table.entries();
  struct Open {
    net::Prefix prefix;
    std::int32_t pre_index;
  };
  std::vector<Open> stack;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const net::RouteEntry& e = entries[i];
    while (!stack.empty() && !stack.back().prefix.covers(e.prefix)) stack.pop_back();
    const std::int32_t parent = stack.empty() ? -1 : stack.back().pre_index;
    const bool internal =
        i + 1 < entries.size() && e.prefix.covers(entries[i + 1].prefix);
    if (internal) {
      const auto pre_index = static_cast<std::int32_t>(pre_.size());
      pre_.push_back(PreEntry{static_cast<std::uint8_t>(e.prefix.length()),
                              e.next_hop, parent});
      stack.push_back(Open{e.prefix, pre_index});
    } else {
      base_.push_back(BaseEntry{e.prefix.bits(),
                                static_cast<std::uint8_t>(e.prefix.length()),
                                e.next_hop, parent});
    }
  }
  if (base_.empty()) return;
  std::vector<WideNode> staging;
  build_nodes(staging);
  // Size-select the lookup layout: the packed 4-byte node iff every adr the
  // structure stores — child starts (< node count) and base-vector indexes —
  // fits the packed field (and the caller's test ceiling).
  const std::size_t limit = std::min<std::size_t>(packed_limit, Node::kAdrMask);
  if (staging.size() <= limit + 1 && base_.size() <= limit) {
    nodes_.reserve(staging.size());
    for (const WideNode& w : staging) {
      nodes_.push_back(Node::make(w.branch(), w.skip(), w.adr()));
    }
  } else {
    wide_nodes_ = std::move(staging);
  }
}

int LcTrie::compute_branch(std::size_t first, std::size_t n, int pos,
                           int* skip_out) const {
  // Path compression: bits shared by every entry in [first, first+n) from
  // `pos` on. Entries are sorted, so the common prefix of the first and last
  // is the common prefix of all.
  const std::uint32_t low = base_[first].bits;
  const std::uint32_t high = base_[first + n - 1].bits;
  int skip = 0;
  while (pos + skip < 32 &&
         extract(pos + skip, 1, low) == extract(pos + skip, 1, high)) {
    ++skip;
  }
  *skip_out = skip;
  const int branch_pos = pos + skip;
  if (n == 2) return 1;
  // Level compression: grow the branch while the number of distinct bit
  // patterns keeps the children at least fill_factor full.
  int branch = 1;
  for (;;) {
    const int next = branch + 1;
    if (branch_pos + next > 32) break;
    if (pos == 0 && next > max_root_branch_) break;
    if (static_cast<double>(n) <
        fill_factor_ * static_cast<double>(1u << next)) {
      break;
    }
    std::size_t patterns = 1;
    std::uint32_t prev = extract(branch_pos, next, base_[first].bits);
    for (std::size_t i = first + 1; i < first + n; ++i) {
      const std::uint32_t cur = extract(branch_pos, next, base_[i].bits);
      if (cur != prev) {
        ++patterns;
        prev = cur;
      }
    }
    if (static_cast<double>(patterns) <
        fill_factor_ * static_cast<double>(1u << next)) {
      break;
    }
    branch = next;
  }
  return branch;
}

void LcTrie::build_at(std::vector<WideNode>& out, std::size_t node_index,
                      std::size_t first, std::size_t n, int pos) const {
  if (n == 1) {
    out[node_index] = WideNode::make(0, 0, static_cast<std::uint32_t>(first));
    return;
  }
  int skip = 0;
  const int branch = compute_branch(first, n, pos, &skip);
  const std::size_t adr = out.size();
  out.resize(adr + (std::size_t{1} << branch));
  out[node_index] = WideNode::make(static_cast<std::uint32_t>(branch),
                                   static_cast<std::uint32_t>(skip),
                                   static_cast<std::uint32_t>(adr));
  const int child_pos = pos + skip + branch;
  std::size_t p = first;
  for (std::uint32_t pattern = 0; pattern < (1u << branch); ++pattern) {
    std::size_t k = 0;
    while (p + k < first + n &&
           extract(pos + skip, branch, base_[p + k].bits) == pattern) {
      ++k;
    }
    if (k == 0) {
      // Empty child: point at whichever sorted neighbour shares the longest
      // prefix with this slot's path — its prefix chain then contains every
      // prefix that can match addresses falling into the slot (the explicit
      // comparison at the leaf rejects the leaf itself when appropriate).
      const std::uint32_t slot_path =
          (pos + skip == 0 ? 0
                           : (base_[first].bits &
                              (~std::uint32_t{0} << (32 - pos - skip)))) |
          (pattern << (32 - child_pos));
      std::size_t neighbour;
      if (p == first) {
        neighbour = p;
      } else if (p == first + n) {
        neighbour = p - 1;
      } else {
        const auto lcp = [slot_path](std::uint32_t bits) {
          const std::uint32_t diff = bits ^ slot_path;
          return diff == 0 ? 32 : std::countl_zero(diff);
        };
        neighbour = lcp(base_[p - 1].bits) >= lcp(base_[p].bits) ? p - 1 : p;
      }
      build_at(out, adr + pattern, neighbour, 1, child_pos);
    } else {
      build_at(out, adr + pattern, p, k, child_pos);
      p += k;
    }
  }
}

void LcTrie::build_nodes(std::vector<WideNode>& out) const {
  out.clear();
  const std::size_t n = base_.size();
  if (n == 1) {
    out.push_back(WideNode::make(0, 0, 0));
    return;
  }
  // The sequential recursion lays the array out as [root][child slots
  // 0..2^branch) [descendants of child 0][descendants of child 1]... because
  // each root child's recursive call appends its entire subtree before the
  // next child's begins. Each child subtree touches only its own base-vector
  // subrange, so the subtrees build independently (in parallel for large
  // tables) into task-local arrays and splice back in child order with a
  // pure adr rebase — bit-for-bit the sequential array.
  int skip = 0;
  const int branch = compute_branch(0, n, 0, &skip);
  const std::size_t fan = std::size_t{1} << branch;
  const int child_pos = skip + branch;
  // Per-child base-vector subranges, plus the seed-identical neighbour
  // substitution for empty children (count == 0 => first is the neighbour).
  struct Task {
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<Task> tasks(fan);
  std::size_t p = 0;
  for (std::uint32_t pattern = 0; pattern < fan; ++pattern) {
    std::size_t k = 0;
    while (p + k < n && extract(skip, branch, base_[p + k].bits) == pattern) {
      ++k;
    }
    if (k == 0) {
      const std::uint32_t slot_path =
          (skip == 0 ? 0
                     : (base_[0].bits & (~std::uint32_t{0} << (32 - skip)))) |
          (pattern << (32 - child_pos));
      std::size_t neighbour;
      if (p == 0) {
        neighbour = p;
      } else if (p == n) {
        neighbour = p - 1;
      } else {
        const auto lcp = [slot_path](std::uint32_t bits) {
          const std::uint32_t diff = bits ^ slot_path;
          return diff == 0 ? 32 : std::countl_zero(diff);
        };
        neighbour = lcp(base_[p - 1].bits) >= lcp(base_[p].bits) ? p - 1 : p;
      }
      tasks[pattern] = Task{neighbour, 0};
    } else {
      tasks[pattern] = Task{p, k};
      p += k;
    }
  }
  // Build each child subtree into a task-group-local array. Group results
  // keep per-child start offsets so the splice can rebase each subtree.
  struct GroupNodes {
    std::vector<WideNode> nodes;
    std::vector<std::size_t> start;
  };
  const std::size_t group_count = (fan + kPatternBatch - 1) / kPatternBatch;
  std::vector<std::size_t> group_ids(group_count);
  for (std::size_t g = 0; g < group_count; ++g) group_ids[g] = g;
  const int threads = n >= kParallelBuildMin ? 0 : 1;
  const auto groups = sim::parallel_sweep(
      group_ids,
      [&](std::size_t gi) {
        GroupNodes g;
        const std::size_t begin = gi * kPatternBatch;
        const std::size_t end = std::min(begin + kPatternBatch, fan);
        g.start.reserve(end - begin);
        for (std::size_t q = begin; q < end; ++q) {
          const std::size_t self = g.nodes.size();
          g.start.push_back(self);
          g.nodes.emplace_back();
          const std::size_t count = std::max<std::size_t>(tasks[q].count, 1);
          build_at(g.nodes, self, tasks[q].first, count, child_pos);
        }
        return g;
      },
      threads);
  // Exact final size: root + child slots + every subtree's descendants.
  std::size_t total = 1 + fan;
  for (const GroupNodes& g : groups) total += g.nodes.size() - g.start.size();
  out.reserve(total);
  out.resize(1 + fan);
  out[0] = WideNode::make(static_cast<std::uint32_t>(branch),
                          static_cast<std::uint32_t>(skip), 1);
  std::size_t pattern = 0;
  for (const GroupNodes& g : groups) {
    for (std::size_t q = 0; q < g.start.size(); ++q, ++pattern) {
      const std::size_t s = g.start[q];
      const std::size_t e =
          q + 1 < g.start.size() ? g.start[q + 1] : g.nodes.size();
      // Descendants of this child begin where the array currently ends;
      // local adr a (pointing past the local subtree root at s) lands at
      // desc_base + (a - s - 1).
      const std::size_t desc_base = out.size();
      const auto rebase = [&](WideNode w) {
        if (w.branch() != 0) {
          w.adr_ = static_cast<std::uint32_t>(desc_base + (w.adr() - s - 1));
        }
        return w;
      };
      out[1 + pattern] = rebase(g.nodes[s]);
      for (std::size_t a = s + 1; a < e; ++a) out.push_back(rebase(g.nodes[a]));
    }
  }
}

template <bool kCounted, typename NodeT>
net::NextHop LcTrie::lookup_impl(const NodeT* nodes, net::Ipv4Addr addr,
                                 MemAccessCounter* counter) const {
  const std::uint32_t s = addr.value();
  if constexpr (kCounted) counter->record_arena(lc_detail::kArenaNodes);
  NodeT node = nodes[0];
  int pos = static_cast<int>(node.skip());
  while (node.branch() != 0) {
    if constexpr (kCounted) counter->record_arena(lc_detail::kArenaNodes);
    const int parent_branch = static_cast<int>(node.branch());
    node = nodes[node.adr() + extract(pos, parent_branch, s)];
    // Consume the parent's branch bits plus the child's skipped bits.
    pos += parent_branch + static_cast<int>(node.skip());
  }
  if constexpr (kCounted) counter->record_arena(lc_detail::kArenaBase);
  const BaseEntry& base = base_[node.adr()];
  const std::uint32_t diff = base.bits ^ s;
  if (extract(0, base.len, diff) == 0) return base.next_hop;
  // Explicit comparison failed; walk the chain of covering internal
  // prefixes (longest first).
  std::int32_t pre = base.pre;
  while (pre >= 0) {
    if constexpr (kCounted) counter->record_arena(lc_detail::kArenaPre);
    const PreEntry& entry = pre_[static_cast<std::size_t>(pre)];
    if (extract(0, entry.len, diff) == 0) return entry.next_hop;
    pre = entry.pre;
  }
  return net::kNoRoute;
}

net::NextHop LcTrie::lookup(net::Ipv4Addr addr) const {
  MemAccessCounter unused;
  if (!wide_nodes_.empty()) {
    return lookup_impl<false>(wide_nodes_.data(), addr, &unused);
  }
  if (nodes_.empty()) return net::kNoRoute;
  return lookup_impl<false>(nodes_.data(), addr, &unused);
}

void LcTrie::lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                          net::NextHop* out) const {
  if ((nodes_.empty() && wide_nodes_.empty()) || n < kMinWaveWidth) {
    for (std::size_t i = 0; i < n; ++i) out[i] = lookup(keys[i]);
    return;
  }
  // The AVX2 kernel gathers the packed 4-byte layout; the wide layout always
  // takes the generic pipeline.
  if (!wide_nodes_.empty()) {
    lookup_batch_pipeline(wide_nodes_.data(), keys, n, out);
    return;
  }
  if (resolved_simd_level() == SimdLevel::kAvx2) {
    lookup_batch_avx2(keys, n, out);
    return;
  }
  lookup_batch_pipeline(nodes_.data(), keys, n, out);
}

void LcTrie::lookup_batch_generic(const net::Ipv4Addr* keys, std::size_t n,
                                  net::NextHop* out) const {
  if (!wide_nodes_.empty()) {
    lookup_batch_pipeline(wide_nodes_.data(), keys, n, out);
  } else {
    lookup_batch_pipeline(nodes_.data(), keys, n, out);
  }
}

template <typename NodeT>
void LcTrie::lookup_batch_pipeline(const NodeT* nodes,
                                   const net::Ipv4Addr* keys, std::size_t n,
                                   net::NextHop* out) const {
  // Stage-synchronous pipeline (see LuleaTrie::lookup_batch for the model):
  // groups of G keys walk the trie in lockstep waves — every wave performs
  // one node read per still-walking lane, so the reads of a wave are
  // independent and overlap, and each lane prefetches the line its next
  // wave will read. Per-lane control flow is branch-free: the leaf/child
  // decision, the base-entry comparison and the covering-prefix chain all
  // compact their lane lists with arithmetic instead of predicted branches.
  constexpr std::size_t G = 2 * kLpmBatchLanes;
  // Branch-free masked extract of `count` bits at MSB-relative `pos`:
  // count == 0 yields 0 via the zero mask (the shift amount is clamped, so
  // it is well-defined where extract() would branch).
  const auto bits_at = [](std::uint32_t word, int pos, int count) {
    const std::uint32_t mask =
        count >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << count) - 1u);
    return (word >> ((32 - pos - count) & 31)) & mask;
  };
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = i + G <= n ? G : n - i;
    std::uint32_t s[G];    // full keys
    std::uint32_t idx[G];  // node index while walking, base index at a leaf
    std::uint32_t diff[G]; // key XOR base bits
    std::int32_t pre[G];   // current covering-prefix entry (-1 = none)
    int pos[G];            // address bits consumed
    std::uint8_t list_a[G];
    std::uint8_t list_b[G];

    std::uint8_t* walk = list_a;
    std::uint8_t* next_walk = list_b;
    std::size_t wn = g;
    for (std::size_t k = 0; k < g; ++k) {
      s[k] = keys[i + k].value();
      idx[k] = 0;
      pos[k] = 0;
      walk[k] = static_cast<std::uint8_t>(k);
    }
    // Node-walk waves: a lane whose node has branch == 0 found its leaf (its
    // child index is then just adr, the base-vector slot) and leaves the
    // walk list with the base entry's line prefetched.
    while (wn > 0) {
      std::size_t nw = 0;
      for (std::size_t c = 0; c < wn; ++c) {
        const std::size_t k = walk[c];
        const NodeT node = nodes[idx[k]];
        const int branch = static_cast<int>(node.branch());
        const int p = pos[k] + static_cast<int>(node.skip());
        idx[k] = node.adr() + bits_at(s[k], p, branch);
        pos[k] = p + branch;
        next_walk[nw] = static_cast<std::uint8_t>(k);
        nw += branch != 0 ? 1 : 0;
        prefetch(branch != 0 ? static_cast<const void*>(nodes + idx[k])
                             : static_cast<const void*>(base_.data() + idx[k]));
      }
      std::swap(walk, next_walk);
      wn = nw;
    }
    // Base wave: explicit prefix comparison; mismatches queue for the
    // covering-prefix chain (kNoRoute is written provisionally and stands
    // if the chain is empty or exhausts).
    std::uint8_t chain[G];
    std::size_t cn = 0;
    for (std::size_t k = 0; k < g; ++k) {
      const BaseEntry& base = base_[idx[k]];
      diff[k] = base.bits ^ s[k];
      const bool matched = bits_at(diff[k], 0, base.len) == 0;
      out[i + k] = matched ? base.next_hop : net::kNoRoute;
      pre[k] = matched ? -1 : base.pre;
      chain[cn] = static_cast<std::uint8_t>(k);
      cn += pre[k] >= 0 ? 1 : 0;
      prefetch(pre_.data() + (pre[k] >= 0 ? pre[k] : 0));
    }
    // Chain waves, longest covering prefix first. In-place compaction is
    // safe: the write index never passes the read index.
    while (cn > 0) {
      std::size_t nc = 0;
      for (std::size_t c = 0; c < cn; ++c) {
        const std::size_t k = chain[c];
        const PreEntry& entry = pre_[static_cast<std::size_t>(pre[k])];
        const bool matched = bits_at(diff[k], 0, entry.len) == 0;
        out[i + k] = matched ? entry.next_hop : out[i + k];
        pre[k] = matched ? -1 : entry.pre;
        chain[nc] = static_cast<std::uint8_t>(k);
        nc += pre[k] >= 0 ? 1 : 0;
        prefetch(pre_.data() + (pre[k] >= 0 ? pre[k] : 0));
      }
      cn = nc;
    }
    i += g;
  }
}

net::NextHop LcTrie::lookup_counted(net::Ipv4Addr addr,
                                    MemAccessCounter& counter) const {
  if (!wide_nodes_.empty()) {
    return lookup_impl<true>(wide_nodes_.data(), addr, &counter);
  }
  if (nodes_.empty()) return net::kNoRoute;
  return lookup_impl<true>(nodes_.data(), addr, &counter);
}

std::size_t LcTrie::storage_bytes() const {
  // Packed 4-byte trie nodes (5-bit branch, 7-bit skip, 20-bit adr) — or
  // 8-byte wide nodes past the 20-bit adr ceiling — 12-byte base entries
  // (address, length, next hop, chain pointer) and 8-byte internal-prefix
  // entries, following the JSAC paper's layout.
  const std::size_t node_bytes =
      wide_nodes_.empty() ? nodes_.size() * 4 : wide_nodes_.size() * 8;
  return node_bytes + base_.size() * 12 + pre_.size() * 8;
}

std::vector<ArenaSpan> LcTrie::arenas() const {
  const std::size_t node_bytes =
      wide_nodes_.empty() ? nodes_.size() * 4 : wide_nodes_.size() * 8;
  return {{"nodes", node_bytes},
          {"base", base_.size() * 12},
          {"pre", pre_.size() * 8}};
}

}  // namespace spal::trie
