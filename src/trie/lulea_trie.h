// Lulea compressed trie, after Degermark, Brodnik, Carlsson & Pink,
// "Small Forwarding Tables for Fast Routing Lookups", SIGCOMM 1997.
//
// Three levels with strides 16/8/8. Each level is a run-compressed interval
// map over its stride: a bit-vector marks interval heads, and rank queries
// over that vector index a dense pointer array. The rank machinery follows
// the original design: 16-bit bitmasks, a codeword array holding a maptable
// row id plus a 6-bit intra-group offset, a base-index array per group of
// four codewords, and a maptable giving per-position popcounts for each
// distinct bitmask. One rank lookup therefore costs four dependent memory
// accesses (codeword, base, maptable, pointer), so a full 3-level search is
// at most 12 — matching the original paper; the SPAL paper measures a mean
// of 6.2-6.6 accesses on its tables.
//
// Level-2/3 chunks follow the original's density split: a *sparse* chunk
// (at most 8 interval heads) stores the head offsets as one 8-byte block
// searched in a single read, while denser chunks use the codeword/maptable
// rank machinery. Deviation from the original (documented in DESIGN.md):
// the original's third ("very dense") form is folded into the dense form,
// and the maptable is built from the bitmasks actually present instead of
// enumerating all 678 complete-tree masks. Lookup cost and storage
// behaviour track the original closely.
//
// Host layout (DESIGN.md, "Flat arena layout"): the whole structure lives in
// five flat arrays shared by every level and chunk — codewords, base
// indexes, pointers, packed 8-byte sparse-head blocks, and packed 8-byte
// maptable rows — plus per-chunk descriptors that are just offsets into
// those arrays. There is no per-chunk allocation and no pointer chasing
// beyond the dependent reads the paper counts; the uncounted lookup() path
// is compiled without any counter bookkeeping.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

namespace lulea_detail {

/// Maptable shared by every level/chunk of one trie: one row of 16 4-bit
/// popcounts per distinct 16-bit bitmask, packed in a single uint64_t (the
/// documented 8-bytes-per-row storage model, now also the host layout).
class MapTable {
 public:
  /// Returns the row id for `mask`, creating the row on first sight.
  std::uint16_t intern(std::uint16_t mask);

  /// Set bits of the row's mask at positions [0, pos] inclusive. Rows store
  /// exclusive 4-bit counts; the bit at `pos` itself comes from the mask,
  /// which the same row read yields.
  int rank_inclusive(std::uint16_t row, int pos) const {
    return static_cast<int>((rows_[row] >> (pos * 4)) & 0xF) +
           static_cast<int>((masks_[row] >> pos) & 1u);
  }

  /// Prefetch targets for the batched pipeline (the row and its mask are
  /// the two lines a rank read can miss on).
  const std::uint64_t* row_addr(std::uint16_t row) const { return &rows_[row]; }
  const std::uint32_t* mask_addr(std::uint16_t row) const { return &masks_[row]; }

  /// Raw arena views for the SIMD kernels: the SSE4.2/AVX2 tiers replace the
  /// nibble-row read with popcnt(mask & below-mask), so they index masks_
  /// directly. Masks are stored zero-extended to 32 bits so a 4-byte vector
  /// gather of row i never reads past the array.
  const std::uint64_t* rows_data() const { return rows_.data(); }
  const std::uint32_t* masks_data() const { return masks_.data(); }

  std::size_t row_count() const { return rows_.size(); }

  /// Storage model: 16 four-bit counts per row = 8 bytes per row.
  std::size_t storage_bytes() const { return rows_.size() * 8; }

 private:
  std::vector<std::uint64_t> rows_;  // 16 nibbles per row, nibble i = rank<(i)
  std::vector<std::uint32_t> masks_;  // 16-bit bitmask of row i, zero-extended
  std::unordered_map<std::uint16_t, std::uint16_t> index_;
};

/// Pointer-array entry: either a next-hop-table index or a chunk id.
struct Pointer {
  static constexpr std::uint32_t kChunkFlag = 0x8000'0000u;
  std::uint32_t raw = 0;

  static Pointer next_hop(std::uint32_t index) { return Pointer{index}; }
  static Pointer chunk(std::uint32_t id) { return Pointer{id | kChunkFlag}; }
  bool is_chunk() const { return raw & kChunkFlag; }
  std::uint32_t value() const { return raw & ~kChunkFlag; }
};

/// One codeword: maptable row id plus the count of interval heads in the
/// earlier masks of its group of four.
struct Codeword {
  std::uint16_t row = 0;
  std::uint8_t offset = 0;
};

/// A dense (codeword-form) structure inside the shared arena: its codewords
/// start at cw_base, its bases at cw_base / 4 (every structure appends
/// codewords in multiples of four masks), its pointers at ptr_base.
struct DenseRef {
  std::uint32_t cw_base = 0;
  std::uint32_t ptr_base = 0;
};

/// A level-2/3 chunk descriptor. Dense chunks reference the shared
/// codeword/base arrays; sparse chunks (<= 8 interval heads) reference one
/// packed 8-byte head block. Descriptor reads are not charged as memory
/// accesses (they replace what used to be the Chunk object header).
struct ChunkRef {
  static constexpr std::uint32_t kSparseFlag = 0x8000'0000u;
  static constexpr std::uint32_t kHeadsMask = 0x07FF'FFFFu;

  /// Dense: codeword base. Sparse: kSparseFlag | (head_count-1) << 27 |
  /// index into the sparse-heads array.
  std::uint32_t meta = 0;
  std::uint32_t ptr_base = 0;

  bool is_sparse() const { return meta & kSparseFlag; }
};

/// Arena indexes for counted-lookup attribution; must match the order
/// LuleaTrie::arenas() lists its spans.
enum LuleaArena : std::size_t {
  kArenaCodewords = 0,
  kArenaBases = 1,
  kArenaMaptable = 2,
  kArenaPointers = 3,
  kArenaSparseHeads = 4,
  kArenaNextHops = 5,
};

}  // namespace lulea_detail

/// Build-path selector. kBulk is the sort-based single-pass builder
/// (parallel per-slot chunk construction, exact arena pre-sizing) and the
/// default; kReference is the original per-slot std::map builder kept as the
/// byte-identity oracle for tests and as the bench_scale build-time
/// comparator. Both produce bit-identical structures.
enum class LuleaBuildMode { kBulk, kReference };

class LuleaTrie final : public LpmIndex {
 public:
  explicit LuleaTrie(const net::RouteTable& table,
                     LuleaBuildMode mode = LuleaBuildMode::kBulk);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  void lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                    net::NextHop* out) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::vector<ArenaSpan> arenas() const override;
  std::string_view name() const override { return "lulea"; }

  std::size_t level2_chunk_count() const { return level2_.size(); }
  std::size_t level3_chunk_count() const { return level3_.size(); }
  std::size_t sparse_chunk_count() const;

 private:
  /// Below this many keys the batch pipelines' setup cost outweighs the
  /// memory-level parallelism they buy (the BENCH_lpm.json batch=2
  /// regression); lookup_batch falls back to the plain scalar loop.
  static constexpr std::size_t kMinWaveWidth = 4;

  // Per-dispatch-level batch kernels (see trie/simd_dispatch.h). All three
  // produce bit-identical results; lookup_batch picks one at runtime from
  // resolved_simd_level(). The SIMD tiers live in lulea_trie_simd.cpp and
  // compile to generic-calling stubs on non-x86 targets.
  void lookup_batch_generic(const net::Ipv4Addr* keys, std::size_t n,
                            net::NextHop* out) const;
  /// Generic wave pipeline with the maptable nibble read replaced by
  /// popcnt over the interned bitmask (one dependent load less per rank).
  void lookup_batch_sse42(const net::Ipv4Addr* keys, std::size_t n,
                          net::NextHop* out) const;
  /// Full-vector lane waves: gathers over the flat arenas, pshufb popcount
  /// ranks, byte-compare sparse head scans, masked gathers for divergence.
  void lookup_batch_avx2(const net::Ipv4Addr* keys, std::size_t n,
                         net::NextHop* out) const;
  /// Scalar lookup used for sub-vector tails of the AVX2 kernel: same reads
  /// as lookup(), with ranks from popcnt + BMI2 bzhi instead of the nibble
  /// row.
  net::NextHop lookup_scalar_bmi2(net::Ipv4Addr addr) const;
  /// SSE4.2-tier analogue: popcnt rank with a shift-built below-mask. Both
  /// scalars skip the nibble-row read, so they also serve the
  /// below-kMinWaveWidth fallback at their levels.
  net::NextHop lookup_scalar_popcnt(net::Ipv4Addr addr) const;

  template <bool kCounted>
  net::NextHop lookup_impl(net::Ipv4Addr addr, MemAccessCounter* counter) const;

  /// The four dependent reads of one codeword-form rank lookup.
  template <bool kCounted>
  lulea_detail::Pointer dense_lookup(const lulea_detail::DenseRef& ref,
                                     std::uint32_t pos,
                                     MemAccessCounter* counter) const;

  /// Chunk dispatch: dense rank lookup or one-read sparse head scan.
  template <bool kCounted>
  lulea_detail::Pointer chunk_lookup(const lulea_detail::ChunkRef& chunk,
                                     std::uint32_t pos,
                                     MemAccessCounter* counter) const;

  /// Run-compresses a dense per-position pointer map (size divisible by 16)
  /// into the shared arena; returns the new structure's offsets.
  lulea_detail::DenseRef append_compressed(const std::vector<std::uint32_t>& dense);

  /// Builds a level-2/3 chunk (256 positions): sparse head block when at
  /// most kSparseLimit interval heads, codeword form otherwise.
  lulea_detail::ChunkRef append_chunk(const std::vector<std::uint32_t>& dense);

  std::uint32_t intern_next_hop(net::NextHop hop);

  /// The original builder: per-slot std::map bucketing, per-chunk arena
  /// appends. Kept as the bit-identity oracle for the bulk path.
  void build_reference(const net::RouteTable& table);

  /// Sort-based single-pass builder: one classifying scan over the (already
  /// sorted) table, a sequential next-hop interning pre-pass that replicates
  /// the reference paint order, per-slot chunk construction parallelized
  /// over the sweep pool into piece-local arenas, then a sequential splice
  /// into exactly pre-sized shared arenas. Bit-identical to build_reference.
  void build_bulk(const net::RouteTable& table);

  static constexpr std::size_t kSparseLimit = 8;

  lulea_detail::MapTable maptable_;
  // The arena: every level and chunk indexes into these shared arrays.
  std::vector<lulea_detail::Codeword> codewords_;
  std::vector<std::uint32_t> bases_;
  std::vector<lulea_detail::Pointer> pointers_;
  std::vector<std::uint64_t> sparse_heads_;  // 8 ascending head offsets each
  lulea_detail::DenseRef level1_;
  std::vector<lulea_detail::ChunkRef> level2_;
  std::vector<lulea_detail::ChunkRef> level3_;
  std::vector<net::NextHop> next_hop_table_;
  std::unordered_map<net::NextHop, std::uint32_t> next_hop_index_;
};

}  // namespace spal::trie
