// Lulea compressed trie, after Degermark, Brodnik, Carlsson & Pink,
// "Small Forwarding Tables for Fast Routing Lookups", SIGCOMM 1997.
//
// Three levels with strides 16/8/8. Each level is a run-compressed interval
// map over its stride: a bit-vector marks interval heads, and rank queries
// over that vector index a dense pointer array. The rank machinery follows
// the original design: 16-bit bitmasks, a codeword array holding a maptable
// row id plus a 6-bit intra-group offset, a base-index array per group of
// four codewords, and a maptable giving per-position popcounts for each
// distinct bitmask. One rank lookup therefore costs four dependent memory
// accesses (codeword, base, maptable, pointer), so a full 3-level search is
// at most 12 — matching the original paper; the SPAL paper measures a mean
// of 6.2-6.6 accesses on its tables.
//
// Level-2/3 chunks follow the original's density split: a *sparse* chunk
// (at most 8 interval heads) stores the head offsets as one 8-byte block
// searched in a single read, while denser chunks use the codeword/maptable
// rank machinery. Deviation from the original (documented in DESIGN.md):
// the original's third ("very dense") form is folded into the dense form,
// and the maptable is built from the bitmasks actually present instead of
// enumerating all 678 complete-tree masks. Lookup cost and storage
// behaviour track the original closely.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

namespace lulea_detail {

/// Maptable shared by every level/chunk of one trie: one 16-entry row of
/// 4-bit popcounts per distinct 16-bit bitmask.
class MapTable {
 public:
  /// Returns the row id for `mask`, creating the row on first sight.
  std::uint16_t intern(std::uint16_t mask);

  /// Set bits of the row's mask at positions [0, pos] inclusive. Rows store
  /// exclusive 4-bit counts; the bit at `pos` itself comes from the mask,
  /// which the same row read yields.
  int rank_inclusive(std::uint16_t row, int pos) const {
    return rows_[row][static_cast<std::size_t>(pos)] +
           static_cast<int>((masks_[row] >> pos) & 1u);
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Storage model: 16 four-bit counts per row = 8 bytes per row.
  std::size_t storage_bytes() const { return rows_.size() * 8; }

 private:
  std::vector<std::array<std::uint8_t, 16>> rows_;
  std::vector<std::uint16_t> masks_;
  std::unordered_map<std::uint16_t, std::uint16_t> index_;
};

/// Pointer-array entry: either a next-hop-table index or a chunk id.
struct Pointer {
  static constexpr std::uint32_t kChunkFlag = 0x8000'0000u;
  std::uint32_t raw = 0;

  static Pointer next_hop(std::uint32_t index) { return Pointer{index}; }
  static Pointer chunk(std::uint32_t id) { return Pointer{id | kChunkFlag}; }
  bool is_chunk() const { return raw & kChunkFlag; }
  std::uint32_t value() const { return raw & ~kChunkFlag; }
};

/// One run-compressed level: maps each of 2^width positions to a Pointer,
/// storing only interval heads plus the rank structure.
class CompressedLevel {
 public:
  /// Builds from the dense per-position pointer values (size 2^width).
  /// Positions with equal consecutive raw values are merged into runs.
  CompressedLevel(const std::vector<std::uint32_t>& dense, MapTable& maptable);
  CompressedLevel() = default;

  /// Pointer governing `pos`; counts the 4 dependent reads.
  Pointer lookup(std::uint32_t pos, const MapTable& maptable,
                 MemAccessCounter* counter) const;

  std::size_t pointer_count() const { return pointers_.size(); }

  /// Codewords (2 B) + base indexes (4 B) + pointers (2 B each, the
  /// original's 16-bit pointer model). The maptable is accounted once per
  /// trie, not per level.
  std::size_t storage_bytes() const {
    return codewords_.size() * 2 + bases_.size() * 4 + pointers_.size() * 2;
  }

 private:
  struct Codeword {
    std::uint16_t row;    ///< maptable row id
    std::uint8_t offset;  ///< set bits in earlier masks of this 4-mask group
  };
  std::vector<Codeword> codewords_;   // one per 16 positions
  std::vector<std::uint32_t> bases_;  // one per 4 codewords
  std::vector<Pointer> pointers_;     // one per interval head
};

/// A 256-position level-2/3 chunk: sparse form for <= 8 interval heads
/// (original Lulea), dense codeword form otherwise.
class Chunk {
 public:
  static constexpr std::size_t kSparseLimit = 8;

  Chunk(const std::vector<std::uint32_t>& dense, MapTable& maptable);

  Pointer lookup(std::uint32_t pos, const MapTable& maptable,
                 MemAccessCounter* counter) const;

  bool is_sparse() const { return dense_ == nullptr; }
  std::size_t storage_bytes() const;

 private:
  // Sparse form: head positions, ascending; heads_[i] governs positions
  // [heads_[i], heads_[i+1]). heads_[0] is always 0.
  std::vector<std::uint8_t> heads_;
  std::vector<Pointer> pointers_;
  std::unique_ptr<CompressedLevel> dense_;  // dense form when non-null
};

}  // namespace lulea_detail

class LuleaTrie final : public LpmIndex {
 public:
  explicit LuleaTrie(const net::RouteTable& table);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "lulea"; }

  std::size_t level2_chunk_count() const { return level2_.size(); }
  std::size_t level3_chunk_count() const { return level3_.size(); }
  std::size_t sparse_chunk_count() const;

 private:
  net::NextHop lookup_impl(net::Ipv4Addr addr, MemAccessCounter* counter) const;

  std::uint32_t intern_next_hop(net::NextHop hop);

  lulea_detail::MapTable maptable_;
  lulea_detail::CompressedLevel level1_;
  std::vector<lulea_detail::Chunk> level2_;
  std::vector<lulea_detail::Chunk> level3_;
  std::vector<net::NextHop> next_hop_table_;
  std::unordered_map<net::NextHop, std::uint32_t> next_hop_index_;
};

}  // namespace spal::trie
