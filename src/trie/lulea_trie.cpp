#include "trie/lulea_trie.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sim/sweep.h"
#include "trie/simd_dispatch.h"

namespace spal::trie {
namespace lulea_detail {

std::uint16_t MapTable::intern(std::uint16_t mask) {
  const auto [it, inserted] =
      index_.try_emplace(mask, static_cast<std::uint16_t>(rows_.size()));
  if (inserted) {
    std::uint64_t row = 0;
    int running = 0;
    for (int pos = 0; pos < 16; ++pos) {
      // Exclusive rank: set bits strictly before `pos` (fits 4 bits); the
      // bit at `pos` itself is recovered from the mask in rank_inclusive().
      row |= static_cast<std::uint64_t>(running) << (pos * 4);
      running += (mask >> pos) & 1;
    }
    rows_.push_back(row);
    masks_.push_back(mask);
  }
  return it->second;
}

}  // namespace lulea_detail

using lulea_detail::ChunkRef;
using lulea_detail::Codeword;
using lulea_detail::DenseRef;
using lulea_detail::Pointer;

namespace {

/// Shared core of append_compressed: run-compresses `dense` into the given
/// arena vectors. `intern(mask)` supplies the codeword's maptable row — the
/// member path interns into the trie's maptable immediately, the bulk
/// builder's piece-local path records the raw mask for interning at splice
/// time (so maptable row ids are still assigned in global chunk order).
template <typename InternFn>
DenseRef append_compressed_into(std::vector<Codeword>& codewords,
                                std::vector<std::uint32_t>& bases,
                                std::vector<Pointer>& pointers,
                                InternFn&& intern,
                                const std::vector<std::uint32_t>& dense) {
  DenseRef ref{static_cast<std::uint32_t>(codewords.size()),
               static_cast<std::uint32_t>(pointers.size())};
  const std::size_t n = dense.size();
  const std::size_t num_masks = (n + 15) / 16;
  std::uint32_t total_heads = 0;
  std::uint32_t group_base = 0;
  for (std::size_t m = 0; m < num_masks; ++m) {
    if (m % 4 == 0) {
      group_base = total_heads;
      bases.push_back(group_base);
    }
    std::uint16_t mask = 0;
    const std::uint32_t group_offset = total_heads - group_base;
    for (std::size_t j = 0; j < 16 && m * 16 + j < n; ++j) {
      const std::size_t pos = m * 16 + j;
      const bool head = pos == 0 || dense[pos] != dense[pos - 1];
      if (head) {
        mask |= static_cast<std::uint16_t>(1u << j);
        pointers.push_back(Pointer{dense[pos]});
        ++total_heads;
      }
    }
    codewords.push_back(
        Codeword{intern(mask), static_cast<std::uint8_t>(group_offset)});
  }
  return ref;
}

/// Shared core of append_chunk; see append_compressed_into for InternFn.
template <typename InternFn>
ChunkRef append_chunk_into(std::vector<Codeword>& codewords,
                           std::vector<std::uint32_t>& bases,
                           std::vector<Pointer>& pointers,
                           std::vector<std::uint64_t>& sparse_heads,
                           InternFn&& intern, std::size_t sparse_limit,
                           const std::vector<std::uint32_t>& dense) {
  std::size_t heads = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (i == 0 || dense[i] != dense[i - 1]) ++heads;
  }
  if (heads > sparse_limit) {
    const DenseRef ref = append_compressed_into(
        codewords, bases, pointers, std::forward<InternFn>(intern), dense);
    return ChunkRef{ref.cw_base, ref.ptr_base};
  }
  // Sparse form: the ascending head offsets packed into one 8-byte block
  // (byte i = offset of head i), searched in a single read.
  ChunkRef ref{ChunkRef::kSparseFlag |
                   (static_cast<std::uint32_t>(heads - 1) << 27) |
                   static_cast<std::uint32_t>(sparse_heads.size()),
               static_cast<std::uint32_t>(pointers.size())};
  std::uint64_t block = 0;
  std::size_t slot = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (i == 0 || dense[i] != dense[i - 1]) {
      block |= static_cast<std::uint64_t>(i) << (8 * slot);
      ++slot;
      pointers.push_back(Pointer{dense[i]});
    }
  }
  sparse_heads.push_back(block);
  return ref;
}

}  // namespace

lulea_detail::DenseRef LuleaTrie::append_compressed(
    const std::vector<std::uint32_t>& dense) {
  return append_compressed_into(
      codewords_, bases_, pointers_,
      [this](std::uint16_t mask) { return maptable_.intern(mask); }, dense);
}

lulea_detail::ChunkRef LuleaTrie::append_chunk(
    const std::vector<std::uint32_t>& dense) {
  return append_chunk_into(
      codewords_, bases_, pointers_, sparse_heads_,
      [this](std::uint16_t mask) { return maptable_.intern(mask); },
      kSparseLimit, dense);
}

template <bool kCounted>
Pointer LuleaTrie::dense_lookup(const DenseRef& ref, std::uint32_t pos,
                                MemAccessCounter* counter) const {
  const std::uint32_t m = pos >> 4;
  const int low = static_cast<int>(pos & 15u);
  if constexpr (kCounted) {
    counter->record_arena(lulea_detail::kArenaCodewords);  // codeword read
  }
  const Codeword cw = codewords_[ref.cw_base + m];
  if constexpr (kCounted) {
    counter->record_arena(lulea_detail::kArenaBases);  // base-index read
  }
  // Every structure appends codewords in multiples of four masks, so its
  // base block always starts at cw_base / 4.
  const std::uint32_t base = bases_[(ref.cw_base >> 2) + (m >> 2)];
  if constexpr (kCounted) {
    counter->record_arena(lulea_detail::kArenaMaptable);  // maptable row read
  }
  // Inclusive rank of `pos`; every position is governed by some head, so
  // the rank is always >= 1.
  const std::uint32_t rank =
      base + cw.offset +
      static_cast<std::uint32_t>(maptable_.rank_inclusive(cw.row, low));
  if constexpr (kCounted) {
    counter->record_arena(lulea_detail::kArenaPointers);  // pointer read
  }
  return pointers_[ref.ptr_base + rank - 1];
}

template <bool kCounted>
Pointer LuleaTrie::chunk_lookup(const ChunkRef& chunk, std::uint32_t pos,
                                MemAccessCounter* counter) const {
  if (!chunk.is_sparse()) {
    return dense_lookup<kCounted>(DenseRef{chunk.meta & ~ChunkRef::kSparseFlag,
                                           chunk.ptr_base},
                                  pos, counter);
  }
  // Sparse form: the whole head block is one 8-byte read, the governing
  // pointer a second read.
  if constexpr (kCounted) {
    counter->record_arena(lulea_detail::kArenaSparseHeads);  // head block read
  }
  const std::uint64_t block = sparse_heads_[chunk.meta & ChunkRef::kHeadsMask];
  std::uint32_t index = (chunk.meta >> 27) & 7u;  // head_count - 1
  while (index > 0 && ((block >> (8 * index)) & 0xFF) > pos) --index;
  if constexpr (kCounted) {
    counter->record_arena(lulea_detail::kArenaPointers);  // pointer read
  }
  return pointers_[chunk.ptr_base + index];
}

LuleaTrie::LuleaTrie(const net::RouteTable& table, LuleaBuildMode mode) {
  if (mode == LuleaBuildMode::kBulk) {
    build_bulk(table);
  } else {
    build_reference(table);
  }
}

void LuleaTrie::build_reference(const net::RouteTable& table) {
  intern_next_hop(net::kNoRoute);  // index 0 = no route

  // Bucket prefixes by level.
  std::vector<net::RouteEntry> short_prefixes;           // len 0..16
  std::map<std::uint32_t, std::vector<net::RouteEntry>> mid;   // top16 -> len 17..24
  std::map<std::uint32_t, std::vector<net::RouteEntry>> lng;   // top24 -> len 25..32
  for (const net::RouteEntry& e : table.entries()) {
    if (e.prefix.length() <= 16) {
      short_prefixes.push_back(e);
    } else if (e.prefix.length() <= 24) {
      mid[e.prefix.bits() >> 16].push_back(e);
    } else {
      lng[e.prefix.bits() >> 8].push_back(e);
    }
  }
  auto by_length = [](const net::RouteEntry& a, const net::RouteEntry& b) {
    return a.prefix.length() < b.prefix.length();
  };
  std::stable_sort(short_prefixes.begin(), short_prefixes.end(), by_length);

  // Level-1 dense map: paint next hops shortest-first so longer prefixes
  // override (leaf pushing), then carve out chunk slots.
  std::vector<std::uint32_t> dense1(1u << 16, Pointer::next_hop(0).raw);
  for (const net::RouteEntry& e : short_prefixes) {
    const std::uint32_t first = e.prefix.bits() >> 16;
    const std::uint32_t last = e.prefix.range_last().value() >> 16;
    const std::uint32_t hop = intern_next_hop(e.next_hop);
    for (std::uint32_t s = first; s <= last; ++s) {
      dense1[s] = Pointer::next_hop(hop).raw;
    }
  }

  // The set of level-2 chunk roots: any 16-bit slot owning a longer prefix.
  std::map<std::uint32_t, std::vector<net::RouteEntry>> chunk_roots = mid;
  for (const auto& [top24, entries] : lng) {
    chunk_roots.try_emplace(top24 >> 8);  // ensure the slot exists
    (void)entries;
  }

  for (auto& [slot, entries] : chunk_roots) {
    std::stable_sort(entries.begin(), entries.end(), by_length);
    // Default for uncovered positions: the next hop level 1 painted here.
    const std::uint32_t default2 = dense1[slot];
    std::vector<std::uint32_t> dense2(256, default2);
    for (const net::RouteEntry& e : entries) {
      const std::uint32_t first = (e.prefix.bits() >> 8) & 0xffu;
      const std::uint32_t last = (e.prefix.range_last().value() >> 8) & 0xffu;
      const std::uint32_t hop = intern_next_hop(e.next_hop);
      for (std::uint32_t t = first; t <= last; ++t) {
        dense2[t] = Pointer::next_hop(hop).raw;
      }
    }
    // Level-3 chunks nested under this slot.
    const auto lo = lng.lower_bound(slot << 8);
    const auto hi = lng.upper_bound((slot << 8) | 0xffu);
    for (auto it = lo; it != hi; ++it) {
      auto long_entries = it->second;
      std::stable_sort(long_entries.begin(), long_entries.end(), by_length);
      const std::uint32_t t = it->first & 0xffu;
      const std::uint32_t default3 = dense2[t];
      std::vector<std::uint32_t> dense3(256, default3);
      for (const net::RouteEntry& e : long_entries) {
        const std::uint32_t first = e.prefix.bits() & 0xffu;
        const std::uint32_t last = e.prefix.range_last().value() & 0xffu;
        const std::uint32_t hop = intern_next_hop(e.next_hop);
        for (std::uint32_t u = first; u <= last; ++u) {
          dense3[u] = Pointer::next_hop(hop).raw;
        }
      }
      const std::uint32_t l3_id = static_cast<std::uint32_t>(level3_.size());
      level3_.push_back(append_chunk(dense3));
      dense2[t] = Pointer::chunk(l3_id).raw;
    }
    const std::uint32_t l2_id = static_cast<std::uint32_t>(level2_.size());
    level2_.push_back(append_chunk(dense2));
    dense1[slot] = Pointer::chunk(l2_id).raw;
  }

  level1_ = append_compressed(dense1);
}

void LuleaTrie::build_bulk(const net::RouteTable& table) {
  // Below this many entries the sweep-pool fan-out costs more than it buys
  // (and epoch rebuilds of small per-LC fragments must not spawn a pool from
  // inside a shard worker); the same code runs inline on one thread.
  constexpr std::size_t kBulkParallelMin = 65536;
  constexpr std::size_t kSlotBatch = 256;  // slots per worker task

  intern_next_hop(net::kNoRoute);  // index 0 = no route

  // One classifying pass. entries() is sorted by (bits, length), so the mids
  // arrive already grouped by ascending top-16 slot and the longs by
  // ascending top-24 group — within each group in exactly the order the
  // reference builder's per-slot std::map vectors held them.
  std::vector<net::RouteEntry> shorts, mids, longs;
  for (const net::RouteEntry& e : table.entries()) {
    if (e.prefix.length() <= 16) {
      shorts.push_back(e);
    } else if (e.prefix.length() <= 24) {
      mids.push_back(e);
    } else {
      longs.push_back(e);
    }
  }
  auto by_length = [](const net::RouteEntry& a, const net::RouteEntry& b) {
    return a.prefix.length() < b.prefix.length();
  };
  std::stable_sort(shorts.begin(), shorts.end(), by_length);

  // Level-1 dense map, painted shortest-first. Hop interning order is part
  // of the byte-identity contract with build_reference: kNoRoute, then the
  // shorts in paint order, then (below) the mid/long entries in ascending
  // slot order.
  std::vector<std::uint32_t> dense1(1u << 16, Pointer::next_hop(0).raw);
  for (const net::RouteEntry& e : shorts) {
    const std::uint32_t first = e.prefix.bits() >> 16;
    const std::uint32_t last = e.prefix.range_last().value() >> 16;
    const std::uint32_t hop = intern_next_hop(e.next_hop);
    for (std::uint32_t s = first; s <= last; ++s) {
      dense1[s] = Pointer::next_hop(hop).raw;
    }
  }

  // Slot directory: every 16-bit slot owning a longer prefix, with its mid
  // range in `mids` and its long groups (one per distinct top-24) in
  // `longs`. Built with one merge scan over the two sorted sequences.
  struct LongGroup {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  struct Slot {
    std::uint32_t slot = 0;
    std::size_t mid_begin = 0, mid_end = 0;
    std::size_t lg_begin = 0, lg_end = 0;  // range in long_groups
    std::uint32_t l3_base = 0;             // global id of first level-3 chunk
  };
  std::vector<LongGroup> long_groups;
  std::vector<Slot> slots;
  {
    std::size_t mi = 0, li = 0;
    while (mi < mids.size() || li < longs.size()) {
      std::uint32_t cur = 0xFFFFFFFFu;
      if (mi < mids.size()) cur = std::min(cur, mids[mi].prefix.bits() >> 16);
      if (li < longs.size()) cur = std::min(cur, longs[li].prefix.bits() >> 16);
      Slot s;
      s.slot = cur;
      s.mid_begin = mi;
      while (mi < mids.size() && (mids[mi].prefix.bits() >> 16) == cur) ++mi;
      s.mid_end = mi;
      s.lg_begin = long_groups.size();
      while (li < longs.size() && (longs[li].prefix.bits() >> 16) == cur) {
        const std::uint32_t top24 = longs[li].prefix.bits() >> 8;
        LongGroup g;
        g.begin = li;
        while (li < longs.size() && (longs[li].prefix.bits() >> 8) == top24) ++li;
        g.end = li;
        long_groups.push_back(g);
      }
      s.lg_end = long_groups.size();
      slots.push_back(s);
    }
  }
  std::uint32_t l3_total = 0;
  for (Slot& s : slots) {
    s.l3_base = l3_total;
    l3_total += static_cast<std::uint32_t>(s.lg_end - s.lg_begin);
  }

  const int threads = table.entries().size() >= kBulkParallelMin ? 0 : 1;
  std::vector<std::size_t> batches((slots.size() + kSlotBatch - 1) / kSlotBatch);
  for (std::size_t i = 0; i < batches.size(); ++i) batches[i] = i;

  // Parallel pass 1: the per-group stable length sorts (disjoint ranges).
  sim::parallel_sweep(
      batches,
      [&](std::size_t b) {
        const std::size_t lo = b * kSlotBatch;
        const std::size_t hi = std::min(lo + kSlotBatch, slots.size());
        for (std::size_t i = lo; i < hi; ++i) {
          const Slot& s = slots[i];
          std::stable_sort(mids.begin() + static_cast<std::ptrdiff_t>(s.mid_begin),
                           mids.begin() + static_cast<std::ptrdiff_t>(s.mid_end),
                           by_length);
          for (std::size_t g = s.lg_begin; g < s.lg_end; ++g) {
            std::stable_sort(
                longs.begin() + static_cast<std::ptrdiff_t>(long_groups[g].begin),
                longs.begin() + static_cast<std::ptrdiff_t>(long_groups[g].end),
                by_length);
          }
        }
        return 0;
      },
      threads);

  // Sequential hop-interning pre-pass in the reference paint order, so the
  // parallel painters below can resolve hop ids with read-only map lookups.
  for (const Slot& s : slots) {
    for (std::size_t i = s.mid_begin; i < s.mid_end; ++i) {
      intern_next_hop(mids[i].next_hop);
    }
    for (std::size_t g = s.lg_begin; g < s.lg_end; ++g) {
      for (std::size_t i = long_groups[g].begin; i < long_groups[g].end; ++i) {
        intern_next_hop(longs[i].next_hop);
      }
    }
  }

  // Parallel pass 2: per-slot chunk construction into piece-local arenas.
  // Chunk pointers are already global (the l3_base prefix sums); codeword
  // rows stay raw masks until the splice interns them in global chunk order.
  struct SlotPiece {
    std::vector<Codeword> codewords;
    std::vector<std::uint16_t> raw_masks;  // parallel to codewords
    std::vector<std::uint32_t> bases;
    std::vector<Pointer> pointers;
    std::vector<std::uint64_t> sparse_heads;
    std::vector<ChunkRef> chunks;  // piece-local offsets; last = level-2 chunk
  };
  auto hop_id = [this](net::NextHop hop) {
    return next_hop_index_.find(hop)->second;  // pre-interned above
  };
  const auto piece_batches = sim::parallel_sweep(
      batches,
      [&](std::size_t b) {
        std::vector<SlotPiece> out;
        const std::size_t lo = b * kSlotBatch;
        const std::size_t hi = std::min(lo + kSlotBatch, slots.size());
        out.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          const Slot& s = slots[i];
          SlotPiece piece;
          auto record_mask = [&piece](std::uint16_t mask) {
            piece.raw_masks.push_back(mask);
            return static_cast<std::uint16_t>(0);
          };
          std::vector<std::uint32_t> dense2(256, dense1[s.slot]);
          for (std::size_t m = s.mid_begin; m < s.mid_end; ++m) {
            const net::RouteEntry& e = mids[m];
            const std::uint32_t first = (e.prefix.bits() >> 8) & 0xffu;
            const std::uint32_t last =
                (e.prefix.range_last().value() >> 8) & 0xffu;
            const std::uint32_t hop = hop_id(e.next_hop);
            for (std::uint32_t t = first; t <= last; ++t) {
              dense2[t] = Pointer::next_hop(hop).raw;
            }
          }
          std::uint32_t l3 = 0;
          for (std::size_t g = s.lg_begin; g < s.lg_end; ++g) {
            const std::uint32_t t =
                (longs[long_groups[g].begin].prefix.bits() >> 8) & 0xffu;
            std::vector<std::uint32_t> dense3(256, dense2[t]);
            for (std::size_t j = long_groups[g].begin; j < long_groups[g].end;
                 ++j) {
              const net::RouteEntry& e = longs[j];
              const std::uint32_t first = e.prefix.bits() & 0xffu;
              const std::uint32_t last = e.prefix.range_last().value() & 0xffu;
              const std::uint32_t hop = hop_id(e.next_hop);
              for (std::uint32_t u = first; u <= last; ++u) {
                dense3[u] = Pointer::next_hop(hop).raw;
              }
            }
            piece.chunks.push_back(append_chunk_into(
                piece.codewords, piece.bases, piece.pointers,
                piece.sparse_heads, record_mask, kSparseLimit, dense3));
            dense2[t] = Pointer::chunk(s.l3_base + l3).raw;
            ++l3;
          }
          piece.chunks.push_back(append_chunk_into(
              piece.codewords, piece.bases, piece.pointers, piece.sparse_heads,
              record_mask, kSparseLimit, dense2));
          out.push_back(std::move(piece));
        }
        return out;
      },
      threads);

  // Counting pass totals -> exact arena pre-sizing, then the sequential
  // splice. Pieces land in ascending slot order, which is exactly the
  // reference append order, so offsets, maptable row ids and chunk ids all
  // come out identical.
  std::size_t cw_total = 0, base_total = 0, ptr_total = 0, sp_total = 0;
  for (const auto& batch : piece_batches) {
    for (const SlotPiece& piece : batch) {
      cw_total += piece.codewords.size();
      base_total += piece.bases.size();
      ptr_total += piece.pointers.size();
      sp_total += piece.sparse_heads.size();
    }
  }
  for (std::size_t r = 0; r < slots.size(); ++r) {
    dense1[slots[r].slot] = Pointer::chunk(static_cast<std::uint32_t>(r)).raw;
  }
  std::size_t l1_heads = 0;
  for (std::size_t p = 0; p < dense1.size(); ++p) {
    if (p == 0 || dense1[p] != dense1[p - 1]) ++l1_heads;
  }
  // Descriptor-width guards (the 32-bit overflow satellite): the dense meta
  // field must keep the sparse flag clear, sparse indexes fit 27 bits, and
  // chunk ids fit the 31-bit pointer payload. All are ~2^27+ chunks — far
  // beyond a 1M-prefix table — but silent wraparound would be a correctness
  // bug, so they fail loudly.
  if (sp_total > ChunkRef::kHeadsMask) {
    throw std::length_error("LuleaTrie: sparse-head arena exceeds the 27-bit index");
  }
  if (cw_total + (dense1.size() + 15) / 16 >= ChunkRef::kSparseFlag) {
    throw std::length_error("LuleaTrie: codeword arena exceeds the 31-bit base");
  }
  if (l3_total >= Pointer::kChunkFlag || slots.size() >= Pointer::kChunkFlag) {
    throw std::length_error("LuleaTrie: chunk count exceeds the 31-bit pointer payload");
  }
  codewords_.reserve(cw_total + (dense1.size() + 15) / 16);
  bases_.reserve(base_total + (dense1.size() + 63) / 64);
  pointers_.reserve(ptr_total + l1_heads);
  sparse_heads_.reserve(sp_total);
  level2_.reserve(slots.size());
  level3_.reserve(l3_total);

  for (const auto& batch : piece_batches) {
    for (const SlotPiece& piece : batch) {
      const auto cw_off = static_cast<std::uint32_t>(codewords_.size());
      const auto ptr_off = static_cast<std::uint32_t>(pointers_.size());
      const auto sp_off = static_cast<std::uint32_t>(sparse_heads_.size());
      for (std::size_t i = 0; i < piece.codewords.size(); ++i) {
        codewords_.push_back(Codeword{maptable_.intern(piece.raw_masks[i]),
                                      piece.codewords[i].offset});
      }
      bases_.insert(bases_.end(), piece.bases.begin(), piece.bases.end());
      pointers_.insert(pointers_.end(), piece.pointers.begin(),
                       piece.pointers.end());
      sparse_heads_.insert(sparse_heads_.end(), piece.sparse_heads.begin(),
                           piece.sparse_heads.end());
      for (std::size_t c = 0; c < piece.chunks.size(); ++c) {
        ChunkRef ch = piece.chunks[c];
        if (ch.is_sparse()) {
          ch.meta = (ch.meta & ~ChunkRef::kHeadsMask) |
                    ((ch.meta & ChunkRef::kHeadsMask) + sp_off);
        } else {
          ch.meta += cw_off;
        }
        ch.ptr_base += ptr_off;
        if (c + 1 == piece.chunks.size()) {
          level2_.push_back(ch);
        } else {
          level3_.push_back(ch);
        }
      }
    }
  }
  level1_ = append_compressed(dense1);
}

std::uint32_t LuleaTrie::intern_next_hop(net::NextHop hop) {
  const auto [it, inserted] = next_hop_index_.try_emplace(
      hop, static_cast<std::uint32_t>(next_hop_table_.size()));
  if (inserted) next_hop_table_.push_back(hop);
  return it->second;
}

template <bool kCounted>
net::NextHop LuleaTrie::lookup_impl(net::Ipv4Addr addr,
                                    MemAccessCounter* counter) const {
  Pointer p = dense_lookup<kCounted>(level1_, addr.value() >> 16, counter);
  if (p.is_chunk()) {
    p = chunk_lookup<kCounted>(level2_[p.value()], (addr.value() >> 8) & 0xffu,
                               counter);
    if (p.is_chunk()) {
      p = chunk_lookup<kCounted>(level3_[p.value()], addr.value() & 0xffu,
                                 counter);
    }
  }
  return next_hop_table_[p.value()];
}

net::NextHop LuleaTrie::lookup(net::Ipv4Addr addr) const {
  return lookup_impl<false>(addr, nullptr);
}

net::NextHop LuleaTrie::lookup_counted(net::Ipv4Addr addr,
                                       MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

namespace {

inline void prefetch(const void* address) { __builtin_prefetch(address, 0, 3); }

/// Branch-free sparse-chunk head scan: index of the last valid head offset
/// <= pos. The block holds `count_minus_1 + 1` ascending byte offsets
/// (byte 0 is always 0) padded with zero bytes, so counting *all* bytes
/// <= pos overcounts by exactly the number of padding bytes:
///   index = (#bytes <= pos) + (count - 8) - 1.
inline std::uint32_t sparse_head_index(std::uint64_t block,
                                       std::uint32_t count_minus_1,
                                       std::uint32_t pos) {
  std::uint32_t le = 0;
  for (int j = 0; j < 8; ++j) {
    le += ((block >> (8 * j)) & 0xFFu) <= pos ? 1u : 0u;
  }
  return le + count_minus_1 - 8;
}

}  // namespace

void LuleaTrie::lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                             net::NextHop* out) const {
  const SimdLevel level = resolved_simd_level();
  if (n < kMinWaveWidth) {
    // Pipeline setup costs more than the overlap wins below one wave, but
    // two cheaper levers still apply: prefetch the trailing keys' level-1
    // lines so their first dependent read overlaps the leading lookups, and
    // use the popcnt-rank scalars (no nibble-row read) at the SIMD levels.
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t m = keys[i].value() >> 20;  // (addr >> 16) / 16
      prefetch(codewords_.data() + level1_.cw_base + m);
      prefetch(bases_.data() + (level1_.cw_base >> 2) + (m >> 2));
    }
    switch (level) {
      case SimdLevel::kAvx2:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = lookup_scalar_bmi2(keys[i]);
        }
        return;
      case SimdLevel::kSse42:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = lookup_scalar_popcnt(keys[i]);
        }
        return;
      case SimdLevel::kGeneric:
        for (std::size_t i = 0; i < n; ++i) out[i] = lookup(keys[i]);
        return;
    }
    return;
  }
  switch (level) {
    case SimdLevel::kAvx2: lookup_batch_avx2(keys, n, out); return;
    case SimdLevel::kSse42: lookup_batch_sse42(keys, n, out); return;
    case SimdLevel::kGeneric: break;
  }
  lookup_batch_generic(keys, n, out);
}

void LuleaTrie::lookup_batch_generic(const net::Ipv4Addr* keys, std::size_t n,
                                     net::NextHop* out) const {
  // Stage-synchronous pipeline over groups of kLpmBatchLanes keys: each
  // stage runs the *same* dependent access for every in-flight lane before
  // any lane advances, so the loads of one stage are independent of each
  // other and overlap in the memory system, and every line the next stage
  // needs is prefetched one stage ahead. The stages mirror the dependent
  // read chain the paper counts — codeword + base (no mutual dependency),
  // maptable row, pointer — repeated per level; lanes that resolve early
  // drop out of the compacted lane list. Control flow per stage is a plain
  // counted loop, so the scheduler adds no per-access branching.
  // Two API batch groups per wave: 16 in-flight lanes keep more independent
  // loads in the memory system than the G=8 call granularity alone.
  constexpr std::size_t G = 2 * kLpmBatchLanes;
  // Branch-free descriptor loads need a valid address even when a level has
  // no chunks at all (tables with no long prefixes).
  static constexpr ChunkRef kNoChunk{};
  const ChunkRef* const level2 = level2_.empty() ? &kNoChunk : level2_.data();
  const ChunkRef* const level3 = level3_.empty() ? &kNoChunk : level3_.data();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = i + G <= n ? G : n - i;
    std::uint32_t addr[G];     // full keys
    std::uint32_t pos[G];      // position within the lane's current structure
    std::uint32_t partial[G];  // base + codeword offset
    std::uint32_t pidx[G];     // absolute pointer-array index
    std::uint16_t row[G];      // codeword maptable row

    // Level 1, codeword + base wave.
    for (std::size_t k = 0; k < g; ++k) {
      addr[k] = keys[i + k].value();
      pos[k] = addr[k] >> 16;
      const std::uint32_t m = pos[k] >> 4;
      const Codeword cw = codewords_[level1_.cw_base + m];
      const std::uint32_t base = bases_[(level1_.cw_base >> 2) + (m >> 2)];
      partial[k] = base + cw.offset;
      row[k] = cw.row;
      prefetch(maptable_.row_addr(cw.row));
    }
    // Level 1, rank wave.
    for (std::size_t k = 0; k < g; ++k) {
      const std::uint32_t rank =
          partial[k] + static_cast<std::uint32_t>(maptable_.rank_inclusive(
                           row[k], static_cast<int>(pos[k] & 15u)));
      pidx[k] = level1_.ptr_base + rank - 1;
      prefetch(&pointers_[pidx[k]]);
    }
    // Level 1, pointer wave. Branch-free per lane: every lane writes a
    // (possibly provisional) result through a cmov-selected index, loads a
    // chunk descriptor, and conditionally appends itself to the level-2
    // sparse or dense lane list — descent is decided by arithmetic, not by
    // a data-dependent branch the predictor would have to guess.
    std::uint32_t cmeta[G];  // lane's current chunk descriptor
    std::uint32_t cptr[G];
    std::uint8_t dlane[G];   // dense chunk lanes
    std::uint8_t slane[G];   // sparse chunk lanes
    std::size_t dn = 0;
    std::size_t sn = 0;
    for (std::size_t k = 0; k < g; ++k) {
      const Pointer p = pointers_[pidx[k]];
      const bool descend = p.is_chunk();
      out[i + k] = next_hop_table_[descend ? 0u : p.value()];
      const ChunkRef ch = level2[descend ? p.value() : 0u];
      pos[k] = (addr[k] >> 8) & 0xffu;
      cmeta[k] = ch.meta;
      cptr[k] = ch.ptr_base;
      const bool sp = ch.is_sparse();
      dlane[dn] = static_cast<std::uint8_t>(k);
      dn += (descend && !sp) ? 1 : 0;
      slane[sn] = static_cast<std::uint8_t>(k);
      sn += (descend && sp) ? 1 : 0;
      prefetch(sp ? static_cast<const void*>(sparse_heads_.data() +
                                             (ch.meta & ChunkRef::kHeadsMask))
                  : static_cast<const void*>(codewords_.data() + ch.meta +
                                             (pos[k] >> 4)));
      prefetch(sp ? static_cast<const void*>(sparse_heads_.data() +
                                             (ch.meta & ChunkRef::kHeadsMask))
                  : static_cast<const void*>(bases_.data() + (ch.meta >> 2) +
                                             (pos[k] >> 6)));
    }

    for (int level = 2; level <= 3 && dn + sn > 0; ++level) {
      // Sparse wave: one head-block read resolves the pointer index (the
      // scan is the branch-free byte count of sparse_head_index).
      for (std::size_t c = 0; c < sn; ++c) {
        const std::size_t k = slane[c];
        const std::uint64_t block =
            sparse_heads_[cmeta[k] & ChunkRef::kHeadsMask];
        pidx[k] = cptr[k] +
                  sparse_head_index(block, (cmeta[k] >> 27) & 7u, pos[k]);
        prefetch(&pointers_[pidx[k]]);
      }
      // Dense codeword + base wave.
      for (std::size_t c = 0; c < dn; ++c) {
        const std::size_t k = dlane[c];
        const std::uint32_t m = pos[k] >> 4;
        const Codeword cw = codewords_[cmeta[k] + m];
        const std::uint32_t base = bases_[(cmeta[k] >> 2) + (m >> 2)];
        partial[k] = base + cw.offset;
        row[k] = cw.row;
        prefetch(maptable_.row_addr(cw.row));
      }
      // Dense rank wave.
      for (std::size_t c = 0; c < dn; ++c) {
        const std::size_t k = dlane[c];
        const std::uint32_t rank =
            partial[k] + static_cast<std::uint32_t>(maptable_.rank_inclusive(
                             row[k], static_cast<int>(pos[k] & 15u)));
        pidx[k] = cptr[k] + rank - 1;
        prefetch(&pointers_[pidx[k]]);
      }
      // Merged pointer wave: resolve, or queue the level-3 chunk. Level-3
      // pointers are always next hops (build invariant; the scalar path
      // reads them the same way), so nothing descends past level 3.
      std::uint8_t live[G];
      std::size_t ln = 0;
      for (std::size_t c = 0; c < dn; ++c) live[ln++] = dlane[c];
      for (std::size_t c = 0; c < sn; ++c) live[ln++] = slane[c];
      dn = 0;
      sn = 0;
      for (std::size_t c = 0; c < ln; ++c) {
        const std::size_t k = live[c];
        const Pointer p = pointers_[pidx[k]];
        const bool descend = level == 2 && p.is_chunk();
        out[i + k] = next_hop_table_[descend ? 0u : p.value()];
        const ChunkRef ch = level3[descend ? p.value() : 0u];
        pos[k] = addr[k] & 0xffu;
        cmeta[k] = ch.meta;
        cptr[k] = ch.ptr_base;
        const bool sp = ch.is_sparse();
        dlane[dn] = static_cast<std::uint8_t>(k);
        dn += (descend && !sp) ? 1 : 0;
        slane[sn] = static_cast<std::uint8_t>(k);
        sn += (descend && sp) ? 1 : 0;
        prefetch(sp ? static_cast<const void*>(
                          sparse_heads_.data() + (ch.meta & ChunkRef::kHeadsMask))
                    : static_cast<const void*>(codewords_.data() + ch.meta +
                                               (pos[k] >> 4)));
      }
    }
    i += g;
  }
}

std::size_t LuleaTrie::storage_bytes() const {
  // Codewords 2 B, base indexes 4 B, pointers 2 B (the original's 16-bit
  // pointer model), sparse head blocks 8 B, maptable rows 8 B — now also
  // the actual host layout, modulo the 4-byte Codeword/Pointer host types.
  return maptable_.storage_bytes() + codewords_.size() * 2 + bases_.size() * 4 +
         pointers_.size() * 2 + sparse_heads_.size() * 8 +
         next_hop_table_.size() * 4;
}

std::vector<ArenaSpan> LuleaTrie::arenas() const {
  // Hottest first (the dense_lookup read order); indexes match the
  // lulea_detail::LuleaArena constants the counted path records against.
  // The hop table is never charged an access by the paper's count, but its
  // bytes still occupy whatever tier they land in.
  return {{"codewords", codewords_.size() * 2},
          {"bases", bases_.size() * 4},
          {"maptable", maptable_.storage_bytes()},
          {"pointers", pointers_.size() * 2},
          {"sparse_heads", sparse_heads_.size() * 8},
          {"next_hops", next_hop_table_.size() * 4}};
}

std::size_t LuleaTrie::sparse_chunk_count() const {
  std::size_t count = 0;
  for (const auto& chunk : level2_) count += chunk.is_sparse() ? 1 : 0;
  for (const auto& chunk : level3_) count += chunk.is_sparse() ? 1 : 0;
  return count;
}

}  // namespace spal::trie
