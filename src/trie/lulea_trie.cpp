#include "trie/lulea_trie.h"

#include <algorithm>
#include <map>

#include "trie/simd_dispatch.h"

namespace spal::trie {
namespace lulea_detail {

std::uint16_t MapTable::intern(std::uint16_t mask) {
  const auto [it, inserted] =
      index_.try_emplace(mask, static_cast<std::uint16_t>(rows_.size()));
  if (inserted) {
    std::uint64_t row = 0;
    int running = 0;
    for (int pos = 0; pos < 16; ++pos) {
      // Exclusive rank: set bits strictly before `pos` (fits 4 bits); the
      // bit at `pos` itself is recovered from the mask in rank_inclusive().
      row |= static_cast<std::uint64_t>(running) << (pos * 4);
      running += (mask >> pos) & 1;
    }
    rows_.push_back(row);
    masks_.push_back(mask);
  }
  return it->second;
}

}  // namespace lulea_detail

using lulea_detail::ChunkRef;
using lulea_detail::Codeword;
using lulea_detail::DenseRef;
using lulea_detail::Pointer;

lulea_detail::DenseRef LuleaTrie::append_compressed(
    const std::vector<std::uint32_t>& dense) {
  DenseRef ref{static_cast<std::uint32_t>(codewords_.size()),
               static_cast<std::uint32_t>(pointers_.size())};
  const std::size_t n = dense.size();
  const std::size_t num_masks = (n + 15) / 16;
  std::uint32_t total_heads = 0;
  std::uint32_t group_base = 0;
  for (std::size_t m = 0; m < num_masks; ++m) {
    if (m % 4 == 0) {
      group_base = total_heads;
      bases_.push_back(group_base);
    }
    std::uint16_t mask = 0;
    const std::uint32_t group_offset = total_heads - group_base;
    for (std::size_t j = 0; j < 16 && m * 16 + j < n; ++j) {
      const std::size_t pos = m * 16 + j;
      const bool head = pos == 0 || dense[pos] != dense[pos - 1];
      if (head) {
        mask |= static_cast<std::uint16_t>(1u << j);
        pointers_.push_back(Pointer{dense[pos]});
        ++total_heads;
      }
    }
    codewords_.push_back(Codeword{maptable_.intern(mask),
                                  static_cast<std::uint8_t>(group_offset)});
  }
  return ref;
}

lulea_detail::ChunkRef LuleaTrie::append_chunk(
    const std::vector<std::uint32_t>& dense) {
  std::size_t heads = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (i == 0 || dense[i] != dense[i - 1]) ++heads;
  }
  if (heads > kSparseLimit) {
    const DenseRef ref = append_compressed(dense);
    return ChunkRef{ref.cw_base, ref.ptr_base};
  }
  // Sparse form: the ascending head offsets packed into one 8-byte block
  // (byte i = offset of head i), searched in a single read.
  ChunkRef ref{ChunkRef::kSparseFlag |
                   (static_cast<std::uint32_t>(heads - 1) << 27) |
                   static_cast<std::uint32_t>(sparse_heads_.size()),
               static_cast<std::uint32_t>(pointers_.size())};
  std::uint64_t block = 0;
  std::size_t slot = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (i == 0 || dense[i] != dense[i - 1]) {
      block |= static_cast<std::uint64_t>(i) << (8 * slot);
      ++slot;
      pointers_.push_back(Pointer{dense[i]});
    }
  }
  sparse_heads_.push_back(block);
  return ref;
}

template <bool kCounted>
Pointer LuleaTrie::dense_lookup(const DenseRef& ref, std::uint32_t pos,
                                MemAccessCounter* counter) const {
  const std::uint32_t m = pos >> 4;
  const int low = static_cast<int>(pos & 15u);
  if constexpr (kCounted) counter->record();  // codeword read
  const Codeword cw = codewords_[ref.cw_base + m];
  if constexpr (kCounted) counter->record();  // base-index read
  // Every structure appends codewords in multiples of four masks, so its
  // base block always starts at cw_base / 4.
  const std::uint32_t base = bases_[(ref.cw_base >> 2) + (m >> 2)];
  if constexpr (kCounted) counter->record();  // maptable row read
  // Inclusive rank of `pos`; every position is governed by some head, so
  // the rank is always >= 1.
  const std::uint32_t rank =
      base + cw.offset +
      static_cast<std::uint32_t>(maptable_.rank_inclusive(cw.row, low));
  if constexpr (kCounted) counter->record();  // pointer read
  return pointers_[ref.ptr_base + rank - 1];
}

template <bool kCounted>
Pointer LuleaTrie::chunk_lookup(const ChunkRef& chunk, std::uint32_t pos,
                                MemAccessCounter* counter) const {
  if (!chunk.is_sparse()) {
    return dense_lookup<kCounted>(DenseRef{chunk.meta & ~ChunkRef::kSparseFlag,
                                           chunk.ptr_base},
                                  pos, counter);
  }
  // Sparse form: the whole head block is one 8-byte read, the governing
  // pointer a second read.
  if constexpr (kCounted) counter->record();  // head block read
  const std::uint64_t block = sparse_heads_[chunk.meta & ChunkRef::kHeadsMask];
  std::uint32_t index = (chunk.meta >> 27) & 7u;  // head_count - 1
  while (index > 0 && ((block >> (8 * index)) & 0xFF) > pos) --index;
  if constexpr (kCounted) counter->record();  // pointer read
  return pointers_[chunk.ptr_base + index];
}

LuleaTrie::LuleaTrie(const net::RouteTable& table) {
  intern_next_hop(net::kNoRoute);  // index 0 = no route

  // Bucket prefixes by level.
  std::vector<net::RouteEntry> short_prefixes;           // len 0..16
  std::map<std::uint32_t, std::vector<net::RouteEntry>> mid;   // top16 -> len 17..24
  std::map<std::uint32_t, std::vector<net::RouteEntry>> lng;   // top24 -> len 25..32
  for (const net::RouteEntry& e : table.entries()) {
    if (e.prefix.length() <= 16) {
      short_prefixes.push_back(e);
    } else if (e.prefix.length() <= 24) {
      mid[e.prefix.bits() >> 16].push_back(e);
    } else {
      lng[e.prefix.bits() >> 8].push_back(e);
    }
  }
  auto by_length = [](const net::RouteEntry& a, const net::RouteEntry& b) {
    return a.prefix.length() < b.prefix.length();
  };
  std::stable_sort(short_prefixes.begin(), short_prefixes.end(), by_length);

  // Level-1 dense map: paint next hops shortest-first so longer prefixes
  // override (leaf pushing), then carve out chunk slots.
  std::vector<std::uint32_t> dense1(1u << 16, Pointer::next_hop(0).raw);
  for (const net::RouteEntry& e : short_prefixes) {
    const std::uint32_t first = e.prefix.bits() >> 16;
    const std::uint32_t last = e.prefix.range_last().value() >> 16;
    const std::uint32_t hop = intern_next_hop(e.next_hop);
    for (std::uint32_t s = first; s <= last; ++s) {
      dense1[s] = Pointer::next_hop(hop).raw;
    }
  }

  // The set of level-2 chunk roots: any 16-bit slot owning a longer prefix.
  std::map<std::uint32_t, std::vector<net::RouteEntry>> chunk_roots = mid;
  for (const auto& [top24, entries] : lng) {
    chunk_roots.try_emplace(top24 >> 8);  // ensure the slot exists
    (void)entries;
  }

  for (auto& [slot, entries] : chunk_roots) {
    std::stable_sort(entries.begin(), entries.end(), by_length);
    // Default for uncovered positions: the next hop level 1 painted here.
    const std::uint32_t default2 = dense1[slot];
    std::vector<std::uint32_t> dense2(256, default2);
    for (const net::RouteEntry& e : entries) {
      const std::uint32_t first = (e.prefix.bits() >> 8) & 0xffu;
      const std::uint32_t last = (e.prefix.range_last().value() >> 8) & 0xffu;
      const std::uint32_t hop = intern_next_hop(e.next_hop);
      for (std::uint32_t t = first; t <= last; ++t) {
        dense2[t] = Pointer::next_hop(hop).raw;
      }
    }
    // Level-3 chunks nested under this slot.
    const auto lo = lng.lower_bound(slot << 8);
    const auto hi = lng.upper_bound((slot << 8) | 0xffu);
    for (auto it = lo; it != hi; ++it) {
      auto long_entries = it->second;
      std::stable_sort(long_entries.begin(), long_entries.end(), by_length);
      const std::uint32_t t = it->first & 0xffu;
      const std::uint32_t default3 = dense2[t];
      std::vector<std::uint32_t> dense3(256, default3);
      for (const net::RouteEntry& e : long_entries) {
        const std::uint32_t first = e.prefix.bits() & 0xffu;
        const std::uint32_t last = e.prefix.range_last().value() & 0xffu;
        const std::uint32_t hop = intern_next_hop(e.next_hop);
        for (std::uint32_t u = first; u <= last; ++u) {
          dense3[u] = Pointer::next_hop(hop).raw;
        }
      }
      const std::uint32_t l3_id = static_cast<std::uint32_t>(level3_.size());
      level3_.push_back(append_chunk(dense3));
      dense2[t] = Pointer::chunk(l3_id).raw;
    }
    const std::uint32_t l2_id = static_cast<std::uint32_t>(level2_.size());
    level2_.push_back(append_chunk(dense2));
    dense1[slot] = Pointer::chunk(l2_id).raw;
  }

  level1_ = append_compressed(dense1);
}

std::uint32_t LuleaTrie::intern_next_hop(net::NextHop hop) {
  const auto [it, inserted] = next_hop_index_.try_emplace(
      hop, static_cast<std::uint32_t>(next_hop_table_.size()));
  if (inserted) next_hop_table_.push_back(hop);
  return it->second;
}

template <bool kCounted>
net::NextHop LuleaTrie::lookup_impl(net::Ipv4Addr addr,
                                    MemAccessCounter* counter) const {
  Pointer p = dense_lookup<kCounted>(level1_, addr.value() >> 16, counter);
  if (p.is_chunk()) {
    p = chunk_lookup<kCounted>(level2_[p.value()], (addr.value() >> 8) & 0xffu,
                               counter);
    if (p.is_chunk()) {
      p = chunk_lookup<kCounted>(level3_[p.value()], addr.value() & 0xffu,
                                 counter);
    }
  }
  return next_hop_table_[p.value()];
}

net::NextHop LuleaTrie::lookup(net::Ipv4Addr addr) const {
  return lookup_impl<false>(addr, nullptr);
}

net::NextHop LuleaTrie::lookup_counted(net::Ipv4Addr addr,
                                       MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

namespace {

inline void prefetch(const void* address) { __builtin_prefetch(address, 0, 3); }

/// Branch-free sparse-chunk head scan: index of the last valid head offset
/// <= pos. The block holds `count_minus_1 + 1` ascending byte offsets
/// (byte 0 is always 0) padded with zero bytes, so counting *all* bytes
/// <= pos overcounts by exactly the number of padding bytes:
///   index = (#bytes <= pos) + (count - 8) - 1.
inline std::uint32_t sparse_head_index(std::uint64_t block,
                                       std::uint32_t count_minus_1,
                                       std::uint32_t pos) {
  std::uint32_t le = 0;
  for (int j = 0; j < 8; ++j) {
    le += ((block >> (8 * j)) & 0xFFu) <= pos ? 1u : 0u;
  }
  return le + count_minus_1 - 8;
}

}  // namespace

void LuleaTrie::lookup_batch(const net::Ipv4Addr* keys, std::size_t n,
                             net::NextHop* out) const {
  const SimdLevel level = resolved_simd_level();
  if (n < kMinWaveWidth) {
    // Pipeline setup costs more than the overlap wins below one wave, but
    // two cheaper levers still apply: prefetch the trailing keys' level-1
    // lines so their first dependent read overlaps the leading lookups, and
    // use the popcnt-rank scalars (no nibble-row read) at the SIMD levels.
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint32_t m = keys[i].value() >> 20;  // (addr >> 16) / 16
      prefetch(codewords_.data() + level1_.cw_base + m);
      prefetch(bases_.data() + (level1_.cw_base >> 2) + (m >> 2));
    }
    switch (level) {
      case SimdLevel::kAvx2:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = lookup_scalar_bmi2(keys[i]);
        }
        return;
      case SimdLevel::kSse42:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = lookup_scalar_popcnt(keys[i]);
        }
        return;
      case SimdLevel::kGeneric:
        for (std::size_t i = 0; i < n; ++i) out[i] = lookup(keys[i]);
        return;
    }
    return;
  }
  switch (level) {
    case SimdLevel::kAvx2: lookup_batch_avx2(keys, n, out); return;
    case SimdLevel::kSse42: lookup_batch_sse42(keys, n, out); return;
    case SimdLevel::kGeneric: break;
  }
  lookup_batch_generic(keys, n, out);
}

void LuleaTrie::lookup_batch_generic(const net::Ipv4Addr* keys, std::size_t n,
                                     net::NextHop* out) const {
  // Stage-synchronous pipeline over groups of kLpmBatchLanes keys: each
  // stage runs the *same* dependent access for every in-flight lane before
  // any lane advances, so the loads of one stage are independent of each
  // other and overlap in the memory system, and every line the next stage
  // needs is prefetched one stage ahead. The stages mirror the dependent
  // read chain the paper counts — codeword + base (no mutual dependency),
  // maptable row, pointer — repeated per level; lanes that resolve early
  // drop out of the compacted lane list. Control flow per stage is a plain
  // counted loop, so the scheduler adds no per-access branching.
  // Two API batch groups per wave: 16 in-flight lanes keep more independent
  // loads in the memory system than the G=8 call granularity alone.
  constexpr std::size_t G = 2 * kLpmBatchLanes;
  // Branch-free descriptor loads need a valid address even when a level has
  // no chunks at all (tables with no long prefixes).
  static constexpr ChunkRef kNoChunk{};
  const ChunkRef* const level2 = level2_.empty() ? &kNoChunk : level2_.data();
  const ChunkRef* const level3 = level3_.empty() ? &kNoChunk : level3_.data();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = i + G <= n ? G : n - i;
    std::uint32_t addr[G];     // full keys
    std::uint32_t pos[G];      // position within the lane's current structure
    std::uint32_t partial[G];  // base + codeword offset
    std::uint32_t pidx[G];     // absolute pointer-array index
    std::uint16_t row[G];      // codeword maptable row

    // Level 1, codeword + base wave.
    for (std::size_t k = 0; k < g; ++k) {
      addr[k] = keys[i + k].value();
      pos[k] = addr[k] >> 16;
      const std::uint32_t m = pos[k] >> 4;
      const Codeword cw = codewords_[level1_.cw_base + m];
      const std::uint32_t base = bases_[(level1_.cw_base >> 2) + (m >> 2)];
      partial[k] = base + cw.offset;
      row[k] = cw.row;
      prefetch(maptable_.row_addr(cw.row));
    }
    // Level 1, rank wave.
    for (std::size_t k = 0; k < g; ++k) {
      const std::uint32_t rank =
          partial[k] + static_cast<std::uint32_t>(maptable_.rank_inclusive(
                           row[k], static_cast<int>(pos[k] & 15u)));
      pidx[k] = level1_.ptr_base + rank - 1;
      prefetch(&pointers_[pidx[k]]);
    }
    // Level 1, pointer wave. Branch-free per lane: every lane writes a
    // (possibly provisional) result through a cmov-selected index, loads a
    // chunk descriptor, and conditionally appends itself to the level-2
    // sparse or dense lane list — descent is decided by arithmetic, not by
    // a data-dependent branch the predictor would have to guess.
    std::uint32_t cmeta[G];  // lane's current chunk descriptor
    std::uint32_t cptr[G];
    std::uint8_t dlane[G];   // dense chunk lanes
    std::uint8_t slane[G];   // sparse chunk lanes
    std::size_t dn = 0;
    std::size_t sn = 0;
    for (std::size_t k = 0; k < g; ++k) {
      const Pointer p = pointers_[pidx[k]];
      const bool descend = p.is_chunk();
      out[i + k] = next_hop_table_[descend ? 0u : p.value()];
      const ChunkRef ch = level2[descend ? p.value() : 0u];
      pos[k] = (addr[k] >> 8) & 0xffu;
      cmeta[k] = ch.meta;
      cptr[k] = ch.ptr_base;
      const bool sp = ch.is_sparse();
      dlane[dn] = static_cast<std::uint8_t>(k);
      dn += (descend && !sp) ? 1 : 0;
      slane[sn] = static_cast<std::uint8_t>(k);
      sn += (descend && sp) ? 1 : 0;
      prefetch(sp ? static_cast<const void*>(sparse_heads_.data() +
                                             (ch.meta & ChunkRef::kHeadsMask))
                  : static_cast<const void*>(codewords_.data() + ch.meta +
                                             (pos[k] >> 4)));
      prefetch(sp ? static_cast<const void*>(sparse_heads_.data() +
                                             (ch.meta & ChunkRef::kHeadsMask))
                  : static_cast<const void*>(bases_.data() + (ch.meta >> 2) +
                                             (pos[k] >> 6)));
    }

    for (int level = 2; level <= 3 && dn + sn > 0; ++level) {
      // Sparse wave: one head-block read resolves the pointer index (the
      // scan is the branch-free byte count of sparse_head_index).
      for (std::size_t c = 0; c < sn; ++c) {
        const std::size_t k = slane[c];
        const std::uint64_t block =
            sparse_heads_[cmeta[k] & ChunkRef::kHeadsMask];
        pidx[k] = cptr[k] +
                  sparse_head_index(block, (cmeta[k] >> 27) & 7u, pos[k]);
        prefetch(&pointers_[pidx[k]]);
      }
      // Dense codeword + base wave.
      for (std::size_t c = 0; c < dn; ++c) {
        const std::size_t k = dlane[c];
        const std::uint32_t m = pos[k] >> 4;
        const Codeword cw = codewords_[cmeta[k] + m];
        const std::uint32_t base = bases_[(cmeta[k] >> 2) + (m >> 2)];
        partial[k] = base + cw.offset;
        row[k] = cw.row;
        prefetch(maptable_.row_addr(cw.row));
      }
      // Dense rank wave.
      for (std::size_t c = 0; c < dn; ++c) {
        const std::size_t k = dlane[c];
        const std::uint32_t rank =
            partial[k] + static_cast<std::uint32_t>(maptable_.rank_inclusive(
                             row[k], static_cast<int>(pos[k] & 15u)));
        pidx[k] = cptr[k] + rank - 1;
        prefetch(&pointers_[pidx[k]]);
      }
      // Merged pointer wave: resolve, or queue the level-3 chunk. Level-3
      // pointers are always next hops (build invariant; the scalar path
      // reads them the same way), so nothing descends past level 3.
      std::uint8_t live[G];
      std::size_t ln = 0;
      for (std::size_t c = 0; c < dn; ++c) live[ln++] = dlane[c];
      for (std::size_t c = 0; c < sn; ++c) live[ln++] = slane[c];
      dn = 0;
      sn = 0;
      for (std::size_t c = 0; c < ln; ++c) {
        const std::size_t k = live[c];
        const Pointer p = pointers_[pidx[k]];
        const bool descend = level == 2 && p.is_chunk();
        out[i + k] = next_hop_table_[descend ? 0u : p.value()];
        const ChunkRef ch = level3[descend ? p.value() : 0u];
        pos[k] = addr[k] & 0xffu;
        cmeta[k] = ch.meta;
        cptr[k] = ch.ptr_base;
        const bool sp = ch.is_sparse();
        dlane[dn] = static_cast<std::uint8_t>(k);
        dn += (descend && !sp) ? 1 : 0;
        slane[sn] = static_cast<std::uint8_t>(k);
        sn += (descend && sp) ? 1 : 0;
        prefetch(sp ? static_cast<const void*>(
                          sparse_heads_.data() + (ch.meta & ChunkRef::kHeadsMask))
                    : static_cast<const void*>(codewords_.data() + ch.meta +
                                               (pos[k] >> 4)));
      }
    }
    i += g;
  }
}

std::size_t LuleaTrie::storage_bytes() const {
  // Codewords 2 B, base indexes 4 B, pointers 2 B (the original's 16-bit
  // pointer model), sparse head blocks 8 B, maptable rows 8 B — now also
  // the actual host layout, modulo the 4-byte Codeword/Pointer host types.
  return maptable_.storage_bytes() + codewords_.size() * 2 + bases_.size() * 4 +
         pointers_.size() * 2 + sparse_heads_.size() * 8 +
         next_hop_table_.size() * 4;
}

std::size_t LuleaTrie::sparse_chunk_count() const {
  std::size_t count = 0;
  for (const auto& chunk : level2_) count += chunk.is_sparse() ? 1 : 0;
  for (const auto& chunk : level3_) count += chunk.is_sparse() ? 1 : 0;
  return count;
}

}  // namespace spal::trie
