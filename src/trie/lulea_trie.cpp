#include "trie/lulea_trie.h"

#include <algorithm>
#include <map>

namespace spal::trie {
namespace lulea_detail {

std::uint16_t MapTable::intern(std::uint16_t mask) {
  const auto [it, inserted] =
      index_.try_emplace(mask, static_cast<std::uint16_t>(rows_.size()));
  if (inserted) {
    std::array<std::uint8_t, 16> row{};
    int running = 0;
    for (int pos = 0; pos < 16; ++pos) {
      // Exclusive rank: set bits strictly before `pos` (fits 4 bits); the
      // bit at `pos` itself is recovered from the mask in rank().
      row[static_cast<std::size_t>(pos)] = static_cast<std::uint8_t>(running);
      running += (mask >> pos) & 1;
    }
    rows_.push_back(row);
    masks_.push_back(mask);
  }
  return it->second;
}

CompressedLevel::CompressedLevel(const std::vector<std::uint32_t>& dense,
                                 MapTable& maptable) {
  const std::size_t n = dense.size();
  const std::size_t num_masks = (n + 15) / 16;
  codewords_.resize(num_masks);
  bases_.resize((num_masks + 3) / 4);
  std::uint32_t total_heads = 0;
  for (std::size_t m = 0; m < num_masks; ++m) {
    if (m % 4 == 0) bases_[m / 4] = total_heads;
    std::uint16_t mask = 0;
    std::uint32_t group_offset = total_heads - bases_[m / 4];
    for (std::size_t j = 0; j < 16 && m * 16 + j < n; ++j) {
      const std::size_t pos = m * 16 + j;
      const bool head = pos == 0 || dense[pos] != dense[pos - 1];
      if (head) {
        mask |= static_cast<std::uint16_t>(1u << j);
        pointers_.push_back(Pointer{dense[pos]});
        ++total_heads;
      }
    }
    codewords_[m] = Codeword{maptable.intern(mask),
                             static_cast<std::uint8_t>(group_offset)};
  }
}

Pointer CompressedLevel::lookup(std::uint32_t pos, const MapTable& maptable,
                                MemAccessCounter* counter) const {
  const std::uint32_t m = pos >> 4;
  const int low = static_cast<int>(pos & 15u);
  if (counter != nullptr) counter->record();  // codeword read
  const Codeword cw = codewords_[m];
  if (counter != nullptr) counter->record();  // base-index read
  const std::uint32_t base = bases_[m >> 2];
  if (counter != nullptr) counter->record();  // maptable row read
  // Inclusive rank of `pos`; every position is governed by some head, so
  // the rank is always >= 1.
  const std::uint32_t rank =
      base + cw.offset +
      static_cast<std::uint32_t>(maptable.rank_inclusive(cw.row, low));
  if (counter != nullptr) counter->record();  // pointer read
  return pointers_[rank - 1];
}

Chunk::Chunk(const std::vector<std::uint32_t>& dense, MapTable& maptable) {
  std::size_t heads = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (i == 0 || dense[i] != dense[i - 1]) ++heads;
  }
  if (heads <= kSparseLimit) {
    heads_.reserve(heads);
    pointers_.reserve(heads);
    for (std::size_t i = 0; i < dense.size(); ++i) {
      if (i == 0 || dense[i] != dense[i - 1]) {
        heads_.push_back(static_cast<std::uint8_t>(i));
        pointers_.push_back(Pointer{dense[i]});
      }
    }
  } else {
    dense_ = std::make_unique<CompressedLevel>(dense, maptable);
  }
}

Pointer Chunk::lookup(std::uint32_t pos, const MapTable& maptable,
                      MemAccessCounter* counter) const {
  if (dense_ != nullptr) return dense_->lookup(pos, maptable, counter);
  // Sparse form: the whole offset block is one 8-byte read, the governing
  // pointer a second read.
  if (counter != nullptr) counter->record();  // offsets block read
  std::size_t index = heads_.size() - 1;
  while (heads_[index] > pos) --index;  // heads_[0] == 0 bounds the scan
  if (counter != nullptr) counter->record();  // pointer read
  return pointers_[index];
}

std::size_t Chunk::storage_bytes() const {
  if (dense_ != nullptr) return dense_->storage_bytes();
  // The original stores sparse offsets in a fixed 8-byte block.
  return kSparseLimit + pointers_.size() * 2;
}

}  // namespace lulea_detail

LuleaTrie::LuleaTrie(const net::RouteTable& table) {
  intern_next_hop(net::kNoRoute);  // index 0 = no route

  // Bucket prefixes by level.
  std::vector<net::RouteEntry> short_prefixes;           // len 0..16
  std::map<std::uint32_t, std::vector<net::RouteEntry>> mid;   // top16 -> len 17..24
  std::map<std::uint32_t, std::vector<net::RouteEntry>> lng;   // top24 -> len 25..32
  for (const net::RouteEntry& e : table.entries()) {
    if (e.prefix.length() <= 16) {
      short_prefixes.push_back(e);
    } else if (e.prefix.length() <= 24) {
      mid[e.prefix.bits() >> 16].push_back(e);
    } else {
      lng[e.prefix.bits() >> 8].push_back(e);
    }
  }
  auto by_length = [](const net::RouteEntry& a, const net::RouteEntry& b) {
    return a.prefix.length() < b.prefix.length();
  };
  std::stable_sort(short_prefixes.begin(), short_prefixes.end(), by_length);

  // Level-1 dense map: paint next hops shortest-first so longer prefixes
  // override (leaf pushing), then carve out chunk slots.
  std::vector<std::uint32_t> dense1(
      1u << 16, lulea_detail::Pointer::next_hop(0).raw);
  for (const net::RouteEntry& e : short_prefixes) {
    const std::uint32_t first = e.prefix.bits() >> 16;
    const std::uint32_t last = e.prefix.range_last().value() >> 16;
    const std::uint32_t hop = intern_next_hop(e.next_hop);
    for (std::uint32_t s = first; s <= last; ++s) {
      dense1[s] = lulea_detail::Pointer::next_hop(hop).raw;
    }
  }

  // The set of level-2 chunk roots: any 16-bit slot owning a longer prefix.
  std::map<std::uint32_t, std::vector<net::RouteEntry>> chunk_roots = mid;
  for (const auto& [top24, entries] : lng) {
    chunk_roots.try_emplace(top24 >> 8);  // ensure the slot exists
    (void)entries;
  }

  for (auto& [slot, entries] : chunk_roots) {
    std::stable_sort(entries.begin(), entries.end(), by_length);
    // Default for uncovered positions: the next hop level 1 painted here.
    const std::uint32_t default2 = dense1[slot];
    std::vector<std::uint32_t> dense2(256, default2);
    for (const net::RouteEntry& e : entries) {
      const std::uint32_t first = (e.prefix.bits() >> 8) & 0xffu;
      const std::uint32_t last = (e.prefix.range_last().value() >> 8) & 0xffu;
      const std::uint32_t hop = intern_next_hop(e.next_hop);
      for (std::uint32_t t = first; t <= last; ++t) {
        dense2[t] = lulea_detail::Pointer::next_hop(hop).raw;
      }
    }
    // Level-3 chunks nested under this slot.
    const auto lo = lng.lower_bound(slot << 8);
    const auto hi = lng.upper_bound((slot << 8) | 0xffu);
    for (auto it = lo; it != hi; ++it) {
      auto long_entries = it->second;
      std::stable_sort(long_entries.begin(), long_entries.end(), by_length);
      const std::uint32_t t = it->first & 0xffu;
      const std::uint32_t default3 = dense2[t];
      std::vector<std::uint32_t> dense3(256, default3);
      for (const net::RouteEntry& e : long_entries) {
        const std::uint32_t first = e.prefix.bits() & 0xffu;
        const std::uint32_t last = e.prefix.range_last().value() & 0xffu;
        const std::uint32_t hop = intern_next_hop(e.next_hop);
        for (std::uint32_t u = first; u <= last; ++u) {
          dense3[u] = lulea_detail::Pointer::next_hop(hop).raw;
        }
      }
      const std::uint32_t l3_id = static_cast<std::uint32_t>(level3_.size());
      level3_.emplace_back(dense3, maptable_);
      dense2[t] = lulea_detail::Pointer::chunk(l3_id).raw;
    }
    const std::uint32_t l2_id = static_cast<std::uint32_t>(level2_.size());
    level2_.emplace_back(dense2, maptable_);
    dense1[slot] = lulea_detail::Pointer::chunk(l2_id).raw;
  }

  level1_ = lulea_detail::CompressedLevel(dense1, maptable_);
}

std::uint32_t LuleaTrie::intern_next_hop(net::NextHop hop) {
  const auto [it, inserted] = next_hop_index_.try_emplace(
      hop, static_cast<std::uint32_t>(next_hop_table_.size()));
  if (inserted) next_hop_table_.push_back(hop);
  return it->second;
}

net::NextHop LuleaTrie::lookup_impl(net::Ipv4Addr addr,
                                    MemAccessCounter* counter) const {
  using lulea_detail::Pointer;
  Pointer p = level1_.lookup(addr.value() >> 16, maptable_, counter);
  if (p.is_chunk()) {
    p = level2_[p.value()].lookup((addr.value() >> 8) & 0xffu, maptable_, counter);
    if (p.is_chunk()) {
      p = level3_[p.value()].lookup(addr.value() & 0xffu, maptable_, counter);
    }
  }
  return next_hop_table_[p.value()];
}

net::NextHop LuleaTrie::lookup(net::Ipv4Addr addr) const {
  return lookup_impl(addr, nullptr);
}

net::NextHop LuleaTrie::lookup_counted(net::Ipv4Addr addr,
                                       MemAccessCounter& counter) const {
  return lookup_impl(addr, &counter);
}

std::size_t LuleaTrie::storage_bytes() const {
  std::size_t total = maptable_.storage_bytes() + level1_.storage_bytes();
  for (const auto& chunk : level2_) total += chunk.storage_bytes();
  for (const auto& chunk : level3_) total += chunk.storage_bytes();
  total += next_hop_table_.size() * 4;
  return total;
}

std::size_t LuleaTrie::sparse_chunk_count() const {
  std::size_t count = 0;
  for (const auto& chunk : level2_) count += chunk.is_sparse() ? 1 : 0;
  for (const auto& chunk : level3_) count += chunk.is_sparse() ? 1 : 0;
  return count;
}

}  // namespace spal::trie
