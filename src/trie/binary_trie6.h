// One-bit binary trie over IPv6 prefixes: the LPM oracle and the storage
// yardstick for the Sec. 6 IPv6 extension (the paper argues SPAL's SRAM
// reduction grows under IPv6 because tries get several times larger).
#pragma once

#include <cstdint>
#include <vector>

#include "net/prefix6.h"
#include "trie/lpm.h"

namespace spal::trie {

class BinaryTrie6 {
 public:
  BinaryTrie6();
  explicit BinaryTrie6(const net::RouteTable6& table);

  void insert(const net::Prefix6& prefix, net::NextHop next_hop);

  /// Removes `prefix` exactly; returns true if it was present. Handles the
  /// root/default route (length 0) like any other prefix.
  bool remove(const net::Prefix6& prefix);

  net::NextHop lookup(const net::Ipv6Addr& addr) const;
  net::NextHop lookup_counted(const net::Ipv6Addr& addr,
                              MemAccessCounter& counter) const;

  /// Two 4-byte child pointers + 4-byte next hop per node.
  std::size_t storage_bytes() const { return nodes_.size() * 12; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    net::NextHop next_hop = net::kNoRoute;
  };

  std::vector<Node> nodes_;
};

}  // namespace spal::trie
