#include "trie/lc_trie6.h"

#include <algorithm>
#include <stdexcept>

#include "sim/sweep.h"
#include "trie/simd_dispatch.h"

namespace spal::trie {
namespace {

/// Below this many base entries the bulk build runs its per-pattern subtree
/// pass inline (see lc_trie.cpp).
constexpr std::size_t kParallelBuildMin = 65536;

/// Root patterns handled per sweep task.
constexpr std::size_t kPatternBatch = 256;

net::Ipv6Addr set_bit(const net::Ipv6Addr& addr, int pos) {
  if (pos < 64) {
    return net::Ipv6Addr{addr.hi() | (1ULL << (63 - pos)), addr.lo()};
  }
  return net::Ipv6Addr{addr.hi(), addr.lo() | (1ULL << (127 - pos))};
}

net::Ipv6Addr mask_to(const net::Ipv6Addr& addr, int bits) {
  const std::uint64_t hi_mask =
      bits <= 0 ? 0 : (bits >= 64 ? ~0ULL : ~0ULL << (64 - bits));
  const std::uint64_t lo_mask =
      bits <= 64 ? 0 : (bits >= 128 ? ~0ULL : ~0ULL << (128 - bits));
  return net::Ipv6Addr{addr.hi() & hi_mask, addr.lo() & lo_mask};
}

/// The address every packet falling into an empty slot shares: the node's
/// path bits followed by the slot's branch pattern.
net::Ipv6Addr slot_path(const net::Ipv6Addr& base, int fixed_bits,
                        std::uint32_t pattern, int branch) {
  net::Ipv6Addr path = mask_to(base, fixed_bits);
  for (int j = 0; j < branch; ++j) {
    if ((pattern >> (branch - 1 - j)) & 1u) path = set_bit(path, fixed_bits + j);
  }
  return path;
}

}  // namespace

LcTrie6::LcTrie6(const net::RouteTable6& table, double fill_factor, int max_branch)
    : fill_factor_(fill_factor), max_branch_(std::min(max_branch, 20)) {
  // Split into base vector and internal-prefix chain, exactly as in the
  // IPv4 LcTrie (entries arrive sorted by (address, length)).
  const auto entries = table.entries();
  struct Open {
    net::Prefix6 prefix;
    std::int32_t pre_index;
  };
  std::vector<Open> stack;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const net::RouteEntry6& e = entries[i];
    while (!stack.empty() && !stack.back().prefix.covers(e.prefix)) stack.pop_back();
    const std::int32_t parent = stack.empty() ? -1 : stack.back().pre_index;
    const bool internal =
        i + 1 < entries.size() && e.prefix.covers(entries[i + 1].prefix);
    if (internal) {
      const auto pre_index = static_cast<std::int32_t>(pre_.size());
      pre_.push_back(PreEntry{static_cast<std::uint8_t>(e.prefix.length()),
                              e.next_hop, parent});
      stack.push_back(Open{e.prefix, pre_index});
    } else {
      base_.push_back(BaseEntry{e.prefix.address(),
                                static_cast<std::uint8_t>(e.prefix.length()),
                                e.next_hop, parent});
    }
  }
  if (base_.empty()) return;
  if (base_.size() > Node::kAdrMask) {
    throw std::length_error("LcTrie6: base vector exceeds the packed 20-bit adr");
  }
  std::vector<WideNode> staging;
  build_nodes(staging);
  if (staging.size() > Node::kAdrMask + 1) {
    throw std::length_error("LcTrie6: node count exceeds the packed 20-bit adr");
  }
  nodes_.reserve(staging.size());
  for (const WideNode& w : staging) {
    nodes_.push_back(Node::make(w.branch(), w.skip(), w.adr()));
  }
}

int LcTrie6::compute_branch(std::size_t first, std::size_t n, int pos,
                            int* skip_out) const {
  const int shared =
      net::common_prefix_bits(base_[first].bits, base_[first + n - 1].bits);
  const int skip = shared - pos;
  *skip_out = skip;
  const int branch_pos = pos + skip;
  if (n == 2) return 1;
  int branch = 1;
  for (;;) {
    const int next = branch + 1;
    if (branch_pos + next > net::Ipv6Addr::kBits || next > max_branch_) break;
    if (static_cast<double>(n) < fill_factor_ * static_cast<double>(1u << next)) {
      break;
    }
    std::size_t patterns = 1;
    std::uint32_t prev = base_[first].bits.bits(branch_pos, next);
    for (std::size_t i = first + 1; i < first + n; ++i) {
      const std::uint32_t cur = base_[i].bits.bits(branch_pos, next);
      if (cur != prev) {
        ++patterns;
        prev = cur;
      }
    }
    if (static_cast<double>(patterns) <
        fill_factor_ * static_cast<double>(1u << next)) {
      break;
    }
    branch = next;
  }
  return branch;
}

void LcTrie6::build_at(std::vector<WideNode>& out, std::size_t node_index,
                       std::size_t first, std::size_t n, int pos) const {
  if (n == 1) {
    out[node_index] = WideNode::make(0, 0, static_cast<std::uint32_t>(first));
    return;
  }
  int skip = 0;
  const int branch = compute_branch(first, n, pos, &skip);
  const std::size_t adr = out.size();
  out.resize(adr + (std::size_t{1} << branch));
  out[node_index] = WideNode::make(static_cast<std::uint32_t>(branch),
                                   static_cast<std::uint32_t>(skip),
                                   static_cast<std::uint32_t>(adr));
  const int child_pos = pos + skip + branch;
  std::size_t p = first;
  for (std::uint32_t pattern = 0; pattern < (1u << branch); ++pattern) {
    std::size_t k = 0;
    while (p + k < first + n &&
           base_[p + k].bits.bits(pos + skip, branch) == pattern) {
      ++k;
    }
    if (k == 0) {
      // Empty child: point at the sorted neighbour sharing the longest
      // prefix with the slot's path (see lc_trie.cpp for the argument).
      const net::Ipv6Addr path =
          slot_path(base_[first].bits, pos + skip, pattern, branch);
      std::size_t neighbour;
      if (p == first) {
        neighbour = p;
      } else if (p == first + n) {
        neighbour = p - 1;
      } else {
        neighbour = net::common_prefix_bits(base_[p - 1].bits, path) >=
                            net::common_prefix_bits(base_[p].bits, path)
                        ? p - 1
                        : p;
      }
      build_at(out, adr + pattern, neighbour, 1, child_pos);
    } else {
      build_at(out, adr + pattern, p, k, child_pos);
      p += k;
    }
  }
}

void LcTrie6::build_nodes(std::vector<WideNode>& out) const {
  // Same per-root-pattern decomposition as LcTrie::build_nodes: the
  // sequential recursion lays the array out as [root][child slots][child 0's
  // descendants][child 1's descendants]..., each child subtree touches only
  // its own base-vector subrange, so subtrees build independently and splice
  // back with a pure adr rebase — bit-for-bit the sequential array.
  out.clear();
  const std::size_t n = base_.size();
  if (n == 1) {
    out.push_back(WideNode::make(0, 0, 0));
    return;
  }
  int skip = 0;
  const int branch = compute_branch(0, n, 0, &skip);
  const std::size_t fan = std::size_t{1} << branch;
  const int child_pos = skip + branch;
  struct Task {
    std::size_t first = 0;
    std::size_t count = 0;  ///< 0 => `first` is an empty slot's neighbour
  };
  std::vector<Task> tasks(fan);
  std::size_t p = 0;
  for (std::uint32_t pattern = 0; pattern < fan; ++pattern) {
    std::size_t k = 0;
    while (p + k < n && base_[p + k].bits.bits(skip, branch) == pattern) ++k;
    if (k == 0) {
      const net::Ipv6Addr path = slot_path(base_[0].bits, skip, pattern, branch);
      std::size_t neighbour;
      if (p == 0) {
        neighbour = p;
      } else if (p == n) {
        neighbour = p - 1;
      } else {
        neighbour = net::common_prefix_bits(base_[p - 1].bits, path) >=
                            net::common_prefix_bits(base_[p].bits, path)
                        ? p - 1
                        : p;
      }
      tasks[pattern] = Task{neighbour, 0};
    } else {
      tasks[pattern] = Task{p, k};
      p += k;
    }
  }
  struct GroupNodes {
    std::vector<WideNode> nodes;
    std::vector<std::size_t> start;
  };
  const std::size_t group_count = (fan + kPatternBatch - 1) / kPatternBatch;
  std::vector<std::size_t> group_ids(group_count);
  for (std::size_t g = 0; g < group_count; ++g) group_ids[g] = g;
  const int threads = n >= kParallelBuildMin ? 0 : 1;
  const auto groups = sim::parallel_sweep(
      group_ids,
      [&](std::size_t gi) {
        GroupNodes g;
        const std::size_t begin = gi * kPatternBatch;
        const std::size_t end = std::min(begin + kPatternBatch, fan);
        g.start.reserve(end - begin);
        for (std::size_t q = begin; q < end; ++q) {
          const std::size_t self = g.nodes.size();
          g.start.push_back(self);
          g.nodes.emplace_back();
          const std::size_t count = std::max<std::size_t>(tasks[q].count, 1);
          build_at(g.nodes, self, tasks[q].first, count, child_pos);
        }
        return g;
      },
      threads);
  std::size_t total = 1 + fan;
  for (const GroupNodes& g : groups) total += g.nodes.size() - g.start.size();
  out.reserve(total);
  out.resize(1 + fan);
  out[0] = WideNode::make(static_cast<std::uint32_t>(branch),
                          static_cast<std::uint32_t>(skip), 1);
  std::size_t pattern = 0;
  for (const GroupNodes& g : groups) {
    for (std::size_t q = 0; q < g.start.size(); ++q, ++pattern) {
      const std::size_t s = g.start[q];
      const std::size_t e =
          q + 1 < g.start.size() ? g.start[q + 1] : g.nodes.size();
      const std::size_t desc_base = out.size();
      const auto rebase = [&](WideNode w) {
        if (w.branch() != 0) {
          w.adr_ = static_cast<std::uint32_t>(desc_base + (w.adr() - s - 1));
        }
        return w;
      };
      out[1 + pattern] = rebase(g.nodes[s]);
      for (std::size_t a = s + 1; a < e; ++a) out.push_back(rebase(g.nodes[a]));
    }
  }
}

template <bool kCounted>
net::NextHop LcTrie6::lookup_impl(const net::Ipv6Addr& addr,
                                  MemAccessCounter* counter) const {
  if (nodes_.empty()) return net::kNoRoute;
  // root node read
  if constexpr (kCounted) counter->record_arena(lc_detail::kArenaNodes);
  Node node = nodes_[0];
  int pos = static_cast<int>(node.skip());
  while (node.branch() != 0) {
    // child node read
    if constexpr (kCounted) counter->record_arena(lc_detail::kArenaNodes);
    const int parent_branch = static_cast<int>(node.branch());
    node = nodes_[node.adr() + addr.bits(pos, parent_branch)];
    pos += parent_branch + static_cast<int>(node.skip());
  }
  // base-vector entry read
  if constexpr (kCounted) counter->record_arena(lc_detail::kArenaBase);
  const BaseEntry& base = base_[node.adr()];
  if (net::equal_prefix_bits(addr, base.bits, base.len)) return base.next_hop;
  std::int32_t pre = base.pre;
  while (pre >= 0) {
    // prefix-vector entry read
    if constexpr (kCounted) counter->record_arena(lc_detail::kArenaPre);
    const PreEntry& entry = pre_[static_cast<std::size_t>(pre)];
    if (net::equal_prefix_bits(addr, base.bits, entry.len)) return entry.next_hop;
    pre = entry.pre;
  }
  return net::kNoRoute;
}

net::NextHop LcTrie6::lookup(const net::Ipv6Addr& addr) const {
  MemAccessCounter unused;
  return lookup_impl<false>(addr, &unused);
}

void LcTrie6::lookup_batch(const net::Ipv6Addr* keys, std::size_t n,
                           net::NextHop* out) const {
  if (nodes_.empty() || n < kMinWaveWidth) {
    for (std::size_t i = 0; i < n; ++i) out[i] = lookup(keys[i]);
    return;
  }
  if (resolved_simd_level() == SimdLevel::kAvx2) {
    lookup_batch_avx2(keys, n, out);
    return;
  }
  lookup_batch_generic(keys, n, out);
}

void LcTrie6::lookup_batch_generic(const net::Ipv6Addr* keys, std::size_t n,
                                   net::NextHop* out) const {
  // Same stage-synchronous wave pipeline as LcTrie::lookup_batch, over
  // 128-bit keys (see lc_trie.cpp for the stage narrative): lockstep
  // node-walk waves with branch-free lane-list compaction, then the base
  // comparison and covering-prefix chain waves.
  constexpr std::size_t G = 2 * kLpmBatchLanes;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g = i + G <= n ? G : n - i;
    std::uint32_t idx[G];  // node index while walking, base index at a leaf
    std::int32_t pre[G];   // current covering-prefix entry (-1 = none)
    int pos[G];            // address bits consumed
    std::uint8_t list_a[G];
    std::uint8_t list_b[G];

    std::uint8_t* walk = list_a;
    std::uint8_t* next_walk = list_b;
    std::size_t wn = g;
    for (std::size_t k = 0; k < g; ++k) {
      idx[k] = 0;
      pos[k] = 0;
      walk[k] = static_cast<std::uint8_t>(k);
    }
    while (wn > 0) {
      std::size_t nw = 0;
      for (std::size_t c = 0; c < wn; ++c) {
        const std::size_t k = walk[c];
        const Node node = nodes_[idx[k]];
        const int branch = static_cast<int>(node.branch());
        const int p = pos[k] + static_cast<int>(node.skip());
        // addr.bits(p, 0) == 0, so a leaf's child index is just its adr —
        // the base-vector slot.
        idx[k] = node.adr() + keys[i + k].bits(p, branch);
        pos[k] = p + branch;
        next_walk[nw] = static_cast<std::uint8_t>(k);
        nw += branch != 0 ? 1 : 0;
        __builtin_prefetch(
            branch != 0 ? static_cast<const void*>(nodes_.data() + idx[k])
                        : static_cast<const void*>(base_.data() + idx[k]),
            0, 3);
      }
      std::swap(walk, next_walk);
      wn = nw;
    }
    // Base wave; mismatches queue for the covering-prefix chain (kNoRoute
    // stands if the chain is empty or exhausts).
    std::uint8_t chain[G];
    std::size_t cn = 0;
    for (std::size_t k = 0; k < g; ++k) {
      const BaseEntry& base = base_[idx[k]];
      const bool matched = net::equal_prefix_bits(keys[i + k], base.bits, base.len);
      out[i + k] = matched ? base.next_hop : net::kNoRoute;
      pre[k] = matched ? -1 : base.pre;
      chain[cn] = static_cast<std::uint8_t>(k);
      cn += pre[k] >= 0 ? 1 : 0;
      __builtin_prefetch(pre_.data() + (pre[k] >= 0 ? pre[k] : 0), 0, 3);
    }
    while (cn > 0) {
      std::size_t nc = 0;
      for (std::size_t c = 0; c < cn; ++c) {
        const std::size_t k = chain[c];
        const PreEntry& entry = pre_[static_cast<std::size_t>(pre[k])];
        // The scalar path compares against the leaf's base bits, which share
        // every internal prefix's bits by construction; keep that exactly.
        const bool matched =
            net::equal_prefix_bits(keys[i + k], base_[idx[k]].bits, entry.len);
        out[i + k] = matched ? entry.next_hop : out[i + k];
        pre[k] = matched ? -1 : entry.pre;
        chain[nc] = static_cast<std::uint8_t>(k);
        nc += pre[k] >= 0 ? 1 : 0;
        __builtin_prefetch(pre_.data() + (pre[k] >= 0 ? pre[k] : 0), 0, 3);
      }
      cn = nc;
    }
    i += g;
  }
}

net::NextHop LcTrie6::lookup_counted(const net::Ipv6Addr& addr,
                                     MemAccessCounter& counter) const {
  return lookup_impl<true>(addr, &counter);
}

}  // namespace spal::trie
