#include "trie/binary_trie.h"

namespace spal::trie {

BinaryTrie::BinaryTrie() { nodes_.emplace_back(); }

BinaryTrie::BinaryTrie(const net::RouteTable& table) : BinaryTrie() {
  for (const net::RouteEntry& e : table.entries()) insert(e.prefix, e.next_hop);
}

std::int32_t BinaryTrie::descend_or_create(const net::Prefix& prefix) {
  std::int32_t node = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    const int bit = static_cast<int>(prefix.bit(depth));
    std::int32_t child = nodes_[static_cast<std::size_t>(node)].child[bit];
    if (child < 0) {
      child = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
      nodes_[static_cast<std::size_t>(node)].child[bit] = child;
    }
    node = child;
  }
  return node;
}

void BinaryTrie::insert(const net::Prefix& prefix, net::NextHop next_hop) {
  const std::int32_t node = descend_or_create(prefix);
  nodes_[static_cast<std::size_t>(node)].next_hop = next_hop;
}

bool BinaryTrie::remove(const net::Prefix& prefix) {
  std::int32_t node = 0;
  for (int depth = 0; depth < prefix.length(); ++depth) {
    node = nodes_[static_cast<std::size_t>(node)]
               .child[static_cast<int>(prefix.bit(depth))];
    if (node < 0) return false;
  }
  Node& target = nodes_[static_cast<std::size_t>(node)];
  if (target.next_hop == net::kNoRoute) return false;
  target.next_hop = net::kNoRoute;
  return true;
}

net::NextHop BinaryTrie::lookup(net::Ipv4Addr addr) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  for (int depth = 0; node >= 0 && depth <= net::Ipv4Addr::kBits; ++depth) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.next_hop != net::kNoRoute) best = n.next_hop;
    if (depth == net::Ipv4Addr::kBits) break;
    node = n.child[addr.bit(depth)];
  }
  return best;
}

net::NextHop BinaryTrie::lookup_counted(net::Ipv4Addr addr,
                                        MemAccessCounter& counter) const {
  net::NextHop best = net::kNoRoute;
  std::int32_t node = 0;
  for (int depth = 0; node >= 0 && depth <= net::Ipv4Addr::kBits; ++depth) {
    counter.record();  // one node read per level visited
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.next_hop != net::kNoRoute) best = n.next_hop;
    if (depth == net::Ipv4Addr::kBits) break;
    node = n.child[addr.bit(depth)];
  }
  return best;
}

std::size_t BinaryTrie::storage_bytes() const {
  // Two 4-byte child pointers + 4-byte next hop per node.
  return nodes_.size() * (2 * 4 + 4);
}

}  // namespace spal::trie
