#include "trie/simd_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spal::trie {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SPAL_SIMD_CPUID 1
#else
#define SPAL_SIMD_CPUID 0
#endif

SimdLevel probe_cpu() {
#if SPAL_SIMD_CPUID
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2") &&
      __builtin_cpu_supports("popcnt")) {
    return SimdLevel::kAvx2;
  }
  if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt")) {
    return SimdLevel::kSse42;
  }
#endif
  return SimdLevel::kGeneric;
}

SimdMode mode_from_env() {
  const char* env = std::getenv("SPAL_SIMD");
  if (env == nullptr || env[0] == '\0') return SimdMode::kAuto;
  if (const auto mode = simd_mode_from_string(env)) return *mode;
  std::fprintf(stderr,
               "spal: ignoring invalid SPAL_SIMD value '%s' "
               "(expected generic|sse42|avx2|auto)\n",
               env);
  return SimdMode::kAuto;
}

/// Requested mode, seeded from SPAL_SIMD on first use (thread-safe via the
/// magic static), then mutated only through set_simd_mode().
std::atomic<int>& mode_slot() {
  static std::atomic<int> slot{static_cast<int>(mode_from_env())};
  return slot;
}

SimdLevel resolve(SimdMode mode) {
  const SimdLevel detected = detected_simd_level();
  if (mode == SimdMode::kAuto) return detected;
  const auto requested = static_cast<SimdLevel>(mode);
  return requested <= detected ? requested : detected;
}

}  // namespace

namespace simd_detail {

std::atomic<int> g_resolved{-1};

/// First-call slow path of the inline resolved_simd_level(): resolves the
/// (env-seeded) requested mode against CPUID and caches the answer.
SimdLevel resolve_slow() {
  const SimdLevel level = resolve(simd_mode());
  g_resolved.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

}  // namespace simd_detail

SimdLevel detected_simd_level() {
  static const SimdLevel level = probe_cpu();
  return level;
}

SimdMode simd_mode() {
  return static_cast<SimdMode>(mode_slot().load(std::memory_order_relaxed));
}

SimdLevel set_simd_mode(SimdMode mode) {
  const SimdLevel resolved = resolve(mode);
  if (mode != SimdMode::kAuto && static_cast<int>(mode) > static_cast<int>(resolved)) {
    std::fprintf(stderr, "spal: requested simd level %.*s but CPU supports %.*s\n",
                 static_cast<int>(to_string(mode).size()), to_string(mode).data(),
                 static_cast<int>(to_string(resolved).size()),
                 to_string(resolved).data());
  }
  mode_slot().store(static_cast<int>(mode), std::memory_order_relaxed);
  simd_detail::g_resolved.store(static_cast<int>(resolved),
                                std::memory_order_relaxed);
  return resolved;
}

std::string_view to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::kGeneric: return "generic";
    case SimdLevel::kSse42: return "sse42";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

std::string_view to_string(SimdMode mode) {
  if (mode == SimdMode::kAuto) return "auto";
  return to_string(static_cast<SimdLevel>(mode));
}

std::optional<SimdMode> simd_mode_from_string(std::string_view name) {
  for (const SimdMode mode : {SimdMode::kAuto, SimdMode::kGeneric,
                              SimdMode::kSse42, SimdMode::kAvx2}) {
    if (name == to_string(mode)) return mode;
  }
  return std::nullopt;
}

}  // namespace spal::trie
