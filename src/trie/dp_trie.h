// DP trie (dynamic prefix trie), after Doeringer, Karjoth & Nassehi,
// "Routing on Longest-Matching Prefixes", IEEE/ACM ToN 1996.
//
// A path-compressed one-bit trie whose nodes are exactly the stored prefixes
// plus the branching points between them. Single-child chains are skipped
// via each node's index (bit-position) field, and skipped bits are verified
// against the node's key during search — the behaviour that gives the DP
// trie its characteristic ~16 memory accesses per lookup on backbone tables
// (Sec. 5.1 of the SPAL paper).
//
// Storage model (Sec. 4 of the SPAL paper): each node is one byte for the
// index field plus five 4-byte pointers, i.e. 21 bytes per node.
#pragma once

#include <cstdint>
#include <vector>

#include "trie/lpm.h"

namespace spal::trie {

class DpTrie final : public LpmIndex {
 public:
  explicit DpTrie(const net::RouteTable& table);

  // LpmIndex:
  net::NextHop lookup(net::Ipv4Addr addr) const override;
  net::NextHop lookup_counted(net::Ipv4Addr addr,
                              MemAccessCounter& counter) const override;
  std::size_t storage_bytes() const override;
  std::string_view name() const override { return "dp"; }

  // Incremental updates (the property the paper picks the DP trie for):
  // insert splits a compressed edge at the first divergent bit; remove
  // clears the prefix and splices out the node when it stops branching,
  // returning its slot to a free list. No rebuild, ever.
  bool supports_incremental_update() const override { return true; }
  void insert(const net::Prefix& prefix, net::NextHop next_hop) override;
  bool remove(const net::Prefix& prefix) override;

  /// Live (reachable) nodes; freed slots are excluded.
  std::size_t node_count() const { return nodes_.size() - free_.size(); }

 private:
  struct Node {
    std::uint32_t key = 0;       ///< path bits down to this node (MSB-aligned)
    std::uint8_t index = 0;      ///< depth: number of key bits that are fixed
    bool has_prefix = false;     ///< node stores a routing-table prefix
    net::NextHop next_hop = net::kNoRoute;
    std::int32_t child[2] = {-1, -1};
    std::int32_t parent = -1;
  };

  template <bool kCounted>
  net::NextHop lookup_impl(net::Ipv4Addr addr, MemAccessCounter* counter) const;

  std::int32_t alloc_node();
  void free_node(std::int32_t id);
  /// Splices `id` out if it is a non-root pass-through (no prefix, <2
  /// children), cascading to its parent when it empties.
  void maybe_splice(std::int32_t id);

  std::vector<Node> nodes_;  // nodes_[0] is the root (depth 0)
  std::vector<std::int32_t> free_;  // reclaimed slots for reuse
};

}  // namespace spal::trie
