#include "trace/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "net/table_gen.h"

namespace spal::trace {

WorkloadProfile profile_d75() {
  return WorkloadProfile{"D_75", 35'000, 1.25, 6.0, 0x7501};
}
WorkloadProfile profile_d81() {
  return WorkloadProfile{"D_81", 60'000, 1.15, 5.0, 0x8101};
}
WorkloadProfile profile_l92_0() {
  return WorkloadProfile{"L_92-0", 150'000, 1.05, 3.5, 0x9200};
}
WorkloadProfile profile_l92_1() {
  return WorkloadProfile{"L_92-1", 120'000, 1.10, 3.0, 0x9201};
}
WorkloadProfile profile_bell_labs() {
  return WorkloadProfile{"B_L", 50'000, 1.25, 8.0, 0xb111};
}

std::vector<WorkloadProfile> all_profiles() {
  return {profile_d75(), profile_d81(), profile_l92_0(), profile_l92_1(),
          profile_bell_labs()};
}

WorkloadProfile profile_uniform() {
  WorkloadProfile p{"uniform", 30'000, 0.0, 2.0, 0xfa1'0001};
  return p;
}
WorkloadProfile profile_zipf1() {
  WorkloadProfile p{"zipf-1.0", 30'000, 1.0, 3.0, 0xfa1'0002};
  return p;
}
WorkloadProfile profile_flash_crowd() {
  WorkloadProfile p{"flash-crowd", 30'000, 1.0, 3.0, 0xfa1'0003};
  p.shape = StreamShape::kFlashCrowd;
  return p;
}
WorkloadProfile profile_scan() {
  WorkloadProfile p{"scan", 30'000, 0.0, 1.0, 0xfa1'0004};
  p.shape = StreamShape::kScan;
  return p;
}

TraceGenerator::TraceGenerator(const WorkloadProfile& profile,
                               const net::RouteTable& table)
    : profile_(profile), table_size_(table.size()) {
  std::mt19937_64 rng(profile.seed);
  // Flow population: destinations drawn from the table's own prefixes so
  // every packet exercises a real LPM path.
  flow_addresses_.reserve(profile.flows);
  flow_entries_.reserve(profile.flows);
  if (!table.empty()) {
    std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
    for (std::size_t i = 0; i < profile.flows; ++i) {
      const std::size_t entry = pick(rng);
      const net::Prefix& prefix = table.entries()[entry].prefix;
      flow_addresses_.push_back(net::random_address_in(prefix, rng));
      flow_entries_.push_back(entry);
    }
  }
  // Zipf CDF over popularity ranks: weight of rank r is 1 / r^alpha.
  popularity_cdf_.reserve(flow_addresses_.size());
  double total = 0.0;
  for (std::size_t r = 0; r < flow_addresses_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), profile.zipf_alpha);
    popularity_cdf_.push_back(total);
  }
  for (double& v : popularity_cdf_) v /= total;
}

std::vector<net::Ipv4Addr> TraceGenerator::generate(int lc,
                                                    std::size_t count) const {
  std::vector<net::Ipv4Addr> destinations;
  destinations.reserve(count);
  if (flow_addresses_.empty()) return destinations;
  if (profile_.shape == StreamShape::kScan) {
    // Deterministic sweep over the flow population, each LC starting at its
    // own offset: no reuse at all, so every packet is a cold LPM.
    const std::size_t start =
        (static_cast<std::size_t>(lc) * 7919) % flow_addresses_.size();
    for (std::size_t i = 0; i < count; ++i) {
      destinations.push_back(
          flow_addresses_[(start + i) % flow_addresses_.size()]);
    }
    return destinations;
  }
  // Distinct per-LC stream over the shared flow population.
  std::mt19937_64 rng(profile_.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(lc + 1)));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double p_new = profile_.burst_mean <= 1.0 ? 1.0 : 1.0 / profile_.burst_mean;
  const bool flash = profile_.shape == StreamShape::kFlashCrowd;
  const std::size_t onset =
      flash ? static_cast<std::size_t>(profile_.flash_start *
                                       static_cast<double>(count))
            : count;
  const std::size_t hot_set =
      std::max<std::size_t>(1, std::min(profile_.flash_flows,
                                        flow_addresses_.size()));
  net::Ipv4Addr current = flow_addresses_.front();
  bool have_current = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (!have_current || unit(rng) < p_new) {
      std::size_t rank;
      if (flash && i >= onset && unit(rng) < profile_.flash_share) {
        // Flash crowd: the hot set is the head of the rank order, so its
        // traffic concentrates on whichever LCs home those prefixes.
        rank = std::min(static_cast<std::size_t>(
                            unit(rng) * static_cast<double>(hot_set)),
                        hot_set - 1);
      } else {
        const double u = unit(rng);
        const auto it = std::lower_bound(popularity_cdf_.begin(),
                                         popularity_cdf_.end(), u);
        rank = std::min(static_cast<std::size_t>(it - popularity_cdf_.begin()),
                        flow_addresses_.size() - 1);
      }
      current = flow_addresses_[rank];
      have_current = true;
    }
    destinations.push_back(current);
  }
  return destinations;
}

std::vector<double> TraceGenerator::prefix_weights() const {
  std::vector<double> weights(table_size_, 0.0);
  for (std::size_t r = 0; r < flow_entries_.size(); ++r) {
    const double mass =
        popularity_cdf_[r] - (r == 0 ? 0.0 : popularity_cdf_[r - 1]);
    weights[flow_entries_[r]] += mass;
  }
  return weights;
}

TraceStats analyze_trace(const std::vector<net::Ipv4Addr>& destinations) {
  TraceStats stats;
  stats.packets = destinations.size();
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const net::Ipv4Addr addr : destinations) ++counts[addr.value()];
  stats.distinct = counts.size();
  std::vector<std::size_t> sorted;
  sorted.reserve(counts.size());
  for (const auto& [addr, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());
  stats.head_mass.reserve(sorted.size() + 1);
  stats.head_mass.push_back(0.0);
  double running = 0.0;
  for (const std::size_t n : sorted) {
    running += static_cast<double>(n);
    stats.head_mass.push_back(
        stats.packets == 0 ? 0.0 : running / static_cast<double>(stats.packets));
  }
  return stats;
}

}  // namespace spal::trace
