// IPv6 destination-stream generation: the v6 counterpart of trace_gen.h,
// reusing the same WorkloadProfile locality model (Zipf flow popularity +
// geometric packet trains) over an IPv6 routing table.
#pragma once

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "net/prefix6.h"
#include "trace/trace_gen.h"

namespace spal::trace {

class TraceGenerator6 {
 public:
  TraceGenerator6(const WorkloadProfile& profile, const net::RouteTable6& table)
      : profile_(profile) {
    std::mt19937_64 rng(profile.seed);
    flow_addresses_.reserve(profile.flows);
    if (!table.empty()) {
      std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
      for (std::size_t i = 0; i < profile.flows; ++i) {
        const net::Prefix6& prefix = table.entries()[pick(rng)].prefix;
        flow_addresses_.push_back(net::random_address_in6(prefix, rng));
      }
    }
    popularity_cdf_.reserve(flow_addresses_.size());
    double total = 0.0;
    for (std::size_t r = 0; r < flow_addresses_.size(); ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), profile.zipf_alpha);
      popularity_cdf_.push_back(total);
    }
    for (double& v : popularity_cdf_) v /= total;
  }

  /// `count` destinations for line card `lc`; deterministic per
  /// (profile.seed, lc), same sequence structure as the IPv4 generator.
  std::vector<net::Ipv6Addr> generate(int lc, std::size_t count) const {
    std::vector<net::Ipv6Addr> destinations;
    destinations.reserve(count);
    if (flow_addresses_.empty()) return destinations;
    std::mt19937_64 rng(profile_.seed ^
                        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(lc + 1)));
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    const double p_new = profile_.burst_mean <= 1.0 ? 1.0 : 1.0 / profile_.burst_mean;
    net::Ipv6Addr current = flow_addresses_.front();
    bool have_current = false;
    for (std::size_t i = 0; i < count; ++i) {
      if (!have_current || unit(rng) < p_new) {
        const double u = unit(rng);
        const auto it =
            std::lower_bound(popularity_cdf_.begin(), popularity_cdf_.end(), u);
        const std::size_t rank =
            std::min(static_cast<std::size_t>(it - popularity_cdf_.begin()),
                     flow_addresses_.size() - 1);
        current = flow_addresses_[rank];
        have_current = true;
      }
      destinations.push_back(current);
    }
    return destinations;
  }

  const WorkloadProfile& profile() const { return profile_; }
  std::size_t flow_count() const { return flow_addresses_.size(); }

 private:
  WorkloadProfile profile_;
  std::vector<net::Ipv6Addr> flow_addresses_;
  std::vector<double> popularity_cdf_;
};

}  // namespace spal::trace
