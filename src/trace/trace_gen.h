// Synthetic destination-stream generation (paper Sec. 5.1 substitution).
//
// The paper drives its simulator with destination addresses from the
// WorldCup98 archive (traces D_75, D_81), the PMA Long Traces archive
// (Abilene-I L_92-0 / L_92-1) and Bell Labs-I (B_L). Those archives are not
// available here, so this module synthesizes streams with the two properties
// the paper itself identifies as what makes LR-caches work:
//   * heavy-tailed flow popularity — a small percentage of flows accounts
//     for a large share of traffic (the paper cites Estan & Varghese's
//     9%-of-flows/90%-of-traffic observation) — modelled as a Zipf
//     distribution over a fixed flow population, and
//   * packet trains — consecutive packets frequently repeat the previous
//     destination — modelled as geometric bursts.
// Flow destinations are sampled from the routing table itself (a random
// entry with randomized host bits), so every destination exercises real LPM
// paths. The flow population is shared by all LCs while each LC draws its
// own packet sequence, giving the cross-LC reuse that SPAL's remote-result
// caching exploits.
//
// The five profiles below differ in population size, skew and burstiness,
// tuned so a 4K-block 4-way LR-cache lands in the >=0.93 hit-rate band the
// paper reports for its traces.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/route_table.h"

namespace spal::trace {

/// Temporal shape of the destination stream. kStationary is the paper's
/// model (fixed Zipf popularity, geometric trains). The other two model the
/// skew transients the load rebalancer reacts to: a flash crowd
/// concentrates traffic onto a few hot flows partway through the stream,
/// and a scan sweeps the flow population with no reuse at all (worst case
/// for the LR-cache, flat offered load).
enum class StreamShape { kStationary, kFlashCrowd, kScan };

struct WorkloadProfile {
  std::string name;
  std::size_t flows = 100'000;  ///< distinct destination addresses
  double zipf_alpha = 1.0;      ///< popularity skew (larger = hotter head)
  double burst_mean = 3.0;      ///< mean packet-train length (geometric)
  std::uint64_t seed = 1;
  StreamShape shape = StreamShape::kStationary;
  double flash_start = 0.5;      ///< kFlashCrowd: stream fraction before onset
  double flash_share = 0.6;      ///< kFlashCrowd: post-onset hot-set traffic share
  std::size_t flash_flows = 4;   ///< kFlashCrowd: flows in the hot set
};

/// WorldCup98 July 9, 1998 stand-in: web-server clients, hot head.
WorkloadProfile profile_d75();
/// WorldCup98 July 15, 1998 stand-in.
WorkloadProfile profile_d81();
/// Abilene-I stand-ins: backbone traffic, larger population, flatter.
WorkloadProfile profile_l92_0();
WorkloadProfile profile_l92_1();
/// Bell Labs-I stand-in: small edge link, strongest locality.
WorkloadProfile profile_bell_labs();

/// All five, in the order the paper's figures plot them.
std::vector<WorkloadProfile> all_profiles();

/// Load-balance sweep workloads (bench_loadbalance): flat popularity …
WorkloadProfile profile_uniform();
/// … the canonical Zipf(1.0) skew the acceptance sweeps use …
WorkloadProfile profile_zipf1();
/// … a mid-stream flash crowd onto a handful of flows …
WorkloadProfile profile_flash_crowd();
/// … and an address-space scan with no reuse.
WorkloadProfile profile_scan();

/// Generates per-LC destination streams for one workload over one table.
class TraceGenerator {
 public:
  TraceGenerator(const WorkloadProfile& profile, const net::RouteTable& table);

  /// `count` destinations for line card `lc`. Deterministic in
  /// (profile.seed, lc); different lc values give different sequences over
  /// the same flow population.
  std::vector<net::Ipv4Addr> generate(int lc, std::size_t count) const;

  const WorkloadProfile& profile() const { return profile_; }
  std::size_t flow_count() const { return flow_addresses_.size(); }

  /// Per-prefix popularity weights, parallel to the source table's entries:
  /// each flow's Zipf probability mass accumulates onto the table entry its
  /// destination was drawn from, so Σ weights == 1 (0 for a table whose
  /// entries attracted no flow). This is the weight vector
  /// PartitionConfig::weights expects for traffic-aware partitioning.
  std::vector<double> prefix_weights() const;

 private:
  WorkloadProfile profile_;
  std::size_t table_size_ = 0;
  std::vector<net::Ipv4Addr> flow_addresses_;  ///< rank-ordered (hottest first)
  std::vector<std::size_t> flow_entries_;      ///< source table entry per flow
  std::vector<double> popularity_cdf_;         ///< Zipf CDF over ranks
};

/// Stream summary used by tests and the trace_locality example.
struct TraceStats {
  std::size_t packets = 0;
  std::size_t distinct = 0;
  /// Fraction of packets covered by the hottest `head` distinct addresses.
  double concentration(std::size_t head) const {
    return head_mass.empty() ? 0.0
           : head >= head_mass.size()
               ? 1.0
               : head_mass[head];
  }
  std::vector<double> head_mass;  ///< cumulative share by popularity rank
};

TraceStats analyze_trace(const std::vector<net::Ipv4Addr>& destinations);

}  // namespace spal::trace
