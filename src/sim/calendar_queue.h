// Calendar-queue event engine: an O(1) amortized alternative to the binary
// heap in engine.h for cycle-stamped simulation events.
//
// Design (classic calendar / timing-wheel queue, adapted to integer cycles):
//   * A power-of-two array of buckets, each `width_` cycles wide. An event at
//     time t lands in bucket (t / width_) & mask_ when t falls within one
//     "lap" of the wheel ahead of the current cycle. Buckets stay sorted by
//     (time, seq) with a drained-prefix offset, so draining a cycle is a
//     contiguous prefix walk, never a re-scan.
//   * Far-future events (beyond one lap) and past events (a schedule below
//     the current cycle, allowed for API parity with EventQueue) overflow
//     into a binary min-heap ordered by (time, seq). When the wheel runs
//     dry, the next lap's worth of overflow migrates into the buckets, so
//     bulk pre-scheduled horizons drain through the O(1) path lap by lap.
//   * The events of the cycle currently being drained sit in `ready_`, a
//     (time, seq)-sorted FIFO lane; same-cycle schedules append to it.
//   * The wheel resizes automatically: the bucket count grows with the
//     pending event count, and reserve(count, horizon) derives the bucket
//     width from a known schedule span (e.g. a run's packet arrivals) so
//     the whole horizon fits in one lap up front.
//
// Ordering contract: pops come out in exactly the same (time, insertion-seq)
// order as EventQueue — equal-time events pop FIFO. Every pop resolves the
// head by an explicit (time, seq) comparison between the ready lane and the
// overflow heap, so the two engines produce bit-identical simulations by
// construction, independent of resize or migration timing.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace spal::sim {

/// Which event-queue implementation a simulation run uses.
enum class EngineKind : std::uint8_t {
  kHeap,      ///< binary heap (EventQueue), O(log n) per event
  kCalendar,  ///< calendar queue (CalendarQueue), O(1) amortized
};

template <typename Event>
class CalendarQueue {
 public:
  explicit CalendarQueue(std::size_t bucket_hint = 0) {
    resize_wheel(clamp_buckets(bucket_hint));
  }

  /// Sizes the wheel for an expected total event count, and — when the
  /// caller knows it, e.g. from a run's last packet arrival — a time
  /// horizon the bucket width is derived from so every pre-scheduled event
  /// lands in the wheel rather than the overflow heap.
  void reserve(std::size_t expected_events, std::uint64_t horizon = 0) {
    const std::size_t target = clamp_buckets(expected_events / kLoadFactor);
    if (target > buckets_.size()) rebuild(target);
    if (horizon > cur_) {
      const std::uint64_t span = horizon - cur_;
      const std::uint64_t fit_width =
          std::bit_ceil(span / buckets_.size() + 1);
      if (fit_width > width_) {
        width_ = fit_width;
        rebuild(buckets_.size());
      }
    }
    ready_.reserve(64);
  }

  void schedule(std::uint64_t time, Event event) {
    place(Entry{time, next_seq_++, std::move(event)});
    ++size_;
    const std::size_t stored = wheel_count_ + heap_.size();
    if (stored > buckets_.size() * kLoadFactor * 2 &&
        buckets_.size() < kMaxBuckets) {
      rebuild(clamp_buckets(stored / kLoadFactor));
    }
    if (ready_pos_ >= ready_.size() && wheel_count_ > 0) advance();
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Earliest pending event time; callers must check empty() first (the
  /// same contract as EventQueue — asserted in debug builds; an empty-queue
  /// call would otherwise return the kNoEvent sentinel here but index out
  /// of bounds in pop()).
  std::uint64_t next_time() const {
    assert(!empty() && "CalendarQueue::next_time() on empty queue");
    std::uint64_t t = kNoEvent;
    if (ready_pos_ < ready_.size()) t = ready_[ready_pos_].time;
    if (!heap_.empty()) t = std::min(t, heap_.front().time);
    return t;
  }

  /// Pops the earliest event ((time, seq) order); callers check empty().
  std::pair<std::uint64_t, Event> pop() {
    assert(!empty() && "CalendarQueue::pop() on empty queue");
    const bool from_heap = [&] {
      if (heap_.empty()) return false;
      if (ready_pos_ >= ready_.size()) return true;
      const Entry& h = heap_.front();
      const Entry& r = ready_[ready_pos_];
      return h.time != r.time ? h.time < r.time : h.seq < r.seq;
    }();
    Entry entry = from_heap ? pop_heap_entry() : std::move(ready_[ready_pos_++]);
    --size_;
    // Keep the drain cursor monotone so later schedules classify against
    // the true simulation frontier even through heap-only stretches.
    cur_ = std::max(cur_, entry.time);
    if (ready_pos_ >= ready_.size()) {
      if (wheel_count_ > 0) {
        advance();
      } else if (!heap_.empty()) {
        migrate();
      }
    }
    return {entry.time, std::move(entry.event)};
  }

 private:
  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
  static constexpr std::size_t kMinBuckets = 1u << 10;
  static constexpr std::size_t kMaxBuckets = 1u << 21;
  /// Target resident entries per bucket. Denser buckets mean far fewer
  /// bucket-vector allocations and a smaller wheel to zero and scan; the
  /// sorted-insert cost stays tiny at this size.
  static constexpr std::size_t kLoadFactor = 8;

  struct Entry {
    std::uint64_t time;
    std::uint64_t seq;
    Event event;
  };

  static bool heap_after(const Entry& a, const Entry& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  static std::size_t clamp_buckets(std::size_t hint) {
    return std::bit_ceil(std::clamp(hint, kMinBuckets, kMaxBuckets));
  }

  std::uint64_t slot_of(std::uint64_t time) const { return time / width_; }

  /// Files one entry into the ready lane, the wheel, or the overflow heap.
  void place(Entry entry) {
    if (entry.time == cur_) {
      // Same-cycle burst: the new seq is the largest outstanding and the
      // ready lane never holds times above cur_, so a plain append keeps
      // it (time, seq)-sorted.
      if (ready_pos_ >= ready_.size()) {
        ready_.clear();
        ready_pos_ = 0;
      }
      ready_.push_back(std::move(entry));
      return;
    }
    if (entry.time < cur_ || slot_of(entry.time) - slot_of(cur_) >= buckets_.size()) {
      push_overflow(std::move(entry));
      return;
    }
    insert_in_bucket(std::move(entry));
  }

  void push_overflow(Entry entry) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), heap_after);
  }

  /// Sorted insert: after every entry with time <= t (the new seq is the
  /// largest, so this is exactly the (time, seq) position). The drained
  /// prefix of the bucket only holds times below cur_ < t, so the insertion
  /// point never lands inside it.
  void insert_in_bucket(Entry entry) {
    const std::size_t b = static_cast<std::size_t>(slot_of(entry.time)) & mask_;
    auto& bucket = buckets_[b];
    // One allocation straight to the target load instead of 1-2-4-8 growth.
    if (bucket.capacity() == 0) bucket.reserve(kLoadFactor);
    const auto pos =
        std::upper_bound(bucket.begin(), bucket.end(), entry.time,
                         [](std::uint64_t t, const Entry& e) { return t < e.time; });
    bucket.insert(pos, std::move(entry));
    if (bucket_pos_[b] < bucket.size()) {
      bucket_min_[b] = bucket[bucket_pos_[b]].time;
    }
    ++wheel_count_;
  }

  Entry pop_heap_entry() {
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    return entry;
  }

  /// Moves the drain cursor to the earliest wheel cycle and loads that
  /// cycle's events (plus any co-timed overflow entries) into the ready
  /// lane. Precondition: ready drained, wheel_count_ > 0.
  void advance() {
    ready_.clear();
    ready_pos_ = 0;
    const std::uint64_t cur_slot = slot_of(cur_);
    std::uint64_t next = kNoEvent;
    for (std::size_t k = 0; k < buckets_.size(); ++k) {
      const std::uint64_t m = bucket_min_[(cur_slot + k) & mask_];
      if (m == kNoEvent) continue;
      if (slot_of(m) == cur_slot + k) {  // earliest event of this lap
        next = m;
        break;
      }
      next = std::min(next, m);  // whole lap empty: jump to a later lap
    }
    cur_ = next;
    // Overflow entries stamped exactly at the new cycle pop before the
    // wheel's (they were scheduled while the cycle lay beyond the horizon,
    // i.e. with strictly smaller seqs — and the merge below makes the order
    // robust even across resizes, where the horizon moves non-monotonically).
    while (!heap_.empty() && heap_.front().time == cur_) {
      ready_.push_back(pop_heap_entry());
    }
    const std::size_t pulled = ready_.size();
    const std::size_t b = static_cast<std::size_t>(slot_of(cur_)) & mask_;
    auto& bucket = buckets_[b];
    std::size_t& pos = bucket_pos_[b];
    while (pos < bucket.size() && bucket[pos].time == cur_) {
      ready_.push_back(std::move(bucket[pos]));
      ++pos;
      --wheel_count_;
    }
    if (pos >= bucket.size()) {
      bucket.clear();
      pos = 0;
      bucket_min_[b] = kNoEvent;
    } else {
      bucket_min_[b] = bucket[pos].time;
    }
    std::inplace_merge(
        ready_.begin(), ready_.begin() + static_cast<std::ptrdiff_t>(pulled),
        ready_.end(), [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  }

  /// The wheel ran dry but the overflow heap has not: jump the cursor to
  /// the heap's frontier, move everything due at or before it into the
  /// ready lane (heap pops arrive (time, seq)-sorted), and stage the next
  /// lap of overflow into the now-empty buckets so the drain continues on
  /// the O(1) path. Precondition: ready drained, wheel_count_ == 0.
  void migrate() {
    ready_.clear();
    ready_pos_ = 0;
    cur_ = std::max(cur_, heap_.front().time);
    while (!heap_.empty() && heap_.front().time <= cur_) {
      ready_.push_back(pop_heap_entry());
    }
    const std::uint64_t lap_end_slot = slot_of(cur_) + buckets_.size();
    while (!heap_.empty() && slot_of(heap_.front().time) < lap_end_slot) {
      // Ascending (time, seq) pops append in sorted order per bucket.
      Entry entry = pop_heap_entry();
      const std::size_t b =
          static_cast<std::size_t>(slot_of(entry.time)) & mask_;
      bucket_min_[b] = std::min(bucket_min_[b], entry.time);
      buckets_[b].push_back(std::move(entry));
      ++wheel_count_;
    }
  }

  /// Re-files every wheel + overflow entry under a new bucket count.
  /// Buckets are redistributed and re-sorted by (time, seq); the in-flight
  /// ready lane is untouched (its cycle is already resolved). Entries at
  /// exactly cur_ go to the heap, not the lane — the lane may already hold
  /// later seqs, and the pop merge orders heap copies correctly.
  void rebuild(std::size_t new_buckets) {
    std::vector<Entry> pending;
    pending.reserve(wheel_count_ + heap_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      auto& bucket = buckets_[b];
      for (std::size_t i = bucket_pos_[b]; i < bucket.size(); ++i) {
        pending.push_back(std::move(bucket[i]));
      }
    }
    for (Entry& e : heap_) pending.push_back(std::move(e));
    heap_.clear();
    resize_wheel(new_buckets);
    wheel_count_ = 0;
    for (Entry& e : pending) {
      if (e.time <= cur_) {
        push_overflow(std::move(e));
      } else if (slot_of(e.time) - slot_of(cur_) >= buckets_.size()) {
        push_overflow(std::move(e));
      } else {
        const std::size_t b =
            static_cast<std::size_t>(slot_of(e.time)) & mask_;
        buckets_[b].push_back(std::move(e));
        ++wheel_count_;
      }
    }
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      auto& bucket = buckets_[b];
      if (bucket.empty()) continue;
      std::sort(bucket.begin(), bucket.end(),
                [](const Entry& a, const Entry& c) {
                  return a.time != c.time ? a.time < c.time : a.seq < c.seq;
                });
      bucket_min_[b] = bucket.front().time;
    }
  }

  void resize_wheel(std::size_t new_buckets) {
    // Keep existing bucket-vector capacity where possible (callers have
    // already drained the entries).
    const std::size_t keep = std::min(buckets_.size(), new_buckets);
    for (std::size_t b = 0; b < keep; ++b) buckets_[b].clear();
    buckets_.resize(new_buckets);
    bucket_min_.assign(new_buckets, kNoEvent);
    bucket_pos_.assign(new_buckets, 0);
    mask_ = new_buckets - 1;
  }

  std::vector<std::vector<Entry>> buckets_;  ///< each (time, seq)-sorted
  std::vector<std::uint64_t> bucket_min_;  ///< undrained min; kNoEvent if none
  std::vector<std::size_t> bucket_pos_;    ///< drained-prefix offset
  std::size_t mask_ = 0;
  std::uint64_t width_ = 1;       ///< cycles per bucket (power of two)
  std::uint64_t cur_ = 0;         ///< cycle the ready lane belongs to
  std::vector<Entry> ready_;      ///< (time, seq)-sorted drain lane
  std::size_t ready_pos_ = 0;
  std::vector<Entry> heap_;       ///< overflow min-heap on (time, seq)
  std::size_t wheel_count_ = 0;   ///< undrained entries filed in buckets_
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Runtime-selectable event queue: holds both engines and dispatches on the
/// kind chosen at reset() time. The branch is perfectly predicted in the hot
/// loop; payload handling is identical either way.
template <typename Event>
class AnyEventQueue {
 public:
  void reset(EngineKind kind, std::size_t expected_events,
             std::uint64_t horizon = 0) {
    kind_ = kind;
    heap_ = {};
    calendar_ = CalendarQueue<Event>{};
    if (kind_ == EngineKind::kHeap) {
      heap_.reserve(expected_events);
    } else {
      calendar_.reserve(expected_events, horizon);
    }
  }

  void schedule(std::uint64_t time, Event event) {
    if (kind_ == EngineKind::kHeap) {
      heap_.schedule(time, std::move(event));
    } else {
      calendar_.schedule(time, std::move(event));
    }
  }

  bool empty() const {
    return kind_ == EngineKind::kHeap ? heap_.empty() : calendar_.empty();
  }
  std::size_t size() const {
    return kind_ == EngineKind::kHeap ? heap_.size() : calendar_.size();
  }
  std::uint64_t next_time() const {
    return kind_ == EngineKind::kHeap ? heap_.next_time() : calendar_.next_time();
  }
  std::pair<std::uint64_t, Event> pop() {
    return kind_ == EngineKind::kHeap ? heap_.pop() : calendar_.pop();
  }

 private:
  EngineKind kind_ = EngineKind::kCalendar;
  EventQueue<Event> heap_;
  CalendarQueue<Event> calendar_;
};

}  // namespace spal::sim
