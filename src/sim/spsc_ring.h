// Bounded single-producer / single-consumer ring buffer.
//
// The sharded router engine moves fabric messages between shard threads
// through one SpscRing per (producer, consumer) pair, so every ring has
// exactly one writer and one reader by construction and needs no locks:
// the producer owns `tail_`, the consumer owns `head_`, and each side
// caches the other's index to avoid touching the shared cache line on
// every operation (it refreshes the cache only when the ring looks full /
// empty). Capacity is a power of two; try_push/try_pop never block — the
// shard engine layers its own drain-while-spinning policy on top so a
// full ring can never deadlock two shards pushing to each other.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

namespace spal::sim {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side only. False when the ring is full.
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side only. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  // Producer-owned line: tail index + its cached view of head.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  // Consumer-owned line: head index + its cached view of tail.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace spal::sim
