// Minimal discrete-event engine.
//
// A stable time-ordered event queue: events at equal timestamps pop in
// insertion order, which keeps the router simulation deterministic. The
// event payload is a caller-defined POD; dispatch stays in the caller, so
// the hot loop performs no type-erased calls or per-event allocation.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace spal::sim {

template <typename Event>
class EventQueue {
 public:
  void schedule(std::uint64_t time, Event event) {
    heap_.push(Entry{time, next_seq_++, std::move(event)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  std::uint64_t next_time() const { return heap_.top().time; }

  /// Pops the earliest event; callers must check empty() first.
  std::pair<std::uint64_t, Event> pop() {
    Entry top = heap_.top();
    heap_.pop();
    return {top.time, std::move(top.event)};
  }

 private:
  struct Entry {
    std::uint64_t time;
    std::uint64_t seq;
    Event event;

    bool operator>(const Entry& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace spal::sim
