// Minimal discrete-event engine.
//
// A stable time-ordered event queue: events at equal timestamps pop in
// insertion order, which keeps the router simulation deterministic. The
// event payload is a caller-defined POD; dispatch stays in the caller, so
// the hot loop performs no type-erased calls or per-event allocation.
//
// This is the binary-heap engine; calendar_queue.h provides an O(1)
// amortized alternative with the identical (time, seq) pop order.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace spal::sim {

template <typename Event>
class EventQueue {
 public:
  /// Pre-sizes the underlying heap storage for an expected event count.
  void reserve(std::size_t expected_events) { heap_.reserve(expected_events); }

  void schedule(std::uint64_t time, Event event) {
    heap_.push_back(Entry{time, next_seq_++, std::move(event)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event; callers must check empty() first (calling
  /// on an empty queue is a contract violation, caught by the assert in
  /// debug builds and undefined behavior on `heap_.front()` otherwise).
  std::uint64_t next_time() const {
    assert(!heap_.empty() && "EventQueue::next_time() on empty queue");
    return heap_.front().time;
  }

  /// Pops the earliest event; callers must check empty() first (same
  /// contract as next_time()).
  std::pair<std::uint64_t, Event> pop() {
    assert(!heap_.empty() && "EventQueue::pop() on empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    Entry top = std::move(heap_.back());
    heap_.pop_back();
    return {top.time, std::move(top.event)};
  }

 private:
  struct Entry {
    std::uint64_t time;
    std::uint64_t seq;
    Event event;

    bool operator>(const Entry& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace spal::sim
