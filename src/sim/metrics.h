// Latency / utilization accumulators for the router simulation.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace spal::sim {

/// Accumulates per-packet lookup latencies (in cycles) for mean and
/// percentile queries. The paper's headline metric is the mean lookup time
/// in 5 ns cycles; the percentiles back the tail-latency claims.
///
/// Bucketing is two-tier:
///   * a linear tier of 1-cycle-wide buckets covering [0, linear_buckets)
///     — percentiles inside it are *exact* (they match a sorted-vector
///     oracle), and simulated lookup latencies live almost entirely here;
///   * a geometric overflow tier for larger values: each power-of-two
///     octave is split into 2^kSubBucketBits sub-buckets, so tail
///     percentiles keep a bounded relative error (< 2^-kSubBucketBits)
///     at any scale instead of saturating at the last linear bucket.
/// The true maximum is tracked exactly: percentile(1.0) == worst_cycles()
/// always, and no reported percentile can exceed it.
class LatencyStats {
 public:
  /// Number of exact (1-cycle) buckets; clamped up to kMinLinearBuckets so
  /// the geometric tier always starts beyond one full octave of sub-buckets.
  explicit LatencyStats(std::size_t linear_buckets = 1024)
      : linear_(std::max(linear_buckets, kMinLinearBuckets), 0) {}

  void record(std::uint64_t cycles) {
    ++count_;
    total_ += cycles;
    worst_ = std::max(worst_, cycles);
    add_to_histogram(cycles, 1);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t total_cycles() const { return total_; }
  std::uint64_t worst_cycles() const { return worst_; }

  double mean_cycles() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_) / static_cast<double>(count_);
  }

  /// Smallest recorded latency L such that at least ceil(q * count) packets
  /// finished in <= L cycles (the rank-th order statistic, 1-indexed).
  /// Exact for values inside the linear tier; values in the geometric tier
  /// report their sub-bucket upper bound, clamped to the exact worst case.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Ceil-based rank: q = 0.99 over one sample must select that sample
    // (rank 1), never "0 cycles". Clamped to [1, count] against fp noise.
    const auto rank = std::min<std::uint64_t>(
        count_,
        std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(q * static_cast<double>(count_)))));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < linear_.size(); ++i) {
      running += linear_[i];
      if (running >= rank) return std::min<std::uint64_t>(i, worst_);
    }
    for (std::size_t g = 0; g < geo_.size(); ++g) {
      running += geo_[g];
      if (running >= rank) return std::min(geo_upper_bound(g), worst_);
    }
    return worst_;
  }

  /// Mean packets per second per LC given the cycle time, the reciprocal of
  /// the mean lookup time (how the paper converts 9.2 cycles to 21 Mpps).
  double lookups_per_second(double cycle_ns) const {
    const double mean = mean_cycles();
    return mean <= 0.0 ? 0.0 : 1e9 / (mean * cycle_ns);
  }

  /// Accumulates `other` into this. Histograms of different linear sizes
  /// merge losslessly in counts: this grows to the larger linear tier and
  /// remaps the smaller one's overflow buckets by their representative
  /// value (never truncating tail buckets away).
  void merge(const LatencyStats& other) {
    count_ += other.count_;
    total_ += other.total_;
    worst_ = std::max(worst_, other.worst_);
    if (linear_.size() < other.linear_.size()) {
      linear_.resize(other.linear_.size(), 0);
    }
    // Linear buckets hold exactly value == index, so elementwise addition
    // is exact once this tier is at least as large.
    for (std::size_t i = 0; i < other.linear_.size(); ++i) {
      linear_[i] += other.linear_[i];
    }
    // Geometric buckets are defined by absolute value ranges (independent
    // of the linear size), so remapping by the bucket's upper bound lands
    // in the same bucket — or in an exact linear bucket if this instance's
    // linear tier covers that range.
    for (std::size_t g = 0; g < other.geo_.size(); ++g) {
      if (other.geo_[g] != 0) {
        add_to_histogram(other.geo_upper_bound(g), other.geo_[g]);
      }
    }
  }

 private:
  static constexpr std::size_t kSubBucketBits = 6;  ///< 64 sub-buckets/octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  static constexpr std::size_t kMinLinearBuckets = kSubBuckets;

  /// Geometric index for a value >= linear_.size(): the octave (bit width)
  /// selects a 64-sub-bucket row, the bits after the leading one select the
  /// sub-bucket. Index order == value order.
  static std::size_t geo_index(std::uint64_t value) {
    const int width = std::bit_width(value);  // value >= 64 => width >= 7
    const int shift = width - 1 - static_cast<int>(kSubBucketBits);
    const auto sub = static_cast<std::size_t>(
        (value >> shift) & (kSubBuckets - 1));
    return static_cast<std::size_t>(width - 1) * kSubBuckets + sub;
  }

  /// Largest value mapping to geometric index `g` (the reported bound).
  /// The stored sub-index is the mantissa *without* its implicit leading
  /// bit (geo_index masks with kSubBuckets - 1), so that bit must be added
  /// back before shifting.
  static std::uint64_t geo_upper_bound(std::size_t g) {
    const auto width = static_cast<int>(g / kSubBuckets) + 1;
    const auto sub = static_cast<std::uint64_t>(g % kSubBuckets);
    const int shift = width - 1 - static_cast<int>(kSubBucketBits);
    return ((kSubBuckets + sub + 1) << shift) - 1;
  }

  void add_to_histogram(std::uint64_t value, std::uint64_t n) {
    if (value < linear_.size()) {
      linear_[value] += n;
      return;
    }
    const std::size_t g = geo_index(value);
    if (geo_.size() <= g) geo_.resize(g + 1, 0);  // lazy: most runs never overflow
    geo_[g] += n;
  }

  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t worst_ = 0;
  std::vector<std::uint64_t> linear_;  ///< exact tier, bucket i == i cycles
  std::vector<std::uint64_t> geo_;     ///< overflow tier, see geo_index()
};

}  // namespace spal::sim
