// Latency / utilization accumulators for the router simulation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace spal::sim {

/// Accumulates per-packet lookup latencies (in cycles) with a bounded
/// histogram for percentile queries. The paper's headline metric is the
/// mean lookup time in 5 ns cycles.
class LatencyStats {
 public:
  explicit LatencyStats(std::size_t histogram_buckets = 1024)
      : histogram_(histogram_buckets, 0) {}

  void record(std::uint64_t cycles) {
    ++count_;
    total_ += cycles;
    worst_ = std::max(worst_, cycles);
    const std::size_t bucket =
        std::min<std::size_t>(cycles, histogram_.size() - 1);
    ++histogram_[bucket];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t total_cycles() const { return total_; }
  std::uint64_t worst_cycles() const { return worst_; }

  double mean_cycles() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_) / static_cast<double>(count_);
  }

  /// Smallest latency L such that at least `q` of packets finished in <= L
  /// cycles. Latencies beyond the histogram range report the last bucket.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < histogram_.size(); ++i) {
      running += histogram_[i];
      if (running >= target) return i;
    }
    return histogram_.size() - 1;
  }

  /// Mean packets per second per LC given the cycle time, the reciprocal of
  /// the mean lookup time (how the paper converts 9.2 cycles to 21 Mpps).
  double lookups_per_second(double cycle_ns) const {
    const double mean = mean_cycles();
    return mean <= 0.0 ? 0.0 : 1e9 / (mean * cycle_ns);
  }

  void merge(const LatencyStats& other) {
    count_ += other.count_;
    total_ += other.total_;
    worst_ = std::max(worst_, other.worst_);
    for (std::size_t i = 0; i < histogram_.size() && i < other.histogram_.size(); ++i) {
      histogram_[i] += other.histogram_[i];
    }
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t worst_ = 0;
  std::vector<std::uint64_t> histogram_;
};

}  // namespace spal::sim
