// Synchronization primitives for the sharded router engine.
//
// TerminationGate implements the veto-barrier protocol: when every shard's
// local view says "nothing left to do", the shards rendezvous at a central
// barrier, re-check their queues/rings after the barrier (messages may have
// raced in), and either all agree the run is over or all loop back to work.
// Two barriers per round separate the "declare busy/idle" phase from the
// "read the verdict" phase; busy counters are parity-indexed so a round's
// counter is never reset while a straggler from the previous round could
// still read it.
//
// Both barrier waits accept a poll callback. Shards use it to keep draining
// their inbound rings (so a producer spinning on a full ring can always make
// progress), to PROCESS any raced-in work below their safe horizon (a held
// event would pin the frontier and deadlock a busy peer gated on it), and to
// keep republishing their frontier (so an active shard's safe horizon — the
// min over peer frontiers — keeps advancing while its peers idle in the
// gate). Without the poll, each of these situations deadlocks.
//
// CONTRACT for poll-side processing: polls run inside the ENTER barrier
// too, i.e. before the caller's own recheck, and processing an event there
// can emit cross-shard messages while leaving no local state behind. A
// recheck that only inspects local queues would then under-report, and the
// round could conclude "terminate" with a message still in flight. Callers
// whose poll processes work MUST therefore record that fact and have their
// recheck veto on it (see BasicRouterSim::try_terminate's raced_work flag);
// exit-barrier processing needs no flag because any work visible there was
// pushed during the round, which is only possible in an already-vetoed
// round.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace spal::sim {

/// Thrown out of shard spin loops when another shard has already failed,
/// so all workers unwind promptly and the first exception is rethrown.
struct ShardAbort {};

/// Brief busy-wait pause; cheap on both real cores and oversubscribed hosts.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Spin helper that stays polite on machines with fewer cores than shards:
/// a short pause budget, then yield to the scheduler.
class SpinWaiter {
 public:
  void wait() {
    if (spins_ < kPauseBudget) {
      ++spins_;
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  void reset() { spins_ = 0; }

 private:
  static constexpr int kPauseBudget = 64;
  int spins_ = 0;
};

class TerminationGate {
 public:
  explicit TerminationGate(int participants) : participants_(participants) {}

  int participants() const { return participants_; }

  /// One gate round. `parity` is the caller's own round counter (start it
  /// at 0); the barriers keep all participants' parities in lockstep.
  /// `recheck()` runs between the two barriers and returns true when the
  /// caller still has work (its rings or queue turned out to be non-empty);
  /// `poll()` runs while spinning inside either barrier.
  /// Returns true when ALL participants had no work — i.e. terminate.
  template <typename Recheck, typename Poll>
  bool round(uint64_t& parity, Recheck&& recheck, Poll&& poll) {
    const int r = static_cast<int>(parity & 1);
    arrive(enter_, poll);
    if (recheck()) busy_[r].fetch_add(1, std::memory_order_relaxed);
    arrive(exit_, poll);
    const bool done = busy_[r].load(std::memory_order_relaxed) == 0;
    // Everyone is past the exit barrier and cannot touch the other parity's
    // counter until after the *next* enter barrier, so resetting it here is
    // race-free (concurrent identical stores at worst).
    busy_[(r + 1) & 1].store(0, std::memory_order_relaxed);
    ++parity;
    return done;
  }

 private:
  struct Phase {
    std::atomic<int> count{0};
    std::atomic<uint64_t> generation{0};
  };

  template <typename Poll>
  void arrive(Phase& phase, Poll&& poll) {
    const uint64_t gen = phase.generation.load(std::memory_order_acquire);
    if (phase.count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      phase.count.store(0, std::memory_order_relaxed);
      phase.generation.store(gen + 1, std::memory_order_release);
      return;
    }
    SpinWaiter spin;
    while (phase.generation.load(std::memory_order_acquire) == gen) {
      poll();
      spin.wait();
    }
  }

  const int participants_;
  alignas(64) Phase enter_;
  alignas(64) Phase exit_;
  alignas(64) std::atomic<int> busy_[2] = {};
};

}  // namespace spal::sim
