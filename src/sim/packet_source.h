// Packet arrival-time generation (paper Sec. 5.1).
//
// The paper generates variable-length packets so that each LC sustains its
// line rate with a 256-byte mean packet (40-byte minimum): at the 5 ns cycle
// this yields one packet every uniform[2,18] cycles at 40 Gbps and every
// uniform[6,74] cycles at 10 Gbps.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace spal::sim {

inline constexpr double kCycleNs = 5.0;  ///< the paper's simulated clock

struct ArrivalBounds {
  int min_cycles;
  int max_cycles;
};

/// Inter-arrival bounds for a line rate; only the paper's two rates are
/// meaningful but any rate is scaled from the 40 Gbps bounds.
inline ArrivalBounds arrival_bounds(double line_rate_gbps) {
  if (line_rate_gbps <= 0) throw std::invalid_argument("line rate must be positive");
  if (line_rate_gbps >= 40.0) return {2, 18};
  if (line_rate_gbps >= 10.0 && line_rate_gbps < 11.0) return {6, 74};
  // General scaling: mean inter-arrival = mean packet bits / rate / cycle.
  const double mean_cycles = (256.0 * 8.0) / line_rate_gbps / kCycleNs;
  const int min_cycles = std::max(1, static_cast<int>(mean_cycles * 0.2));
  const int max_cycles = static_cast<int>(mean_cycles * 1.8);
  return {min_cycles, std::max(max_cycles, min_cycles + 1)};
}

/// Deterministic arrival-time sequence for one LC.
inline std::vector<std::uint64_t> generate_arrival_times(double line_rate_gbps,
                                                         std::size_t packets,
                                                         std::uint64_t seed) {
  const ArrivalBounds bounds = arrival_bounds(line_rate_gbps);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> gap(bounds.min_cycles, bounds.max_cycles);
  std::vector<std::uint64_t> times;
  times.reserve(packets);
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    now += static_cast<std::uint64_t>(gap(rng));
    times.push_back(now);
  }
  return times;
}

}  // namespace spal::sim
