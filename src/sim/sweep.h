// Parallel sweep runner for independent simulation points.
//
// Every figure bench sweeps many independent RouterSim configurations; each
// point is CPU-bound and shares no mutable state with the others, so they
// parallelize trivially. parallel_sweep(points, fn) runs fn over each point
// on a small thread pool and returns the results in point order, so bench
// output is byte-identical to a sequential run regardless of thread count.
//
//   * Result ordering is deterministic: results[i] == fn(points[i]).
//   * Exceptions propagate: the failure from the lowest-index failing point
//     is rethrown on the caller's thread (also independent of thread count —
//     claims are handed out in index order, so every point below a recorded
//     failure has fully executed).
//   * Thread count: explicit argument > SPAL_SWEEP_THREADS env var >
//     std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace spal::sim {

/// Default worker count for parallel_sweep: the SPAL_SWEEP_THREADS
/// environment variable if set to a positive integer (capped at 4096), else
/// the hardware concurrency (at least 1). The variable must be a complete
/// decimal integer — trailing garbage ("8abc"), overflow, an empty string,
/// or a non-positive value is rejected with a warning on stderr and falls
/// back to the hardware default, matching BenchArgs::parse strictness
/// (strtol alone would silently read "8abc" as 8 and saturate overflow).
inline int sweep_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  if (const char* env = std::getenv("SPAL_SWEEP_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    if (errno != 0 || end == env || *end != '\0' || parsed < 1) {
      std::fprintf(stderr,
                   "spal: ignoring SPAL_SWEEP_THREADS=\"%s\" (want a "
                   "positive integer); using %d thread(s)\n",
                   env, fallback);
      return fallback;
    }
    return static_cast<int>(std::min(parsed, 4096L));
  }
  return fallback;
}

/// A small fixed-size worker pool. Tasks are run in submission order; wait()
/// blocks until every submitted task has finished.
class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      workers_.emplace_back([this] { work(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  std::size_t thread_count() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    task_ready_.notify_one();
  }

  /// Blocks until the queue is empty and no task is mid-flight.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  }

 private:
  void work() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
      lock.unlock();
      task();
      lock.lock();
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn over every point concurrently and returns results in point
/// order. `threads` <= 0 selects sweep_thread_count(). See the header
/// comment for the determinism and exception contract.
template <typename Point, typename Fn>
auto parallel_sweep(const std::vector<Point>& points, Fn fn, int threads = 0)
    -> std::vector<std::invoke_result_t<Fn&, const Point&>> {
  using Result = std::invoke_result_t<Fn&, const Point&>;
  static_assert(!std::is_void_v<Result>,
                "parallel_sweep: fn must return a value per point");
  const std::size_t n = points.size();
  std::vector<std::optional<Result>> slots(n);
  if (threads <= 0) threads = sweep_thread_count();
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), n));

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(points[i]));
  } else {
    std::vector<std::exception_ptr> errors(n);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    ThreadPool pool(threads);
    for (int w = 0; w < threads; ++w) {
      pool.submit([&] {
        // Claim points in index order; stop claiming once something failed
        // (everything below the lowest failure has already been claimed).
        std::size_t i;
        while ((i = next.fetch_add(1)) < n &&
               !failed.load(std::memory_order_relaxed)) {
          try {
            slots[i].emplace(fn(points[i]));
          } catch (...) {
            errors[i] = std::current_exception();
            failed.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    pool.wait();
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  std::vector<Result> results;
  results.reserve(n);
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace spal::sim
