// Switching-fabric model (paper Secs. 1, 3).
//
// SPAL assumes a low-latency fabric — a shared bus for small ψ, a crossbar,
// or a multistage network of small crossbars for larger routers — with
// packet latency around 10 ns (two 5 ns cycles). The paper deliberately
// abstracts fabric details and lets latency depend on fabric size; this
// model does the same:
//   * traversal latency = per_stage_cycles × (number of crossbar stages for
//     `ports` endpoints at the given radix) + base_latency_cycles, and
//   * each port serializes: one message per cycle in each direction.
// Message timing is computed analytically (no per-cycle simulation), which
// the event-driven router simulator consumes directly.
//
// Fault injection: a seeded FaultConfig makes the fabric lossy — messages
// can be dropped at random (per-message drop probability), delayed by
// latency jitter, or lost wholesale while a port is inside a scheduled
// outage window (a dead line card). try_deliver() reports the loss to the
// caller; the router core layers a timeout/retry protocol on top so no
// lookup is ever stranded (basic_router_sim.h). With faults disabled (the
// default) the fault RNG is never consumed and try_deliver() is
// bit-identical to deliver().
//
// Two-phase delivery and shard ownership: a message's timing decomposes
// into a source half (egress serialization, traversal latency, the fault
// draws) and a destination half (ingress serialization). egress() /
// egress_lossy() touch only source-port state and ingress_commit() touches
// only destination-port state, so the sharded router engine can run the
// egress phase on the sending LC's thread and the ingress phase on the
// receiving LC's thread with no locks: all mutable per-port state —
// occupancy, statistics, the fault RNG (one per source port, so draw order
// is a deterministic per-source stream independent of cross-port
// interleaving) — lives in cache-line-aligned per-port structs owned by
// exactly one shard. deliver()/try_deliver() remain as the sequential
// composition of the two phases.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace spal::fabric {

struct FabricConfig {
  int ports = 16;
  int radix = 16;                  ///< crossbar size used to build stages
  double base_latency_cycles = 1.0;
  double per_stage_cycles = 1.0;   ///< a modern small crossbar switches in ~5 ns
};

/// A scheduled per-port outage: every message injected while `port` is its
/// source or destination during [start_cycle, end_cycle) is lost. Models an
/// LC going down (and coming back) mid-run.
struct OutageWindow {
  int port = 0;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  ///< exclusive
};

/// Deterministic, seeded fault model applied per message. Disabled by
/// default; validate() rejects out-of-range probabilities and windows.
struct FaultConfig {
  bool enabled = false;
  double drop_probability = 0.0;     ///< per-message loss chance in [0, 1]
  double jitter_probability = 0.0;   ///< chance of extra traversal latency
  std::uint64_t max_jitter_cycles = 0;  ///< jittered messages gain U[1, max]
  std::vector<OutageWindow> outages;
  std::uint64_t seed = 0xfa17;

  /// Throws std::invalid_argument on probabilities outside [0,1], a jittered
  /// config with max_jitter_cycles == 0, or an outage with end <= start.
  void validate(int ports) const;

  /// Total configured outage cycles for `port`. Overlapping, nested, and
  /// abutting windows are merged first, so the result is the measure of the
  /// union of the port's windows — a window covered twice is counted once.
  std::uint64_t outage_cycles(int port) const;

  /// True when `now` falls inside any outage window scheduled for `port`.
  /// Pure config (no RNG), so the router core can consult it to steer
  /// traffic away from dead LCs without perturbing the fault stream.
  bool port_down(int port, std::uint64_t now) const;
};

/// Number of crossbar stages needed to connect `ports` endpoints with
/// crossbars of the given radix (1 stage when ports <= radix).
int fabric_stages(int ports, int radix);

/// End-to-end traversal latency in cycles for the configured fabric.
double fabric_latency_cycles(const FabricConfig& config);

/// Per-port occupancy and queueing breakdown (one entry per LC port).
struct FabricPortStats {
  std::uint64_t sent = 0;                  ///< messages injected at this port
  std::uint64_t received = 0;              ///< messages delivered to this port
  std::uint64_t egress_queue_cycles = 0;   ///< injection serialization waits
  std::uint64_t ingress_queue_cycles = 0;  ///< delivery serialization waits
  std::uint64_t dropped = 0;               ///< injections lost (src attribution)
};

struct FabricStats {
  std::uint64_t messages = 0;               ///< delivered messages only
  std::uint64_t total_queueing_cycles = 0;  ///< cycles spent blocked on ports
  std::uint64_t dropped = 0;          ///< messages lost (random + outage)
  std::uint64_t outage_dropped = 0;   ///< subset of dropped: port was down
  std::uint64_t jitter_events = 0;    ///< delivered messages that were jittered
  std::uint64_t jitter_cycles = 0;    ///< extra traversal cycles added
  std::vector<FabricPortStats> ports;       ///< indexed by port (= LC) id
};

/// Outcome of try_deliver(): `delivered` is false when the fault layer lost
/// the message (arrival is meaningless then).
struct Delivery {
  bool delivered = true;
  std::uint64_t arrival = 0;
};

/// Outcome of the source-side half of a delivery. `raw_arrival` is when the
/// message reaches the destination port (traversal + any jitter), before
/// ingress serialization; feed it to ingress_commit() to finish delivery.
struct Egress {
  bool delivered = true;
  std::uint64_t raw_arrival = 0;
};

/// Stateful port-contention model: deliver() returns the arrival time of a
/// message injected at `now`, accounting for egress/ingress serialization.
/// Per source port, calls must be made in non-decreasing `now` order; the
/// DES event loop guarantees per-shard time order, and the router's request
/// path injects at `now + 1`, so injection times may step back by at most
/// one cycle between calls. egress() enforces that bound explicitly (throws
/// std::logic_error) instead of silently folding a time regression into the
/// queueing statistics. Per destination port, ingress_commit() must see
/// non-decreasing raw arrivals — the sharded engine guarantees this by
/// committing staged messages in canonical arrival order.
class Fabric {
 public:
  explicit Fabric(const FabricConfig& config, const FaultConfig& faults = {});

  /// Source-side half: egress serialization at `src`, traversal latency,
  /// and the jitter draw (from src's own RNG stream). Touches only
  /// src-owned state; always delivers.
  Egress egress(int src, std::uint64_t now);

  /// egress() with the loss layer applied first: the message may vanish to
  /// an outage window covering `now` at either endpoint or to a random drop
  /// (charged to src). Touches only src-owned state — outage windows are
  /// immutable config, so checking dst's window is thread-safe.
  Egress egress_lossy(int src, int dst, std::uint64_t now);

  /// Destination-side half: ingress serialization at `dst`. Returns the
  /// final arrival cycle. Touches only dst-owned state.
  std::uint64_t ingress_commit(int dst, std::uint64_t raw_arrival);

  /// Schedules a message src -> dst injected at cycle `now`; returns its
  /// arrival cycle at dst. Never drops — faults are ignored on this path
  /// (the pre-fault API; the router core uses try_deliver).
  std::uint64_t deliver(int src, int dst, std::uint64_t now);

  /// deliver() with the fault layer applied: the message may be lost to a
  /// random drop or an outage window covering `now` at either endpoint, and
  /// delivered messages may arrive late by the configured jitter. With
  /// faults disabled this is exactly deliver().
  Delivery try_deliver(int src, int dst, std::uint64_t now);

  /// Clears port occupancy, statistics, and the per-port fault RNGs
  /// (between independent runs).
  void reset();

  /// Rebuilds the fabric for a new configuration: revalidates, recomputes
  /// the latency, resizes every per-port vector (occupancy and statistics)
  /// to the new port count, and resets all state. Lets one Fabric be reused
  /// across runs whose `ports` differ without stale or missized per-port
  /// entries.
  void reconfigure(const FabricConfig& config, const FaultConfig& faults = {});

  double latency_cycles() const { return latency_; }

  /// Minimum cycles between a message's injection and its raw arrival —
  /// the conservative lookahead window for the sharded engine (jitter and
  /// queueing only push arrivals later).
  std::uint64_t min_lookahead() const { return min_lookahead_; }

  /// Aggregates the per-port counters into the legacy global view. Returns
  /// by value; call only while no egress/ingress is concurrently in flight.
  FabricStats stats() const;

  const FabricConfig& config() const { return config_; }
  const FaultConfig& faults() const { return faults_; }
  bool faults_enabled() const { return faults_.enabled; }

 private:
  /// All mutable source-side state, one cache line group per port so
  /// different shards never share a line.
  struct alignas(64) EgressPort {
    std::uint64_t free = 0;            ///< next free injection cycle
    std::uint64_t last_injection = 0;  ///< monotonicity guard (slack 1)
    std::uint64_t sent = 0;
    std::uint64_t queue_cycles = 0;
    std::uint64_t dropped = 0;
    std::uint64_t outage_dropped = 0;
    std::uint64_t jitter_events = 0;
    std::uint64_t jitter_cycles = 0;
    std::mt19937_64 rng;
  };

  struct alignas(64) IngressPort {
    std::uint64_t free = 0;  ///< next free delivery cycle
    std::uint64_t received = 0;
    std::uint64_t queue_cycles = 0;
  };

  bool port_down(int port, std::uint64_t now) const {
    return faults_.port_down(port, now);
  }
  void reset_ports();

  FabricConfig config_;
  FaultConfig faults_;
  double latency_;
  std::uint64_t min_lookahead_ = 0;
  std::vector<EgressPort> egress_;
  std::vector<IngressPort> ingress_;
};

}  // namespace spal::fabric
