// Switching-fabric model (paper Secs. 1, 3).
//
// SPAL assumes a low-latency fabric — a shared bus for small ψ, a crossbar,
// or a multistage network of small crossbars for larger routers — with
// packet latency around 10 ns (two 5 ns cycles). The paper deliberately
// abstracts fabric details and lets latency depend on fabric size; this
// model does the same:
//   * traversal latency = per_stage_cycles × (number of crossbar stages for
//     `ports` endpoints at the given radix) + base_latency_cycles, and
//   * each port serializes: one message per cycle in each direction.
// Message timing is computed analytically (no per-cycle simulation), which
// the event-driven router simulator consumes directly.
#pragma once

#include <cstdint>
#include <vector>

namespace spal::fabric {

struct FabricConfig {
  int ports = 16;
  int radix = 16;                  ///< crossbar size used to build stages
  double base_latency_cycles = 1.0;
  double per_stage_cycles = 1.0;   ///< a modern small crossbar switches in ~5 ns
};

/// Number of crossbar stages needed to connect `ports` endpoints with
/// crossbars of the given radix (1 stage when ports <= radix).
int fabric_stages(int ports, int radix);

/// End-to-end traversal latency in cycles for the configured fabric.
double fabric_latency_cycles(const FabricConfig& config);

/// Per-port occupancy and queueing breakdown (one entry per LC port).
struct FabricPortStats {
  std::uint64_t sent = 0;                  ///< messages injected at this port
  std::uint64_t received = 0;              ///< messages delivered to this port
  std::uint64_t egress_queue_cycles = 0;   ///< injection serialization waits
  std::uint64_t ingress_queue_cycles = 0;  ///< delivery serialization waits
};

struct FabricStats {
  std::uint64_t messages = 0;
  std::uint64_t total_queueing_cycles = 0;  ///< cycles spent blocked on ports
  std::vector<FabricPortStats> ports;       ///< indexed by port (= LC) id
};

/// Stateful port-contention model: deliver() returns the arrival time of a
/// message injected at `now`, accounting for egress/ingress serialization.
/// Calls must be made in non-decreasing `now` order per port (the DES event
/// loop guarantees global time order).
class Fabric {
 public:
  explicit Fabric(const FabricConfig& config);

  /// Schedules a message src -> dst injected at cycle `now`; returns its
  /// arrival cycle at dst.
  std::uint64_t deliver(int src, int dst, std::uint64_t now);

  /// Clears port occupancy and statistics (between independent runs).
  void reset();

  double latency_cycles() const { return latency_; }
  const FabricStats& stats() const { return stats_; }
  const FabricConfig& config() const { return config_; }

 private:
  FabricConfig config_;
  double latency_;
  std::vector<std::uint64_t> egress_free_;   ///< next free cycle per source port
  std::vector<std::uint64_t> ingress_free_;  ///< next free cycle per dest port
  FabricStats stats_;
};

}  // namespace spal::fabric
