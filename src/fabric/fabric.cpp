#include "fabric/fabric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spal::fabric {

int fabric_stages(int ports, int radix) {
  if (ports < 1 || radix < 2) throw std::invalid_argument("fabric_stages: bad sizes");
  if (ports <= radix) return 1;
  int stages = 1;
  long long reach = radix;
  while (reach < ports) {
    reach *= radix;
    ++stages;
  }
  return stages;
}

double fabric_latency_cycles(const FabricConfig& config) {
  return config.base_latency_cycles +
         config.per_stage_cycles *
             static_cast<double>(fabric_stages(config.ports, config.radix));
}

void FaultConfig::validate(int ports) const {
  if (drop_probability < 0.0 || drop_probability > 1.0) {
    throw std::invalid_argument("FaultConfig: drop_probability outside [0,1]");
  }
  if (jitter_probability < 0.0 || jitter_probability > 1.0) {
    throw std::invalid_argument("FaultConfig: jitter_probability outside [0,1]");
  }
  if (jitter_probability > 0.0 && max_jitter_cycles == 0) {
    throw std::invalid_argument(
        "FaultConfig: jitter_probability > 0 needs max_jitter_cycles >= 1");
  }
  for (const OutageWindow& window : outages) {
    if (window.port < 0 || window.port >= ports) {
      throw std::invalid_argument("FaultConfig: outage port out of range");
    }
    if (window.end_cycle <= window.start_cycle) {
      throw std::invalid_argument("FaultConfig: outage window end <= start");
    }
  }
}

std::uint64_t FaultConfig::outage_cycles(int port) const {
  std::uint64_t total = 0;
  for (const OutageWindow& window : outages) {
    if (window.port == port) total += window.end_cycle - window.start_cycle;
  }
  return total;
}

Fabric::Fabric(const FabricConfig& config, const FaultConfig& faults)
    : config_(config),
      faults_(faults),
      latency_(fabric_latency_cycles(config)),
      egress_free_(static_cast<std::size_t>(config.ports), 0),
      ingress_free_(static_cast<std::size_t>(config.ports), 0),
      fault_rng_(faults.seed) {
  if (config.ports < 1) throw std::invalid_argument("Fabric: ports must be >= 1");
  faults_.validate(config.ports);
  stats_.ports.resize(static_cast<std::size_t>(config.ports));
}

void Fabric::reset() {
  std::fill(egress_free_.begin(), egress_free_.end(), 0);
  std::fill(ingress_free_.begin(), ingress_free_.end(), 0);
  last_injection_ = 0;
  stats_ = FabricStats{};
  stats_.ports.resize(static_cast<std::size_t>(config_.ports));
  fault_rng_.seed(faults_.seed);
}

void Fabric::reconfigure(const FabricConfig& config, const FaultConfig& faults) {
  // Validate before touching any member so a throwing reconfigure leaves
  // the fabric in its previous, consistent state.
  const double latency = fabric_latency_cycles(config);  // throws on bad sizes
  faults.validate(config.ports);
  config_ = config;
  faults_ = faults;
  latency_ = latency;
  egress_free_.assign(static_cast<std::size_t>(config.ports), 0);
  ingress_free_.assign(static_cast<std::size_t>(config.ports), 0);
  last_injection_ = 0;
  stats_ = FabricStats{};
  stats_.ports.resize(static_cast<std::size_t>(config.ports));
  fault_rng_.seed(faults_.seed);
}

bool Fabric::port_down(int port, std::uint64_t now) const {
  for (const OutageWindow& window : faults_.outages) {
    if (window.port == port && now >= window.start_cycle &&
        now < window.end_cycle) {
      return true;
    }
  }
  return false;
}

std::uint64_t Fabric::deliver(int src, int dst, std::uint64_t now) {
  // The event loop hands out non-decreasing times and callers inject at
  // `now` or `now + 1`, so legal injection times regress by at most one
  // cycle. Anything further back is an out-of-order caller whose waits
  // would silently inflate the queueing statistics — reject it.
  if (now + 1 < last_injection_) {
    throw std::logic_error(
        "Fabric::deliver: injection time regressed (calls must be in "
        "non-decreasing `now` order)");
  }
  last_injection_ = std::max(last_injection_, now);
  auto& egress = egress_free_[static_cast<std::size_t>(src)];
  const std::uint64_t depart = std::max(now, egress);
  egress = depart + 1;  // one message per cycle per source port
  std::uint64_t raw_arrival =
      depart + static_cast<std::uint64_t>(std::llround(latency_));
  if (faults_.enabled && faults_.jitter_probability > 0.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(fault_rng_) < faults_.jitter_probability) {
      const std::uint64_t extra = std::uniform_int_distribution<std::uint64_t>(
          1, faults_.max_jitter_cycles)(fault_rng_);
      raw_arrival += extra;
      ++stats_.jitter_events;
      stats_.jitter_cycles += extra;
    }
  }
  auto& ingress = ingress_free_[static_cast<std::size_t>(dst)];
  const std::uint64_t arrival = std::max(raw_arrival, ingress);
  ingress = arrival + 1;  // one message per cycle per destination port
  ++stats_.messages;
  stats_.total_queueing_cycles += (depart - now) + (arrival - raw_arrival);
  auto& out = stats_.ports[static_cast<std::size_t>(src)];
  auto& in = stats_.ports[static_cast<std::size_t>(dst)];
  ++out.sent;
  ++in.received;
  out.egress_queue_cycles += depart - now;
  in.ingress_queue_cycles += arrival - raw_arrival;
  return arrival;
}

Delivery Fabric::try_deliver(int src, int dst, std::uint64_t now) {
  if (faults_.enabled) {
    // A message injected while either endpoint is down vanishes: it never
    // occupies a port slot, so surviving traffic is timed exactly as if the
    // lost message had not been sent.
    if (port_down(src, now) || port_down(dst, now)) {
      ++stats_.dropped;
      ++stats_.outage_dropped;
      ++stats_.ports[static_cast<std::size_t>(src)].dropped;
      return Delivery{false, 0};
    }
    if (faults_.drop_probability > 0.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(fault_rng_) < faults_.drop_probability) {
        ++stats_.dropped;
        ++stats_.ports[static_cast<std::size_t>(src)].dropped;
        return Delivery{false, 0};
      }
    }
  }
  return Delivery{true, deliver(src, dst, now)};
}

}  // namespace spal::fabric
