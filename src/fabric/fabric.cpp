#include "fabric/fabric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spal::fabric {

int fabric_stages(int ports, int radix) {
  if (ports < 1 || radix < 2) throw std::invalid_argument("fabric_stages: bad sizes");
  if (ports <= radix) return 1;
  int stages = 1;
  long long reach = radix;
  while (reach < ports) {
    reach *= radix;
    ++stages;
  }
  return stages;
}

double fabric_latency_cycles(const FabricConfig& config) {
  return config.base_latency_cycles +
         config.per_stage_cycles *
             static_cast<double>(fabric_stages(config.ports, config.radix));
}

Fabric::Fabric(const FabricConfig& config)
    : config_(config),
      latency_(fabric_latency_cycles(config)),
      egress_free_(static_cast<std::size_t>(config.ports), 0),
      ingress_free_(static_cast<std::size_t>(config.ports), 0) {
  if (config.ports < 1) throw std::invalid_argument("Fabric: ports must be >= 1");
  stats_.ports.resize(static_cast<std::size_t>(config.ports));
}

void Fabric::reset() {
  std::fill(egress_free_.begin(), egress_free_.end(), 0);
  std::fill(ingress_free_.begin(), ingress_free_.end(), 0);
  stats_ = FabricStats{};
  stats_.ports.resize(static_cast<std::size_t>(config_.ports));
}

std::uint64_t Fabric::deliver(int src, int dst, std::uint64_t now) {
  auto& egress = egress_free_[static_cast<std::size_t>(src)];
  const std::uint64_t depart = std::max(now, egress);
  egress = depart + 1;  // one message per cycle per source port
  const auto raw_arrival =
      depart + static_cast<std::uint64_t>(std::llround(latency_));
  auto& ingress = ingress_free_[static_cast<std::size_t>(dst)];
  const std::uint64_t arrival = std::max(raw_arrival, ingress);
  ingress = arrival + 1;  // one message per cycle per destination port
  ++stats_.messages;
  stats_.total_queueing_cycles += (depart - now) + (arrival - raw_arrival);
  auto& out = stats_.ports[static_cast<std::size_t>(src)];
  auto& in = stats_.ports[static_cast<std::size_t>(dst)];
  ++out.sent;
  ++in.received;
  out.egress_queue_cycles += depart - now;
  in.ingress_queue_cycles += arrival - raw_arrival;
  return arrival;
}

}  // namespace spal::fabric
