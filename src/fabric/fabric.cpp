#include "fabric/fabric.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace spal::fabric {

namespace {
/// Decorrelates the per-source-port RNG streams. Source port 0 keeps the
/// bare seed, so single-source fault sequences match the pre-split fabric
/// whose one global RNG was seeded with `faults.seed` directly.
std::uint64_t port_seed(std::uint64_t seed, int src) {
  return seed ^ (static_cast<std::uint64_t>(src) * 0x9e3779b97f4a7c15ULL);
}
}  // namespace

int fabric_stages(int ports, int radix) {
  if (ports < 1 || radix < 2) throw std::invalid_argument("fabric_stages: bad sizes");
  if (ports <= radix) return 1;
  int stages = 1;
  long long reach = radix;
  while (reach < ports) {
    reach *= radix;
    ++stages;
  }
  return stages;
}

double fabric_latency_cycles(const FabricConfig& config) {
  return config.base_latency_cycles +
         config.per_stage_cycles *
             static_cast<double>(fabric_stages(config.ports, config.radix));
}

void FaultConfig::validate(int ports) const {
  if (drop_probability < 0.0 || drop_probability > 1.0) {
    throw std::invalid_argument("FaultConfig: drop_probability outside [0,1]");
  }
  if (jitter_probability < 0.0 || jitter_probability > 1.0) {
    throw std::invalid_argument("FaultConfig: jitter_probability outside [0,1]");
  }
  if (jitter_probability > 0.0 && max_jitter_cycles == 0) {
    throw std::invalid_argument(
        "FaultConfig: jitter_probability > 0 needs max_jitter_cycles >= 1");
  }
  for (const OutageWindow& window : outages) {
    if (window.port < 0 || window.port >= ports) {
      throw std::invalid_argument("FaultConfig: outage port out of range");
    }
    if (window.end_cycle <= window.start_cycle) {
      throw std::invalid_argument("FaultConfig: outage window end <= start");
    }
  }
}

std::uint64_t FaultConfig::outage_cycles(int port) const {
  // Measure of the union of this port's windows: overlapping, nested, and
  // abutting spans collapse into one before summing, so a cycle covered by
  // two windows is counted once.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (const OutageWindow& window : outages) {
    if (window.port == port) spans.emplace_back(window.start_cycle, window.end_cycle);
  }
  std::sort(spans.begin(), spans.end());
  std::uint64_t total = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool open = false;
  for (const auto& [start, stop] : spans) {
    if (open && start <= end) {
      end = std::max(end, stop);
    } else {
      if (open) total += end - begin;
      begin = start;
      end = stop;
      open = true;
    }
  }
  if (open) total += end - begin;
  return total;
}

bool FaultConfig::port_down(int port, std::uint64_t now) const {
  for (const OutageWindow& window : outages) {
    if (window.port == port && now >= window.start_cycle &&
        now < window.end_cycle) {
      return true;
    }
  }
  return false;
}

Fabric::Fabric(const FabricConfig& config, const FaultConfig& faults)
    : config_(config),
      faults_(faults),
      latency_(fabric_latency_cycles(config)),
      min_lookahead_(static_cast<std::uint64_t>(std::llround(latency_))),
      egress_(static_cast<std::size_t>(config.ports)),
      ingress_(static_cast<std::size_t>(config.ports)) {
  if (config.ports < 1) throw std::invalid_argument("Fabric: ports must be >= 1");
  faults_.validate(config.ports);
  reset_ports();
}

void Fabric::reset_ports() {
  for (std::size_t src = 0; src < egress_.size(); ++src) {
    egress_[src] = EgressPort{};
    egress_[src].rng.seed(port_seed(faults_.seed, static_cast<int>(src)));
  }
  for (IngressPort& port : ingress_) port = IngressPort{};
}

void Fabric::reset() { reset_ports(); }

void Fabric::reconfigure(const FabricConfig& config, const FaultConfig& faults) {
  // Validate before touching any member so a throwing reconfigure leaves
  // the fabric in its previous, consistent state.
  const double latency = fabric_latency_cycles(config);  // throws on bad sizes
  faults.validate(config.ports);
  config_ = config;
  faults_ = faults;
  latency_ = latency;
  min_lookahead_ = static_cast<std::uint64_t>(std::llround(latency_));
  egress_.resize(static_cast<std::size_t>(config.ports));
  ingress_.resize(static_cast<std::size_t>(config.ports));
  reset_ports();
}

Egress Fabric::egress(int src, std::uint64_t now) {
  EgressPort& port = egress_[static_cast<std::size_t>(src)];
  // Each shard's event loop hands out non-decreasing times and callers
  // inject at `now` or `now + 1`, so legal injection times regress by at
  // most one cycle per source port. Anything further back is an
  // out-of-order caller whose waits would silently inflate the queueing
  // statistics — reject it.
  if (now + 1 < port.last_injection) {
    throw std::logic_error(
        "Fabric::egress: injection time regressed (per-port calls must be "
        "in non-decreasing `now` order)");
  }
  port.last_injection = std::max(port.last_injection, now);
  const std::uint64_t depart = std::max(now, port.free);
  port.free = depart + 1;  // one message per cycle per source port
  std::uint64_t raw_arrival = depart + min_lookahead_;
  if (faults_.enabled && faults_.jitter_probability > 0.0) {
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    if (uniform(port.rng) < faults_.jitter_probability) {
      const std::uint64_t extra = std::uniform_int_distribution<std::uint64_t>(
          1, faults_.max_jitter_cycles)(port.rng);
      raw_arrival += extra;
      ++port.jitter_events;
      port.jitter_cycles += extra;
    }
  }
  ++port.sent;
  port.queue_cycles += depart - now;
  return Egress{true, raw_arrival};
}

Egress Fabric::egress_lossy(int src, int dst, std::uint64_t now) {
  if (faults_.enabled) {
    EgressPort& port = egress_[static_cast<std::size_t>(src)];
    // A message injected while either endpoint is down vanishes: it never
    // occupies a port slot, so surviving traffic is timed exactly as if the
    // lost message had not been sent.
    if (port_down(src, now) || port_down(dst, now)) {
      ++port.dropped;
      ++port.outage_dropped;
      return Egress{false, 0};
    }
    if (faults_.drop_probability > 0.0) {
      std::uniform_real_distribution<double> uniform(0.0, 1.0);
      if (uniform(port.rng) < faults_.drop_probability) {
        ++port.dropped;
        return Egress{false, 0};
      }
    }
  }
  return egress(src, now);
}

std::uint64_t Fabric::ingress_commit(int dst, std::uint64_t raw_arrival) {
  IngressPort& port = ingress_[static_cast<std::size_t>(dst)];
  const std::uint64_t arrival = std::max(raw_arrival, port.free);
  port.free = arrival + 1;  // one message per cycle per destination port
  ++port.received;
  port.queue_cycles += arrival - raw_arrival;
  return arrival;
}

std::uint64_t Fabric::deliver(int src, int dst, std::uint64_t now) {
  return ingress_commit(dst, egress(src, now).raw_arrival);
}

Delivery Fabric::try_deliver(int src, int dst, std::uint64_t now) {
  const Egress out = egress_lossy(src, dst, now);
  if (!out.delivered) return Delivery{false, 0};
  return Delivery{true, ingress_commit(dst, out.raw_arrival)};
}

FabricStats Fabric::stats() const {
  FabricStats stats;
  stats.ports.resize(egress_.size());
  for (std::size_t i = 0; i < egress_.size(); ++i) {
    const EgressPort& out = egress_[i];
    const IngressPort& in = ingress_[i];
    FabricPortStats& port = stats.ports[i];
    port.sent = out.sent;
    port.received = in.received;
    port.egress_queue_cycles = out.queue_cycles;
    port.ingress_queue_cycles = in.queue_cycles;
    port.dropped = out.dropped;
    stats.messages += out.sent;
    stats.total_queueing_cycles += out.queue_cycles + in.queue_cycles;
    stats.dropped += out.dropped;
    stats.outage_dropped += out.outage_dropped;
    stats.jitter_events += out.jitter_events;
    stats.jitter_cycles += out.jitter_cycles;
  }
  return stats;
}

}  // namespace spal::fabric
