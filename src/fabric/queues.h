// Bounded FIFO queue with occupancy statistics — models the FIL's
// input / request / outgoing / incoming queues (paper Fig. 2).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>

namespace spal::fabric {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t rejected = 0;     ///< pushes refused because the queue was full
  std::size_t max_occupancy = 0;
};

/// FIFO with an optional capacity bound. capacity == 0 means unbounded.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Returns false (and counts a rejection) if the queue is full.
  bool push(T item) {
    if (capacity_ != 0 && items_.size() >= capacity_) {
      ++stats_.rejected;
      return false;
    }
    items_.push_back(std::move(item));
    ++stats_.enqueued;
    stats_.max_occupancy = std::max(stats_.max_occupancy, items_.size());
    return true;
  }

  std::optional<T> pop() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.dequeued;
    return item;
  }

  const T& front() const {
    if (items_.empty()) throw std::out_of_range("BoundedQueue::front on empty queue");
    return items_.front();
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }
  const QueueStats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  QueueStats stats_;
};

}  // namespace spal::fabric
