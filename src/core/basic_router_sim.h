// Address-family-generic SPAL router simulation.
//
// The full Sec. 3.3 lookup flow (see router_sim.h for the narrative) is
// independent of the address family: it needs a partition (home-LC mapping
// + per-LC tables), a forwarding-engine index per LC, an LR-cache keyed by
// addresses, and the fabric/event machinery. This template captures that
// flow once; RouterSim (IPv4) and RouterSim6 (IPv6) are thin instantiations
// through a Family policy:
//
//   struct Family {
//     using Addr;                     // packet destination type
//     using Table;                    // routing table
//     using Partition;                // ROT-partition (home_of, table_of)
//     using Fe;                       // built LPM index
//     using Oracle;                   // full-table reference index
//     static Partition make_partition(const Table&, int lcs, const RouterConfig&);
//     static Fe build_fe(const Table&, const RouterConfig&);
//     static net::NextHop fe_lookup(const Fe&, const Addr&);
//     static void fe_lookup_batch(const Fe&, const Addr*, std::size_t n,
//                                 net::NextHop*);  // bit-identical to scalar
//     static std::size_t fe_storage(const Fe&);
//     static Oracle build_oracle(const Table&);
//     static net::NextHop oracle_lookup(const Oracle&, const Addr&);
//     static std::uint64_t hash_bits(const Addr&);       // waiting-list key
//     // Live route-update pipeline:
//     using Update;                   // net::TableUpdate / net::TableUpdate6
//     static std::vector<Update> make_updates(const Table&,
//                                             const net::UpdateStreamConfig&);
//     static bool fe_supports_update(const Fe&);
//     static void fe_insert(Fe&, const PrefixT&, net::NextHop);
//     static void fe_remove(Fe&, const PrefixT&);
//   };
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "cache/basic_lr_cache.h"
#include "core/router_config.h"
#include "fabric/fabric.h"
#include "net/update_stream.h"
#include "sim/calendar_queue.h"
#include "sim/engine.h"
#include "sim/packet_source.h"

namespace spal::core {

template <typename Family>
class BasicRouterSim {
 public:
  using Addr = typename Family::Addr;
  using Table = typename Family::Table;
  using Partition = typename Family::Partition;
  using Cache = cache::BasicLrCache<Addr>;

  BasicRouterSim(const Table& table, const RouterConfig& config)
      : config_(config), full_table_(table) {
    if (config.num_lcs < 1) {
      throw std::invalid_argument("RouterSim: num_lcs must be >= 1");
    }
    // Fragment the table (an unpartitioned router keeps the full table in
    // every LC, modelled as a single-partition fragmentation).
    rot_ = std::make_unique<Partition>(Family::make_partition(
        table, config_.partition ? config_.num_lcs : 1, config_));
    fes_.reserve(static_cast<std::size_t>(config_.num_lcs));
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      const Table& fwd = config_.partition ? rot_->table_of(lc) : full_table_;
      fes_.push_back(Family::build_fe(fwd, config_));
    }
    if (config_.use_lr_cache) {
      caches_.reserve(static_cast<std::size_t>(config_.num_lcs));
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        cache::LrCacheConfig cache_config = config_.cache;
        cache_config.seed ^= static_cast<std::uint64_t>(lc) * 0x9e3779b97f4a7c15ULL;
        caches_.push_back(std::make_unique<Cache>(cache_config));
      }
    }
    fabric::FabricConfig fabric_config = config_.fabric;
    fabric_config.ports = config_.num_lcs;
    fabric_ = std::make_unique<fabric::Fabric>(fabric_config, config_.fault);
  }

  /// Runs one simulation over per-LC destination streams. With `verify`,
  /// every resolved next hop is checked against the full-table oracle.
  RouterResult run(const std::vector<std::vector<Addr>>& streams, bool verify) {
    if (streams.size() != static_cast<std::size_t>(config_.num_lcs)) {
      throw std::invalid_argument("RouterSim::run: one stream per LC required");
    }
    // Reset run state: every run starts from a cold router.
    result_ = RouterResult();
    result_.per_lc_latency.assign(static_cast<std::size_t>(config_.num_lcs),
                                  sim::LatencyStats{});
    result_.per_lc.assign(static_cast<std::size_t>(config_.num_lcs), LcStats{});
    result_.remote_fanout.assign(
        static_cast<std::size_t>(config_.num_lcs) *
            static_cast<std::size_t>(config_.num_lcs),
        0);
    waiting_depth_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    std::size_t total_packets = 0;
    for (const auto& stream : streams) total_packets += stream.size();
    // Generate per-LC arrival times before sizing the queue: the count bounds
    // its peak population and the last arrival bounds the schedule horizon
    // (so the calendar engine picks a bucket width that fits the whole run).
    std::vector<std::vector<std::uint64_t>> arrivals_per_lc;
    arrivals_per_lc.reserve(static_cast<std::size_t>(config_.num_lcs));
    std::uint64_t arrival_horizon = 0;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      arrivals_per_lc.push_back(sim::generate_arrival_times(
          config_.line_rate_gbps, streams[static_cast<std::size_t>(lc)].size(),
          config_.seed ^ (0xabcdef12345ULL + static_cast<std::uint64_t>(lc))));
      if (!arrivals_per_lc.back().empty()) {
        arrival_horizon = std::max(arrival_horizon, arrivals_per_lc.back().back());
      }
    }
    // Live route-update pipeline: resolve how many updates this run injects
    // before sizing the queue (their schedule extends the horizon).
    const bool live_updates = config_.update.interval_cycles != 0;
    std::size_t update_count = 0;
    if (live_updates) {
      update_count = config_.update.count;
      if (update_count == 0) {
        update_count = static_cast<std::size_t>(arrival_horizon /
                                                config_.update.interval_cycles);
      }
    }
    const std::uint64_t update_horizon =
        live_updates ? static_cast<std::uint64_t>(update_count) *
                           config_.update.interval_cycles
                     : 0;
    queue_.reset(config_.engine, total_packets + update_count,
                 std::max(arrival_horizon, update_horizon));
    waiting_.clear();
    pending_.clear();
    next_request_seq_ = 0;
    timeout_base_ = config_.recovery.timeout_cycles;
    if (timeout_base_ == 0) {
      // Auto: a lightly loaded remote round trip (two fabric traversals plus
      // one FE service) with 16x slack for queueing. A too-small timeout is
      // safe — spurious retransmits are absorbed by duplicate suppression —
      // but wastes fabric messages.
      timeout_base_ = 16 * (2 * static_cast<std::uint64_t>(std::llround(
                                    fabric_->latency_cycles())) +
                            static_cast<std::uint64_t>(std::max(
                                1, config_.fe_service_cycles)));
    }
    result_.fault.per_lc_outage_cycles.assign(
        static_cast<std::size_t>(config_.num_lcs), 0);
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      result_.fault.per_lc_outage_cycles[static_cast<std::size_t>(lc)] =
          config_.fault.outage_cycles(lc);
    }
    for (const auto& c : caches_) c->reset();
    fabric_->reset();
    cache_port_free_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    fe_free_.assign(static_cast<std::size_t>(config_.num_lcs),
                    std::vector<std::uint64_t>(
                        static_cast<std::size_t>(std::max(1, config_.fe_parallelism)), 0));
    fe_busy_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    next_flush_ = config_.flush_interval_cycles;
    update_rng_.seed(config_.seed ^ 0x0badf00dULL);
    // A prior run's live updates mutated the FEs / fragments / oracle:
    // rebuild them so every run starts from the configured table.
    if (fes_dirty_) {
      fes_.clear();
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        const Table& fwd = config_.partition ? rot_->table_of(lc) : full_table_;
        fes_.push_back(Family::build_fe(fwd, config_));
      }
      lc_tables_.clear();
      fes_dirty_ = false;
    }
    if (oracle_dirty_) {
      oracle_.reset();
      oracle_dirty_ = false;
    }
    verify_ = verify;
    if ((verify_ || (live_updates && faults_active())) && oracle_ == nullptr) {
      // With live updates in fault mode the degraded slow path must track
      // the evolving table, so the oracle is built eagerly.
      oracle_ = std::make_unique<typename Family::Oracle>(
          Family::build_oracle(full_table_));
    }
    updates_.clear();
    update_inject_time_.clear();
    update_settle_time_.clear();
    update_outstanding_.clear();
    if (live_updates && update_count > 0) {
      net::UpdateStreamConfig stream_config;
      stream_config.count = update_count;
      stream_config.seed = config_.update.seed;
      stream_config.announce_fraction = config_.update.announce_fraction;
      stream_config.withdraw_fraction = config_.update.withdraw_fraction;
      stream_config.next_hops = config_.update.next_hops;
      updates_ = Family::make_updates(full_table_, stream_config);
      update_inject_time_.resize(updates_.size());
      update_settle_time_.assign(updates_.size(), kSettlePending);
      update_outstanding_.assign(updates_.size(), 0);
      if (lc_tables_.empty()) {
        lc_tables_.reserve(static_cast<std::size_t>(config_.num_lcs));
        for (int lc = 0; lc < config_.num_lcs; ++lc) {
          lc_tables_.push_back(config_.partition ? rot_->table_of(lc)
                                                 : full_table_);
        }
      }
      for (std::size_t i = 0; i < updates_.size(); ++i) {
        const std::uint64_t at =
            (static_cast<std::uint64_t>(i) + 1) * config_.update.interval_cycles;
        update_inject_time_[i] = at;
        queue_.schedule(
            at, Event{Event::Type::kUpdateInject, 0, Addr{},
                      Requester{0, static_cast<std::int64_t>(i), false}, false,
                      net::kNoRoute});
      }
    }

    // Assign global packet ids and schedule arrivals.
    arrival_time_.assign(total_packets, 0);
    arrival_lc_.assign(total_packets, 0);
    resolved_.assign(total_packets, false);
    destinations_.clear();
    destinations_.reserve(total_packets);
    std::int64_t packet_id = 0;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      const auto& stream = streams[static_cast<std::size_t>(lc)];
      const auto& arrivals = arrivals_per_lc[static_cast<std::size_t>(lc)];
      for (std::size_t i = 0; i < stream.size(); ++i) {
        arrival_time_[static_cast<std::size_t>(packet_id)] = arrivals[i];
        arrival_lc_[static_cast<std::size_t>(packet_id)] = lc;
        destinations_.push_back(stream[i]);
        queue_.schedule(arrivals[i],
                        Event{Event::Type::kLookup, lc, stream[i],
                              Requester{lc, packet_id, false}, false,
                              net::kNoRoute});
        ++packet_id;
      }
    }

    // Event loop.
    while (!queue_.empty()) {
      auto [now, event] = queue_.pop();
      // A timer whose request already settled (reply accepted or degraded)
      // is stale: skip it before it can stretch the measured makespan.
      if (event.type == Event::Type::kTimeout &&
          pending_.find(event.requester.seq) == pending_.end()) {
        continue;
      }
      maybe_update_table(now);
      result_.makespan_cycles = std::max(result_.makespan_cycles, now);
      switch (event.type) {
        case Event::Type::kLookup: handle_lookup(now, event); break;
        case Event::Type::kFeComplete: handle_fe_complete(now, event); break;
        case Event::Type::kReply: handle_reply(now, event); break;
        case Event::Type::kTimeout: handle_timeout(now, event); break;
        case Event::Type::kDegraded: handle_degraded(now, event); break;
        case Event::Type::kUpdateInject: handle_update_inject(now, event); break;
        case Event::Type::kUpdateApply: handle_update_apply(now, event); break;
        case Event::Type::kInvalidate: handle_invalidate(now, event); break;
      }
    }

    // Aggregate per-LC statistics.
    for (std::size_t lc = 0; lc < caches_.size(); ++lc) {
      result_.per_lc[lc].cache = caches_[lc]->stats();
      result_.cache_total.accumulate(caches_[lc]->stats());
    }
    result_.fabric = fabric_->stats();
    result_.fault.drops = result_.fabric.dropped;
    result_.fault.outage_drops = result_.fabric.outage_dropped;
    result_.fault.jitter_events = result_.fabric.jitter_events;
    result_.fault.jitter_cycles = result_.fabric.jitter_cycles;
    if (result_.makespan_cycles > 0) {
      const double capacity =
          static_cast<double>(result_.makespan_cycles) *
          static_cast<double>(std::max(1, config_.fe_parallelism));
      for (std::size_t lc = 0; lc < fe_busy_.size(); ++lc) {
        const double utilization =
            static_cast<double>(fe_busy_[lc]) / capacity;
        result_.per_lc[lc].fe_busy_cycles = fe_busy_[lc];
        result_.per_lc[lc].fe_utilization = utilization;
        result_.max_fe_utilization =
            std::max(result_.max_fe_utilization, utilization);
      }
    }
    return result_;
  }

  const RouterConfig& config() const { return config_; }
  const Partition& partition() const { return *rot_; }
  /// The full (unfragmented) routing table the router was built from.
  const Table& table() const { return full_table_; }

  /// Per-LC forwarding-index storage in bytes.
  std::vector<std::size_t> fe_storage_bytes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(fes_.size());
    for (const auto& fe : fes_) sizes.push_back(Family::fe_storage(fe));
    return sizes;
  }

  /// Host-side (wall-clock) lookups through one LC's built forwarding
  /// engine: the interleaved batch pipeline in chunks of `batch` keys when
  /// batch > 1, the scalar path otherwise. Results are bit-identical either
  /// way; this does not touch simulation state — the throughput benches use
  /// it to measure real ns/lookup on the per-LC structures.
  void fe_host_lookup(int lc, const Addr* keys, std::size_t n,
                      net::NextHop* out, std::size_t batch) const {
    const auto& fe = fes_[static_cast<std::size_t>(lc)];
    if (batch <= 1) {
      for (std::size_t i = 0; i < n; ++i) out[i] = Family::fe_lookup(fe, keys[i]);
      return;
    }
    for (std::size_t i = 0; i < n; i += batch) {
      Family::fe_lookup_batch(fe, keys + i, std::min(batch, n - i), out + i);
    }
  }

 private:
  struct Requester {
    int lc;               ///< LC the requesting packet arrived at
    std::int64_t packet;  ///< global packet id
    /// Set on a remote request when the arrival LC reserved a W=1 block;
    /// the home LC echoes it so the reply knows whether to fill.
    bool fill_on_reply = false;
    /// Request sequence number (fault mode only, 0 otherwise): the home LC
    /// echoes it in every reply so the requester can match replies to its
    /// pending-request table and suppress duplicates from retransmits.
    std::uint64_t seq = 0;
  };

  struct Event {
    enum class Type : std::uint8_t {
      kLookup,
      kFeComplete,
      kReply,
      kTimeout,   ///< remote-request timer (fault mode); requester.seq keys it
      kDegraded,  ///< slow-path completion for one packet (fault mode)
      // Live route-update pipeline (requester.packet carries the update
      // index into updates_; addr is unused):
      kUpdateInject,  ///< control plane emits update i to its home LCs
      kUpdateApply,   ///< update i reaches home LC `lc`: apply to its FE
      kInvalidate,    ///< invalidation for update i reaches LC `lc`'s cache
    };
    Type type;
    int lc;
    Addr addr;
    Requester requester;
    bool fill = false;
    net::NextHop hop = net::kNoRoute;
  };

  /// One outstanding remote request (fault mode), keyed by its seq. Retries
  /// reuse the seq: any attempt's reply settles the request, and later
  /// replies for the same seq are counted as duplicates and dropped.
  struct PendingRequest {
    Addr addr;
    Requester requester;  ///< carries the seq and fill_on_reply flag
    int home;
    int attempt = 0;      ///< retransmits so far
  };

  // Waiting lists are keyed by the exact (LC, address) pair — the hash
  // comes from Family::hash_bits but equality compares full addresses, so
  // 128-bit families cannot alias two lists.
  struct WaitKey {
    int lc;
    Addr addr;
    bool operator==(const WaitKey&) const = default;
  };
  struct WaitKeyHash {
    std::size_t operator()(const WaitKey& k) const {
      return static_cast<std::size_t>(
          Family::hash_bits(k.addr) ^
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.lc)) *
           0x9e3779b97f4a7c15ULL));
    }
  };
  WaitKey wait_key(int lc, const Addr& addr) const { return WaitKey{lc, addr}; }

  using WaitMap = std::unordered_map<WaitKey, std::vector<Requester>, WaitKeyHash>;

  /// The waiting list for (lc, addr), creating it from the node free-list
  /// when possible so the hot miss path performs no allocation.
  std::vector<Requester>& waiters(int lc, const Addr& addr) {
    const WaitKey key = wait_key(lc, addr);
    const auto it = waiting_.find(key);
    if (it != waiting_.end()) return it->second;
    if (!wait_pool_.empty()) {
      auto node = std::move(wait_pool_.back());
      wait_pool_.pop_back();
      node.key() = key;
      return waiting_.insert(std::move(node)).position->second;
    }
    return waiting_[key];
  }

  /// Parks a requester on the (lc, addr) waiting list, tracking the per-LC
  /// parked-requester high-water mark.
  void park(int lc, const Addr& addr, const Requester& requester) {
    waiters(lc, addr).push_back(requester);
    auto& depth = waiting_depth_[static_cast<std::size_t>(lc)];
    ++depth;
    auto& lc_stats = result_.per_lc[static_cast<std::size_t>(lc)];
    lc_stats.waiting_highwater = std::max(lc_stats.waiting_highwater, depth);
  }

  /// Moves the waiting list for (lc, addr) into a scratch buffer (empty if
  /// none) and recycles both the map node and the vector capacity. The
  /// scratch is a member: callers drain it before the next take_waiters().
  const std::vector<Requester>& take_waiters(int lc, const Addr& addr) {
    wait_scratch_.clear();
    const auto it = waiting_.find(wait_key(lc, addr));
    if (it != waiting_.end()) {
      // Swap (not move) so the extracted node inherits the scratch's old
      // capacity and carries it back through the pool.
      wait_scratch_.swap(it->second);
      wait_pool_.push_back(waiting_.extract(it));
      waiting_depth_[static_cast<std::size_t>(lc)] -= wait_scratch_.size();
    }
    return wait_scratch_;
  }

  void handle_lookup(std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    const Requester requester = event.requester;
    if (!caches_.empty()) {
      // One probe per cycle per LR-cache (Sec. 5.1): contend for the port.
      auto& port_free = cache_port_free_[static_cast<std::size_t>(lc)];
      if (port_free > now) {
        queue_.schedule(port_free, event);
        return;
      }
      port_free = now + 1;
      Cache& cache = *caches_[static_cast<std::size_t>(lc)];
      const cache::ProbeResult probe = cache.probe(addr, now);
      switch (probe.state) {
        case cache::ProbeState::kHit:
          deliver_result(now + 1, lc, addr, probe.next_hop, requester);
          return;
        case cache::ProbeState::kWaiting:
          park(lc, addr, requester);
          return;
        case cache::ProbeState::kMiss:
          break;
      }
    }
    const int home = config_.partition ? rot_->home_of(addr) : lc;
    if (home == lc) {
      bool fill = false;
      if (!caches_.empty() && config_.early_reservation) {
        fill = caches_[static_cast<std::size_t>(lc)]->reserve(
            addr, cache::Origin::kLocal, now);
        if (fill) park(lc, addr, requester);
      }
      start_fe_job(now, lc, addr, fill, requester);
    } else {
      Requester forwarded = requester;
      forwarded.fill_on_reply = false;
      if (!caches_.empty() && config_.early_reservation) {
        if (caches_[static_cast<std::size_t>(lc)]->reserve(
                addr, cache::Origin::kRemote, now)) {
          park(lc, addr, requester);
          forwarded.fill_on_reply = true;
        }
      }
      send_request(now, lc, home, addr, forwarded);
    }
  }

  void start_fe_job(std::uint64_t now, int lc, const Addr& addr, bool fill,
                    Requester direct) {
    // k-server deterministic queue: the job runs on the earliest-free engine.
    auto& servers = fe_free_[static_cast<std::size_t>(lc)];
    auto& fe_free = *std::min_element(servers.begin(), servers.end());
    const std::uint64_t start = std::max(now, fe_free);
    const std::uint64_t completion =
        start + static_cast<std::uint64_t>(config_.fe_service_cycles);
    fe_free = completion;
    fe_busy_[static_cast<std::size_t>(lc)] +=
        static_cast<std::uint64_t>(config_.fe_service_cycles);
    ++result_.fe_lookups;
    auto& lc_stats = result_.per_lc[static_cast<std::size_t>(lc)];
    ++lc_stats.fe_lookups;
    lc_stats.fe_queue_wait_cycles += start - now;
    queue_.schedule(completion, Event{Event::Type::kFeComplete, lc, addr, direct,
                                      fill, net::kNoRoute});
  }

  void handle_fe_complete(std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    const net::NextHop hop =
        Family::fe_lookup(fes_[static_cast<std::size_t>(lc)], addr);
    if (event.fill) {
      if (!caches_.empty()) {
        caches_[static_cast<std::size_t>(lc)]->fill(addr, hop, now);
      }
      // Serve everything parked on the block: local packets resolve, remote
      // requesters receive replies over the fabric.
      for (const Requester& r : take_waiters(lc, addr)) {
        deliver_result(now, lc, addr, hop, r);
      }
    } else {
      // No reserved block (early recording disabled or the reservation
      // failed): cache the result late so subsequent packets still hit.
      if (!caches_.empty()) {
        caches_[static_cast<std::size_t>(lc)]->insert(addr, hop,
                                                      cache::Origin::kLocal, now);
      }
      deliver_result(now, lc, addr, hop, event.requester);
    }
  }

  void handle_reply(std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    if (faults_active()) {
      // Match the reply to its pending request. A miss means the request
      // already settled — an earlier attempt's reply was accepted or the
      // lookup fell back to the degraded path — so this one is a duplicate
      // and must not touch the cache or resolve anything twice.
      const auto it = pending_.find(event.requester.seq);
      if (it == pending_.end()) {
        ++result_.fault.duplicate_replies;
        return;
      }
      pending_.erase(it);
    }
    if (!caches_.empty()) {
      if (event.requester.fill_on_reply) {
        caches_[static_cast<std::size_t>(lc)]->fill(addr, event.hop, now);
      } else {
        // No reservation was made at request time; cache the result late.
        caches_[static_cast<std::size_t>(lc)]->insert(
            addr, event.hop, cache::Origin::kRemote, now);
      }
    }
    // Drain local packets parked while this reply was in flight (the
    // carried requester is usually among them; resolve_packet guards
    // duplicates).
    for (const Requester& r : take_waiters(lc, addr)) {
      resolve_packet(now, r.packet, event.hop);
    }
    resolve_packet(now, event.requester.packet, event.hop);
  }

  void deliver_result(std::uint64_t now, int lc, const Addr& addr,
                      net::NextHop hop, const Requester& requester) {
    if (requester.lc == lc) {
      resolve_packet(now, requester.packet, hop);
      return;
    }
    ++result_.remote_replies;
    if (faults_active()) {
      // The reply can be lost too; the requester's timeout covers the whole
      // round trip, so a dropped reply is indistinguishable from a dropped
      // request and triggers the same retry/degraded recovery.
      const fabric::Delivery delivery =
          fabric_->try_deliver(lc, requester.lc, now);
      if (delivery.delivered) {
        queue_.schedule(delivery.arrival,
                        Event{Event::Type::kReply, requester.lc, addr,
                              requester, false, hop});
      }
      return;
    }
    const std::uint64_t arrival = fabric_->deliver(lc, requester.lc, now);
    queue_.schedule(arrival, Event{Event::Type::kReply, requester.lc, addr,
                                   requester, false, hop});
  }

  /// Marks a packet resolved; false when it already was (waiting-list
  /// drains and the degraded path can race the same packet).
  bool resolve_packet(std::uint64_t now, std::int64_t packet, net::NextHop hop) {
    const auto index = static_cast<std::size_t>(packet);
    if (resolved_[index]) return false;
    resolved_[index] = true;
    ++result_.resolved_packets;
    const std::uint64_t cycles = now - arrival_time_[index];
    result_.latency.record(cycles);
    result_.per_lc_latency[static_cast<std::size_t>(arrival_lc_[index])]
        .record(cycles);
    if (verify_) {
      const net::NextHop expected =
          Family::oracle_lookup(*oracle_, destinations_[index]);
      if (expected != hop && !update_excuses(index, now)) {
        ++result_.verify_mismatches;
      }
    }
    return true;
  }

  /// Verify-under-churn: a mismatch against the (control-plane) oracle is
  /// excused iff some update covering the destination was in flight during
  /// the packet's lifetime — its [inject, settle] window overlaps
  /// [arrival, resolve]. Packets arriving after an update fully settled
  /// (every apply and invalidation delivered) get no excuse from it: that
  /// is the staleness property the update tests assert.
  bool update_excuses(std::size_t packet_index, std::uint64_t resolve_time) const {
    if (updates_.empty()) return false;
    const Addr& dst = destinations_[packet_index];
    const std::uint64_t arrival = arrival_time_[packet_index];
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      if (update_inject_time_[i] > resolve_time) break;  // stream is time-ordered
      if (update_settle_time_[i] < arrival) continue;
      if (updates_[i].prefix.matches(dst)) return true;
    }
    return false;
  }

  bool faults_active() const { return config_.fault.enabled; }

  /// The full-table slow-path index for degraded mode (shared with verify
  /// mode's oracle — both are LPM over the unpartitioned table).
  const typename Family::Oracle& degraded_index() {
    if (oracle_ == nullptr) {
      oracle_ = std::make_unique<typename Family::Oracle>(
          Family::build_oracle(full_table_));
    }
    return *oracle_;
  }

  void send_request(std::uint64_t now, int from_lc, int home, const Addr& addr,
                    const Requester& requester) {
    if (!faults_active()) {
      count_request(from_lc, home);
      const std::uint64_t arrival = fabric_->deliver(from_lc, home, now + 1);
      queue_.schedule(arrival, Event{Event::Type::kLookup, home, addr,
                                     requester, false, net::kNoRoute});
      return;
    }
    Requester tagged = requester;
    tagged.seq = ++next_request_seq_;
    pending_.emplace(tagged.seq, PendingRequest{addr, tagged, home, 0});
    dispatch_request(now, home, addr, tagged, /*attempt=*/0);
  }

  void count_request(int from_lc, int home) {
    ++result_.remote_requests;
    ++result_.remote_fanout[static_cast<std::size_t>(from_lc) *
                                static_cast<std::size_t>(config_.num_lcs) +
                            static_cast<std::size_t>(home)];
  }

  /// Injects one (re)transmission of a pending request into the fabric and
  /// arms its timeout. The fabric may lose the message (drop or outage);
  /// either way the timeout fires unless some attempt's reply settles the
  /// seq first, so a lost message can never strand the lookup.
  void dispatch_request(std::uint64_t now, int home, const Addr& addr,
                        const Requester& requester, int attempt) {
    count_request(requester.lc, home);
    const fabric::Delivery delivery =
        fabric_->try_deliver(requester.lc, home, now + 1);
    if (delivery.delivered) {
      queue_.schedule(delivery.arrival, Event{Event::Type::kLookup, home, addr,
                                              requester, false, net::kNoRoute});
    }
    // Exponential backoff: timeout_base_ << attempt (shift capped well
    // below overflow; max_retries bounds attempt in practice).
    const std::uint64_t backoff = timeout_base_ << std::min(attempt, 20);
    queue_.schedule(now + 1 + backoff,
                    Event{Event::Type::kTimeout, requester.lc, addr, requester,
                          false, net::kNoRoute});
  }

  void handle_timeout(std::uint64_t now, const Event& event) {
    // Stale timers were filtered in the event loop: this seq is live.
    const auto it = pending_.find(event.requester.seq);
    PendingRequest& pending = it->second;
    ++result_.fault.timeouts;
    if (pending.attempt < config_.recovery.max_retries) {
      ++pending.attempt;
      ++result_.fault.retransmits;
      dispatch_request(now, pending.home, pending.addr, pending.requester,
                       pending.attempt);
      return;
    }
    // Retries exhausted: degraded mode. Release the W=1 block the lost
    // reply would have filled (its quota must not leak for the rest of the
    // run), then resolve the requester and every packet parked behind it
    // with a local full-table lookup at the conventional-router cost.
    ++result_.fault.degraded_fallbacks;
    const int lc = pending.requester.lc;
    const Addr addr = pending.addr;
    if (!caches_.empty() && pending.requester.fill_on_reply) {
      if (caches_[static_cast<std::size_t>(lc)]->cancel_waiting(addr)) {
        ++result_.fault.reclaimed_waiting_blocks;
      }
    }
    const net::NextHop hop = Family::oracle_lookup(degraded_index(), addr);
    const std::uint64_t done =
        now + static_cast<std::uint64_t>(
                  std::max(1, config_.recovery.degraded_service_cycles));
    for (const Requester& r : take_waiters(lc, addr)) {
      queue_.schedule(done,
                      Event{Event::Type::kDegraded, lc, addr, r, false, hop});
    }
    queue_.schedule(done, Event{Event::Type::kDegraded, lc, addr,
                                pending.requester, false, hop});
    pending_.erase(it);
  }

  void handle_degraded(std::uint64_t now, const Event& event) {
    if (resolve_packet(now, event.requester.packet, event.hop)) {
      ++result_.fault.degraded_lookups;
    }
  }

  void maybe_update_table(std::uint64_t now) {
    if (config_.flush_interval_cycles == 0) return;
    while (now >= next_flush_) {
      if (config_.update_policy == RouterConfig::UpdatePolicy::kFlushAll ||
          full_table_.empty()) {
        for (const auto& c : caches_) c->flush();
      } else {
        // One incremental update: an existing prefix is re-announced and
        // only the addresses it covers are invalidated.
        const auto& changed =
            full_table_.entries()[update_rng_() % full_table_.size()].prefix;
        for (const auto& c : caches_) {
          result_.blocks_invalidated += c->invalidate_matching(changed);
        }
      }
      ++result_.updates_applied;
      next_flush_ += config_.flush_interval_cycles;
    }
  }

  // ----- Live route-update pipeline ---------------------------------------

  /// Injection of update i at the control plane (modelled at LC 0's fabric
  /// port): the oracle advances immediately — it is the control plane's
  /// view — and one fabric message per home LC carries the update out.
  void handle_update_inject(std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const auto& update = updates_[index];
    ++result_.update.applied;
    ++result_.updates_applied;
    switch (update.kind) {
      case net::UpdateKind::kAnnounce: ++result_.update.announces; break;
      case net::UpdateKind::kWithdraw: ++result_.update.withdraws; break;
      case net::UpdateKind::kHopChange: ++result_.update.hop_changes; break;
    }
    if (oracle_ != nullptr) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        oracle_->remove(update.prefix);
      } else {
        oracle_->insert(update.prefix, update.next_hop);
      }
      oracle_dirty_ = true;
    }
    // Route to every home LC whose fragment replicates the prefix. An
    // unpartitioned router keeps the full table in every LC, so all of
    // them are homes.
    std::vector<int> homes;
    if (config_.partition) {
      homes = rot_->homes_of(update.prefix);
    } else {
      homes.reserve(static_cast<std::size_t>(config_.num_lcs));
      for (int lc = 0; lc < config_.num_lcs; ++lc) homes.push_back(lc);
    }
    update_outstanding_[index] += static_cast<std::uint32_t>(homes.size());
    for (const int home : homes) {
      ++result_.update.update_messages;
      // Control messages ride the fabric reliably (deliver, not
      // try_deliver): BGP sessions run over TCP, losses are retransmitted
      // below the timescale this model resolves.
      const std::uint64_t arrival = fabric_->deliver(0, home, now + 1);
      queue_.schedule(arrival, Event{Event::Type::kUpdateApply, home, Addr{},
                                     event.requester, false, net::kNoRoute});
    }
  }

  /// Update i arrives at home LC `lc`: apply it to the LC's fragment and
  /// FE (incrementally when supported, by epoch rebuild otherwise), charge
  /// the FE servers, invalidate the local cache, and broadcast invalidation
  /// to every other LC. The broadcast is injected *after* the FE applied,
  /// so per-(src,dst) fabric FIFO guarantees it overtakes no stale reply
  /// this home produced earlier — the invalidation is a barrier behind
  /// which no pre-update value survives in any cache.
  void handle_update_apply(std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const auto& update = updates_[index];
    const int lc = event.lc;
    Table& fragment = lc_tables_[static_cast<std::size_t>(lc)];
    net::apply_update(fragment, update);
    auto& fe = fes_[static_cast<std::size_t>(lc)];
    std::uint64_t cost = 0;
    ++result_.update.applications;
    if (Family::fe_supports_update(fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(fe, update.prefix);
      } else {
        Family::fe_insert(fe, update.prefix, update.next_hop);
      }
      ++result_.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      fe = Family::build_fe(fragment, config_);
      ++result_.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             fragment.size() * config_.update.rebuild_millicycles_per_entry /
                 1000;
    }
    fes_dirty_ = true;
    // The FE is unavailable while the update applies: every server stalls.
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    result_.update.update_cost_cycles += cost;
    if (!caches_.empty()) {
      invalidate_cache(lc, update);
      for (int other = 0; other < config_.num_lcs; ++other) {
        if (other == lc) continue;
        ++result_.update.invalidation_messages;
        ++update_outstanding_[index];
        const std::uint64_t arrival = fabric_->deliver(lc, other, now + 1);
        queue_.schedule(arrival,
                        Event{Event::Type::kInvalidate, other, Addr{},
                              event.requester, false, net::kNoRoute});
      }
    }
    settle_update(index, now);
  }

  void handle_invalidate(std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    invalidate_cache(event.lc, updates_[index]);
    settle_update(index, now);
  }

  /// Cache side of one update at one LC, per the configured policy.
  /// Waiting (W=1) blocks are left for their fill on the selective path:
  /// any in-flight fill was either produced after the update applied
  /// (fresh), or was injected before this invalidation by the same home
  /// and therefore already landed (fabric FIFO) and been dropped here.
  void invalidate_cache(int lc, const typename Family::Update& update) {
    Cache& cache = *caches_[static_cast<std::size_t>(lc)];
    if (config_.update_policy == RouterConfig::UpdatePolicy::kSelectiveInvalidate) {
      const std::size_t dropped = cache.invalidate_matching(update.prefix);
      result_.blocks_invalidated += dropped;
      result_.update.blocks_invalidated += dropped;
    } else {
      cache.flush();
      ++result_.update.cache_flushes;
    }
  }

  /// One apply/invalidation event of update `index` completed; the last one
  /// stamps the settle time (until then the update excuses mismatches).
  void settle_update(std::size_t index, std::uint64_t now) {
    if (--update_outstanding_[index] == 0) update_settle_time_[index] = now;
  }

  static constexpr std::uint64_t kSettlePending = ~std::uint64_t{0};

  RouterConfig config_;
  Table full_table_;
  std::unique_ptr<Partition> rot_;
  std::vector<typename Family::Fe> fes_;          // one per LC
  std::vector<std::unique_ptr<Cache>> caches_;    // one per LC (optional)
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<typename Family::Oracle> oracle_;  // verify mode

  // Run state (reset per run()).
  sim::AnyEventQueue<Event> queue_;
  std::vector<std::uint64_t> cache_port_free_;       // per LC
  std::vector<std::vector<std::uint64_t>> fe_free_;  // per LC, per FE server
  std::vector<std::uint64_t> fe_busy_;               // per LC, busy cycles
  WaitMap waiting_;
  std::vector<typename WaitMap::node_type> wait_pool_;  // recycled list nodes
  std::vector<Requester> wait_scratch_;                 // take_waiters() buffer
  // Fault-mode recovery state: outstanding remote requests by seq, the next
  // seq to hand out, and the first-attempt timeout (doubles per retry).
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_seq_ = 0;
  std::uint64_t timeout_base_ = 0;
  std::vector<std::uint64_t> waiting_depth_;  // per LC, currently parked
  std::vector<std::uint64_t> arrival_time_;          // per packet
  std::vector<int> arrival_lc_;                      // per packet
  std::vector<Addr> destinations_;                   // per packet
  std::vector<bool> resolved_;                       // per packet
  std::uint64_t next_flush_ = 0;
  std::mt19937_64 update_rng_;
  // Live-update pipeline state. lc_tables_ are the mutable per-LC fragments
  // (materialized only when the pipeline is on); the dirty flags make run()
  // rebuild FEs / oracle that a prior run's updates mutated.
  std::vector<typename Family::Update> updates_;
  std::vector<Table> lc_tables_;
  std::vector<std::uint64_t> update_inject_time_;   // per update
  std::vector<std::uint64_t> update_settle_time_;   // kSettlePending in flight
  std::vector<std::uint32_t> update_outstanding_;   // undelivered effects
  bool fes_dirty_ = false;
  bool oracle_dirty_ = false;
  bool verify_ = false;
  RouterResult result_;
};

}  // namespace spal::core
