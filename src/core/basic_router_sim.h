// Address-family-generic SPAL router simulation.
//
// The full Sec. 3.3 lookup flow (see router_sim.h for the narrative) is
// independent of the address family: it needs a partition (home-LC mapping
// + per-LC tables), a forwarding-engine index per LC, an LR-cache keyed by
// addresses, and the fabric/event machinery. This template captures that
// flow once; RouterSim (IPv4) and RouterSim6 (IPv6) are thin instantiations
// through a Family policy:
//
//   struct Family {
//     using Addr;                     // packet destination type
//     using Table;                    // routing table
//     using Partition;                // ROT-partition (home_of, table_of)
//     using Fe;                       // built LPM index
//     using Oracle;                   // full-table reference index
//     static Partition make_partition(const Table&, int lcs, const RouterConfig&);
//     static Fe build_fe(const Table&, const RouterConfig&);
//     static net::NextHop fe_lookup(const Fe&, const Addr&);
//     static void fe_lookup_batch(const Fe&, const Addr*, std::size_t n,
//                                 net::NextHop*);  // bit-identical to scalar
//     static std::size_t fe_storage(const Fe&);
//     // Memory-tier cost model (core/memory_model.h):
//     static std::vector<trie::ArenaSpan> fe_arenas(const Fe&);
//     static net::NextHop fe_lookup_counted(const Fe&, const Addr&,
//                                           trie::MemAccessCounter&);
//     static Oracle build_oracle(const Table&);
//     static net::NextHop oracle_lookup(const Oracle&, const Addr&);
//     static std::uint64_t hash_bits(const Addr&);       // waiting-list key
//     // Live route-update pipeline:
//     using Update;                   // net::TableUpdate / net::TableUpdate6
//     static std::vector<Update> make_updates(const Table&,
//                                             const net::UpdateStreamConfig&);
//     static bool fe_supports_update(const Fe&);
//     static void fe_insert(Fe&, const PrefixT&, net::NextHop);
//     static void fe_remove(Fe&, const PrefixT&);
//   };
//
// Execution model — sharded conservative-parallel DES.
//
// The LCs are split into contiguous shards; each shard owns the event
// queue, waiting lists, pending-request table, caches, FEs, and fabric
// ports of its LCs, and one worker thread runs each shard's loop. Fabric
// messages are the only cross-shard traffic. A send happens in two fabric
// phases: the *egress* phase runs at the source shard (which owns the
// source port's serialization state and fault RNG) and yields a raw arrival
// time >= now + D where D = Fabric::min_lookahead(); the message is then
// staged, locally or through a bounded SPSC ring to the destination shard,
// and the *ingress commit* phase (destination-port serialization) runs at
// the destination shard when the message is pulled out of staging.
//
// Correctness rests on the frontier/lookahead protocol:
//
//   * Each shard publishes a frontier F_i (release store): a lower bound on
//     the injection time of anything it will ever send again. Handlers run
//     at times >= the published value, and every egress at time t yields
//     raw arrival >= t + D, so a peer that has read F_i can safely process
//     all events strictly below F_i + D.
//   * A shard's safe horizon is S = min over peers of F_j + D. Each
//     iteration it (1) reads peer frontiers (acquire), (2) drains its
//     inbound rings, (3) computes its next local work time, (4) publishes
//     min(next work, S), then processes events strictly below S. The
//     read-frontiers-THEN-drain order is load-bearing: the acquire read
//     synchronizes with the sender's publish, so any message still
//     undrained after step (2) was sent after that publish and carries
//     raw >= F_j_read + D >= S. Nothing below S can still be in flight.
//   * Within a window the shard republishes its next pop time before each
//     dispatch, so sends made *during* a handler at time t are covered
//     (raw >= t + D >= published + D).
//   * Idle shards publish their safe horizon (never "infinity"), which
//     ratchets peer horizons forward by D per round and guarantees global
//     progress; termination uses a central veto barrier (TerminationGate)
//     that re-checks queues and rings after all shards report idle. Shards
//     parked in the barrier keep processing raced-in work below their safe
//     horizon from the poll callback — merely holding it would pin their
//     frontier and deadlock a busy peer whose next event sits at
//     frontier + D (the peer then never idles, never joins the barrier).
//     Poll-side processing before the shard's own recheck additionally
//     vetoes the round via a raced_work flag: a handler can send
//     cross-shard yet leave no local trace, so queue/staging emptiness at
//     recheck time alone would let the gate drop the in-flight message.
//   * The D-per-round ratchet alone is pathological when events are sparse
//     (e.g. live updates spaced thousands of cycles apart on one shard):
//     idle shards bound each other and creep toward the next event in
//     O(gap/D) rounds. A Mattern-style flux-consistent jump fixes this:
//     every shard also publishes its *uncapped* next local event time
//     (local_next), and global counters track messages sent to / drained
//     from the SPSC rings. A stalled shard that observes sent == drained,
//     scans all local_next values, and re-reads sent unchanged has a
//     consistent snapshot with no message in flight; the scan minimum T is
//     then a true bound on the next action anywhere, every future arrival
//     is >= T + D, and the shard may adopt T + D as its safe horizon
//     directly — leaping the stale-frontier chain in one round. (Drains
//     lower local_next *before* bumping the drained counter, so a scan
//     that sees the count also sees the lowered minimum.)
//
// Determinism: messages are committed at the destination in a canonical
// order — a min-heap on (raw arrival, origin LC, per-origin sequence) —
// and committed *before* any queue event at the same or later time. The
// sequential engine (execution = kSequential, or any configuration the
// sharded engine does not support — see planned_shards()) is exactly this
// machinery run solo on a single all-LC shard, so RouterResult::to_json()
// is byte-identical between the two engines for every configuration.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/basic_lr_cache.h"
#include "core/router_config.h"
#include "fabric/fabric.h"
#include "net/update_stream.h"
#include "sim/calendar_queue.h"
#include "sim/engine.h"
#include "sim/packet_source.h"
#include "sim/shard_sync.h"
#include "sim/spsc_ring.h"

namespace spal::core {

template <typename Family>
class BasicRouterSim {
 public:
  using Addr = typename Family::Addr;
  using Table = typename Family::Table;
  using Partition = typename Family::Partition;
  using Cache = cache::BasicLrCache<Addr>;

  BasicRouterSim(const Table& table, const RouterConfig& config)
      : config_(config), full_table_(table) {
    if (config.num_lcs < 1) {
      throw std::invalid_argument("RouterSim: num_lcs must be >= 1");
    }
    // Fragment the table (an unpartitioned router keeps the full table in
    // every LC, modelled as a single-partition fragmentation).
    rot_ = std::make_unique<Partition>(Family::make_partition(
        table, config_.partition ? config_.num_lcs : 1, config_));
    fes_.reserve(static_cast<std::size_t>(config_.num_lcs));
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      const Table& fwd = config_.partition ? rot_->table_of(lc) : full_table_;
      fes_.push_back(Family::build_fe(fwd, config_));
    }
    if (config_.use_lr_cache) {
      caches_.reserve(static_cast<std::size_t>(config_.num_lcs));
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        cache::LrCacheConfig cache_config = config_.cache;
        cache_config.seed ^= static_cast<std::uint64_t>(lc) * 0x9e3779b97f4a7c15ULL;
        caches_.push_back(std::make_unique<Cache>(cache_config));
      }
    }
    fabric::FabricConfig fabric_config = config_.fabric;
    fabric_config.ports = config_.num_lcs;
    fabric_ = std::make_unique<fabric::Fabric>(fabric_config, config_.fault);
    rebuild_fe_models();
  }

  /// Runs one simulation over per-LC destination streams. With `verify`,
  /// every resolved next hop is checked against the full-table oracle.
  RouterResult run(const std::vector<std::vector<Addr>>& streams, bool verify) {
    if (streams.size() != static_cast<std::size_t>(config_.num_lcs)) {
      throw std::invalid_argument("RouterSim::run: one stream per LC required");
    }
    // Reset run state: every run starts from a cold router.
    result_ = RouterResult();
    result_.per_lc_latency.assign(static_cast<std::size_t>(config_.num_lcs),
                                  sim::LatencyStats{});
    result_.per_lc.assign(static_cast<std::size_t>(config_.num_lcs), LcStats{});
    result_.remote_fanout.assign(
        static_cast<std::size_t>(config_.num_lcs) *
            static_cast<std::size_t>(config_.num_lcs),
        0);
    waiting_depth_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    std::size_t total_packets = 0;
    for (const auto& stream : streams) total_packets += stream.size();
    // Generate per-LC arrival times before sizing the queues: the count
    // bounds their peak population and the last arrival bounds the schedule
    // horizon (so the calendar engine picks a bucket width that fits the
    // whole run).
    std::vector<std::vector<std::uint64_t>> arrivals_per_lc;
    arrivals_per_lc.reserve(static_cast<std::size_t>(config_.num_lcs));
    std::uint64_t arrival_horizon = 0;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      arrivals_per_lc.push_back(sim::generate_arrival_times(
          config_.line_rate_gbps, streams[static_cast<std::size_t>(lc)].size(),
          config_.seed ^ (0xabcdef12345ULL + static_cast<std::uint64_t>(lc))));
      if (!arrivals_per_lc.back().empty()) {
        arrival_horizon = std::max(arrival_horizon, arrivals_per_lc.back().back());
      }
    }
    // Live route-update pipeline: resolve how many updates this run injects
    // before sizing the queues (their schedule extends the horizon).
    const bool live_updates = config_.update.interval_cycles != 0;
    std::size_t update_count = 0;
    if (live_updates) {
      update_count = config_.update.count;
      if (update_count == 0) {
        update_count = static_cast<std::size_t>(arrival_horizon /
                                                config_.update.interval_cycles);
      }
    }
    const std::uint64_t update_horizon =
        live_updates ? static_cast<std::uint64_t>(update_count) *
                           config_.update.interval_cycles
                     : 0;
    const std::uint64_t horizon = std::max(arrival_horizon, update_horizon);
    verify_ = verify;
    timeout_base_ = config_.recovery.timeout_cycles;
    if (timeout_base_ == 0) {
      // Auto: a lightly loaded remote round trip (two fabric traversals plus
      // one FE service) with 16x slack for queueing. A too-small timeout is
      // safe — spurious retransmits are absorbed by duplicate suppression —
      // but wastes fabric messages.
      timeout_base_ = 16 * (2 * fabric_->min_lookahead() +
                            static_cast<std::uint64_t>(std::max(
                                1, config_.fe_service_cycles)));
    }
    result_.fault.per_lc_outage_cycles.assign(
        static_cast<std::size_t>(config_.num_lcs), 0);
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      result_.fault.per_lc_outage_cycles[static_cast<std::size_t>(lc)] =
          config_.fault.outage_cycles(lc);
    }
    for (const auto& c : caches_) c->reset();
    fabric_->reset();
    cache_port_free_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    fe_free_.assign(static_cast<std::size_t>(config_.num_lcs),
                    std::vector<std::uint64_t>(
                        static_cast<std::size_t>(std::max(1, config_.fe_parallelism)), 0));
    fe_busy_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    next_flush_ = config_.flush_interval_cycles;
    update_rng_.seed(config_.seed ^ 0x0badf00dULL);
    request_seq_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    send_seq_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    // A prior run's live updates mutated the FEs / fragments / oracle:
    // rebuild them so every run starts from the configured table.
    if (fes_dirty_) {
      fes_.clear();
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        const Table& fwd = config_.partition ? rot_->table_of(lc) : full_table_;
        fes_.push_back(Family::build_fe(fwd, config_));
      }
      lc_tables_.clear();
      fes_dirty_ = false;
      rebuild_fe_models();
    }
    if (oracle_dirty_) {
      oracle_.reset();
      oracle_dirty_ = false;
    }
    if ((verify_ || faults_active()) && oracle_ == nullptr) {
      // Verify mode reads it per packet; fault mode's degraded slow path
      // may need it at any shard. Building it eagerly here (instead of
      // lazily on the first degraded fallback) keeps the handlers free of
      // shared-state construction.
      oracle_ = std::make_unique<typename Family::Oracle>(
          Family::build_oracle(full_table_));
    }
    updates_.clear();
    update_inject_time_.clear();
    update_settle_time_.clear();
    update_outstanding_.reset();
    update_settle_max_.reset();
    if (live_updates && update_count > 0) {
      net::UpdateStreamConfig stream_config;
      stream_config.count = update_count;
      stream_config.seed = config_.update.seed;
      stream_config.announce_fraction = config_.update.announce_fraction;
      stream_config.withdraw_fraction = config_.update.withdraw_fraction;
      stream_config.next_hops = config_.update.next_hops;
      updates_ = Family::make_updates(full_table_, stream_config);
      update_inject_time_.resize(updates_.size());
      update_settle_time_.assign(updates_.size(), kSettlePending);
      // make_unique<T[]> value-initializes: counters start at zero.
      update_outstanding_ =
          std::make_unique<std::atomic<std::uint32_t>[]>(updates_.size());
      update_settle_max_ =
          std::make_unique<std::atomic<std::uint64_t>[]>(updates_.size());
      if (lc_tables_.empty()) {
        lc_tables_.reserve(static_cast<std::size_t>(config_.num_lcs));
        for (int lc = 0; lc < config_.num_lcs; ++lc) {
          lc_tables_.push_back(config_.partition ? rot_->table_of(lc)
                                                 : full_table_);
        }
      }
    }
    // The run ahead will mutate FEs/fragments (every injected update is
    // applied) and the oracle if present; flag them for the next run now so
    // the handlers never touch the flags from worker threads.
    fes_dirty_ = !updates_.empty();
    oracle_dirty_ = !updates_.empty() && oracle_ != nullptr;

    // Assign global packet ids.
    arrival_time_.assign(total_packets, 0);
    arrival_lc_.assign(total_packets, 0);
    resolved_.assign(total_packets, 0);
    destinations_.clear();
    destinations_.reserve(total_packets);

    // Build the shards and scatter the initial schedule. Event insertion
    // order per shard matches the sequential engine's insertion order
    // restricted to that shard (updates first, then arrivals LC-major), so
    // equal-time tie-breaks agree between the engines.
    shard_count_ = planned_shards(verify);
    lookahead_ = fabric_->min_lookahead();
    msgs_sent_.store(0, std::memory_order_relaxed);
    msgs_drained_.store(0, std::memory_order_relaxed);
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(shard_count_));
    for (int s = 0; s < shard_count_; ++s) {
      shards_.push_back(std::make_unique<Shard>());
      Shard& sh = *shards_.back();
      sh.index = s;
      if (shard_count_ > 1) {
        sh.inbound.resize(static_cast<std::size_t>(shard_count_));
        for (int src = 0; src < shard_count_; ++src) {
          if (src == s) continue;
          sh.inbound[static_cast<std::size_t>(src)] =
              std::make_unique<sim::SpscRing<StagedMsg>>(kRingCapacity);
        }
      }
    }
    {
      std::vector<std::size_t> expected(static_cast<std::size_t>(shard_count_),
                                        0);
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        expected[static_cast<std::size_t>(shard_of_lc(lc))] +=
            streams[static_cast<std::size_t>(lc)].size();
      }
      expected[static_cast<std::size_t>(shard_of_lc(0))] += update_count;
      for (int s = 0; s < shard_count_; ++s) {
        shards_[static_cast<std::size_t>(s)]->queue.reset(
            config_.engine, expected[static_cast<std::size_t>(s)], horizon);
      }
    }
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      const std::uint64_t at =
          (static_cast<std::uint64_t>(i) + 1) * config_.update.interval_cycles;
      update_inject_time_[i] = at;
      shard_for_lc(0).queue.schedule(
          at, Event{Event::Type::kUpdateInject, 0, Addr{},
                    Requester{0, static_cast<std::int64_t>(i), false}, false,
                    net::kNoRoute});
    }
    std::int64_t packet_id = 0;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      const auto& stream = streams[static_cast<std::size_t>(lc)];
      const auto& arrivals = arrivals_per_lc[static_cast<std::size_t>(lc)];
      Shard& sh = shard_for_lc(lc);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        arrival_time_[static_cast<std::size_t>(packet_id)] = arrivals[i];
        arrival_lc_[static_cast<std::size_t>(packet_id)] = lc;
        destinations_.push_back(stream[i]);
        sh.queue.schedule(arrivals[i],
                          Event{Event::Type::kLookup, lc, stream[i],
                                Requester{lc, packet_id, false}, false,
                                net::kNoRoute});
        ++packet_id;
      }
    }

    if (shard_count_ == 1) {
      run_solo(*shards_.front());
    } else {
      run_sharded();
    }

    // Aggregate per-shard and per-LC statistics. The shard loop runs in
    // index order and the latency merge in LC order in both engines, so the
    // aggregation itself cannot introduce a divergence.
    for (const auto& shp : shards_) {
      const ShardCounters& c = shp->c;
      result_.makespan_cycles = std::max(result_.makespan_cycles, c.makespan);
      result_.fe_lookups += c.fe_lookups;
      result_.remote_requests += c.remote_requests;
      result_.remote_replies += c.remote_replies;
      result_.resolved_packets += c.resolved_packets;
      result_.verify_mismatches += c.verify_mismatches;
      result_.updates_applied += c.updates_applied;
      result_.blocks_invalidated += c.blocks_invalidated;
      result_.fault.timeouts += c.timeouts;
      result_.fault.retransmits += c.retransmits;
      result_.fault.duplicate_replies += c.duplicate_replies;
      result_.fault.degraded_fallbacks += c.degraded_fallbacks;
      result_.fault.degraded_lookups += c.degraded_lookups;
      result_.fault.reclaimed_waiting_blocks += c.reclaimed_waiting_blocks;
      result_.update.applied += c.update.applied;
      result_.update.announces += c.update.announces;
      result_.update.withdraws += c.update.withdraws;
      result_.update.hop_changes += c.update.hop_changes;
      result_.update.applications += c.update.applications;
      result_.update.fe_incremental += c.update.fe_incremental;
      result_.update.fe_rebuilds += c.update.fe_rebuilds;
      result_.update.update_cost_cycles += c.update.update_cost_cycles;
      result_.update.update_messages += c.update.update_messages;
      result_.update.invalidation_messages += c.update.invalidation_messages;
      result_.update.blocks_invalidated += c.update.blocks_invalidated;
      result_.update.cache_flushes += c.update.cache_flushes;
    }
    if (config_.memory.enabled) {
      MemoryStats& mem = result_.memory;
      mem.enabled = true;
      mem.matching_overhead_cycles = config_.memory.matching_overhead_cycles;
      mem.tiers.clear();
      mem.tiers.reserve(config_.memory.tiers.size());
      for (const MemoryTier& tier : config_.memory.tiers) {
        MemoryTierStats stats;
        stats.name = tier.name;
        stats.capacity_bytes = tier.capacity_bytes;
        stats.access_cycles = tier.access_cycles;
        mem.tiers.push_back(std::move(stats));
      }
      for (const auto& shp : shards_) {
        const MemoryCounters& c = shp->c.memory;
        mem.lookups += c.lookups;
        mem.charged_cycles += c.charged_cycles;
        for (std::size_t t = 0; t < mem.tiers.size(); ++t) {
          mem.tiers[t].accesses += c.tier_accesses[t];
          mem.tiers[t].cycles += c.tier_cycles[t];
        }
      }
      mem.matching_cycles =
          mem.lookups *
          static_cast<std::uint64_t>(mem.matching_overhead_cycles);
      // Byte accounting reflects the end-of-run structures (identical to
      // the built ones unless live updates mutated an FE mid-run).
      for (const MemoryModel& model : fe_models_) {
        mem.storage_bytes += model.placed_bytes();
        for (const ArenaPlacement& placement : model.placements()) {
          mem.tiers[placement.tier].placed_bytes += placement.bytes;
          ++mem.tiers[placement.tier].placed_arenas;
        }
      }
    }
    // Per-LC latency merges are exact (identical bucket layout), so merging
    // in LC order reproduces the global histogram a direct record() per
    // packet would have produced — and does so engine-independently.
    for (const sim::LatencyStats& lc_latency : result_.per_lc_latency) {
      result_.latency.merge(lc_latency);
    }
    for (std::size_t lc = 0; lc < caches_.size(); ++lc) {
      result_.per_lc[lc].cache = caches_[lc]->stats();
      result_.cache_total.accumulate(caches_[lc]->stats());
    }
    result_.fabric = fabric_->stats();
    result_.fault.drops = result_.fabric.dropped;
    result_.fault.outage_drops = result_.fabric.outage_dropped;
    result_.fault.jitter_events = result_.fabric.jitter_events;
    result_.fault.jitter_cycles = result_.fabric.jitter_cycles;
    if (result_.makespan_cycles > 0) {
      const double capacity =
          static_cast<double>(result_.makespan_cycles) *
          static_cast<double>(std::max(1, config_.fe_parallelism));
      for (std::size_t lc = 0; lc < fe_busy_.size(); ++lc) {
        const double utilization =
            static_cast<double>(fe_busy_[lc]) / capacity;
        result_.per_lc[lc].fe_busy_cycles = fe_busy_[lc];
        result_.per_lc[lc].fe_utilization = utilization;
        result_.max_fe_utilization =
            std::max(result_.max_fe_utilization, utilization);
      }
    }
    return result_;
  }

  const RouterConfig& config() const { return config_; }
  const Partition& partition() const { return *rot_; }
  /// The full (unfragmented) routing table the router was built from.
  const Table& table() const { return full_table_; }

  /// How many shards (worker threads) a run(streams, verify) would use.
  /// kSequential always runs one shard. kSharded silently falls back to one
  /// shard for configurations the parallel engine does not support:
  /// periodic cache flushes (flush_interval_cycles touches every LC's cache
  /// from one event), live updates combined with verify or fault injection
  /// (both read the oracle concurrently with inject-time mutation), and a
  /// fabric with zero minimum latency (no lookahead, no parallelism).
  int planned_shards(bool verify = false) const {
    if (config_.execution != RouterConfig::ExecutionMode::kSharded) return 1;
    if (config_.flush_interval_cycles != 0) return 1;
    const bool live_updates = config_.update.interval_cycles != 0;
    if (live_updates && (verify || config_.fault.enabled)) return 1;
    if (fabric_->min_lookahead() < 1) return 1;
    int threads = config_.threads;
    if (threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::max(1, std::min(threads, config_.num_lcs));
  }

  /// Per-LC forwarding-index storage in bytes.
  std::vector<std::size_t> fe_storage_bytes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(fes_.size());
    for (const auto& fe : fes_) sizes.push_back(Family::fe_storage(fe));
    return sizes;
  }

  /// Host-side (wall-clock) lookups through one LC's built forwarding
  /// engine: the interleaved batch pipeline in chunks of `batch` keys when
  /// batch > 1, the scalar path otherwise. Results are bit-identical either
  /// way; this does not touch simulation state — the throughput benches use
  /// it to measure real ns/lookup on the per-LC structures.
  void fe_host_lookup(int lc, const Addr* keys, std::size_t n,
                      net::NextHop* out, std::size_t batch) const {
    const auto& fe = fes_[static_cast<std::size_t>(lc)];
    if (batch <= 1) {
      for (std::size_t i = 0; i < n; ++i) out[i] = Family::fe_lookup(fe, keys[i]);
      return;
    }
    for (std::size_t i = 0; i < n; i += batch) {
      Family::fe_lookup_batch(fe, keys + i, std::min(batch, n - i), out + i);
    }
  }

 private:
  static constexpr std::uint64_t kNoTime = ~std::uint64_t{0};
  static constexpr std::size_t kRingCapacity = 1024;

  struct Requester {
    int lc;               ///< LC the requesting packet arrived at
    std::int64_t packet;  ///< global packet id
    /// Set on a remote request when the arrival LC reserved a W=1 block;
    /// the home LC echoes it so the reply knows whether to fill.
    bool fill_on_reply = false;
    /// Request sequence number (fault mode only, 0 otherwise): the home LC
    /// echoes it in every reply so the requester can match replies to its
    /// pending-request table and suppress duplicates from retransmits.
    std::uint64_t seq = 0;
  };

  struct Event {
    enum class Type : std::uint8_t {
      kLookup,
      kFeComplete,
      kReply,
      kTimeout,   ///< remote-request timer (fault mode); requester.seq keys it
      kDegraded,  ///< slow-path completion for one packet (fault mode)
      // Live route-update pipeline (requester.packet carries the update
      // index into updates_; addr is unused):
      kUpdateInject,  ///< control plane emits update i to its home LCs
      kUpdateApply,   ///< update i reaches home LC `lc`: apply to its FE
      kInvalidate,    ///< invalidation for update i reaches LC `lc`'s cache
    };
    Type type;
    int lc;
    Addr addr;
    Requester requester;
    bool fill = false;
    net::NextHop hop = net::kNoRoute;
  };

  /// One outstanding remote request (fault mode), keyed by its seq. Retries
  /// reuse the seq: any attempt's reply settles the request, and later
  /// replies for the same seq are counted as duplicates and dropped.
  struct PendingRequest {
    Addr addr;
    Requester requester;  ///< carries the seq and fill_on_reply flag
    int home;
    int attempt = 0;      ///< retransmits so far
  };

  /// A fabric message after its egress phase, parked until the destination
  /// shard commits it. Committed in (raw, origin_lc, origin_seq) order —
  /// origin_seq is a per-source-LC send counter, so the key is unique and
  /// identical in both engines.
  struct StagedMsg {
    std::uint64_t raw = 0;
    std::uint32_t origin_lc = 0;
    std::uint64_t origin_seq = 0;
    Event event{};
  };
  struct StagedAfter {
    bool operator()(const StagedMsg& a, const StagedMsg& b) const {
      if (a.raw != b.raw) return a.raw > b.raw;
      if (a.origin_lc != b.origin_lc) return a.origin_lc > b.origin_lc;
      return a.origin_seq > b.origin_seq;
    }
  };

  // Waiting lists are keyed by the exact (LC, address) pair — the hash
  // comes from Family::hash_bits but equality compares full addresses, so
  // 128-bit families cannot alias two lists.
  struct WaitKey {
    int lc;
    Addr addr;
    bool operator==(const WaitKey&) const = default;
  };
  struct WaitKeyHash {
    std::size_t operator()(const WaitKey& k) const {
      return static_cast<std::size_t>(
          Family::hash_bits(k.addr) ^
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.lc)) *
           0x9e3779b97f4a7c15ULL));
    }
  };
  WaitKey wait_key(int lc, const Addr& addr) const { return WaitKey{lc, addr}; }

  using WaitMap = std::unordered_map<WaitKey, std::vector<Requester>, WaitKeyHash>;

  /// Counters a handler may bump from any LC of its shard; summed (max for
  /// makespan) into RouterResult after the run in shard-index order.
  struct ShardCounters {
    std::uint64_t makespan = 0;
    std::uint64_t fe_lookups = 0;
    std::uint64_t remote_requests = 0;
    std::uint64_t remote_replies = 0;
    std::uint64_t resolved_packets = 0;
    std::uint64_t verify_mismatches = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t blocks_invalidated = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t duplicate_replies = 0;
    std::uint64_t degraded_fallbacks = 0;
    std::uint64_t degraded_lookups = 0;
    std::uint64_t reclaimed_waiting_blocks = 0;
    UpdateStats update;
    MemoryCounters memory;  ///< memory-tier pricing (all zero when off)
  };

  /// One shard: a contiguous LC range, its event queue, the per-LC maps
  /// that only its thread touches, and the cross-thread machinery (inbound
  /// rings, published frontier, idle flag).
  struct Shard {
    int index = 0;
    sim::AnyEventQueue<Event> queue;
    std::vector<StagedMsg> staging;  // min-heap via StagedAfter
    WaitMap waiting;
    std::vector<typename WaitMap::node_type> wait_pool;
    std::vector<Requester> wait_scratch;
    std::unordered_map<std::uint64_t, PendingRequest> pending;
    ShardCounters c;
    /// inbound[s] carries messages from shard s (null for s == index and in
    /// solo mode). Producer: shard s's thread; consumer: this shard.
    std::vector<std::unique_ptr<sim::SpscRing<StagedMsg>>> inbound;
    /// Lower bound (release-published) on this shard's future injections.
    alignas(64) std::atomic<std::uint64_t> frontier{0};
    /// Uncapped min(qnext, snext) — the shard's next local event time,
    /// kNoTime when it has none. Read by peers' flux-consistent jumps.
    std::atomic<std::uint64_t> local_next{0};
    std::atomic<bool> idle{false};
    std::uint64_t published = 0;  ///< owner's copy of frontier
  };

  int shard_of_lc(int lc) const {
    return static_cast<int>(static_cast<std::int64_t>(lc) * shard_count_ /
                            config_.num_lcs);
  }
  Shard& shard_for_lc(int lc) {
    return *shards_[static_cast<std::size_t>(shard_of_lc(lc))];
  }

  // ----- Shard engine ------------------------------------------------------

  void check_abort() const {
    if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
      throw sim::ShardAbort{};
    }
  }

  void publish_frontier(Shard& sh, std::uint64_t value) {
    if (value > sh.published) {
      sh.published = value;
      sh.frontier.store(value, std::memory_order_release);
    }
  }

  /// min over peers of (frontier + lookahead), saturating; kNoTime with no
  /// peers. Callers must read this BEFORE draining rings (see file comment).
  std::uint64_t safe_horizon(const Shard& sh) const {
    std::uint64_t horizon = kNoTime;
    for (const auto& other : shards_) {
      if (other->index == sh.index) continue;
      horizon = std::min(horizon,
                         other->frontier.load(std::memory_order_acquire));
    }
    if (horizon == kNoTime) return kNoTime;
    const std::uint64_t safe = horizon + lookahead_;
    return safe < horizon ? kNoTime : safe;
  }

  static void push_staged(Shard& sh, const StagedMsg& msg) {
    sh.staging.push_back(msg);
    std::push_heap(sh.staging.begin(), sh.staging.end(), StagedAfter{});
  }

  void drain_rings(Shard& sh) {
    StagedMsg msg;
    std::uint64_t drained = 0;
    for (auto& ring : sh.inbound) {
      if (!ring) continue;
      while (ring->try_pop(msg)) {
        push_staged(sh, msg);
        ++drained;
      }
    }
    if (drained != 0) {
      // A drain can LOWER this shard's next event time. Publish the new
      // minimum before acknowledging the drains: a flux-consistent scan
      // that observes the drained count (acquire) then also observes the
      // lowered local_next, so it can never jump past these messages.
      const std::uint64_t qnext =
          sh.queue.empty() ? kNoTime : sh.queue.next_time();
      sh.local_next.store(std::min(qnext, sh.staging.front().raw),
                          std::memory_order_release);
      msgs_drained_.fetch_add(drained, std::memory_order_release);
    }
  }

  /// Flux-consistent global-minimum jump (see the file comment). Returns a
  /// safe horizon T + D when a consistent no-messages-in-flight snapshot
  /// exists, 0 when it doesn't (messages in flight — fall back to the
  /// frontier ratchet) or when the snapshot is globally empty (termination
  /// is the gate's call, not ours).
  std::uint64_t gvt_jump(const Shard& sh, std::uint64_t own_cand) const {
    const std::uint64_t sent = msgs_sent_.load(std::memory_order_acquire);
    if (msgs_drained_.load(std::memory_order_acquire) != sent) return 0;
    std::uint64_t t = own_cand;
    for (const auto& other : shards_) {
      if (other->index == sh.index) continue;
      t = std::min(t, other->local_next.load(std::memory_order_acquire));
    }
    if (msgs_sent_.load(std::memory_order_acquire) != sent) return 0;
    if (t == kNoTime) return 0;
    const std::uint64_t safe = t + lookahead_;
    return safe < t ? kNoTime : safe;
  }

  /// Egress already ran at the source; park the message at the destination
  /// shard. A full ring never deadlocks: while spinning the producer keeps
  /// draining its own inbound rings, so two shards pushing to each other
  /// both make progress.
  void stage_message(Shard& sh, int src, std::uint64_t raw, const Event& event) {
    const StagedMsg msg{raw, static_cast<std::uint32_t>(src),
                        send_seq_[static_cast<std::size_t>(src)]++, event};
    Shard& dst = shard_for_lc(event.lc);
    if (&dst == &sh) {
      push_staged(sh, msg);
      return;
    }
    // Count the message in flight BEFORE it becomes poppable, so a
    // flux-consistent scan can never observe the push without the count.
    msgs_sent_.fetch_add(1, std::memory_order_acq_rel);
    sim::SpscRing<StagedMsg>& ring =
        *dst.inbound[static_cast<std::size_t>(sh.index)];
    sim::SpinWaiter spin;
    while (!ring.try_push(msg)) {
      check_abort();
      drain_rings(sh);
      spin.wait();
    }
  }

  void send_reliable(Shard& sh, int src, std::uint64_t inject,
                     const Event& event) {
    stage_message(sh, src, fabric_->egress(src, inject).raw_arrival, event);
  }

  bool send_lossy(Shard& sh, int src, int dst, std::uint64_t inject,
                  const Event& event) {
    const fabric::Egress out = fabric_->egress_lossy(src, dst, inject);
    if (!out.delivered) return false;
    stage_message(sh, src, out.raw_arrival, event);
    return true;
  }

  /// Runs the destination-port ingress phase for the canonically-first
  /// staged message and schedules its event.
  void commit_front(Shard& sh) {
    std::pop_heap(sh.staging.begin(), sh.staging.end(), StagedAfter{});
    const StagedMsg msg = sh.staging.back();
    sh.staging.pop_back();
    sh.queue.schedule(fabric_->ingress_commit(msg.event.lc, msg.raw),
                      msg.event);
  }

  /// Commits staged messages and dispatches events, all strictly below
  /// `limit`, committing before popping on equal times (the canonical
  /// order). With publish, the next pop time is released before each
  /// dispatch so sends made during the handler are covered by the
  /// published frontier. Returns true when anything was committed or
  /// dispatched — the termination gate's poll uses this to veto a round
  /// in which it processed raced-in work (see try_terminate).
  bool process_window(Shard& sh, std::uint64_t limit, bool publish) {
    bool did_work = false;
    for (;;) {
      const std::uint64_t qnext =
          sh.queue.empty() ? kNoTime : sh.queue.next_time();
      if (!sh.staging.empty()) {
        const std::uint64_t snext = sh.staging.front().raw;
        if (snext < limit && snext <= qnext) {
          commit_front(sh);
          did_work = true;
          continue;
        }
      }
      if (qnext >= limit) return did_work;
      if (publish) publish_frontier(sh, qnext);
      dispatch_one(sh);
      did_work = true;
    }
  }

  void dispatch_one(Shard& sh) {
    auto [now, event] = sh.queue.pop();
    // A timer whose request already settled (reply accepted or degraded)
    // is stale: skip it before it can stretch the measured makespan.
    if (event.type == Event::Type::kTimeout &&
        sh.pending.find(event.requester.seq) == sh.pending.end()) {
      return;
    }
    // Periodic flush/invalidate touches every LC's cache, so it forces the
    // solo engine (see planned_shards) and may keep using result_ directly.
    if (config_.flush_interval_cycles != 0) maybe_update_table(now);
    sh.c.makespan = std::max(sh.c.makespan, now);
    switch (event.type) {
      case Event::Type::kLookup: handle_lookup(sh, now, event); break;
      case Event::Type::kFeComplete: handle_fe_complete(sh, now, event); break;
      case Event::Type::kReply: handle_reply(sh, now, event); break;
      case Event::Type::kTimeout: handle_timeout(sh, now, event); break;
      case Event::Type::kDegraded: handle_degraded(sh, now, event); break;
      case Event::Type::kUpdateInject: handle_update_inject(sh, now, event); break;
      case Event::Type::kUpdateApply: handle_update_apply(sh, now, event); break;
      case Event::Type::kInvalidate: handle_invalidate(sh, now, event); break;
    }
  }

  /// Sequential engine: the same staged/canonical machinery on one all-LC
  /// shard. With limit = kNoTime every staged message commits and every
  /// event dispatches, and the loop ends only when both are empty.
  void run_solo(Shard& sh) { process_window(sh, kNoTime, false); }

  bool all_idle() const {
    for (const auto& s : shards_) {
      if (!s->idle.load(std::memory_order_acquire)) return false;
    }
    return true;
  }

  bool try_terminate(Shard& sh, sim::TerminationGate& gate,
                     std::uint64_t& parity) {
    // Set when a poll below processes raced-in work. Enter-barrier polls
    // run BEFORE this shard's recheck, and a handler can leave no local
    // trace (a remote kLookup that hits the home cache only sends a reply;
    // kUpdateApply only broadcasts invalidations) — so empty queue/staging
    // at recheck time does not prove this shard was quiet this round. The
    // flag does, and the recheck vetoes on it.
    bool raced_work = false;
    const bool done = gate.round(
        parity,
        /*recheck=*/
        [&] {
          drain_rings(sh);
          const bool busy =
              raced_work || !sh.queue.empty() || !sh.staging.empty();
          raced_work = false;
          if (busy) sh.idle.store(false, std::memory_order_relaxed);
          return busy;
        },
        /*poll=*/
        [&] {
          check_abort();
          const std::uint64_t safe = safe_horizon(sh);
          drain_rings(sh);
          // Work that races in while parked here must be PROCESSED, not
          // just held: a held event pins this shard's frontier, and a busy
          // peer whose next event sits exactly at frontier + D then stalls
          // forever — it never goes idle, never joins the barrier, and this
          // shard never leaves it. Processing is termination-safe because
          // it is never invisible to the gate:
          //   * Enter-barrier polls (before this shard's recheck) set
          //     raced_work, so the recheck vetoes even when the handler
          //     left queue and staging empty.
          //   * Exit-barrier polls (after the recheck) can only see work
          //     that was pushed DURING the round — every pre-round push
          //     happens-before the enter barrier completes and is drained
          //     by the receiver's recheck. An in-round push comes from some
          //     shard's enter-poll processing (vetoed via its raced_work)
          //     or, inductively, from exit-poll processing whose causal
          //     chain bottoms out in such a veto. So any exit-poll work
          //     implies the round is already lost, and busy counters are
          //     final by the time the exit barrier completes.
          if (process_window(sh, safe, /*publish=*/true)) raced_work = true;
          const std::uint64_t qnext =
              sh.queue.empty() ? kNoTime : sh.queue.next_time();
          const std::uint64_t snext =
              sh.staging.empty() ? kNoTime : sh.staging.front().raw;
          sh.local_next.store(std::min(qnext, snext),
                              std::memory_order_release);
          publish_frontier(sh, std::min(std::min(qnext, snext), safe));
        });
    if (!done) return false;
    // Belt-and-braces: a clean round implies no in-flight ring messages
    // (no shard vetoed => no shard sent this round, and every pre-round
    // send was drained by a recheck that happens-before the exit barrier),
    // so the flux counters must agree — and, being frozen since before the
    // round, every shard reads the same values and the verdict stays
    // unanimous. A mismatch would mean the invariant above is broken;
    // loop another round rather than drop an event.
    return msgs_drained_.load(std::memory_order_acquire) ==
           msgs_sent_.load(std::memory_order_acquire);
  }

  /// One shard's worker loop. The per-iteration order is load-bearing:
  /// read peer frontiers (acquire) FIRST, then drain rings, then compute
  /// the local candidate, then publish — see the file comment.
  void run_shard(Shard& sh, sim::TerminationGate& gate) {
    sim::SpinWaiter spin;
    std::uint64_t gate_parity = 0;
    for (;;) {
      check_abort();
      std::uint64_t safe = safe_horizon(sh);
      drain_rings(sh);
      const std::uint64_t qnext =
          sh.queue.empty() ? kNoTime : sh.queue.next_time();
      const std::uint64_t snext =
          sh.staging.empty() ? kNoTime : sh.staging.front().raw;
      const std::uint64_t cand = std::min(qnext, snext);
      sh.local_next.store(cand, std::memory_order_release);
      // Idle shards publish the safe horizon itself (never "infinity"):
      // peers' horizons then ratchet forward by the lookahead each round,
      // which is what guarantees global progress.
      publish_frontier(sh, std::min(cand, safe));
      if (cand >= safe) {
        // Stalled on peer frontiers. Before ratcheting D per round, try
        // the flux-consistent jump: with no message in flight the global
        // next-event minimum bounds every future arrival, letting this
        // shard (and, via its republished frontier, its peers) leap a
        // sparse-event gap in one round instead of O(gap/D).
        const std::uint64_t jumped = gvt_jump(sh, cand);
        if (jumped > safe) {
          safe = jumped;
          publish_frontier(sh, std::min(cand, safe));
        }
      }
      if (cand == kNoTime) {
        sh.idle.store(true, std::memory_order_release);
        if (all_idle() && try_terminate(sh, gate, gate_parity)) return;
        spin.wait();
        continue;
      }
      sh.idle.store(false, std::memory_order_relaxed);
      if (cand >= safe) {
        spin.wait();
        continue;
      }
      spin.reset();
      process_window(sh, safe, /*publish=*/true);
    }
  }

  void run_sharded() {
    sim::TerminationGate gate(shard_count_);
    std::atomic<bool> abort{false};
    abort_ = &abort;
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(shard_count_));
    auto body = [&](int index) {
      try {
        run_shard(*shards_[static_cast<std::size_t>(index)], gate);
      } catch (const sim::ShardAbort&) {
        // Another shard failed first; unwind quietly.
      } catch (...) {
        errors[static_cast<std::size_t>(index)] = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(shard_count_ - 1));
    for (int s = 1; s < shard_count_; ++s) workers.emplace_back(body, s);
    body(0);
    for (std::thread& worker : workers) worker.join();
    abort_ = nullptr;
    // Rethrow the lowest shard index's failure (deterministic pick).
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  // ----- Waiting lists -----------------------------------------------------

  /// The waiting list for (lc, addr), creating it from the node free-list
  /// when possible so the hot miss path performs no allocation.
  std::vector<Requester>& waiters(Shard& sh, int lc, const Addr& addr) {
    const WaitKey key = wait_key(lc, addr);
    const auto it = sh.waiting.find(key);
    if (it != sh.waiting.end()) return it->second;
    if (!sh.wait_pool.empty()) {
      auto node = std::move(sh.wait_pool.back());
      sh.wait_pool.pop_back();
      node.key() = key;
      return sh.waiting.insert(std::move(node)).position->second;
    }
    return sh.waiting[key];
  }

  /// Parks a requester on the (lc, addr) waiting list, tracking the per-LC
  /// parked-requester high-water mark.
  void park(Shard& sh, int lc, const Addr& addr, const Requester& requester) {
    waiters(sh, lc, addr).push_back(requester);
    auto& depth = waiting_depth_[static_cast<std::size_t>(lc)];
    ++depth;
    auto& lc_stats = result_.per_lc[static_cast<std::size_t>(lc)];
    lc_stats.waiting_highwater = std::max(lc_stats.waiting_highwater, depth);
  }

  /// Moves the waiting list for (lc, addr) into a scratch buffer (empty if
  /// none) and recycles both the map node and the vector capacity. The
  /// scratch is per-shard: callers drain it before the next take_waiters().
  const std::vector<Requester>& take_waiters(Shard& sh, int lc,
                                             const Addr& addr) {
    sh.wait_scratch.clear();
    const auto it = sh.waiting.find(wait_key(lc, addr));
    if (it != sh.waiting.end()) {
      // Swap (not move) so the extracted node inherits the scratch's old
      // capacity and carries it back through the pool.
      sh.wait_scratch.swap(it->second);
      sh.wait_pool.push_back(sh.waiting.extract(it));
      waiting_depth_[static_cast<std::size_t>(lc)] -= sh.wait_scratch.size();
    }
    return sh.wait_scratch;
  }

  // ----- Lookup flow -------------------------------------------------------

  void handle_lookup(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    const Requester requester = event.requester;
    if (!caches_.empty()) {
      // One probe per cycle per LR-cache (Sec. 5.1): contend for the port.
      auto& port_free = cache_port_free_[static_cast<std::size_t>(lc)];
      if (port_free > now) {
        sh.queue.schedule(port_free, event);
        return;
      }
      port_free = now + 1;
      Cache& cache = *caches_[static_cast<std::size_t>(lc)];
      const cache::ProbeResult probe = cache.probe(addr, now);
      switch (probe.state) {
        case cache::ProbeState::kHit:
          deliver_result(sh, now + 1, lc, addr, probe.next_hop, requester);
          return;
        case cache::ProbeState::kWaiting:
          park(sh, lc, addr, requester);
          return;
        case cache::ProbeState::kMiss:
          break;
      }
    }
    const int home = config_.partition ? rot_->home_of(addr) : lc;
    if (home == lc) {
      bool fill = false;
      if (!caches_.empty() && config_.early_reservation) {
        fill = caches_[static_cast<std::size_t>(lc)]->reserve(
            addr, cache::Origin::kLocal, now);
        if (fill) park(sh, lc, addr, requester);
      }
      start_fe_job(sh, now, lc, addr, fill, requester);
    } else {
      Requester forwarded = requester;
      forwarded.fill_on_reply = false;
      if (!caches_.empty() && config_.early_reservation) {
        if (caches_[static_cast<std::size_t>(lc)]->reserve(
                addr, cache::Origin::kRemote, now)) {
          park(sh, lc, addr, requester);
          forwarded.fill_on_reply = true;
        }
      }
      send_request(sh, now, lc, home, addr, forwarded);
    }
  }

  void start_fe_job(Shard& sh, std::uint64_t now, int lc, const Addr& addr,
                    bool fill, Requester direct) {
    // k-server deterministic queue: the job runs on the earliest-free engine.
    auto& servers = fe_free_[static_cast<std::size_t>(lc)];
    auto& fe_free = *std::min_element(servers.begin(), servers.end());
    const std::uint64_t start = std::max(now, fe_free);
    std::uint64_t service = static_cast<std::uint64_t>(config_.fe_service_cycles);
    if (!fe_models_.empty()) {
      // Memory-tier pricing: a counted lookup against the FE as built at
      // admission time sets this job's service time (the result the packet
      // receives is still computed at completion, so an update that lands
      // in between changes the answer, not this job's price).
      trie::MemAccessCounter counter;
      Family::fe_lookup_counted(fes_[static_cast<std::size_t>(lc)], addr,
                                counter);
      service = fe_models_[static_cast<std::size_t>(lc)].charge(counter,
                                                                sh.c.memory);
    }
    const std::uint64_t completion = start + service;
    fe_free = completion;
    fe_busy_[static_cast<std::size_t>(lc)] += service;
    ++sh.c.fe_lookups;
    auto& lc_stats = result_.per_lc[static_cast<std::size_t>(lc)];
    ++lc_stats.fe_lookups;
    lc_stats.fe_queue_wait_cycles += start - now;
    sh.queue.schedule(completion, Event{Event::Type::kFeComplete, lc, addr,
                                        direct, fill, net::kNoRoute});
  }

  void handle_fe_complete(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    const net::NextHop hop =
        Family::fe_lookup(fes_[static_cast<std::size_t>(lc)], addr);
    if (event.fill) {
      if (!caches_.empty()) {
        caches_[static_cast<std::size_t>(lc)]->fill(addr, hop, now);
      }
      // Serve everything parked on the block: local packets resolve, remote
      // requesters receive replies over the fabric.
      for (const Requester& r : take_waiters(sh, lc, addr)) {
        deliver_result(sh, now, lc, addr, hop, r);
      }
    } else {
      // No reserved block (early recording disabled or the reservation
      // failed): cache the result late so subsequent packets still hit.
      if (!caches_.empty()) {
        caches_[static_cast<std::size_t>(lc)]->insert(addr, hop,
                                                      cache::Origin::kLocal, now);
      }
      deliver_result(sh, now, lc, addr, hop, event.requester);
    }
  }

  void handle_reply(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    if (faults_active()) {
      // Match the reply to its pending request. A miss means the request
      // already settled — an earlier attempt's reply was accepted or the
      // lookup fell back to the degraded path — so this one is a duplicate
      // and must not touch the cache or resolve anything twice.
      const auto it = sh.pending.find(event.requester.seq);
      if (it == sh.pending.end()) {
        ++sh.c.duplicate_replies;
        return;
      }
      sh.pending.erase(it);
    }
    if (!caches_.empty()) {
      if (event.requester.fill_on_reply) {
        caches_[static_cast<std::size_t>(lc)]->fill(addr, event.hop, now);
      } else {
        // No reservation was made at request time; cache the result late.
        caches_[static_cast<std::size_t>(lc)]->insert(
            addr, event.hop, cache::Origin::kRemote, now);
      }
    }
    // Drain local packets parked while this reply was in flight (the
    // carried requester is usually among them; resolve_packet guards
    // duplicates).
    for (const Requester& r : take_waiters(sh, lc, addr)) {
      resolve_packet(sh, now, r.packet, event.hop);
    }
    resolve_packet(sh, now, event.requester.packet, event.hop);
  }

  void deliver_result(Shard& sh, std::uint64_t now, int lc, const Addr& addr,
                      net::NextHop hop, const Requester& requester) {
    if (requester.lc == lc) {
      resolve_packet(sh, now, requester.packet, hop);
      return;
    }
    ++sh.c.remote_replies;
    const Event reply{Event::Type::kReply, requester.lc, addr, requester,
                      false, hop};
    if (faults_active()) {
      // The reply can be lost too; the requester's timeout covers the whole
      // round trip, so a dropped reply is indistinguishable from a dropped
      // request and triggers the same retry/degraded recovery.
      send_lossy(sh, lc, requester.lc, now, reply);
      return;
    }
    send_reliable(sh, lc, now, reply);
  }

  /// Marks a packet resolved; false when it already was (waiting-list
  /// drains and the degraded path can race the same packet). Only the shard
  /// owning the packet's arrival LC ever touches its resolved_ slot or its
  /// per-LC latency histogram.
  bool resolve_packet(Shard& sh, std::uint64_t now, std::int64_t packet,
                      net::NextHop hop) {
    const auto index = static_cast<std::size_t>(packet);
    if (resolved_[index]) return false;
    resolved_[index] = 1;
    ++sh.c.resolved_packets;
    const std::uint64_t cycles = now - arrival_time_[index];
    result_.per_lc_latency[static_cast<std::size_t>(arrival_lc_[index])]
        .record(cycles);
    if (verify_) {
      const net::NextHop expected =
          Family::oracle_lookup(*oracle_, destinations_[index]);
      if (expected != hop && !update_excuses(index, now)) {
        ++sh.c.verify_mismatches;
      }
    }
    return true;
  }

  /// Verify-under-churn: a mismatch against the (control-plane) oracle is
  /// excused iff some update covering the destination was in flight during
  /// the packet's lifetime — its [inject, settle] window overlaps
  /// [arrival, resolve]. Packets arriving after an update fully settled
  /// (every apply and invalidation delivered) get no excuse from it: that
  /// is the staleness property the update tests assert.
  bool update_excuses(std::size_t packet_index, std::uint64_t resolve_time) const {
    if (updates_.empty()) return false;
    const Addr& dst = destinations_[packet_index];
    const std::uint64_t arrival = arrival_time_[packet_index];
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      if (update_inject_time_[i] > resolve_time) break;  // stream is time-ordered
      if (update_settle_time_[i] < arrival) continue;
      if (updates_[i].prefix.matches(dst)) return true;
    }
    return false;
  }

  bool faults_active() const { return config_.fault.enabled; }

  /// The full-table slow-path index for degraded mode (shared with verify
  /// mode's oracle — both are LPM over the unpartitioned table). run()
  /// builds it eagerly whenever faults are enabled, so this lazy fallback
  /// never triggers under the sharded engine.
  const typename Family::Oracle& degraded_index() {
    if (oracle_ == nullptr) {
      oracle_ = std::make_unique<typename Family::Oracle>(
          Family::build_oracle(full_table_));
    }
    return *oracle_;
  }

  /// Hands out request seqs that are unique, nonzero, and independent of
  /// the engine: each LC strides by num_lcs from its own offset.
  std::uint64_t next_request_seq(int lc) {
    return request_seq_[static_cast<std::size_t>(lc)]++ *
               static_cast<std::uint64_t>(config_.num_lcs) +
           static_cast<std::uint64_t>(lc) + 1;
  }

  void send_request(Shard& sh, std::uint64_t now, int from_lc, int home,
                    const Addr& addr, const Requester& requester) {
    if (!faults_active()) {
      count_request(sh, from_lc, home);
      send_reliable(sh, from_lc, now + 1,
                    Event{Event::Type::kLookup, home, addr, requester, false,
                          net::kNoRoute});
      return;
    }
    Requester tagged = requester;
    tagged.seq = next_request_seq(from_lc);
    sh.pending.emplace(tagged.seq, PendingRequest{addr, tagged, home, 0});
    dispatch_request(sh, now, home, addr, tagged, /*attempt=*/0);
  }

  void count_request(Shard& sh, int from_lc, int home) {
    ++sh.c.remote_requests;
    ++result_.remote_fanout[static_cast<std::size_t>(from_lc) *
                                static_cast<std::size_t>(config_.num_lcs) +
                            static_cast<std::size_t>(home)];
  }

  /// Injects one (re)transmission of a pending request into the fabric and
  /// arms its timeout. The fabric may lose the message (drop or outage);
  /// either way the timeout fires unless some attempt's reply settles the
  /// seq first, so a lost message can never strand the lookup.
  void dispatch_request(Shard& sh, std::uint64_t now, int home,
                        const Addr& addr, const Requester& requester,
                        int attempt) {
    count_request(sh, requester.lc, home);
    send_lossy(sh, requester.lc, home, now + 1,
               Event{Event::Type::kLookup, home, addr, requester, false,
                     net::kNoRoute});
    // Exponential backoff: timeout_base_ << attempt (shift capped well
    // below overflow; max_retries bounds attempt in practice). The timer is
    // a local event at the requesting LC — it never crosses shards.
    const std::uint64_t backoff = timeout_base_ << std::min(attempt, 20);
    sh.queue.schedule(now + 1 + backoff,
                      Event{Event::Type::kTimeout, requester.lc, addr,
                            requester, false, net::kNoRoute});
  }

  void handle_timeout(Shard& sh, std::uint64_t now, const Event& event) {
    // Stale timers were filtered in dispatch_one: this seq is live.
    const auto it = sh.pending.find(event.requester.seq);
    PendingRequest& pending = it->second;
    ++sh.c.timeouts;
    if (pending.attempt < config_.recovery.max_retries) {
      ++pending.attempt;
      ++sh.c.retransmits;
      dispatch_request(sh, now, pending.home, pending.addr, pending.requester,
                       pending.attempt);
      return;
    }
    // Retries exhausted: degraded mode. Release the W=1 block the lost
    // reply would have filled (its quota must not leak for the rest of the
    // run), then resolve the requester and every packet parked behind it
    // with a local full-table lookup at the conventional-router cost.
    ++sh.c.degraded_fallbacks;
    const int lc = pending.requester.lc;
    const Addr addr = pending.addr;
    if (!caches_.empty() && pending.requester.fill_on_reply) {
      if (caches_[static_cast<std::size_t>(lc)]->cancel_waiting(addr)) {
        ++sh.c.reclaimed_waiting_blocks;
      }
    }
    const net::NextHop hop = Family::oracle_lookup(degraded_index(), addr);
    const std::uint64_t done =
        now + static_cast<std::uint64_t>(
                  std::max(1, config_.recovery.degraded_service_cycles));
    for (const Requester& r : take_waiters(sh, lc, addr)) {
      sh.queue.schedule(done,
                        Event{Event::Type::kDegraded, lc, addr, r, false, hop});
    }
    sh.queue.schedule(done, Event{Event::Type::kDegraded, lc, addr,
                                  pending.requester, false, hop});
    sh.pending.erase(it);
  }

  void handle_degraded(Shard& sh, std::uint64_t now, const Event& event) {
    if (resolve_packet(sh, now, event.requester.packet, event.hop)) {
      ++sh.c.degraded_lookups;
    }
  }

  void maybe_update_table(std::uint64_t now) {
    if (config_.flush_interval_cycles == 0) return;
    while (now >= next_flush_) {
      if (config_.update_policy == RouterConfig::UpdatePolicy::kFlushAll ||
          full_table_.empty()) {
        for (const auto& c : caches_) c->flush();
      } else {
        // One incremental update: an existing prefix is re-announced and
        // only the addresses it covers are invalidated.
        const auto& changed =
            full_table_.entries()[update_rng_() % full_table_.size()].prefix;
        for (const auto& c : caches_) {
          result_.blocks_invalidated += c->invalidate_matching(changed);
        }
      }
      ++result_.updates_applied;
      next_flush_ += config_.flush_interval_cycles;
    }
  }

  // ----- Live route-update pipeline ---------------------------------------

  /// Injection of update i at the control plane (modelled at LC 0's fabric
  /// port): the oracle advances immediately — it is the control plane's
  /// view — and one fabric message per home LC carries the update out.
  void handle_update_inject(Shard& sh, std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const auto& update = updates_[index];
    ++sh.c.update.applied;
    ++sh.c.updates_applied;
    switch (update.kind) {
      case net::UpdateKind::kAnnounce: ++sh.c.update.announces; break;
      case net::UpdateKind::kWithdraw: ++sh.c.update.withdraws; break;
      case net::UpdateKind::kHopChange: ++sh.c.update.hop_changes; break;
    }
    if (oracle_ != nullptr) {
      // Under the sharded engine this only runs when nothing reads the
      // oracle concurrently: verify/fault runs with live updates force the
      // solo engine (planned_shards), so a mutating inject can only share a
      // run with readers when there is a single shard.
      if (update.kind == net::UpdateKind::kWithdraw) {
        oracle_->remove(update.prefix);
      } else {
        oracle_->insert(update.prefix, update.next_hop);
      }
    }
    // Route to every home LC whose fragment replicates the prefix. An
    // unpartitioned router keeps the full table in every LC, so all of
    // them are homes.
    std::vector<int> homes;
    if (config_.partition) {
      homes = rot_->homes_of(update.prefix);
    } else {
      homes.reserve(static_cast<std::size_t>(config_.num_lcs));
      for (int lc = 0; lc < config_.num_lcs; ++lc) homes.push_back(lc);
    }
    // Pre-count every apply before any message leaves: the outstanding
    // counter can then never transiently hit zero while effects are still
    // fanning out (each apply also adds its invalidations before its own
    // decrement).
    update_outstanding_[index].fetch_add(
        static_cast<std::uint32_t>(homes.size()), std::memory_order_relaxed);
    for (const int home : homes) {
      ++sh.c.update.update_messages;
      // Control messages ride the fabric reliably (egress, not
      // egress_lossy): BGP sessions run over TCP, losses are retransmitted
      // below the timescale this model resolves.
      send_reliable(sh, 0, now + 1,
                    Event{Event::Type::kUpdateApply, home, Addr{},
                          event.requester, false, net::kNoRoute});
    }
  }

  /// Update i arrives at home LC `lc`: apply it to the LC's fragment and
  /// FE (incrementally when supported, by epoch rebuild otherwise), charge
  /// the FE servers, invalidate the local cache, and broadcast invalidation
  /// to every other LC. The broadcast is injected *after* the FE applied,
  /// so per-(src,dst) fabric FIFO guarantees it overtakes no stale reply
  /// this home produced earlier — the invalidation is a barrier behind
  /// which no pre-update value survives in any cache.
  void handle_update_apply(Shard& sh, std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const auto& update = updates_[index];
    const int lc = event.lc;
    Table& fragment = lc_tables_[static_cast<std::size_t>(lc)];
    net::apply_update(fragment, update);
    auto& fe = fes_[static_cast<std::size_t>(lc)];
    std::uint64_t cost = 0;
    ++sh.c.update.applications;
    if (Family::fe_supports_update(fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(fe, update.prefix);
      } else {
        Family::fe_insert(fe, update.prefix, update.next_hop);
      }
      ++sh.c.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      fe = Family::build_fe(fragment, config_);
      ++sh.c.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             fragment.size() * config_.update.rebuild_millicycles_per_entry /
                 1000;
    }
    // The applied update changed the FE's arena footprints; re-place them
    // so subsequent jobs at this LC price against the current structure.
    // The model is element-owned by this LC's shard, like the FE itself.
    rebuild_fe_model(lc);
    // The FE is unavailable while the update applies: every server stalls.
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    sh.c.update.update_cost_cycles += cost;
    if (!caches_.empty()) {
      invalidate_cache(sh, lc, update);
      for (int other = 0; other < config_.num_lcs; ++other) {
        if (other == lc) continue;
        ++sh.c.update.invalidation_messages;
        update_outstanding_[index].fetch_add(1, std::memory_order_relaxed);
        send_reliable(sh, lc, now + 1,
                      Event{Event::Type::kInvalidate, other, Addr{},
                            event.requester, false, net::kNoRoute});
      }
    }
    settle_update(index, now);
  }

  void handle_invalidate(Shard& sh, std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    invalidate_cache(sh, event.lc, updates_[index]);
    settle_update(index, now);
  }

  /// Cache side of one update at one LC, per the configured policy.
  /// Waiting (W=1) blocks are left for their fill on the selective path:
  /// any in-flight fill was either produced after the update applied
  /// (fresh), or was injected before this invalidation by the same home
  /// and therefore already landed (fabric FIFO) and been dropped here.
  void invalidate_cache(Shard& sh, int lc, const typename Family::Update& update) {
    Cache& cache = *caches_[static_cast<std::size_t>(lc)];
    if (config_.update_policy == RouterConfig::UpdatePolicy::kSelectiveInvalidate) {
      const std::size_t dropped = cache.invalidate_matching(update.prefix);
      sh.c.blocks_invalidated += dropped;
      sh.c.update.blocks_invalidated += dropped;
    } else {
      cache.flush();
      ++sh.c.update.cache_flushes;
    }
  }

  /// One apply/invalidation event of update `index` completed; the last one
  /// stamps the settle time. Effects complete on different shards, so the
  /// settle time is accumulated as a CAS-max and stamped by whichever shard
  /// decrements the outstanding counter to zero — in a solo run event times
  /// are non-decreasing, so the max equals the last decrementer's `now` and
  /// the stamp is engine-independent. (Settle times feed only the verify
  /// excuse window, and verify with churn runs solo anyway.)
  void settle_update(std::size_t index, std::uint64_t now) {
    std::atomic<std::uint64_t>& stamp = update_settle_max_[index];
    std::uint64_t seen = stamp.load(std::memory_order_relaxed);
    while (seen < now &&
           !stamp.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    // acq_rel: the last decrementer's acquire sees every earlier effect's
    // CAS-max through the RMW release sequence.
    if (update_outstanding_[index].fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      update_settle_time_[index] = stamp.load(std::memory_order_relaxed);
    }
  }

  // ----- Memory-tier cost model -------------------------------------------

  /// Re-places every FE's arenas into the configured tiers. fe_models_ is
  /// empty whenever the model is disabled, which is the hot path's cheap
  /// "is it on" test.
  void rebuild_fe_models() {
    fe_models_.clear();
    if (!config_.memory.enabled) return;
    fe_models_.reserve(fes_.size());
    for (const auto& fe : fes_) {
      fe_models_.emplace_back(config_.memory, Family::fe_arenas(fe));
    }
  }

  void rebuild_fe_model(int lc) {
    if (fe_models_.empty()) return;
    fe_models_[static_cast<std::size_t>(lc)] = MemoryModel(
        config_.memory, Family::fe_arenas(fes_[static_cast<std::size_t>(lc)]));
  }

  static constexpr std::uint64_t kSettlePending = ~std::uint64_t{0};

  RouterConfig config_;
  Table full_table_;
  std::unique_ptr<Partition> rot_;
  std::vector<typename Family::Fe> fes_;          // one per LC
  std::vector<MemoryModel> fe_models_;  // one per LC; empty when model off
  std::vector<std::unique_ptr<Cache>> caches_;    // one per LC (optional)
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<typename Family::Oracle> oracle_;  // verify/degraded modes

  // Run state (reset per run()). Ownership under the sharded engine: the
  // Shard struct holds everything one worker thread touches exclusively;
  // the per-LC vectors below are element-owned by the shard of that LC;
  // the per-packet vectors are element-owned by the shard of the packet's
  // arrival LC; everything else is either read-only during the run or
  // explicitly atomic.
  int shard_count_ = 1;
  std::uint64_t lookahead_ = 0;                      // fabric min latency
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool>* abort_ = nullptr;               // set during run_sharded
  // Message flux counters for the flux-consistent jump (gvt_jump): sent
  // counts ring pushes (bumped before the push), drained counts ring pops
  // (bumped after the pop is integrated into staging and local_next).
  // Equal counts + an unchanged re-read of sent = no message in flight.
  alignas(64) std::atomic<std::uint64_t> msgs_sent_{0};
  alignas(64) std::atomic<std::uint64_t> msgs_drained_{0};
  std::vector<std::uint64_t> cache_port_free_;       // per LC
  std::vector<std::vector<std::uint64_t>> fe_free_;  // per LC, per FE server
  std::vector<std::uint64_t> fe_busy_;               // per LC, busy cycles
  std::vector<std::uint64_t> request_seq_;           // per LC, fault-mode seqs
  std::vector<std::uint64_t> send_seq_;              // per LC, staging order
  std::uint64_t timeout_base_ = 0;
  std::vector<std::uint64_t> waiting_depth_;  // per LC, currently parked
  std::vector<std::uint64_t> arrival_time_;          // per packet
  std::vector<int> arrival_lc_;                      // per packet
  std::vector<Addr> destinations_;                   // per packet
  // uint8_t, not vector<bool>: neighbouring packets can belong to different
  // shards, and bit-packing would make their flags share a byte.
  std::vector<std::uint8_t> resolved_;               // per packet
  std::uint64_t next_flush_ = 0;
  std::mt19937_64 update_rng_;
  // Live-update pipeline state. lc_tables_ are the mutable per-LC fragments
  // (materialized only when the pipeline is on); the dirty flags make run()
  // rebuild FEs / oracle that a prior run's updates mutated.
  std::vector<typename Family::Update> updates_;
  std::vector<Table> lc_tables_;
  std::vector<std::uint64_t> update_inject_time_;   // per update
  std::vector<std::uint64_t> update_settle_time_;   // kSettlePending in flight
  std::unique_ptr<std::atomic<std::uint32_t>[]> update_outstanding_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> update_settle_max_;
  bool fes_dirty_ = false;
  bool oracle_dirty_ = false;
  bool verify_ = false;
  RouterResult result_;
};

}  // namespace spal::core
