// Address-family-generic SPAL router simulation.
//
// The full Sec. 3.3 lookup flow (see router_sim.h for the narrative) is
// independent of the address family: it needs a partition (home-LC mapping
// + per-LC tables), a forwarding-engine index per LC, an LR-cache keyed by
// addresses, and the fabric/event machinery. This template captures that
// flow once; RouterSim (IPv4) and RouterSim6 (IPv6) are thin instantiations
// through a Family policy:
//
//   struct Family {
//     using Addr;                     // packet destination type
//     using Table;                    // routing table
//     using Partition;                // ROT-partition (home_of, table_of)
//     using Fe;                       // built LPM index
//     using Oracle;                   // full-table reference index
//     static Partition make_partition(const Table&, int lcs, const RouterConfig&);
//     static Fe build_fe(const Table&, const RouterConfig&);
//     static net::NextHop fe_lookup(const Fe&, const Addr&);
//     static void fe_lookup_batch(const Fe&, const Addr*, std::size_t n,
//                                 net::NextHop*);  // bit-identical to scalar
//     static std::size_t fe_storage(const Fe&);
//     // Memory-tier cost model (core/memory_model.h):
//     static std::vector<trie::ArenaSpan> fe_arenas(const Fe&);
//     static net::NextHop fe_lookup_counted(const Fe&, const Addr&,
//                                           trie::MemAccessCounter&);
//     static Oracle build_oracle(const Table&);
//     static net::NextHop oracle_lookup(const Oracle&, const Addr&);
//     static std::uint64_t hash_bits(const Addr&);       // waiting-list key
//     // Live route-update pipeline:
//     using Update;                   // net::TableUpdate / net::TableUpdate6
//     static std::vector<Update> make_updates(const Table&,
//                                             const net::UpdateStreamConfig&);
//     static bool fe_supports_update(const Fe&);
//     static void fe_insert(Fe&, const PrefixT&, net::NextHop);
//     static void fe_remove(Fe&, const PrefixT&);
//   };
//
// Execution model — sharded conservative-parallel DES.
//
// The LCs are split into contiguous shards; each shard owns the event
// queue, waiting lists, pending-request table, caches, FEs, and fabric
// ports of its LCs, and one worker thread runs each shard's loop. Fabric
// messages are the only cross-shard traffic. A send happens in two fabric
// phases: the *egress* phase runs at the source shard (which owns the
// source port's serialization state and fault RNG) and yields a raw arrival
// time >= now + D where D = Fabric::min_lookahead(); the message is then
// staged, locally or through a bounded SPSC ring to the destination shard,
// and the *ingress commit* phase (destination-port serialization) runs at
// the destination shard when the message is pulled out of staging.
//
// Correctness rests on the frontier/lookahead protocol:
//
//   * Each shard publishes a frontier F_i (release store): a lower bound on
//     the injection time of anything it will ever send again. Handlers run
//     at times >= the published value, and every egress at time t yields
//     raw arrival >= t + D, so a peer that has read F_i can safely process
//     all events strictly below F_i + D.
//   * A shard's safe horizon is S = min over peers of F_j + D. Each
//     iteration it (1) reads peer frontiers (acquire), (2) drains its
//     inbound rings, (3) computes its next local work time, (4) publishes
//     min(next work, S), then processes events strictly below S. The
//     read-frontiers-THEN-drain order is load-bearing: the acquire read
//     synchronizes with the sender's publish, so any message still
//     undrained after step (2) was sent after that publish and carries
//     raw >= F_j_read + D >= S. Nothing below S can still be in flight.
//   * Within a window the shard republishes its next pop time before each
//     dispatch, so sends made *during* a handler at time t are covered
//     (raw >= t + D >= published + D).
//   * Idle shards publish their safe horizon (never "infinity"), which
//     ratchets peer horizons forward by D per round and guarantees global
//     progress; termination uses a central veto barrier (TerminationGate)
//     that re-checks queues and rings after all shards report idle. Shards
//     parked in the barrier keep processing raced-in work below their safe
//     horizon from the poll callback — merely holding it would pin their
//     frontier and deadlock a busy peer whose next event sits at
//     frontier + D (the peer then never idles, never joins the barrier).
//     Poll-side processing before the shard's own recheck additionally
//     vetoes the round via a raced_work flag: a handler can send
//     cross-shard yet leave no local trace, so queue/staging emptiness at
//     recheck time alone would let the gate drop the in-flight message.
//   * The D-per-round ratchet alone is pathological when events are sparse
//     (e.g. live updates spaced thousands of cycles apart on one shard):
//     idle shards bound each other and creep toward the next event in
//     O(gap/D) rounds. A Mattern-style flux-consistent jump fixes this:
//     every shard also publishes its *uncapped* next local event time
//     (local_next), and global counters track messages sent to / drained
//     from the SPSC rings. A stalled shard that observes sent == drained,
//     scans all local_next values, and re-reads sent unchanged has a
//     consistent snapshot with no message in flight; the scan minimum T is
//     then a true bound on the next action anywhere, every future arrival
//     is >= T + D, and the shard may adopt T + D as its safe horizon
//     directly — leaping the stale-frontier chain in one round. (Drains
//     lower local_next *before* bumping the drained counter, so a scan
//     that sees the count also sees the lowered minimum.)
//
// Determinism: messages are committed at the destination in a canonical
// order — a min-heap on (raw arrival, origin LC, per-origin sequence) —
// and committed *before* any queue event at the same or later time. The
// sequential engine (execution = kSequential, or any configuration the
// sharded engine does not support — see planned_shards()) is exactly this
// machinery run solo on a single all-LC shard, so RouterResult::to_json()
// is byte-identical between the two engines for every configuration.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/basic_lr_cache.h"
#include "core/health_tracker.h"
#include "core/router_config.h"
#include "fabric/fabric.h"
#include "net/update_stream.h"
#include "partition/rot_partition.h"
#include "sim/calendar_queue.h"
#include "sim/engine.h"
#include "sim/packet_source.h"
#include "sim/shard_sync.h"
#include "sim/spsc_ring.h"

namespace spal::core {

template <typename Family>
class BasicRouterSim {
 public:
  using Addr = typename Family::Addr;
  using Table = typename Family::Table;
  using Partition = typename Family::Partition;
  using Cache = cache::BasicLrCache<Addr>;

  BasicRouterSim(const Table& table, const RouterConfig& config)
      : config_(config), full_table_(table) {
    if (config.num_lcs < 1) {
      throw std::invalid_argument("RouterSim: num_lcs must be >= 1");
    }
    // Fragment the table (an unpartitioned router keeps the full table in
    // every LC, modelled as a single-partition fragmentation).
    rot_ = std::make_unique<Partition>(Family::make_partition(
        table, config_.partition ? config_.num_lcs : 1, config_));
    fes_.reserve(static_cast<std::size_t>(config_.num_lcs));
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      const Table& fwd = config_.partition ? rot_->table_of(lc) : full_table_;
      fes_.push_back(Family::build_fe(fwd, config_));
    }
    if (config_.use_lr_cache) {
      caches_.reserve(static_cast<std::size_t>(config_.num_lcs));
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        cache::LrCacheConfig cache_config = config_.cache;
        cache_config.seed ^= static_cast<std::uint64_t>(lc) * 0x9e3779b97f4a7c15ULL;
        caches_.push_back(std::make_unique<Cache>(cache_config));
      }
    }
    fabric::FabricConfig fabric_config = config_.fabric;
    fabric_config.ports = config_.num_lcs;
    fabric_ = std::make_unique<fabric::Fabric>(fabric_config, config_.fault);
    rebuild_fe_models();
    rebuild_copies();
  }

  /// Runs one simulation over per-LC destination streams. With `verify`,
  /// every resolved next hop is checked against the full-table oracle.
  RouterResult run(const std::vector<std::vector<Addr>>& streams, bool verify) {
    if (streams.size() != static_cast<std::size_t>(config_.num_lcs)) {
      throw std::invalid_argument("RouterSim::run: one stream per LC required");
    }
    // Reset run state: every run starts from a cold router.
    result_ = RouterResult();
    result_.per_lc_latency.assign(static_cast<std::size_t>(config_.num_lcs),
                                  sim::LatencyStats{});
    result_.per_lc.assign(static_cast<std::size_t>(config_.num_lcs), LcStats{});
    result_.remote_fanout.assign(
        static_cast<std::size_t>(config_.num_lcs) *
            static_cast<std::size_t>(config_.num_lcs),
        0);
    waiting_depth_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    std::size_t total_packets = 0;
    for (const auto& stream : streams) total_packets += stream.size();
    // Generate per-LC arrival times before sizing the queues: the count
    // bounds their peak population and the last arrival bounds the schedule
    // horizon (so the calendar engine picks a bucket width that fits the
    // whole run).
    std::vector<std::vector<std::uint64_t>> arrivals_per_lc;
    arrivals_per_lc.reserve(static_cast<std::size_t>(config_.num_lcs));
    std::uint64_t arrival_horizon = 0;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      arrivals_per_lc.push_back(sim::generate_arrival_times(
          config_.line_rate_gbps, streams[static_cast<std::size_t>(lc)].size(),
          config_.seed ^ (0xabcdef12345ULL + static_cast<std::uint64_t>(lc))));
      if (!arrivals_per_lc.back().empty()) {
        arrival_horizon = std::max(arrival_horizon, arrivals_per_lc.back().back());
      }
    }
    // Live route-update pipeline: resolve how many updates this run injects
    // before sizing the queues (their schedule extends the horizon).
    const bool live_updates = config_.update.interval_cycles != 0;
    std::size_t update_count = 0;
    if (live_updates) {
      update_count = config_.update.count;
      if (update_count == 0) {
        update_count = static_cast<std::size_t>(arrival_horizon /
                                                config_.update.interval_cycles);
      }
    }
    const std::uint64_t update_horizon =
        live_updates ? static_cast<std::uint64_t>(update_count) *
                           config_.update.interval_cycles
                     : 0;
    const std::uint64_t horizon = std::max(arrival_horizon, update_horizon);
    verify_ = verify;
    timeout_base_ = config_.recovery.timeout_cycles;
    if (timeout_base_ == 0) {
      // Auto: a lightly loaded remote round trip (two fabric traversals plus
      // one FE service) with 16x slack for queueing. A too-small timeout is
      // safe — spurious retransmits are absorbed by duplicate suppression —
      // but wastes fabric messages.
      timeout_base_ = 16 * (2 * fabric_->min_lookahead() +
                            static_cast<std::uint64_t>(std::max(
                                1, config_.fe_service_cycles)));
    }
    probe_interval_ = config_.replication.probe_interval_cycles != 0
                          ? config_.replication.probe_interval_cycles
                          : timeout_base_;
    if (config_.migration.enabled) {
      if (!config_.partition || config_.num_lcs < 2) {
        throw std::invalid_argument(
            "RouterSim: migration requires a partitioned router with >= 2 LCs");
      }
      if (config_.migration.from < 0 ||
          config_.migration.from >= config_.num_lcs ||
          config_.migration.to < 0 || config_.migration.to >= config_.num_lcs ||
          config_.migration.from == config_.migration.to) {
        throw std::invalid_argument(
            "RouterSim: migration from/to must be distinct valid LCs");
      }
      if (config_.rebalancer.enabled) {
        // Both subsystems drive the same MigrationState machine; an
        // operator transfer racing an autonomous one is undefined.
        throw std::invalid_argument(
            "RouterSim: migration and rebalancer are mutually exclusive");
      }
    }
    if (config_.rebalancer.enabled) {
      if (!config_.partition || config_.num_lcs < 2) {
        throw std::invalid_argument(
            "RouterSim: rebalancer requires a partitioned router with >= 2 "
            "LCs");
      }
      if (config_.rebalancer.window_cycles == 0) {
        throw std::invalid_argument(
            "RouterSim: rebalancer window_cycles must be nonzero");
      }
    }
    // Failover run state: health views, re-home map, resync queues, and the
    // in-flight migration are all per-run (the built replica copies persist
    // across runs like the FEs and are rebuilt when updates dirtied them).
    health_ = HealthTracker(config_.num_lcs, config_.replication.suspect_after,
                            config_.replication.down_after);
    home_remap_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      home_remap_[static_cast<std::size_t>(lc)] = lc;
    }
    stale_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    resyncing_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    resync_sending_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    missed_updates_.assign(static_cast<std::size_t>(config_.num_lcs), {});
    resync_sent_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    resync_head_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    migration_ = MigrationState{};
    hosted_.clear();
    hosted_.resize(static_cast<std::size_t>(config_.num_lcs));
    window_frag_counts_.clear();
    track_outage_ = config_.track_outage_latency && config_.fault.enabled &&
                    !config_.fault.outages.empty();
    outage_spans_.clear();
    if (track_outage_) {
      // Union of every port's outage windows, merged and sorted: the
      // mid-outage latency histogram keys on the packet's arrival time
      // falling inside any of them.
      for (const auto& outage : config_.fault.outages) {
        if (outage.end_cycle <= outage.start_cycle) continue;
        outage_spans_.emplace_back(outage.start_cycle, outage.end_cycle);
      }
      std::sort(outage_spans_.begin(), outage_spans_.end());
      std::size_t merged = 0;
      for (const auto& span : outage_spans_) {
        if (merged != 0 && span.first <= outage_spans_[merged - 1].second) {
          outage_spans_[merged - 1].second =
              std::max(outage_spans_[merged - 1].second, span.second);
        } else {
          outage_spans_[merged++] = span;
        }
      }
      outage_spans_.resize(merged);
      track_outage_ = !outage_spans_.empty();
    }
    per_lc_outage_latency_.assign(
        track_outage_ ? static_cast<std::size_t>(config_.num_lcs) : 0,
        sim::LatencyStats{});
    result_.fault.per_lc_outage_cycles.assign(
        static_cast<std::size_t>(config_.num_lcs), 0);
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      result_.fault.per_lc_outage_cycles[static_cast<std::size_t>(lc)] =
          config_.fault.outage_cycles(lc);
    }
    for (const auto& c : caches_) c->reset();
    fabric_->reset();
    cache_port_free_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    fe_free_.assign(static_cast<std::size_t>(config_.num_lcs),
                    std::vector<std::uint64_t>(
                        static_cast<std::size_t>(std::max(1, config_.fe_parallelism)), 0));
    fe_busy_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    next_flush_ = config_.flush_interval_cycles;
    update_rng_.seed(config_.seed ^ 0x0badf00dULL);
    request_seq_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    send_seq_.assign(static_cast<std::size_t>(config_.num_lcs), 0);
    // A prior run's live updates mutated the FEs / fragments / oracle:
    // rebuild them so every run starts from the configured table.
    if (fes_dirty_) {
      fes_.clear();
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        const Table& fwd = config_.partition ? rot_->table_of(lc) : full_table_;
        fes_.push_back(Family::build_fe(fwd, config_));
      }
      lc_tables_.clear();
      fes_dirty_ = false;
      rebuild_fe_models();
    }
    if (copies_dirty_) {
      // A prior run's updates mutated the replica copies too; re-derive
      // them from the (freshly rebuilt) fragments.
      rebuild_copies();
      copies_dirty_ = false;
    }
    if (oracle_dirty_) {
      oracle_.reset();
      oracle_dirty_ = false;
    }
    if ((verify_ || faults_active()) && oracle_ == nullptr) {
      // Verify mode reads it per packet; fault mode's degraded slow path
      // may need it at any shard. Building it eagerly here (instead of
      // lazily on the first degraded fallback) keeps the handlers free of
      // shared-state construction.
      oracle_ = std::make_unique<typename Family::Oracle>(
          Family::build_oracle(full_table_));
    }
    updates_.clear();
    update_inject_time_.clear();
    update_settle_time_.clear();
    update_outstanding_.reset();
    update_settle_max_.reset();
    if (live_updates && update_count > 0) {
      net::UpdateStreamConfig stream_config;
      stream_config.count = update_count;
      stream_config.seed = config_.update.seed;
      stream_config.announce_fraction = config_.update.announce_fraction;
      stream_config.withdraw_fraction = config_.update.withdraw_fraction;
      stream_config.next_hops = config_.update.next_hops;
      updates_ = Family::make_updates(full_table_, stream_config);
      update_inject_time_.resize(updates_.size());
      update_settle_time_.assign(updates_.size(), kSettlePending);
      // make_unique<T[]> value-initializes: counters start at zero.
      update_outstanding_ =
          std::make_unique<std::atomic<std::uint32_t>[]>(updates_.size());
      update_settle_max_ =
          std::make_unique<std::atomic<std::uint64_t>[]>(updates_.size());
      if (lc_tables_.empty()) {
        lc_tables_.reserve(static_cast<std::size_t>(config_.num_lcs));
        for (int lc = 0; lc < config_.num_lcs; ++lc) {
          lc_tables_.push_back(config_.partition ? rot_->table_of(lc)
                                                 : full_table_);
        }
      }
    }
    // The run ahead will mutate FEs/fragments (every injected update is
    // applied) and the oracle if present; flag them for the next run now so
    // the handlers never touch the flags from worker threads.
    fes_dirty_ = !updates_.empty();
    copies_dirty_ = !updates_.empty() && replication_active();
    oracle_dirty_ = !updates_.empty() && oracle_ != nullptr;

    // Assign global packet ids.
    arrival_time_.assign(total_packets, 0);
    arrival_lc_.assign(total_packets, 0);
    resolved_.assign(total_packets, 0);
    destinations_.clear();
    destinations_.reserve(total_packets);

    // Build the shards and scatter the initial schedule. Event insertion
    // order per shard matches the sequential engine's insertion order
    // restricted to that shard (updates first, then arrivals LC-major), so
    // equal-time tie-breaks agree between the engines.
    shard_count_ = planned_shards(verify);
    lookahead_ = fabric_->min_lookahead();
    msgs_sent_.store(0, std::memory_order_relaxed);
    msgs_drained_.store(0, std::memory_order_relaxed);
    shards_.clear();
    shards_.reserve(static_cast<std::size_t>(shard_count_));
    for (int s = 0; s < shard_count_; ++s) {
      shards_.push_back(std::make_unique<Shard>());
      Shard& sh = *shards_.back();
      sh.index = s;
      if (shard_count_ > 1) {
        sh.inbound.resize(static_cast<std::size_t>(shard_count_));
        for (int src = 0; src < shard_count_; ++src) {
          if (src == s) continue;
          sh.inbound[static_cast<std::size_t>(src)] =
              std::make_unique<sim::SpscRing<StagedMsg>>(kRingCapacity);
        }
      }
    }
    {
      std::vector<std::size_t> expected(static_cast<std::size_t>(shard_count_),
                                        0);
      for (int lc = 0; lc < config_.num_lcs; ++lc) {
        expected[static_cast<std::size_t>(shard_of_lc(lc))] +=
            streams[static_cast<std::size_t>(lc)].size();
      }
      expected[static_cast<std::size_t>(shard_of_lc(0))] += update_count;
      for (int s = 0; s < shard_count_; ++s) {
        shards_[static_cast<std::size_t>(s)]->queue.reset(
            config_.engine, expected[static_cast<std::size_t>(s)], horizon);
      }
    }
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      const std::uint64_t at =
          (static_cast<std::uint64_t>(i) + 1) * config_.update.interval_cycles;
      update_inject_time_[i] = at;
      shard_for_lc(0).queue.schedule(
          at, Event{Event::Type::kUpdateInject, 0, Addr{},
                    Requester{0, static_cast<std::int64_t>(i), false}, false,
                    net::kNoRoute});
    }
    if (config_.migration.enabled) {
      // Local management-plane event at `from` (forces the solo engine, so
      // shard_for_lc is the only shard): snapshot and start streaming.
      shard_for_lc(config_.migration.from)
          .queue.schedule(config_.migration.start_cycle,
                          Event{Event::Type::kMigrateStart,
                                config_.migration.from, Addr{},
                                Requester{config_.migration.from, -1, false},
                                false, net::kNoRoute});
    }
    std::int64_t packet_id = 0;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      const auto& stream = streams[static_cast<std::size_t>(lc)];
      const auto& arrivals = arrivals_per_lc[static_cast<std::size_t>(lc)];
      Shard& sh = shard_for_lc(lc);
      for (std::size_t i = 0; i < stream.size(); ++i) {
        arrival_time_[static_cast<std::size_t>(packet_id)] = arrivals[i];
        arrival_lc_[static_cast<std::size_t>(packet_id)] = lc;
        destinations_.push_back(stream[i]);
        sh.queue.schedule(arrivals[i],
                          Event{Event::Type::kLookup, lc, stream[i],
                                Requester{lc, packet_id, false}, false,
                                net::kNoRoute});
        ++packet_id;
      }
    }
    if (config_.rebalancer.enabled) {
      // Per-window offered load per fragment, precomputed from the arrival
      // schedule (the home mapping is static; which LC *serves* a fragment
      // is applied at tick time). Counting here instead of in handle_lookup
      // keeps the hot path untouched and immune to the cache-port gate's
      // event reschedules double-counting an arrival.
      const std::uint64_t win = config_.rebalancer.window_cycles;
      const std::size_t windows =
          static_cast<std::size_t>(arrival_horizon / win) + 1;
      window_frag_counts_.assign(
          windows, std::vector<std::uint64_t>(
                       static_cast<std::size_t>(config_.num_lcs), 0));
      for (std::size_t p = 0; p < destinations_.size(); ++p) {
        const std::size_t w = static_cast<std::size_t>(arrival_time_[p] / win);
        const int frag = rot_->home_of(destinations_[p]);
        ++window_frag_counts_[w][static_cast<std::size_t>(frag)];
      }
      // Finite tick schedule (one per window, management plane at LC 0):
      // a self-rescheduling tick would never let the event queue drain.
      for (std::size_t w = 0; w < windows; ++w) {
        shard_for_lc(0).queue.schedule(
            (static_cast<std::uint64_t>(w) + 1) * win,
            Event{Event::Type::kRebalanceTick, 0, Addr{},
                  Requester{0, -1, false}, false, net::kNoRoute});
      }
    }

    if (shard_count_ == 1) {
      run_solo(*shards_.front());
    } else {
      run_sharded();
    }

    // Aggregate per-shard and per-LC statistics. The shard loop runs in
    // index order and the latency merge in LC order in both engines, so the
    // aggregation itself cannot introduce a divergence.
    for (const auto& shp : shards_) {
      const ShardCounters& c = shp->c;
      result_.makespan_cycles = std::max(result_.makespan_cycles, c.makespan);
      result_.fe_lookups += c.fe_lookups;
      result_.remote_requests += c.remote_requests;
      result_.remote_replies += c.remote_replies;
      result_.resolved_packets += c.resolved_packets;
      result_.verify_mismatches += c.verify_mismatches;
      result_.updates_applied += c.updates_applied;
      result_.blocks_invalidated += c.blocks_invalidated;
      result_.fault.timeouts += c.timeouts;
      result_.fault.retransmits += c.retransmits;
      result_.fault.duplicate_replies += c.duplicate_replies;
      result_.fault.degraded_fallbacks += c.degraded_fallbacks;
      result_.fault.degraded_lookups += c.degraded_lookups;
      result_.fault.reclaimed_waiting_blocks += c.reclaimed_waiting_blocks;
      result_.update.applied += c.update.applied;
      result_.update.announces += c.update.announces;
      result_.update.withdraws += c.update.withdraws;
      result_.update.hop_changes += c.update.hop_changes;
      result_.update.applications += c.update.applications;
      result_.update.fe_incremental += c.update.fe_incremental;
      result_.update.fe_rebuilds += c.update.fe_rebuilds;
      result_.update.update_cost_cycles += c.update.update_cost_cycles;
      result_.update.update_messages += c.update.update_messages;
      result_.update.invalidation_messages += c.update.invalidation_messages;
      result_.update.blocks_invalidated += c.update.blocks_invalidated;
      result_.update.cache_flushes += c.update.cache_flushes;
      FailoverStats& fo = result_.failover;
      fo.rerouted_requests += c.fo.rerouted_requests;
      fo.replica_lookups += c.fo.replica_lookups;
      fo.local_replica_serves += c.fo.local_replica_serves;
      fo.probes_sent += c.fo.probes_sent;
      fo.probe_replies_sent += c.fo.probe_replies_sent;
      fo.probe_replies += c.fo.probe_replies;
      fo.suspect_transitions += c.fo.suspect_transitions;
      fo.down_transitions += c.fo.down_transitions;
      fo.recoveries += c.fo.recoveries;
      fo.rejoins += c.fo.rejoins;
      fo.missed_updates += c.fo.missed_updates;
      fo.replica_update_applications += c.fo.replica_update_applications;
      fo.acting_primary_applications += c.fo.acting_primary_applications;
      fo.resync_fetches += c.fo.resync_fetches;
      fo.resync_chunks += c.fo.resync_chunks;
      fo.resync_entries += c.fo.resync_entries;
      fo.resync_cutovers += c.fo.resync_cutovers;
      fo.migrations += c.fo.migrations;
      fo.migration_chunks += c.fo.migration_chunks;
      fo.snapshot_prefixes += c.fo.snapshot_prefixes;
      fo.double_delivered_updates += c.fo.double_delivered_updates;
      fo.cutover_messages += c.fo.cutover_messages;
      fo.migration_invalidated_blocks += c.fo.migration_invalidated_blocks;
      fo.cutovers += c.fo.cutovers;
      fo.control_messages += c.fo.control_messages;
      RebalancerStats& rb = result_.rebalancer;
      rb.windows += c.rb.windows;
      rb.skew_detections += c.rb.skew_detections;
      rb.migrations_triggered += c.rb.migrations_triggered;
      rb.skipped_in_flight += c.rb.skipped_in_flight;
      rb.skipped_no_target += c.rb.skipped_no_target;
      rb.skipped_budget += c.rb.skipped_budget;
      rb.completed_migrations += c.rb.completed_migrations;
      rb.aborted_migrations += c.rb.aborted_migrations;
    }
    result_.failover.enabled = failover_enabled();
    result_.rebalancer.enabled = config_.rebalancer.enabled;
    if (config_.memory.enabled) {
      MemoryStats& mem = result_.memory;
      mem.enabled = true;
      mem.matching_overhead_cycles = config_.memory.matching_overhead_cycles;
      mem.tiers.clear();
      mem.tiers.reserve(config_.memory.tiers.size());
      for (const MemoryTier& tier : config_.memory.tiers) {
        MemoryTierStats stats;
        stats.name = tier.name;
        stats.capacity_bytes = tier.capacity_bytes;
        stats.access_cycles = tier.access_cycles;
        mem.tiers.push_back(std::move(stats));
      }
      for (const auto& shp : shards_) {
        const MemoryCounters& c = shp->c.memory;
        mem.lookups += c.lookups;
        mem.charged_cycles += c.charged_cycles;
        for (std::size_t t = 0; t < mem.tiers.size(); ++t) {
          mem.tiers[t].accesses += c.tier_accesses[t];
          mem.tiers[t].cycles += c.tier_cycles[t];
        }
      }
      mem.matching_cycles =
          mem.lookups *
          static_cast<std::uint64_t>(mem.matching_overhead_cycles);
      // Byte accounting reflects the end-of-run structures (identical to
      // the built ones unless live updates mutated an FE mid-run).
      for (const MemoryModel& model : fe_models_) {
        mem.storage_bytes += model.placed_bytes();
        for (const ArenaPlacement& placement : model.placements()) {
          mem.tiers[placement.tier].placed_bytes += placement.bytes;
          ++mem.tiers[placement.tier].placed_arenas;
        }
      }
      // Replica copies (and a cut-over migrated structure) occupy their
      // host LC's hierarchy too, packed after the bytes already resident.
      for (const auto& lc_models : copy_models_) {
        for (const MemoryModel& model : lc_models) {
          mem.storage_bytes += model.placed_bytes();
          for (const ArenaPlacement& placement : model.placements()) {
            mem.tiers[placement.tier].placed_bytes += placement.bytes;
            ++mem.tiers[placement.tier].placed_arenas;
          }
        }
      }
      // Cut-over rebalancer fragments live in their host LC's hierarchy
      // exactly like an operator-migrated structure does.
      for (const auto& lc_hosted : hosted_) {
        for (const HostedFragment& hosted : lc_hosted) {
          if (hosted.model == nullptr) continue;
          const MemoryModel& model = *hosted.model;
          mem.storage_bytes += model.placed_bytes();
          for (const ArenaPlacement& placement : model.placements()) {
            mem.tiers[placement.tier].placed_bytes += placement.bytes;
            ++mem.tiers[placement.tier].placed_arenas;
          }
        }
      }
      if (migration_.staged_model != nullptr) {
        const MemoryModel& model = *migration_.staged_model;
        mem.storage_bytes += model.placed_bytes();
        for (const ArenaPlacement& placement : model.placements()) {
          mem.tiers[placement.tier].placed_bytes += placement.bytes;
          ++mem.tiers[placement.tier].placed_arenas;
        }
      }
    }
    // Per-LC latency merges are exact (identical bucket layout), so merging
    // in LC order reproduces the global histogram a direct record() per
    // packet would have produced — and does so engine-independently.
    for (const sim::LatencyStats& lc_latency : result_.per_lc_latency) {
      result_.latency.merge(lc_latency);
    }
    if (track_outage_) {
      result_.outage_latency_tracked = true;
      for (const sim::LatencyStats& lc_latency : per_lc_outage_latency_) {
        result_.outage_latency.merge(lc_latency);
      }
    }
    for (std::size_t lc = 0; lc < caches_.size(); ++lc) {
      result_.per_lc[lc].cache = caches_[lc]->stats();
      result_.cache_total.accumulate(caches_[lc]->stats());
    }
    result_.fabric = fabric_->stats();
    result_.fault.drops = result_.fabric.dropped;
    result_.fault.outage_drops = result_.fabric.outage_dropped;
    result_.fault.jitter_events = result_.fabric.jitter_events;
    result_.fault.jitter_cycles = result_.fabric.jitter_cycles;
    if (result_.makespan_cycles > 0) {
      const double capacity =
          static_cast<double>(result_.makespan_cycles) *
          static_cast<double>(std::max(1, config_.fe_parallelism));
      for (std::size_t lc = 0; lc < fe_busy_.size(); ++lc) {
        const double utilization =
            static_cast<double>(fe_busy_[lc]) / capacity;
        result_.per_lc[lc].fe_busy_cycles = fe_busy_[lc];
        result_.per_lc[lc].fe_utilization = utilization;
        result_.max_fe_utilization =
            std::max(result_.max_fe_utilization, utilization);
      }
    }
    return result_;
  }

  const RouterConfig& config() const { return config_; }
  const Partition& partition() const { return *rot_; }
  /// The full (unfragmented) routing table the router was built from.
  const Table& table() const { return full_table_; }

  /// How many shards (worker threads) a run(streams, verify) would use.
  /// kSequential always runs one shard. kSharded silently falls back to one
  /// shard for configurations the parallel engine does not support:
  /// periodic cache flushes (flush_interval_cycles touches every LC's cache
  /// from one event), live fragment migration (router-global re-home map),
  /// live updates combined with verify or fault injection (both read the
  /// oracle concurrently with inject-time mutation), and a fabric with zero
  /// minimum latency (no lookahead, no parallelism).
  int planned_shards(bool verify = false) const {
    if (config_.execution != RouterConfig::ExecutionMode::kSharded) return 1;
    if (config_.flush_interval_cycles != 0) return 1;
    // Live migration mutates router-global state (the re-home map and the
    // staged structure) from management-plane events: solo only. The
    // rebalancer drives the same machinery autonomously.
    if (config_.migration.enabled || config_.rebalancer.enabled) return 1;
    const bool live_updates = config_.update.interval_cycles != 0;
    if (live_updates && (verify || config_.fault.enabled)) return 1;
    if (fabric_->min_lookahead() < 1) return 1;
    int threads = config_.threads;
    if (threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::max(1, std::min(threads, config_.num_lcs));
  }

  /// Per-LC forwarding-index storage in bytes.
  std::vector<std::size_t> fe_storage_bytes() const {
    std::vector<std::size_t> sizes;
    sizes.reserve(fes_.size());
    for (const auto& fe : fes_) sizes.push_back(Family::fe_storage(fe));
    return sizes;
  }

  /// Host-side (wall-clock) lookups through one LC's built forwarding
  /// engine: the interleaved batch pipeline in chunks of `batch` keys when
  /// batch > 1, the scalar path otherwise. Results are bit-identical either
  /// way; this does not touch simulation state — the throughput benches use
  /// it to measure real ns/lookup on the per-LC structures.
  void fe_host_lookup(int lc, const Addr* keys, std::size_t n,
                      net::NextHop* out, std::size_t batch) const {
    const auto& fe = fes_[static_cast<std::size_t>(lc)];
    if (batch <= 1) {
      for (std::size_t i = 0; i < n; ++i) out[i] = Family::fe_lookup(fe, keys[i]);
      return;
    }
    for (std::size_t i = 0; i < n; i += batch) {
      Family::fe_lookup_batch(fe, keys + i, std::min(batch, n - i), out + i);
    }
  }

 private:
  static constexpr std::uint64_t kNoTime = ~std::uint64_t{0};
  static constexpr std::size_t kRingCapacity = 1024;

  struct Requester {
    int lc;               ///< LC the requesting packet arrived at
    std::int64_t packet;  ///< global packet id
    /// Set on a remote request when the arrival LC reserved a W=1 block;
    /// the home LC echoes it so the reply knows whether to fill.
    bool fill_on_reply = false;
    /// Request sequence number (fault mode only, 0 otherwise): the home LC
    /// echoes it in every reply so the requester can match replies to its
    /// pending-request table and suppress duplicates from retransmits.
    std::uint64_t seq = 0;
  };

  struct Event {
    enum class Type : std::uint8_t {
      kLookup,
      kFeComplete,
      kReply,
      kTimeout,   ///< remote-request timer (fault mode); requester.seq keys it
      kDegraded,  ///< slow-path completion for one packet (fault mode)
      // Live route-update pipeline (requester.packet carries the update
      // index into updates_; addr is unused):
      kUpdateInject,  ///< control plane emits update i to its home LCs
      kUpdateApply,   ///< update i reaches home LC `lc`: apply to its FE
      kInvalidate,    ///< invalidation for update i reaches LC `lc`'s cache
      // Failover subsystem (replication/migration; never scheduled when
      // both are off):
      kCopyLookup,    ///< re-routed request served from a replica copy;
                      ///< aux carries the fragment id
      kProbe,         ///< health probe at `lc`; requester.lc = the observer
      kProbeReply,    ///< probe response back at the observer
      kResyncFetch,   ///< rejoining LC asks the acting replica for its
                      ///< missed updates; aux = the stale LC
      kResyncSend,    ///< local pacing tick at the streaming replica
      kResyncChunk,   ///< batch of missed updates at the rejoining LC;
                      ///< aux = entry count
      kMigrateStart,  ///< local event at `from`: snapshot + begin streaming
      kMigrateSend,   ///< local pacing tick at `from`
      kMigrateChunk,  ///< snapshot chunk at `to`; fill flags the final chunk
      kMigrateDelta,  ///< double-delivered in-copy update at `to`
      kMigrateBuilt,  ///< local event at `to`: staged FE build finished
      kMigrateReady,  ///< `to` is ready; at `from`, triggers the cutover
      kCutover,       ///< cutover notice at `lc`: drop re-homed cache blocks
      kRebalanceTick, ///< rebalancer window boundary (management, LC 0)
    };
    Type type;
    int lc;
    Addr addr;
    Requester requester;
    bool fill = false;
    net::NextHop hop = net::kNoRoute;
    /// Failover side-channel: which structure/fragment the event concerns.
    /// -1 = the LC's own fragment (the only value pre-failover events use);
    /// >= 0 = a fragment id (kCopyLookup, kUpdateApply at a replica holder,
    /// kResyncFetch target) or a batch size (kResyncChunk); kMigratedAux =
    /// the migrated structure a post-cutover host serves.
    std::int32_t aux = -1;
  };

  /// One outstanding remote request (fault mode), keyed by its seq. Retries
  /// reuse the seq: any attempt's reply settles the request, and later
  /// replies for the same seq are counted as duplicates and dropped.
  struct PendingRequest {
    Addr addr;
    Requester requester;  ///< carries the seq and fill_on_reply flag
    int home;             ///< the address's fragment id (pre-remap)
    int target;           ///< LC the current attempt was sent to
    int attempt = 0;      ///< retransmits so far
  };

  /// One failover replica copy resident at a holder LC: a mutable clone of
  /// the fragment (updates keep it fresh) plus its own built FE.
  struct ReplicaCopy {
    int fragment;
    Table table;
    typename Family::Fe fe;
  };

  using TableEntry =
      std::decay_t<decltype(std::declval<const Table&>().entries()[0])>;

  /// State of the (single) in-flight live fragment migration — operator-
  /// initiated (config_.migration, fixed endpoints, state persists after the
  /// cutover) or rebalancer-triggered (endpoints chosen per trigger; the
  /// staged structure moves into hosted_ at cutover and the state resets for
  /// the next trigger). Solo-engine only, so plain members suffice.
  struct MigrationState {
    bool active = false;      ///< a transfer has been started
    int frag = -1;            ///< fragment being moved
    int src = -1;             ///< LC currently serving it
    int dst = -1;             ///< LC it is moving to
    bool aborted = false;     ///< target died mid-copy; discarding in flight
    bool copying = false;     ///< snapshot streaming + double-delivery window
    bool fe_ready = false;    ///< staged table + FE built at the target
    bool cut_over = false;
    bool final_sent = false;  ///< last snapshot chunk left the source
    std::vector<TableEntry> snapshot;    ///< at the source, taken at start
    std::size_t cursor = 0;              ///< next snapshot entry to chunk
    /// In-flight chunk payloads; FIFO with the kMigrateChunk events (one
    /// source port, reliable, non-decreasing inject times).
    std::deque<std::vector<TableEntry>> chunk_queue;
    std::vector<TableEntry> staged_entries;   ///< received at the target
    std::vector<std::size_t> buffered_deltas; ///< double-deliveries pre-build
    std::unique_ptr<Table> staged_table;
    std::unique_ptr<typename Family::Fe> staged_fe;
    std::unique_ptr<MemoryModel> staged_model;
  };

  /// A fragment a rebalancer migration re-homed onto this LC: the staged
  /// structures move here at cutover so the MigrationState can be reused
  /// for the next trigger. Entries are append-only for the run — a
  /// fragment that moves on leaves its frozen structure resident (like the
  /// operator migration's source FE), and hosted_slot returns the latest
  /// entry for a fragment.
  struct HostedFragment {
    int fragment = -1;
    std::unique_ptr<Table> table;
    std::unique_ptr<typename Family::Fe> fe;
    std::unique_ptr<MemoryModel> model;
  };

  /// A fabric message after its egress phase, parked until the destination
  /// shard commits it. Committed in (raw, origin_lc, origin_seq) order —
  /// origin_seq is a per-source-LC send counter, so the key is unique and
  /// identical in both engines.
  struct StagedMsg {
    std::uint64_t raw = 0;
    std::uint32_t origin_lc = 0;
    std::uint64_t origin_seq = 0;
    Event event{};
  };
  struct StagedAfter {
    bool operator()(const StagedMsg& a, const StagedMsg& b) const {
      if (a.raw != b.raw) return a.raw > b.raw;
      if (a.origin_lc != b.origin_lc) return a.origin_lc > b.origin_lc;
      return a.origin_seq > b.origin_seq;
    }
  };

  // Waiting lists are keyed by the exact (LC, address) pair — the hash
  // comes from Family::hash_bits but equality compares full addresses, so
  // 128-bit families cannot alias two lists.
  struct WaitKey {
    int lc;
    Addr addr;
    bool operator==(const WaitKey&) const = default;
  };
  struct WaitKeyHash {
    std::size_t operator()(const WaitKey& k) const {
      return static_cast<std::size_t>(
          Family::hash_bits(k.addr) ^
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.lc)) *
           0x9e3779b97f4a7c15ULL));
    }
  };
  WaitKey wait_key(int lc, const Addr& addr) const { return WaitKey{lc, addr}; }

  using WaitMap = std::unordered_map<WaitKey, std::vector<Requester>, WaitKeyHash>;

  /// Counters a handler may bump from any LC of its shard; summed (max for
  /// makespan) into RouterResult after the run in shard-index order.
  struct ShardCounters {
    std::uint64_t makespan = 0;
    std::uint64_t fe_lookups = 0;
    std::uint64_t remote_requests = 0;
    std::uint64_t remote_replies = 0;
    std::uint64_t resolved_packets = 0;
    std::uint64_t verify_mismatches = 0;
    std::uint64_t updates_applied = 0;
    std::uint64_t blocks_invalidated = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t duplicate_replies = 0;
    std::uint64_t degraded_fallbacks = 0;
    std::uint64_t degraded_lookups = 0;
    std::uint64_t reclaimed_waiting_blocks = 0;
    UpdateStats update;
    MemoryCounters memory;  ///< memory-tier pricing (all zero when off)
    FailoverStats fo;       ///< failover ledger (all zero when off)
    RebalancerStats rb;     ///< rebalancer ledger (all zero when off)
  };

  /// One shard: a contiguous LC range, its event queue, the per-LC maps
  /// that only its thread touches, and the cross-thread machinery (inbound
  /// rings, published frontier, idle flag).
  struct Shard {
    int index = 0;
    sim::AnyEventQueue<Event> queue;
    std::vector<StagedMsg> staging;  // min-heap via StagedAfter
    WaitMap waiting;
    std::vector<typename WaitMap::node_type> wait_pool;
    std::vector<Requester> wait_scratch;
    std::unordered_map<std::uint64_t, PendingRequest> pending;
    ShardCounters c;
    /// inbound[s] carries messages from shard s (null for s == index and in
    /// solo mode). Producer: shard s's thread; consumer: this shard.
    std::vector<std::unique_ptr<sim::SpscRing<StagedMsg>>> inbound;
    /// Lower bound (release-published) on this shard's future injections.
    alignas(64) std::atomic<std::uint64_t> frontier{0};
    /// Uncapped min(qnext, snext) — the shard's next local event time,
    /// kNoTime when it has none. Read by peers' flux-consistent jumps.
    std::atomic<std::uint64_t> local_next{0};
    std::atomic<bool> idle{false};
    std::uint64_t published = 0;  ///< owner's copy of frontier
  };

  int shard_of_lc(int lc) const {
    return static_cast<int>(static_cast<std::int64_t>(lc) * shard_count_ /
                            config_.num_lcs);
  }
  Shard& shard_for_lc(int lc) {
    return *shards_[static_cast<std::size_t>(shard_of_lc(lc))];
  }

  // ----- Shard engine ------------------------------------------------------

  void check_abort() const {
    if (abort_ != nullptr && abort_->load(std::memory_order_relaxed)) {
      throw sim::ShardAbort{};
    }
  }

  void publish_frontier(Shard& sh, std::uint64_t value) {
    if (value > sh.published) {
      sh.published = value;
      sh.frontier.store(value, std::memory_order_release);
    }
  }

  /// min over peers of (frontier + lookahead), saturating; kNoTime with no
  /// peers. Callers must read this BEFORE draining rings (see file comment).
  std::uint64_t safe_horizon(const Shard& sh) const {
    std::uint64_t horizon = kNoTime;
    for (const auto& other : shards_) {
      if (other->index == sh.index) continue;
      horizon = std::min(horizon,
                         other->frontier.load(std::memory_order_acquire));
    }
    if (horizon == kNoTime) return kNoTime;
    const std::uint64_t safe = horizon + lookahead_;
    return safe < horizon ? kNoTime : safe;
  }

  static void push_staged(Shard& sh, const StagedMsg& msg) {
    sh.staging.push_back(msg);
    std::push_heap(sh.staging.begin(), sh.staging.end(), StagedAfter{});
  }

  void drain_rings(Shard& sh) {
    StagedMsg msg;
    std::uint64_t drained = 0;
    for (auto& ring : sh.inbound) {
      if (!ring) continue;
      while (ring->try_pop(msg)) {
        push_staged(sh, msg);
        ++drained;
      }
    }
    if (drained != 0) {
      // A drain can LOWER this shard's next event time. Publish the new
      // minimum before acknowledging the drains: a flux-consistent scan
      // that observes the drained count (acquire) then also observes the
      // lowered local_next, so it can never jump past these messages.
      const std::uint64_t qnext =
          sh.queue.empty() ? kNoTime : sh.queue.next_time();
      sh.local_next.store(std::min(qnext, sh.staging.front().raw),
                          std::memory_order_release);
      msgs_drained_.fetch_add(drained, std::memory_order_release);
    }
  }

  /// Flux-consistent global-minimum jump (see the file comment). Returns a
  /// safe horizon T + D when a consistent no-messages-in-flight snapshot
  /// exists, 0 when it doesn't (messages in flight — fall back to the
  /// frontier ratchet) or when the snapshot is globally empty (termination
  /// is the gate's call, not ours).
  std::uint64_t gvt_jump(const Shard& sh, std::uint64_t own_cand) const {
    const std::uint64_t sent = msgs_sent_.load(std::memory_order_acquire);
    if (msgs_drained_.load(std::memory_order_acquire) != sent) return 0;
    std::uint64_t t = own_cand;
    for (const auto& other : shards_) {
      if (other->index == sh.index) continue;
      t = std::min(t, other->local_next.load(std::memory_order_acquire));
    }
    if (msgs_sent_.load(std::memory_order_acquire) != sent) return 0;
    if (t == kNoTime) return 0;
    const std::uint64_t safe = t + lookahead_;
    return safe < t ? kNoTime : safe;
  }

  /// Egress already ran at the source; park the message at the destination
  /// shard. A full ring never deadlocks: while spinning the producer keeps
  /// draining its own inbound rings, so two shards pushing to each other
  /// both make progress.
  void stage_message(Shard& sh, int src, std::uint64_t raw, const Event& event) {
    const StagedMsg msg{raw, static_cast<std::uint32_t>(src),
                        send_seq_[static_cast<std::size_t>(src)]++, event};
    Shard& dst = shard_for_lc(event.lc);
    if (&dst == &sh) {
      push_staged(sh, msg);
      return;
    }
    // Count the message in flight BEFORE it becomes poppable, so a
    // flux-consistent scan can never observe the push without the count.
    msgs_sent_.fetch_add(1, std::memory_order_acq_rel);
    sim::SpscRing<StagedMsg>& ring =
        *dst.inbound[static_cast<std::size_t>(sh.index)];
    sim::SpinWaiter spin;
    while (!ring.try_push(msg)) {
      check_abort();
      drain_rings(sh);
      spin.wait();
    }
  }

  void send_reliable(Shard& sh, int src, std::uint64_t inject,
                     const Event& event) {
    stage_message(sh, src, fabric_->egress(src, inject).raw_arrival, event);
  }

  bool send_lossy(Shard& sh, int src, int dst, std::uint64_t inject,
                  const Event& event) {
    const fabric::Egress out = fabric_->egress_lossy(src, dst, inject);
    if (!out.delivered) return false;
    stage_message(sh, src, out.raw_arrival, event);
    return true;
  }

  /// Runs the destination-port ingress phase for the canonically-first
  /// staged message and schedules its event.
  void commit_front(Shard& sh) {
    std::pop_heap(sh.staging.begin(), sh.staging.end(), StagedAfter{});
    const StagedMsg msg = sh.staging.back();
    sh.staging.pop_back();
    sh.queue.schedule(fabric_->ingress_commit(msg.event.lc, msg.raw),
                      msg.event);
  }

  /// Commits staged messages and dispatches events, all strictly below
  /// `limit`, committing before popping on equal times (the canonical
  /// order). With publish, the next pop time is released before each
  /// dispatch so sends made during the handler are covered by the
  /// published frontier. Returns true when anything was committed or
  /// dispatched — the termination gate's poll uses this to veto a round
  /// in which it processed raced-in work (see try_terminate).
  bool process_window(Shard& sh, std::uint64_t limit, bool publish) {
    bool did_work = false;
    for (;;) {
      const std::uint64_t qnext =
          sh.queue.empty() ? kNoTime : sh.queue.next_time();
      if (!sh.staging.empty()) {
        const std::uint64_t snext = sh.staging.front().raw;
        if (snext < limit && snext <= qnext) {
          commit_front(sh);
          did_work = true;
          continue;
        }
      }
      if (qnext >= limit) return did_work;
      if (publish) publish_frontier(sh, qnext);
      dispatch_one(sh);
      did_work = true;
    }
  }

  void dispatch_one(Shard& sh) {
    auto [now, event] = sh.queue.pop();
    // A timer whose request already settled (reply accepted or degraded)
    // is stale: skip it before it can stretch the measured makespan.
    if (event.type == Event::Type::kTimeout &&
        sh.pending.find(event.requester.seq) == sh.pending.end()) {
      return;
    }
    // Periodic flush/invalidate touches every LC's cache, so it forces the
    // solo engine (see planned_shards) and may keep using result_ directly.
    if (config_.flush_interval_cycles != 0) maybe_update_table(now);
    sh.c.makespan = std::max(sh.c.makespan, now);
    switch (event.type) {
      case Event::Type::kLookup: handle_lookup(sh, now, event); break;
      case Event::Type::kFeComplete: handle_fe_complete(sh, now, event); break;
      case Event::Type::kReply: handle_reply(sh, now, event); break;
      case Event::Type::kTimeout: handle_timeout(sh, now, event); break;
      case Event::Type::kDegraded: handle_degraded(sh, now, event); break;
      case Event::Type::kUpdateInject: handle_update_inject(sh, now, event); break;
      case Event::Type::kUpdateApply: handle_update_apply(sh, now, event); break;
      case Event::Type::kInvalidate: handle_invalidate(sh, now, event); break;
      case Event::Type::kCopyLookup: handle_copy_lookup(sh, now, event); break;
      case Event::Type::kProbe: handle_probe(sh, now, event); break;
      case Event::Type::kProbeReply: handle_probe_reply(sh, now, event); break;
      case Event::Type::kResyncFetch: handle_resync_fetch(sh, now, event); break;
      case Event::Type::kResyncSend: handle_resync_send(sh, now, event); break;
      case Event::Type::kResyncChunk: handle_resync_chunk(sh, now, event); break;
      case Event::Type::kMigrateStart: handle_migrate_start(sh, now, event); break;
      case Event::Type::kMigrateSend: handle_migrate_send(sh, now, event); break;
      case Event::Type::kMigrateChunk: handle_migrate_chunk(sh, now, event); break;
      case Event::Type::kMigrateDelta: handle_migrate_delta(sh, now, event); break;
      case Event::Type::kMigrateBuilt: handle_migrate_built(sh, now, event); break;
      case Event::Type::kMigrateReady: handle_migrate_ready(sh, now, event); break;
      case Event::Type::kCutover: handle_cutover(sh, now, event); break;
      case Event::Type::kRebalanceTick:
        handle_rebalance_tick(sh, now, event);
        break;
    }
  }

  /// Sequential engine: the same staged/canonical machinery on one all-LC
  /// shard. With limit = kNoTime every staged message commits and every
  /// event dispatches, and the loop ends only when both are empty.
  void run_solo(Shard& sh) { process_window(sh, kNoTime, false); }

  bool all_idle() const {
    for (const auto& s : shards_) {
      if (!s->idle.load(std::memory_order_acquire)) return false;
    }
    return true;
  }

  bool try_terminate(Shard& sh, sim::TerminationGate& gate,
                     std::uint64_t& parity) {
    // Set when a poll below processes raced-in work. Enter-barrier polls
    // run BEFORE this shard's recheck, and a handler can leave no local
    // trace (a remote kLookup that hits the home cache only sends a reply;
    // kUpdateApply only broadcasts invalidations) — so empty queue/staging
    // at recheck time does not prove this shard was quiet this round. The
    // flag does, and the recheck vetoes on it.
    bool raced_work = false;
    const bool done = gate.round(
        parity,
        /*recheck=*/
        [&] {
          drain_rings(sh);
          const bool busy =
              raced_work || !sh.queue.empty() || !sh.staging.empty();
          raced_work = false;
          if (busy) sh.idle.store(false, std::memory_order_relaxed);
          return busy;
        },
        /*poll=*/
        [&] {
          check_abort();
          const std::uint64_t safe = safe_horizon(sh);
          drain_rings(sh);
          // Work that races in while parked here must be PROCESSED, not
          // just held: a held event pins this shard's frontier, and a busy
          // peer whose next event sits exactly at frontier + D then stalls
          // forever — it never goes idle, never joins the barrier, and this
          // shard never leaves it. Processing is termination-safe because
          // it is never invisible to the gate:
          //   * Enter-barrier polls (before this shard's recheck) set
          //     raced_work, so the recheck vetoes even when the handler
          //     left queue and staging empty.
          //   * Exit-barrier polls (after the recheck) can only see work
          //     that was pushed DURING the round — every pre-round push
          //     happens-before the enter barrier completes and is drained
          //     by the receiver's recheck. An in-round push comes from some
          //     shard's enter-poll processing (vetoed via its raced_work)
          //     or, inductively, from exit-poll processing whose causal
          //     chain bottoms out in such a veto. So any exit-poll work
          //     implies the round is already lost, and busy counters are
          //     final by the time the exit barrier completes.
          if (process_window(sh, safe, /*publish=*/true)) raced_work = true;
          const std::uint64_t qnext =
              sh.queue.empty() ? kNoTime : sh.queue.next_time();
          const std::uint64_t snext =
              sh.staging.empty() ? kNoTime : sh.staging.front().raw;
          sh.local_next.store(std::min(qnext, snext),
                              std::memory_order_release);
          publish_frontier(sh, std::min(std::min(qnext, snext), safe));
        });
    if (!done) return false;
    // Belt-and-braces: a clean round implies no in-flight ring messages
    // (no shard vetoed => no shard sent this round, and every pre-round
    // send was drained by a recheck that happens-before the exit barrier),
    // so the flux counters must agree — and, being frozen since before the
    // round, every shard reads the same values and the verdict stays
    // unanimous. A mismatch would mean the invariant above is broken;
    // loop another round rather than drop an event.
    return msgs_drained_.load(std::memory_order_acquire) ==
           msgs_sent_.load(std::memory_order_acquire);
  }

  /// One shard's worker loop. The per-iteration order is load-bearing:
  /// read peer frontiers (acquire) FIRST, then drain rings, then compute
  /// the local candidate, then publish — see the file comment.
  void run_shard(Shard& sh, sim::TerminationGate& gate) {
    sim::SpinWaiter spin;
    std::uint64_t gate_parity = 0;
    for (;;) {
      check_abort();
      std::uint64_t safe = safe_horizon(sh);
      drain_rings(sh);
      const std::uint64_t qnext =
          sh.queue.empty() ? kNoTime : sh.queue.next_time();
      const std::uint64_t snext =
          sh.staging.empty() ? kNoTime : sh.staging.front().raw;
      const std::uint64_t cand = std::min(qnext, snext);
      sh.local_next.store(cand, std::memory_order_release);
      // Idle shards publish the safe horizon itself (never "infinity"):
      // peers' horizons then ratchet forward by the lookahead each round,
      // which is what guarantees global progress.
      publish_frontier(sh, std::min(cand, safe));
      if (cand >= safe) {
        // Stalled on peer frontiers. Before ratcheting D per round, try
        // the flux-consistent jump: with no message in flight the global
        // next-event minimum bounds every future arrival, letting this
        // shard (and, via its republished frontier, its peers) leap a
        // sparse-event gap in one round instead of O(gap/D).
        const std::uint64_t jumped = gvt_jump(sh, cand);
        if (jumped > safe) {
          safe = jumped;
          publish_frontier(sh, std::min(cand, safe));
        }
      }
      if (cand == kNoTime) {
        sh.idle.store(true, std::memory_order_release);
        if (all_idle() && try_terminate(sh, gate, gate_parity)) return;
        spin.wait();
        continue;
      }
      sh.idle.store(false, std::memory_order_relaxed);
      if (cand >= safe) {
        spin.wait();
        continue;
      }
      spin.reset();
      process_window(sh, safe, /*publish=*/true);
    }
  }

  void run_sharded() {
    sim::TerminationGate gate(shard_count_);
    std::atomic<bool> abort{false};
    abort_ = &abort;
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(shard_count_));
    auto body = [&](int index) {
      try {
        run_shard(*shards_[static_cast<std::size_t>(index)], gate);
      } catch (const sim::ShardAbort&) {
        // Another shard failed first; unwind quietly.
      } catch (...) {
        errors[static_cast<std::size_t>(index)] = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(shard_count_ - 1));
    for (int s = 1; s < shard_count_; ++s) workers.emplace_back(body, s);
    body(0);
    for (std::thread& worker : workers) worker.join();
    abort_ = nullptr;
    // Rethrow the lowest shard index's failure (deterministic pick).
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  // ----- Waiting lists -----------------------------------------------------

  /// The waiting list for (lc, addr), creating it from the node free-list
  /// when possible so the hot miss path performs no allocation.
  std::vector<Requester>& waiters(Shard& sh, int lc, const Addr& addr) {
    const WaitKey key = wait_key(lc, addr);
    const auto it = sh.waiting.find(key);
    if (it != sh.waiting.end()) return it->second;
    if (!sh.wait_pool.empty()) {
      auto node = std::move(sh.wait_pool.back());
      sh.wait_pool.pop_back();
      node.key() = key;
      return sh.waiting.insert(std::move(node)).position->second;
    }
    return sh.waiting[key];
  }

  /// Parks a requester on the (lc, addr) waiting list, tracking the per-LC
  /// parked-requester high-water mark.
  void park(Shard& sh, int lc, const Addr& addr, const Requester& requester) {
    waiters(sh, lc, addr).push_back(requester);
    auto& depth = waiting_depth_[static_cast<std::size_t>(lc)];
    ++depth;
    auto& lc_stats = result_.per_lc[static_cast<std::size_t>(lc)];
    lc_stats.waiting_highwater = std::max(lc_stats.waiting_highwater, depth);
  }

  /// Moves the waiting list for (lc, addr) into a scratch buffer (empty if
  /// none) and recycles both the map node and the vector capacity. The
  /// scratch is per-shard: callers drain it before the next take_waiters().
  const std::vector<Requester>& take_waiters(Shard& sh, int lc,
                                             const Addr& addr) {
    sh.wait_scratch.clear();
    const auto it = sh.waiting.find(wait_key(lc, addr));
    if (it != sh.waiting.end()) {
      // Swap (not move) so the extracted node inherits the scratch's old
      // capacity and carries it back through the pool.
      sh.wait_scratch.swap(it->second);
      sh.wait_pool.push_back(sh.waiting.extract(it));
      waiting_depth_[static_cast<std::size_t>(lc)] -= sh.wait_scratch.size();
    }
    return sh.wait_scratch;
  }

  // ----- Lookup flow -------------------------------------------------------

  void handle_lookup(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    const Requester requester = event.requester;
    if (!caches_.empty()) {
      // One probe per cycle per LR-cache (Sec. 5.1): contend for the port.
      auto& port_free = cache_port_free_[static_cast<std::size_t>(lc)];
      if (port_free > now) {
        sh.queue.schedule(port_free, event);
        return;
      }
      port_free = now + 1;
      Cache& cache = *caches_[static_cast<std::size_t>(lc)];
      const cache::ProbeResult probe = cache.probe(addr, now);
      switch (probe.state) {
        case cache::ProbeState::kHit:
          deliver_result(sh, now + 1, lc, addr, probe.next_hop, requester);
          return;
        case cache::ProbeState::kWaiting:
          park(sh, lc, addr, requester);
          return;
        case cache::ProbeState::kMiss:
          break;
      }
    }
    const int frag = config_.partition ? rot_->home_of(addr) : lc;
    const int home = serving_lc(frag);
    if (home == lc) {
      bool fill = false;
      if (!caches_.empty() && config_.early_reservation) {
        fill = caches_[static_cast<std::size_t>(lc)]->reserve(
            addr, cache::Origin::kLocal, now);
        if (fill) park(sh, lc, addr, requester);
      }
      // frag != lc only after a cutover re-homed the fragment here: the
      // job then runs on the migrated/hosted structure, not this LC's FE.
      start_fe_job(sh, now, lc, addr, fill, requester,
                   frag == lc ? -1 : foreign_aux(frag));
    } else {
      // Failover: steer around a non-alive primary before committing the
      // request (choose_target is the identity while everyone looks alive,
      // so R = 0 and fault-free runs take the exact pre-failover path).
      int target = home;
      if (replication_active() && faults_active()) {
        target = choose_target(sh, lc, frag, now);
      }
      if (target == lc) {
        // This LC holds a live copy of the fragment: serve the miss from
        // its own resident replica instead of crossing the fabric.
        ++sh.c.fo.local_replica_serves;
        bool fill = false;
        if (!caches_.empty() && config_.early_reservation) {
          fill = caches_[static_cast<std::size_t>(lc)]->reserve(
              addr, cache::Origin::kRemote, now);
          if (fill) park(sh, lc, addr, requester);
        }
        start_fe_job(sh, now, lc, addr, fill, requester, copy_index(lc, frag));
        return;
      }
      if (requester.lc != lc) {
        // A remote request that raced a migration cutover to this LC (it
        // was the fragment's home when sent): relay it onward under the
        // original requester and seq — the requester's own timeout still
        // covers the round trip, and its pending entry matches the reply.
        count_request(sh, lc, target);
        const Event relay{Event::Type::kLookup, target, addr, requester,
                          false, net::kNoRoute, frag};
        if (faults_active()) {
          send_lossy(sh, lc, target, now + 1, relay);
        } else {
          send_reliable(sh, lc, now + 1, relay);
        }
        return;
      }
      Requester forwarded = requester;
      forwarded.fill_on_reply = false;
      if (!caches_.empty() && config_.early_reservation) {
        if (caches_[static_cast<std::size_t>(lc)]->reserve(
                addr, cache::Origin::kRemote, now)) {
          park(sh, lc, addr, requester);
          forwarded.fill_on_reply = true;
        }
      }
      send_request(sh, now, lc, frag, target, addr, forwarded);
    }
  }

  void start_fe_job(Shard& sh, std::uint64_t now, int lc, const Addr& addr,
                    bool fill, Requester direct, std::int32_t aux = -1) {
    // k-server deterministic queue: the job runs on the earliest-free engine.
    auto& servers = fe_free_[static_cast<std::size_t>(lc)];
    auto& fe_free = *std::min_element(servers.begin(), servers.end());
    const std::uint64_t start = std::max(now, fe_free);
    std::uint64_t service = static_cast<std::uint64_t>(config_.fe_service_cycles);
    if (!fe_models_.empty()) {
      // Memory-tier pricing: a counted lookup against the FE as built at
      // admission time sets this job's service time (the result the packet
      // receives is still computed at completion, so an update that lands
      // in between changes the answer, not this job's price). Copy and
      // migrated-structure jobs price against their own placement (packed
      // after the bytes already resident at this LC).
      trie::MemAccessCounter counter;
      Family::fe_lookup_counted(fe_for(lc, aux), addr, counter);
      service = model_for(lc, aux).charge(counter, sh.c.memory);
    }
    const std::uint64_t completion = start + service;
    fe_free = completion;
    fe_busy_[static_cast<std::size_t>(lc)] += service;
    ++sh.c.fe_lookups;
    if (aux >= 0) ++sh.c.fo.replica_lookups;
    auto& lc_stats = result_.per_lc[static_cast<std::size_t>(lc)];
    ++lc_stats.fe_lookups;
    lc_stats.fe_queue_wait_cycles += start - now;
    sh.queue.schedule(completion, Event{Event::Type::kFeComplete, lc, addr,
                                        direct, fill, net::kNoRoute, aux});
  }

  void handle_fe_complete(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    const net::NextHop hop = Family::fe_lookup(fe_for(lc, event.aux), addr);
    if (event.fill) {
      if (!caches_.empty()) {
        caches_[static_cast<std::size_t>(lc)]->fill(addr, hop, now);
      }
      // Serve everything parked on the block: local packets resolve, remote
      // requesters receive replies over the fabric.
      for (const Requester& r : take_waiters(sh, lc, addr)) {
        deliver_result(sh, now, lc, addr, hop, r);
      }
    } else {
      // No reserved block (early recording disabled or the reservation
      // failed): cache the result late so subsequent packets still hit.
      // A copy job serving a re-routed remote requester is pure pass-
      // through: the result belongs in the requester's cache (via the
      // reply), not in the holder's.
      const bool pass_through = event.aux >= 0 && event.requester.lc != lc;
      if (!caches_.empty() && !pass_through) {
        // A copy-served result at the arrival LC is remote-homed data and
        // keeps the remote quota; everything else is the pre-failover path.
        caches_[static_cast<std::size_t>(lc)]->insert(
            addr, hop,
            event.aux >= 0 ? cache::Origin::kRemote : cache::Origin::kLocal,
            now);
      }
      deliver_result(sh, now, lc, addr, hop, event.requester);
    }
  }

  void handle_reply(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const Addr addr = event.addr;
    if (faults_active()) {
      // Match the reply to its pending request. A miss means the request
      // already settled — an earlier attempt's reply was accepted or the
      // lookup fell back to the degraded path — so this one is a duplicate
      // and must not touch the cache or resolve anything twice.
      const auto it = sh.pending.find(event.requester.seq);
      if (it == sh.pending.end()) {
        ++sh.c.duplicate_replies;
        return;
      }
      if (replication_active()) {
        // Evidence of life from the LC that answered this attempt.
        note_alive(sh, lc, it->second.target, /*via_probe=*/false);
      }
      sh.pending.erase(it);
    }
    if (!caches_.empty()) {
      if (event.requester.fill_on_reply) {
        caches_[static_cast<std::size_t>(lc)]->fill(addr, event.hop, now);
      } else {
        // No reservation was made at request time; cache the result late.
        caches_[static_cast<std::size_t>(lc)]->insert(
            addr, event.hop, cache::Origin::kRemote, now);
      }
    }
    // Drain the packets parked while this reply was in flight (the carried
    // requester is usually among them; resolve_packet guards duplicates).
    // A parked requester is not always local: a remote request that raced a
    // migration cutover to this LC can hit the waiting block this LC's own
    // re-request reserved and park behind it. deliver_result sends such a
    // requester its reply — resolving it here would strand the packets
    // parked behind it at its own LC, with no timeout to recover them on
    // the fault-free path.
    for (const Requester& r : take_waiters(sh, lc, addr)) {
      deliver_result(sh, now, lc, addr, event.hop, r);
    }
    resolve_packet(sh, now, event.requester.packet, event.hop);
  }

  void deliver_result(Shard& sh, std::uint64_t now, int lc, const Addr& addr,
                      net::NextHop hop, const Requester& requester) {
    if (requester.lc == lc) {
      resolve_packet(sh, now, requester.packet, hop);
      return;
    }
    ++sh.c.remote_replies;
    const Event reply{Event::Type::kReply, requester.lc, addr, requester,
                      false, hop};
    if (faults_active()) {
      // The reply can be lost too; the requester's timeout covers the whole
      // round trip, so a dropped reply is indistinguishable from a dropped
      // request and triggers the same retry/degraded recovery.
      send_lossy(sh, lc, requester.lc, now, reply);
      return;
    }
    send_reliable(sh, lc, now, reply);
  }

  /// Marks a packet resolved; false when it already was (waiting-list
  /// drains and the degraded path can race the same packet). Only the shard
  /// owning the packet's arrival LC ever touches its resolved_ slot or its
  /// per-LC latency histogram.
  bool resolve_packet(Shard& sh, std::uint64_t now, std::int64_t packet,
                      net::NextHop hop) {
    const auto index = static_cast<std::size_t>(packet);
    if (resolved_[index]) return false;
    resolved_[index] = 1;
    ++sh.c.resolved_packets;
    const std::uint64_t cycles = now - arrival_time_[index];
    result_.per_lc_latency[static_cast<std::size_t>(arrival_lc_[index])]
        .record(cycles);
    if (track_outage_ && arrived_in_outage(arrival_time_[index]) &&
        !config_.fault.port_down(arrival_lc_[index], arrival_time_[index])) {
      // Packets arriving at a surviving LC while some port is down: the
      // population failover protects. Arrivals at the dead LC itself are
      // excluded — with its own fabric port down, every remote-homed packet
      // there is doomed to the retry/degraded path regardless of how many
      // replicas the rest of the fabric holds (degraded_lookups counts
      // them).
      per_lc_outage_latency_[static_cast<std::size_t>(arrival_lc_[index])]
          .record(cycles);
    }
    if (verify_) {
      const net::NextHop expected =
          Family::oracle_lookup(*oracle_, destinations_[index]);
      if (expected != hop && !update_excuses(index, now)) {
        ++sh.c.verify_mismatches;
      }
    }
    return true;
  }

  /// Verify-under-churn: a mismatch against the (control-plane) oracle is
  /// excused iff some update covering the destination was in flight during
  /// the packet's lifetime — its [inject, settle] window overlaps
  /// [arrival, resolve]. Packets arriving after an update fully settled
  /// (every apply and invalidation delivered) get no excuse from it: that
  /// is the staleness property the update tests assert.
  bool update_excuses(std::size_t packet_index, std::uint64_t resolve_time) const {
    if (updates_.empty()) return false;
    const Addr& dst = destinations_[packet_index];
    const std::uint64_t arrival = arrival_time_[packet_index];
    for (std::size_t i = 0; i < updates_.size(); ++i) {
      if (update_inject_time_[i] > resolve_time) break;  // stream is time-ordered
      if (update_settle_time_[i] < arrival) continue;
      if (updates_[i].prefix.matches(dst)) return true;
    }
    return false;
  }

  bool faults_active() const { return config_.fault.enabled; }

  /// The full-table slow-path index for degraded mode (shared with verify
  /// mode's oracle — both are LPM over the unpartitioned table). run()
  /// builds it eagerly whenever faults are enabled, so this lazy fallback
  /// never triggers under the sharded engine.
  const typename Family::Oracle& degraded_index() {
    if (oracle_ == nullptr) {
      oracle_ = std::make_unique<typename Family::Oracle>(
          Family::build_oracle(full_table_));
    }
    return *oracle_;
  }

  /// Hands out request seqs that are unique, nonzero, and independent of
  /// the engine: each LC strides by num_lcs from its own offset.
  std::uint64_t next_request_seq(int lc) {
    return request_seq_[static_cast<std::size_t>(lc)]++ *
               static_cast<std::uint64_t>(config_.num_lcs) +
           static_cast<std::uint64_t>(lc) + 1;
  }

  void send_request(Shard& sh, std::uint64_t now, int from_lc, int frag,
                    int target, const Addr& addr, const Requester& requester) {
    if (!faults_active()) {
      count_request(sh, from_lc, target);
      send_reliable(sh, from_lc, now + 1,
                    Event{Event::Type::kLookup, target, addr, requester, false,
                          net::kNoRoute});
      return;
    }
    Requester tagged = requester;
    tagged.seq = next_request_seq(from_lc);
    sh.pending.emplace(tagged.seq,
                       PendingRequest{addr, tagged, frag, target, 0});
    dispatch_request(sh, now, frag, target, addr, tagged, /*attempt=*/0);
  }

  void count_request(Shard& sh, int from_lc, int home) {
    ++sh.c.remote_requests;
    ++result_.remote_fanout[static_cast<std::size_t>(from_lc) *
                                static_cast<std::size_t>(config_.num_lcs) +
                            static_cast<std::size_t>(home)];
  }

  /// Injects one (re)transmission of a pending request into the fabric and
  /// arms its timeout. The fabric may lose the message (drop or outage);
  /// either way the timeout fires unless some attempt's reply settles the
  /// seq first, so a lost message can never strand the lookup. A re-routed
  /// attempt (target != the fragment's serving LC) rides a kCopyLookup so
  /// the replica holder serves it from its resident copy.
  void dispatch_request(Shard& sh, std::uint64_t now, int frag, int target,
                        const Addr& addr, const Requester& requester,
                        int attempt) {
    count_request(sh, requester.lc, target);
    // A kCopyLookup is only meaningful at an LC that actually holds a copy;
    // a target that stopped being the serving LC mid-flight (migration
    // cutover) without holding one gets a plain kLookup, which the arrival
    // LC forwards to the fragment's current home like any other request.
    const bool rerouted =
        target != serving_lc(frag) && copy_slot(target, frag) >= 0;
    if (rerouted) ++sh.c.fo.rerouted_requests;
    send_lossy(sh, requester.lc, target, now + 1,
               Event{rerouted ? Event::Type::kCopyLookup : Event::Type::kLookup,
                     target, addr, requester, false, net::kNoRoute, frag});
    // Exponential backoff with the shift clamped (backoff_cycles) so a huge
    // configured timeout or retry budget can never wrap the timer. The
    // timer is a local event at the requesting LC — it never crosses shards.
    const std::uint64_t backoff = backoff_cycles(timeout_base_, attempt);
    sh.queue.schedule(now + 1 + backoff,
                      Event{Event::Type::kTimeout, requester.lc, addr,
                            requester, false, net::kNoRoute});
  }

  void handle_timeout(Shard& sh, std::uint64_t now, const Event& event) {
    // Stale timers were filtered in dispatch_one: this seq is live.
    const auto it = sh.pending.find(event.requester.seq);
    PendingRequest& pending = it->second;
    ++sh.c.timeouts;
    if (replication_active()) {
      // The silence is evidence against whichever LC this attempt targeted.
      note_timeout(sh, pending.requester.lc, pending.target);
    }
    if (pending.attempt < config_.recovery.max_retries) {
      ++pending.attempt;
      ++sh.c.retransmits;
      if (replication_active()) {
        const int target =
            choose_target(sh, pending.requester.lc, pending.home, now);
        if (target == pending.requester.lc) {
          // Best live holder is this LC itself: settle the request from the
          // local copy. The FE completion fills the reserved block (if any)
          // and drains the waiters; any straggler reply for this seq is
          // suppressed as a duplicate. When a migration cutover re-homed the
          // fragment onto this very LC while the request was in flight, the
          // job runs on the migrated structure, not a replica copy.
          const PendingRequest settled = pending;
          sh.pending.erase(it);
          const bool rehomed =
              serving_lc(settled.home) == settled.requester.lc;
          if (!rehomed) ++sh.c.fo.local_replica_serves;
          start_fe_job(sh, now, settled.requester.lc, settled.addr,
                       settled.requester.fill_on_reply, settled.requester,
                       rehomed ? foreign_aux(settled.home)
                               : copy_index(settled.requester.lc,
                                            settled.home));
          return;
        }
        pending.target = target;
      } else if (config_.migration.enabled || config_.rebalancer.enabled) {
        // No replicas to steer through, but the fragment's home can still
        // move under a retry: chase the current serving LC instead of
        // hammering the frozen source.
        pending.target = serving_lc(pending.home);
      }
      dispatch_request(sh, now, pending.home, pending.target, pending.addr,
                       pending.requester, pending.attempt);
      return;
    }
    // Retries exhausted: degraded mode. Release the W=1 block the lost
    // reply would have filled (its quota must not leak for the rest of the
    // run), then resolve the requester and every packet parked behind it
    // with a local full-table lookup at the conventional-router cost.
    ++sh.c.degraded_fallbacks;
    const int lc = pending.requester.lc;
    const Addr addr = pending.addr;
    if (!caches_.empty() && pending.requester.fill_on_reply) {
      if (caches_[static_cast<std::size_t>(lc)]->cancel_waiting(addr)) {
        ++sh.c.reclaimed_waiting_blocks;
      }
    }
    const net::NextHop hop = Family::oracle_lookup(degraded_index(), addr);
    const std::uint64_t done =
        now + static_cast<std::uint64_t>(
                  std::max(1, config_.recovery.degraded_service_cycles));
    for (const Requester& r : take_waiters(sh, lc, addr)) {
      sh.queue.schedule(done,
                        Event{Event::Type::kDegraded, lc, addr, r, false, hop});
    }
    sh.queue.schedule(done, Event{Event::Type::kDegraded, lc, addr,
                                  pending.requester, false, hop});
    sh.pending.erase(it);
  }

  void handle_degraded(Shard& sh, std::uint64_t now, const Event& event) {
    if (resolve_packet(sh, now, event.requester.packet, event.hop)) {
      ++sh.c.degraded_lookups;
    }
  }

  void maybe_update_table(std::uint64_t now) {
    if (config_.flush_interval_cycles == 0) return;
    while (now >= next_flush_) {
      if (config_.update_policy == RouterConfig::UpdatePolicy::kFlushAll ||
          full_table_.empty()) {
        for (const auto& c : caches_) c->flush();
      } else {
        // One incremental update: an existing prefix is re-announced and
        // only the addresses it covers are invalidated.
        const auto& changed =
            full_table_.entries()[update_rng_() % full_table_.size()].prefix;
        for (const auto& c : caches_) {
          result_.blocks_invalidated += c->invalidate_matching(changed);
        }
      }
      ++result_.updates_applied;
      next_flush_ += config_.flush_interval_cycles;
    }
  }

  // ----- Live route-update pipeline ---------------------------------------

  /// Injection of update i at the control plane (modelled at LC 0's fabric
  /// port): the oracle advances immediately — it is the control plane's
  /// view — and one fabric message per home LC carries the update out.
  void handle_update_inject(Shard& sh, std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const auto& update = updates_[index];
    ++sh.c.update.applied;
    ++sh.c.updates_applied;
    switch (update.kind) {
      case net::UpdateKind::kAnnounce: ++sh.c.update.announces; break;
      case net::UpdateKind::kWithdraw: ++sh.c.update.withdraws; break;
      case net::UpdateKind::kHopChange: ++sh.c.update.hop_changes; break;
    }
    if (oracle_ != nullptr) {
      // Under the sharded engine this only runs when nothing reads the
      // oracle concurrently: verify/fault runs with live updates force the
      // solo engine (planned_shards), so a mutating inject can only share a
      // run with readers when there is a single shard.
      if (update.kind == net::UpdateKind::kWithdraw) {
        oracle_->remove(update.prefix);
      } else {
        oracle_->insert(update.prefix, update.next_hop);
      }
    }
    // Route to every home LC whose fragment replicates the prefix. An
    // unpartitioned router keeps the full table in every LC, so all of
    // them are homes.
    std::vector<int> homes;
    if (config_.partition) {
      homes = rot_->homes_of(update.prefix);
    } else {
      homes.reserve(static_cast<std::size_t>(config_.num_lcs));
      for (int lc = 0; lc < config_.num_lcs; ++lc) homes.push_back(lc);
    }
    // Pre-count every apply before any message leaves: the outstanding
    // counter can then never transiently hit zero while effects are still
    // fanning out (each apply also adds its invalidations before its own
    // decrement). A deferred primary apply holds one token too — it is
    // settled only when the resync re-applies the update at the rejoined
    // LC, which keeps the verify excuse window open for exactly as long as
    // a stale structure can still answer.
    const bool steer = replication_active() && faults_active();
    std::uint32_t tokens = 0;
    for (const int home : homes) {
      tokens += 1 + static_cast<std::uint32_t>(
                        replica_plan_[static_cast<std::size_t>(home)].size());
    }
    update_outstanding_[index].fetch_add(tokens, std::memory_order_relaxed);
    for (const int home : homes) {
      const int primary = serving_lc(home);
      const auto& holders = replica_plan_[static_cast<std::size_t>(home)];
      // Defer the primary apply when the primary cannot take it (its port
      // is inside an outage window) or is already stale: the update joins
      // its missed queue and an acting replica broadcasts the invalidations
      // on its behalf. Pure config (FaultConfig::port_down draws no RNG).
      int acting = -1;
      if (steer && !holders.empty() &&
          (stale_[static_cast<std::size_t>(primary)] != 0 ||
           config_.fault.port_down(primary, now + 1))) {
        for (const int r : holders) {
          if (stale_[static_cast<std::size_t>(r)] == 0 &&
              !config_.fault.port_down(r, now + 1)) {
            acting = r;
            break;
          }
        }
      }
      if (acting >= 0) {
        ++sh.c.fo.missed_updates;
        stale_[static_cast<std::size_t>(primary)] = 1;
        missed_updates_[static_cast<std::size_t>(primary)].push_back(index);
      } else {
        ++sh.c.update.update_messages;
        // Control messages ride the fabric reliably (egress, not
        // egress_lossy): BGP sessions run over TCP, losses are
        // retransmitted below the timescale this model resolves.
        send_reliable(sh, 0, now + 1,
                      Event{Event::Type::kUpdateApply, primary, Addr{},
                            event.requester, false, net::kNoRoute, home});
      }
      // Every replica copy stays fresh regardless of the primary's fate;
      // the acting holder's event carries the broadcast flag (fill).
      for (const int r : holders) {
        ++sh.c.update.update_messages;
        send_reliable(sh, 0, now + 1,
                      Event{Event::Type::kUpdateApply, r, Addr{},
                            event.requester, /*fill=*/r == acting,
                            net::kNoRoute, home});
      }
    }
  }

  /// Update i arrives at home LC `lc`: apply it to the LC's fragment and
  /// FE (incrementally when supported, by epoch rebuild otherwise), charge
  /// the FE servers, invalidate the local cache, and broadcast invalidation
  /// to every other LC. The broadcast is injected *after* the FE applied,
  /// so per-(src,dst) fabric FIFO guarantees it overtakes no stale reply
  /// this home produced earlier — the invalidation is a barrier behind
  /// which no pre-update value survives in any cache.
  void handle_update_apply(Shard& sh, std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const auto& update = updates_[index];
    const int lc = event.lc;
    const int frag = event.aux < 0 ? lc : event.aux;
    if (frag != lc) {
      // Not this LC's own fragment: the migrated structure this LC now
      // serves as primary (operator path: still staged in migration_;
      // rebalancer path: moved into hosted_ at cutover), or one of its
      // failover replica copies.
      if (config_.migration.enabled && migration_.cut_over &&
          lc == migration_.dst && frag == migration_.frag) {
        apply_update_migrated(sh, now, event, index);
      } else if (config_.rebalancer.enabled && serving_lc(frag) == lc &&
                 hosted_slot(lc, frag) >= 0) {
        apply_update_hosted(sh, now, event, index);
      } else {
        apply_update_copy(sh, now, event, index);
      }
      return;
    }
    Table& fragment = lc_tables_[static_cast<std::size_t>(lc)];
    net::apply_update(fragment, update);
    auto& fe = fes_[static_cast<std::size_t>(lc)];
    std::uint64_t cost = 0;
    ++sh.c.update.applications;
    if (Family::fe_supports_update(fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(fe, update.prefix);
      } else {
        Family::fe_insert(fe, update.prefix, update.next_hop);
      }
      ++sh.c.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      fe = Family::build_fe(fragment, config_);
      ++sh.c.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             fragment.size() * config_.update.rebuild_millicycles_per_entry /
                 1000;
    }
    // The applied update changed the FE's arena footprints; re-place them
    // so subsequent jobs at this LC price against the current structure
    // (any replica copies resident here shift behind the new size too).
    // The model is element-owned by this LC's shard, like the FE itself.
    rebuild_fe_model(lc);
    rebuild_copy_models_at(lc);
    // The FE is unavailable while the update applies: every server stalls.
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    sh.c.update.update_cost_cycles += cost;
    if (!caches_.empty()) {
      invalidate_cache(sh, lc, update);
      for (int other = 0; other < config_.num_lcs; ++other) {
        if (other == lc) continue;
        ++sh.c.update.invalidation_messages;
        update_outstanding_[index].fetch_add(1, std::memory_order_relaxed);
        send_reliable(sh, lc, now + 1,
                      Event{Event::Type::kInvalidate, other, Addr{},
                            event.requester, false, net::kNoRoute});
      }
    }
    maybe_double_deliver(sh, now, event, lc, frag, index);
    settle_update(index, now);
  }

  /// Copy phase: double-deliver a primary-applied delta for the in-copy
  /// fragment to the migration target. Its token keeps the update unsettled
  /// until the target has absorbed it, so the staged structure can never be
  /// resolved-against stale. The delta event carries the fragment in aux so
  /// a straggler can still find its (cut-over, hosted) structure.
  void maybe_double_deliver(Shard& sh, std::uint64_t now, const Event& event,
                            int lc, int frag, std::size_t index) {
    if (!(migration_.copying && !migration_.cut_over && !migration_.aborted &&
          lc == migration_.src && frag == migration_.frag)) {
      return;
    }
    ++sh.c.fo.double_delivered_updates;
    ++sh.c.fo.control_messages;
    update_outstanding_[index].fetch_add(1, std::memory_order_relaxed);
    send_reliable(sh, lc, now + 1,
                  Event{Event::Type::kMigrateDelta, migration_.dst, Addr{},
                        event.requester, false, net::kNoRoute, frag});
  }

  /// Post-cutover primary apply at the migration target: identical to an
  /// own-fragment apply, but against the staged structure.
  void apply_update_migrated(Shard& sh, std::uint64_t now, const Event& event,
                             std::size_t index) {
    const auto& update = updates_[index];
    const int lc = event.lc;
    Table& fragment = *migration_.staged_table;
    net::apply_update(fragment, update);
    auto& fe = *migration_.staged_fe;
    std::uint64_t cost = 0;
    ++sh.c.update.applications;
    if (Family::fe_supports_update(fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(fe, update.prefix);
      } else {
        Family::fe_insert(fe, update.prefix, update.next_hop);
      }
      ++sh.c.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      fe = Family::build_fe(fragment, config_);
      ++sh.c.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             fragment.size() * config_.update.rebuild_millicycles_per_entry /
                 1000;
    }
    rebuild_staged_model();
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    sh.c.update.update_cost_cycles += cost;
    if (!caches_.empty()) {
      invalidate_cache(sh, lc, update);
      for (int other = 0; other < config_.num_lcs; ++other) {
        if (other == lc) continue;
        ++sh.c.update.invalidation_messages;
        update_outstanding_[index].fetch_add(1, std::memory_order_relaxed);
        send_reliable(sh, lc, now + 1,
                      Event{Event::Type::kInvalidate, other, Addr{},
                            event.requester, false, net::kNoRoute});
      }
    }
    settle_update(index, now);
  }

  /// Primary apply at an LC a rebalancer cutover re-homed the fragment
  /// onto: identical to an own-fragment apply, but against the hosted
  /// structure. Double-delivers like an own-fragment apply when the hosted
  /// fragment is itself mid-move to yet another LC.
  void apply_update_hosted(Shard& sh, std::uint64_t now, const Event& event,
                           std::size_t index) {
    const auto& update = updates_[index];
    const int lc = event.lc;
    const int frag = event.aux;
    HostedFragment& hosted = hosted_at(lc, frag);
    net::apply_update(*hosted.table, update);
    auto& fe = *hosted.fe;
    std::uint64_t cost = 0;
    ++sh.c.update.applications;
    if (Family::fe_supports_update(fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(fe, update.prefix);
      } else {
        Family::fe_insert(fe, update.prefix, update.next_hop);
      }
      ++sh.c.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      fe = Family::build_fe(*hosted.table, config_);
      ++sh.c.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             hosted.table->size() *
                 config_.update.rebuild_millicycles_per_entry / 1000;
    }
    rebuild_hosted_models_at(lc);
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    sh.c.update.update_cost_cycles += cost;
    if (!caches_.empty()) {
      invalidate_cache(sh, lc, update);
      for (int other = 0; other < config_.num_lcs; ++other) {
        if (other == lc) continue;
        ++sh.c.update.invalidation_messages;
        update_outstanding_[index].fetch_add(1, std::memory_order_relaxed);
        send_reliable(sh, lc, now + 1,
                      Event{Event::Type::kInvalidate, other, Addr{},
                            event.requester, false, net::kNoRoute});
      }
    }
    maybe_double_deliver(sh, now, event, lc, frag, index);
    settle_update(index, now);
  }

  /// Apply at a replica holder: keep the copy's table and FE fresh. When
  /// the event carries the acting-broadcast flag (event.fill) the holder
  /// also invalidates on behalf of a primary whose apply was deferred, so
  /// the invalidation barrier exists even while the primary is dark.
  void apply_update_copy(Shard& sh, std::uint64_t now, const Event& event,
                         std::size_t index) {
    const auto& update = updates_[index];
    const int lc = event.lc;
    const int idx = copy_index(lc, event.aux);
    ReplicaCopy& copy = copies_[static_cast<std::size_t>(lc)]
                               [static_cast<std::size_t>(idx)];
    net::apply_update(copy.table, update);
    std::uint64_t cost = 0;
    ++sh.c.update.applications;
    ++sh.c.fo.replica_update_applications;
    if (Family::fe_supports_update(copy.fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(copy.fe, update.prefix);
      } else {
        Family::fe_insert(copy.fe, update.prefix, update.next_hop);
      }
      ++sh.c.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      copy.fe = Family::build_fe(copy.table, config_);
      ++sh.c.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             copy.table.size() *
                 config_.update.rebuild_millicycles_per_entry / 1000;
    }
    rebuild_copy_models_at(lc);
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    sh.c.update.update_cost_cycles += cost;
    if (event.fill && !caches_.empty()) {
      ++sh.c.fo.acting_primary_applications;
      invalidate_cache(sh, lc, update);
      for (int other = 0; other < config_.num_lcs; ++other) {
        if (other == lc) continue;
        ++sh.c.update.invalidation_messages;
        update_outstanding_[index].fetch_add(1, std::memory_order_relaxed);
        send_reliable(sh, lc, now + 1,
                      Event{Event::Type::kInvalidate, other, Addr{},
                            event.requester, false, net::kNoRoute});
      }
    }
    settle_update(index, now);
  }

  void handle_invalidate(Shard& sh, std::uint64_t now, const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    invalidate_cache(sh, event.lc, updates_[index]);
    settle_update(index, now);
  }

  /// Cache side of one update at one LC, per the configured policy.
  /// Waiting (W=1) blocks are left for their fill on the selective path:
  /// any in-flight fill was either produced after the update applied
  /// (fresh), or was injected before this invalidation by the same home
  /// and therefore already landed (fabric FIFO) and been dropped here.
  void invalidate_cache(Shard& sh, int lc, const typename Family::Update& update) {
    Cache& cache = *caches_[static_cast<std::size_t>(lc)];
    if (config_.update_policy == RouterConfig::UpdatePolicy::kSelectiveInvalidate) {
      const std::size_t dropped = cache.invalidate_matching(update.prefix);
      sh.c.blocks_invalidated += dropped;
      sh.c.update.blocks_invalidated += dropped;
    } else {
      cache.flush();
      ++sh.c.update.cache_flushes;
    }
  }

  /// One apply/invalidation event of update `index` completed; the last one
  /// stamps the settle time. Effects complete on different shards, so the
  /// settle time is accumulated as a CAS-max and stamped by whichever shard
  /// decrements the outstanding counter to zero — in a solo run event times
  /// are non-decreasing, so the max equals the last decrementer's `now` and
  /// the stamp is engine-independent. (Settle times feed only the verify
  /// excuse window, and verify with churn runs solo anyway.)
  void settle_update(std::size_t index, std::uint64_t now) {
    std::atomic<std::uint64_t>& stamp = update_settle_max_[index];
    std::uint64_t seen = stamp.load(std::memory_order_relaxed);
    while (seen < now &&
           !stamp.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    // acq_rel: the last decrementer's acquire sees every earlier effect's
    // CAS-max through the RMW release sequence.
    if (update_outstanding_[index].fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      update_settle_time_[index] = stamp.load(std::memory_order_relaxed);
    }
  }

  // ----- Failover: replication, health, resync, migration ------------------

  /// aux value marking a job against the migrated structure a post-cutover
  /// host serves (>= 0 values index the host's replica copies).
  static constexpr std::int32_t kMigratedAux = -2;
  /// aux values <= this encode a rebalancer-hosted fragment: aux =
  /// kHostedAuxBase - frag, so the fragment id decodes as
  /// kHostedAuxBase - aux without colliding with -1 or kMigratedAux.
  static constexpr std::int32_t kHostedAuxBase = -3;

  /// aux for a job on fragment `frag` served away from its original LC.
  /// Migration and the rebalancer are mutually exclusive, so the encoding
  /// is unambiguous: the operator path keeps the structure staged in
  /// migration_, the rebalancer path moves it into hosted_.
  std::int32_t foreign_aux(int frag) const {
    if (config_.migration.enabled) return kMigratedAux;
    return kHostedAuxBase - frag;
  }

  /// Latest hosted entry for `frag` at `lc`, or -1. Scans from the back so
  /// a fragment that moved here twice resolves to the live structure.
  int hosted_slot(int lc, int frag) const {
    const auto& hosted = hosted_[static_cast<std::size_t>(lc)];
    for (auto it = hosted.rbegin(); it != hosted.rend(); ++it) {
      if (it->fragment == frag) {
        return static_cast<int>(std::distance(it, hosted.rend())) - 1;
      }
    }
    return -1;
  }

  HostedFragment& hosted_at(int lc, int frag) {
    const int slot = hosted_slot(lc, frag);
    if (slot < 0) {
      throw std::logic_error(
          "RouterSim: job routed to an LC that hosts no such fragment");
    }
    return hosted_[static_cast<std::size_t>(lc)][static_cast<std::size_t>(slot)];
  }
  const HostedFragment& hosted_at(int lc, int frag) const {
    return const_cast<BasicRouterSim*>(this)->hosted_at(lc, frag);
  }

  bool replication_active() const {
    return config_.replication.replicas > 0 && config_.partition &&
           config_.num_lcs > 1;
  }
  bool failover_enabled() const {
    return replication_active() || config_.migration.enabled ||
           config_.rebalancer.enabled;
  }

  /// The LC currently serving fragment `frag` (identity unless a migration
  /// or rebalancer cutover re-homed it).
  int serving_lc(int frag) const {
    return config_.migration.enabled || config_.rebalancer.enabled
               ? home_remap_[static_cast<std::size_t>(frag)]
               : frag;
  }

  /// Slot of `frag`'s copy at `lc`, or -1 when the LC holds none (also when
  /// replication is off and no copies exist at all).
  int copy_slot(int lc, int frag) const {
    if (copy_index_.empty()) return -1;
    return copy_index_[static_cast<std::size_t>(lc) *
                           static_cast<std::size_t>(config_.num_lcs) +
                       static_cast<std::size_t>(frag)];
  }

  int copy_index(int lc, int frag) const {
    const int idx = copy_slot(lc, frag);
    if (idx < 0) {
      throw std::logic_error("RouterSim: lookup routed to an LC that holds "
                             "no copy of the fragment");
    }
    return idx;
  }

  const typename Family::Fe& fe_for(int lc, std::int32_t aux) const {
    if (aux == kMigratedAux) return *migration_.staged_fe;
    if (aux <= kHostedAuxBase) return *hosted_at(lc, kHostedAuxBase - aux).fe;
    if (aux >= 0) {
      return copies_[static_cast<std::size_t>(lc)]
                    [static_cast<std::size_t>(aux)].fe;
    }
    return fes_[static_cast<std::size_t>(lc)];
  }
  const MemoryModel& model_for(int lc, std::int32_t aux) const {
    if (aux == kMigratedAux) return *migration_.staged_model;
    if (aux <= kHostedAuxBase) {
      return *hosted_at(lc, kHostedAuxBase - aux).model;
    }
    if (aux >= 0) {
      return copy_models_[static_cast<std::size_t>(lc)]
                         [static_cast<std::size_t>(aux)];
    }
    return fe_models_[static_cast<std::size_t>(lc)];
  }

  /// Best target for a remote lookup on `frag` as seen by `observer`: the
  /// primary while it looks alive, else the first live replica holder (the
  /// observer itself, if it holds one — served locally). Non-alive LCs
  /// encountered on the way are probed, paced per (observer, target).
  int choose_target(Shard& sh, int observer, int frag, std::uint64_t now) {
    const int primary = serving_lc(frag);
    if (health_.alive(observer, primary)) return primary;
    maybe_probe(sh, observer, primary, now);
    for (const int r : replica_plan_[static_cast<std::size_t>(frag)]) {
      if (r == observer) return observer;
      if (health_.alive(observer, r)) return r;
      maybe_probe(sh, observer, r, now);
    }
    // Nobody looks alive: keep hammering the primary; the retry/degraded
    // machinery remains the backstop of last resort.
    return primary;
  }

  void maybe_probe(Shard& sh, int observer, int target, std::uint64_t now) {
    if (!health_.probe_due(observer, target, now)) return;
    health_.probe_sent(observer, target, now, probe_interval_);
    ++sh.c.fo.probes_sent;
    ++sh.c.fo.control_messages;
    send_lossy(sh, observer, target, now + 1,
               Event{Event::Type::kProbe, target, Addr{},
                     Requester{observer, -1, false}, false, net::kNoRoute});
  }

  void note_timeout(Shard& sh, int observer, int target) {
    switch (health_.note_timeout(observer, target)) {
      case HealthTracker::Transition::kSuspect:
        ++sh.c.fo.suspect_transitions;
        break;
      case HealthTracker::Transition::kDown:
        ++sh.c.fo.down_transitions;
        break;
      case HealthTracker::Transition::kNone:
        break;
    }
  }

  void note_alive(Shard& sh, int observer, int target, bool via_probe) {
    if (observer == target) return;
    if (health_.note_alive(observer, target)) {
      ++sh.c.fo.recoveries;
      if (via_probe) ++sh.c.fo.rejoins;
    }
  }

  /// Re-routed request at a replica holder: serve straight from the
  /// resident copy (no cache interaction here — the result belongs in the
  /// requester's cache, carried back by the reply).
  void handle_copy_lookup(Shard& sh, std::uint64_t now, const Event& event) {
    start_fe_job(sh, now, event.lc, event.addr, false, event.requester,
                 copy_index(event.lc, event.aux));
  }

  void handle_probe(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    if (stale_[static_cast<std::size_t>(lc)] != 0) {
      // A stale rejoiner withholds probe replies until it has caught up —
      // observers keep steering to the replicas — but uses the contact to
      // start fetching its missed updates.
      maybe_start_resync(sh, lc, now);
      return;
    }
    ++sh.c.fo.probe_replies_sent;
    ++sh.c.fo.control_messages;
    send_lossy(sh, lc, event.requester.lc, now + 1,
               Event{Event::Type::kProbeReply, event.requester.lc, Addr{},
                     Requester{lc, -1, false}, false, net::kNoRoute});
  }

  void handle_probe_reply(Shard& sh, std::uint64_t /*now*/,
                          const Event& event) {
    ++sh.c.fo.probe_replies;
    note_alive(sh, event.lc, event.requester.lc, /*via_probe=*/true);
  }

  // --- Resync: stream a rejoining LC's missed updates from a live holder.

  void maybe_start_resync(Shard& sh, int lc, std::uint64_t now) {
    if (resyncing_[static_cast<std::size_t>(lc)] != 0) return;
    // The acting source is the first live holder — the same preference
    // order the deferral used, so it has every missed update applied.
    int src = -1;
    for (const int r : replica_plan_[static_cast<std::size_t>(lc)]) {
      if (stale_[static_cast<std::size_t>(r)] == 0 &&
          !config_.fault.port_down(r, now + 1)) {
        src = r;
        break;
      }
    }
    if (src < 0) return;  // retry on the next probe contact
    resyncing_[static_cast<std::size_t>(lc)] = 1;
    ++sh.c.fo.resync_fetches;
    ++sh.c.fo.control_messages;
    send_reliable(sh, lc, now + 1,
                  Event{Event::Type::kResyncFetch, src, Addr{},
                        Requester{lc, -1, false}, false, net::kNoRoute, lc});
  }

  void handle_resync_fetch(Shard& sh, std::uint64_t now, const Event& event) {
    const int target = event.aux;
    if (resync_sending_[static_cast<std::size_t>(target)] != 0) return;
    resync_sending_[static_cast<std::size_t>(target)] = 1;
    sh.queue.schedule(now + 1,
                      Event{Event::Type::kResyncSend, event.lc, Addr{},
                            Requester{event.lc, -1, false}, false,
                            net::kNoRoute, target});
  }

  /// Local pacing tick at the streaming holder: emit the next batch of the
  /// target's missed-update queue, then re-arm. The chain stays alive while
  /// entries are chunked-but-unapplied so deferrals that land during the
  /// transfer are streamed too.
  void handle_resync_send(Shard& sh, std::uint64_t now, const Event& event) {
    const int target = event.aux;
    const auto t = static_cast<std::size_t>(target);
    const auto& queue = missed_updates_[t];
    if (resync_sent_[t] >= queue.size()) {
      if (resync_head_[t] < resync_sent_[t]) {
        sh.queue.schedule(now + chunk_interval(), event);
      } else {
        resync_sending_[t] = 0;
      }
      return;
    }
    const std::size_t batch =
        std::min(chunk_prefixes(), queue.size() - resync_sent_[t]);
    resync_sent_[t] += batch;
    ++sh.c.fo.resync_chunks;
    ++sh.c.fo.control_messages;
    send_reliable(sh, event.lc, now + 1,
                  Event{Event::Type::kResyncChunk, target, Addr{},
                        Requester{event.lc, -1, false}, false, net::kNoRoute,
                        static_cast<std::int32_t>(batch)});
    sh.queue.schedule(now + chunk_interval(), event);
  }

  void handle_resync_chunk(Shard& sh, std::uint64_t now, const Event& event) {
    const int lc = event.lc;
    const auto l = static_cast<std::size_t>(lc);
    auto& queue = missed_updates_[l];
    for (std::size_t n = static_cast<std::size_t>(event.aux);
         n > 0 && resync_head_[l] < queue.size(); --n) {
      const std::size_t index = queue[resync_head_[l]++];
      ++sh.c.fo.resync_entries;
      apply_resync_entry(sh, lc, now, index);
    }
    if (resync_head_[l] >= queue.size()) {
      // Caught up: the cutover back to normal service. From here the LC
      // answers probes again and fresh updates apply directly.
      queue.clear();
      resync_head_[l] = 0;
      resync_sent_[l] = 0;
      stale_[l] = 0;
      resyncing_[l] = 0;
      ++sh.c.fo.resync_cutovers;
      ++sh.c.fo.cutovers;
    }
  }

  /// Re-apply one deferred update at the rejoined primary: same FE/table
  /// machinery as a live apply, but invalidation is local-only (the acting
  /// holder broadcast the barrier when the update was deferred) and the
  /// settle releases the token the deferral held — closing the verify
  /// excuse window the stale structure was serving under.
  void apply_resync_entry(Shard& sh, int lc, std::uint64_t now,
                          std::size_t index) {
    const auto& update = updates_[index];
    Table& fragment = lc_tables_[static_cast<std::size_t>(lc)];
    net::apply_update(fragment, update);
    auto& fe = fes_[static_cast<std::size_t>(lc)];
    std::uint64_t cost = 0;
    ++sh.c.update.applications;
    if (Family::fe_supports_update(fe)) {
      if (update.kind == net::UpdateKind::kWithdraw) {
        Family::fe_remove(fe, update.prefix);
      } else {
        Family::fe_insert(fe, update.prefix, update.next_hop);
      }
      ++sh.c.update.fe_incremental;
      cost = config_.update.incremental_cost_cycles;
    } else {
      fe = Family::build_fe(fragment, config_);
      ++sh.c.update.fe_rebuilds;
      cost = config_.update.rebuild_base_cycles +
             fragment.size() * config_.update.rebuild_millicycles_per_entry /
                 1000;
    }
    rebuild_fe_model(lc);
    rebuild_copy_models_at(lc);
    for (auto& server : fe_free_[static_cast<std::size_t>(lc)]) {
      server = std::max(server, now) + cost;
    }
    fe_busy_[static_cast<std::size_t>(lc)] += cost;
    sh.c.update.update_cost_cycles += cost;
    if (!caches_.empty()) invalidate_cache(sh, lc, update);
    settle_update(index, now);
  }

  // --- Live migration: copy-then-cutover fragment transfer.

  const Table& migration_source_table() const {
    // A rebalancer re-move streams from the hosted structure at the current
    // serving LC; a first move streams from the fragment's own (live,
    // update-mutated when the pipeline is on) table.
    if (migration_.src != migration_.frag) {
      return *hosted_at(migration_.src, migration_.frag).table;
    }
    return lc_tables_.empty()
               ? rot_->table_of(migration_.frag)
               : lc_tables_[static_cast<std::size_t>(migration_.frag)];
  }

  std::size_t chunk_prefixes() const {
    return std::max<std::size_t>(std::size_t{1},
                                 config_.migration.chunk_prefixes);
  }
  std::uint64_t chunk_interval() const {
    return std::max<std::uint64_t>(1, config_.migration.chunk_interval_cycles);
  }

  void handle_migrate_start(Shard& sh, std::uint64_t now, const Event& event) {
    if (!migration_.active) {
      // Operator-initiated transfer: endpoints come from the config. (A
      // rebalancer trigger filled them in before scheduling this event.)
      migration_.active = true;
      migration_.frag = config_.migration.from;
      migration_.src = config_.migration.from;
      migration_.dst = config_.migration.to;
    }
    migration_.copying = true;
    const auto entries = migration_source_table().entries();
    migration_.snapshot.assign(entries.begin(), entries.end());
    sh.queue.schedule(now + 1,
                      Event{Event::Type::kMigrateSend, event.lc, Addr{},
                            event.requester, false, net::kNoRoute});
  }

  void handle_migrate_send(Shard& sh, std::uint64_t now, const Event& event) {
    if (migration_.final_sent || !migration_.active) return;
    if (config_.rebalancer.enabled &&
        config_.fault.port_down(migration_.dst, now)) {
      // The target died mid-copy: abort instead of streaming into a dead
      // port. Chunks already in flight drain and are discarded; the source
      // keeps serving, so no lookup is lost.
      abort_migration(sh);
      return;
    }
    const std::size_t remaining =
        migration_.snapshot.size() - migration_.cursor;
    const std::size_t batch = std::min(chunk_prefixes(), remaining);
    const bool last = batch == remaining;
    migration_.chunk_queue.emplace_back(
        migration_.snapshot.begin() +
            static_cast<std::ptrdiff_t>(migration_.cursor),
        migration_.snapshot.begin() +
            static_cast<std::ptrdiff_t>(migration_.cursor + batch));
    migration_.cursor += batch;
    ++sh.c.fo.migration_chunks;
    ++sh.c.fo.control_messages;
    sh.c.fo.snapshot_prefixes += batch;
    send_reliable(sh, event.lc, now + 1,
                  Event{Event::Type::kMigrateChunk, migration_.dst,
                        Addr{}, event.requester, last, net::kNoRoute,
                        static_cast<std::int32_t>(batch)});
    if (last) {
      migration_.final_sent = true;
    } else {
      sh.queue.schedule(now + chunk_interval(), event);
    }
  }

  /// Give up on the in-flight rebalancer migration (target died). The
  /// double-delivery window closes (copying = false) and the state resets —
  /// immediately when nothing is in flight, else when the last in-flight
  /// chunk drains in handle_migrate_chunk.
  void abort_migration(Shard& sh) {
    migration_.aborted = true;
    migration_.copying = false;
    migration_.final_sent = true;
    ++sh.c.rb.aborted_migrations;
    if (migration_.chunk_queue.empty()) migration_ = MigrationState{};
  }

  /// Snapshot chunk at the target. Chunks from one source port arrive in
  /// send order (non-decreasing raw arrivals, origin_seq tie-break), so the
  /// payload deque pairs up FIFO with the chunk events.
  void handle_migrate_chunk(Shard& sh, std::uint64_t now, const Event& event) {
    auto chunk = std::move(migration_.chunk_queue.front());
    migration_.chunk_queue.pop_front();
    if (migration_.aborted) {
      // Aborted transfer: drain and discard. The last in-flight chunk
      // resets the state so the rebalancer can trigger again.
      if (migration_.chunk_queue.empty()) migration_ = MigrationState{};
      return;
    }
    migration_.staged_entries.insert(migration_.staged_entries.end(),
                                     chunk.begin(), chunk.end());
    if (!event.fill) return;
    // Final chunk: build the staged table, then replay the deltas buffered
    // during the transfer IN ORDER — a buffered withdraw must land after
    // the snapshot entries it withdraws, never be resurrected by them.
    // (inject_stale is the verify-mode fault hook: dropping the replay
    // makes the staged structure genuinely stale, which the differential
    // harness must catch as nonzero verify_mismatches.)
    migration_.staged_table =
        std::make_unique<Table>(std::move(migration_.staged_entries));
    migration_.staged_entries = {};
    if (!config_.rebalancer.inject_stale) {
      for (const std::size_t index : migration_.buffered_deltas) {
        net::apply_update(*migration_.staged_table, updates_[index]);
      }
    }
    migration_.buffered_deltas.clear();
    migration_.staged_fe = std::make_unique<typename Family::Fe>(
        Family::build_fe(*migration_.staged_table, config_));
    migration_.fe_ready = true;
    rebuild_staged_model();
    // The staged build is management-plane work: it delays the cutover,
    // not the serving FE servers. Price it like an epoch rebuild.
    const std::uint64_t build =
        config_.update.rebuild_base_cycles +
        migration_.staged_table->size() *
            config_.update.rebuild_millicycles_per_entry / 1000;
    sh.queue.schedule(now + 1 + build,
                      Event{Event::Type::kMigrateBuilt, event.lc, Addr{},
                            Requester{event.lc, -1, false}, false,
                            net::kNoRoute});
  }

  /// Double-delivered update at the target (requester.packet carries the
  /// update index, aux the fragment). Before the staged table exists the
  /// delta is buffered; after, it applies directly. A straggler that
  /// arrives after a rebalancer cutover (state already reset, structure
  /// moved into hosted_) or after an abort is applied to the hosted
  /// structure or dropped respectively. Every path settles the token.
  void handle_migrate_delta(Shard& /*sh*/, std::uint64_t now,
                            const Event& event) {
    const auto index = static_cast<std::size_t>(event.requester.packet);
    const int frag = event.aux;
    if (migration_.active && !migration_.aborted &&
        frag == migration_.frag) {
      if (!migration_.fe_ready) {
        migration_.buffered_deltas.push_back(index);
      } else if (!config_.rebalancer.inject_stale) {
        const auto& update = updates_[index];
        net::apply_update(*migration_.staged_table, update);
        auto& fe = *migration_.staged_fe;
        if (Family::fe_supports_update(fe)) {
          if (update.kind == net::UpdateKind::kWithdraw) {
            Family::fe_remove(fe, update.prefix);
          } else {
            Family::fe_insert(fe, update.prefix, update.next_hop);
          }
        } else {
          fe = Family::build_fe(*migration_.staged_table, config_);
        }
        rebuild_staged_model();
      }
    } else if (frag >= 0 && config_.rebalancer.enabled &&
               !config_.rebalancer.inject_stale &&
               serving_lc(frag) == event.lc && hosted_slot(event.lc, frag) >= 0) {
      const auto& update = updates_[index];
      HostedFragment& hosted = hosted_at(event.lc, frag);
      net::apply_update(*hosted.table, update);
      auto& fe = *hosted.fe;
      if (Family::fe_supports_update(fe)) {
        if (update.kind == net::UpdateKind::kWithdraw) {
          Family::fe_remove(fe, update.prefix);
        } else {
          Family::fe_insert(fe, update.prefix, update.next_hop);
        }
      } else {
        fe = Family::build_fe(*hosted.table, config_);
      }
      rebuild_hosted_models_at(event.lc);
    }
    settle_update(index, now);
  }

  void handle_migrate_built(Shard& sh, std::uint64_t now, const Event& event) {
    ++sh.c.fo.cutover_messages;
    ++sh.c.fo.control_messages;
    send_reliable(sh, event.lc, now + 1,
                  Event{Event::Type::kMigrateReady, migration_.src,
                        Addr{}, Requester{event.lc, -1, false}, false,
                        net::kNoRoute});
  }

  /// Cutover, at the source: flip the re-home map, drop this LC's blocks
  /// homed on the fragment, and broadcast the cutover barrier. Requests
  /// still in flight toward this LC are forwarded to the new home by the
  /// ordinary lookup path (serving_lc no longer names this LC), so no
  /// lookup is lost or answered from the now-frozen source structure.
  void handle_migrate_ready(Shard& sh, std::uint64_t now, const Event& event) {
    const int from = event.lc;
    const int frag = migration_.frag;
    migration_.copying = false;
    migration_.cut_over = true;
    home_remap_[static_cast<std::size_t>(frag)] = migration_.dst;
    ++sh.c.fo.migrations;
    ++sh.c.fo.cutovers;
    invalidate_for_migration(sh, from, frag);
    for (int other = 0; other < config_.num_lcs; ++other) {
      if (other == from) continue;
      ++sh.c.fo.cutover_messages;
      ++sh.c.fo.control_messages;
      send_reliable(sh, from, now + 1,
                    Event{Event::Type::kCutover, other, Addr{},
                          Requester{from, -1, false}, false, net::kNoRoute,
                          frag});
    }
    if (config_.rebalancer.enabled) {
      // The staged structure becomes a hosted fragment at the target and
      // the migration machinery is ready for the next trigger. Straggler
      // deltas find the structure through hosted_slot (kMigrateDelta
      // carries the fragment in aux).
      hosted_[static_cast<std::size_t>(migration_.dst)].push_back(
          HostedFragment{frag, std::move(migration_.staged_table),
                         std::move(migration_.staged_fe),
                         std::move(migration_.staged_model)});
      ++sh.c.rb.completed_migrations;
      migration_ = MigrationState{};
    }
  }

  void handle_cutover(Shard& sh, std::uint64_t /*now*/, const Event& event) {
    invalidate_for_migration(sh, event.lc, event.aux);
  }

  /// Selective invalidation on re-home: drop every cached block whose
  /// address is homed on the migrated fragment (its serving LC changed, so
  /// LOC/REM quota classes and staleness guarantees both moved).
  void invalidate_for_migration(Shard& sh, int lc, int frag) {
    if (caches_.empty()) return;
    const std::size_t dropped =
        caches_[static_cast<std::size_t>(lc)]->invalidate_if(
            [&](const Addr& addr) { return rot_->home_of(addr) == frag; });
    sh.c.blocks_invalidated += dropped;
    sh.c.fo.migration_invalidated_blocks += dropped;
  }

  // --- Online load rebalancer: skew detection + autonomous migration.

  /// Window boundary (management plane, LC 0). Evaluates the offered load
  /// each LC served over the closed window from the precomputed per-window
  /// fragment counts, and when the max/mean skew crosses the threshold,
  /// moves the hottest fragment of the most-loaded LC to the least-loaded
  /// healthy LC through the ordinary migration machinery. Ledger: every
  /// detection is either acted on (migrations_triggered) or accounted to
  /// exactly one skipped_* counter, so
  /// skew_detections == triggered + skipped_in_flight + skipped_no_target
  ///                    + skipped_budget.
  void handle_rebalance_tick(Shard& sh, std::uint64_t now,
                             const Event& /*event*/) {
    RebalancerStats& rb = sh.c.rb;
    ++rb.windows;
    const std::size_t w =
        static_cast<std::size_t>(now / config_.rebalancer.window_cycles) - 1;
    if (w >= window_frag_counts_.size()) return;
    const std::vector<std::uint64_t>& counts = window_frag_counts_[w];
    const auto n = static_cast<std::size_t>(config_.num_lcs);
    std::vector<std::uint64_t> load(n, 0);
    std::uint64_t total = 0;
    for (int frag = 0; frag < config_.num_lcs; ++frag) {
      const std::uint64_t c = counts[static_cast<std::size_t>(frag)];
      load[static_cast<std::size_t>(serving_lc(frag))] += c;
      total += c;
    }
    if (total == 0) return;
    int src = 0;
    for (int lc = 1; lc < config_.num_lcs; ++lc) {
      if (load[static_cast<std::size_t>(lc)] >
          load[static_cast<std::size_t>(src)]) {
        src = lc;
      }
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(config_.num_lcs);
    if (static_cast<double>(load[static_cast<std::size_t>(src)]) <
        config_.rebalancer.skew_threshold * mean) {
      return;
    }
    ++rb.skew_detections;
    if (migration_.active) {
      ++rb.skipped_in_flight;
      return;
    }
    if (rb.migrations_triggered >=
        static_cast<std::uint64_t>(config_.rebalancer.max_migrations)) {
      ++rb.skipped_budget;
      return;
    }
    // Hottest fragment currently served by the overloaded LC.
    int frag = -1;
    for (int f = 0; f < config_.num_lcs; ++f) {
      if (serving_lc(f) != src) continue;
      if (frag < 0 || counts[static_cast<std::size_t>(f)] >
                          counts[static_cast<std::size_t>(frag)]) {
        frag = f;
      }
    }
    // Least-loaded destination that is safe to receive it: never the
    // source, never the fragment's original LC (its resident structure is
    // frozen-stale once the fragment moved away), never a port currently in
    // outage, never an LC that missed updates, never one any observer holds
    // suspect/down — and only if strictly less loaded than the source.
    int dst = -1;
    for (int lc = 0; lc < config_.num_lcs; ++lc) {
      if (lc == src || lc == frag) continue;
      if (stale_[static_cast<std::size_t>(lc)] != 0) continue;
      if (config_.fault.port_down(lc, now)) continue;
      bool healthy = true;
      for (int obs = 0; obs < config_.num_lcs && healthy; ++obs) {
        if (obs != lc && !health_.alive(obs, lc)) healthy = false;
      }
      if (!healthy) continue;
      if (load[static_cast<std::size_t>(lc)] >=
          load[static_cast<std::size_t>(src)]) {
        continue;
      }
      if (dst < 0 || load[static_cast<std::size_t>(lc)] <
                         load[static_cast<std::size_t>(dst)]) {
        dst = lc;
      }
    }
    if (frag < 0 || dst < 0) {
      ++rb.skipped_no_target;
      return;
    }
    ++rb.migrations_triggered;
    migration_.active = true;
    migration_.frag = frag;
    migration_.src = src;
    migration_.dst = dst;
    sh.queue.schedule(now + 1,
                      Event{Event::Type::kMigrateStart, src, Addr{},
                            Requester{src, -1, false}, false, net::kNoRoute});
  }

  bool arrived_in_outage(std::uint64_t at) const {
    for (const auto& span : outage_spans_) {
      if (at < span.first) return false;
      if (at < span.second) return true;
    }
    return false;
  }

  /// (Re)derives the replica plan, the copies it homes, and their memory
  /// placements from the current fragments.
  void rebuild_copies() {
    const auto n = static_cast<std::size_t>(config_.num_lcs);
    copies_.clear();
    copies_.resize(n);
    copy_index_.assign(n * n, -1);
    replica_plan_ = partition::assign_replicas(
        config_.num_lcs,
        replication_active() ? config_.replication.replicas : 0);
    for (int frag = 0; frag < config_.num_lcs; ++frag) {
      for (const int holder : replica_plan_[static_cast<std::size_t>(frag)]) {
        const auto h = static_cast<std::size_t>(holder);
        copy_index_[h * n + static_cast<std::size_t>(frag)] =
            static_cast<int>(copies_[h].size());
        Table table = rot_->table_of(frag);
        auto fe = Family::build_fe(table, config_);
        copies_[h].push_back(
            ReplicaCopy{frag, std::move(table), std::move(fe)});
      }
    }
    rebuild_copy_models();
  }

  void rebuild_copy_models() {
    copy_models_.assign(copies_.size(), {});
    if (!config_.memory.enabled) return;
    for (int lc = 0; lc < config_.num_lcs; ++lc) rebuild_copy_models_at(lc);
  }

  /// Re-places one holder's copies behind its own FE's bytes (which may
  /// have just changed size under an update).
  void rebuild_copy_models_at(int lc) {
    if (!config_.memory.enabled) return;
    auto& models = copy_models_[static_cast<std::size_t>(lc)];
    models.clear();
    std::uint64_t base =
        fe_models_[static_cast<std::size_t>(lc)].placed_bytes();
    for (const ReplicaCopy& copy : copies_[static_cast<std::size_t>(lc)]) {
      models.emplace_back(config_.memory, Family::fe_arenas(copy.fe), base);
      base += models.back().placed_bytes();
    }
    // Hosted fragments pack behind the copies; their base just moved.
    rebuild_hosted_models_at(lc);
  }

  /// The staged (migrated) structure packs behind everything already
  /// resident at the target LC.
  void rebuild_staged_model() {
    if (!config_.memory.enabled || migration_.staged_fe == nullptr) {
      migration_.staged_model.reset();
      return;
    }
    const auto to = static_cast<std::size_t>(migration_.dst);
    std::uint64_t base = fe_models_[to].placed_bytes();
    for (const MemoryModel& model : copy_models_[to]) {
      base += model.placed_bytes();
    }
    for (const HostedFragment& hosted : hosted_[to]) {
      if (hosted.model != nullptr) base += hosted.model->placed_bytes();
    }
    migration_.staged_model = std::make_unique<MemoryModel>(
        config_.memory, Family::fe_arenas(*migration_.staged_fe), base);
  }

  /// Re-places one LC's hosted fragments behind its own FE's and replica
  /// copies' bytes (their base shifts when either changes size).
  void rebuild_hosted_models_at(int lc) {
    if (!config_.memory.enabled || hosted_.empty()) return;
    auto& hosted = hosted_[static_cast<std::size_t>(lc)];
    if (hosted.empty()) return;
    std::uint64_t base =
        fe_models_[static_cast<std::size_t>(lc)].placed_bytes();
    for (const MemoryModel& model :
         copy_models_[static_cast<std::size_t>(lc)]) {
      base += model.placed_bytes();
    }
    for (HostedFragment& h : hosted) {
      if (h.fe == nullptr) continue;
      h.model = std::make_unique<MemoryModel>(config_.memory,
                                              Family::fe_arenas(*h.fe), base);
      base += h.model->placed_bytes();
    }
  }

  // ----- Memory-tier cost model -------------------------------------------

  /// Re-places every FE's arenas into the configured tiers. fe_models_ is
  /// empty whenever the model is disabled, which is the hot path's cheap
  /// "is it on" test.
  void rebuild_fe_models() {
    fe_models_.clear();
    if (!config_.memory.enabled) return;
    fe_models_.reserve(fes_.size());
    for (const auto& fe : fes_) {
      fe_models_.emplace_back(config_.memory, Family::fe_arenas(fe));
    }
  }

  void rebuild_fe_model(int lc) {
    if (fe_models_.empty()) return;
    fe_models_[static_cast<std::size_t>(lc)] = MemoryModel(
        config_.memory, Family::fe_arenas(fes_[static_cast<std::size_t>(lc)]));
  }

  static constexpr std::uint64_t kSettlePending = ~std::uint64_t{0};

  RouterConfig config_;
  Table full_table_;
  std::unique_ptr<Partition> rot_;
  std::vector<typename Family::Fe> fes_;          // one per LC
  std::vector<MemoryModel> fe_models_;  // one per LC; empty when model off
  std::vector<std::unique_ptr<Cache>> caches_;    // one per LC (optional)
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<typename Family::Oracle> oracle_;  // verify/degraded modes

  // Run state (reset per run()). Ownership under the sharded engine: the
  // Shard struct holds everything one worker thread touches exclusively;
  // the per-LC vectors below are element-owned by the shard of that LC;
  // the per-packet vectors are element-owned by the shard of the packet's
  // arrival LC; everything else is either read-only during the run or
  // explicitly atomic.
  int shard_count_ = 1;
  std::uint64_t lookahead_ = 0;                      // fabric min latency
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool>* abort_ = nullptr;               // set during run_sharded
  // Message flux counters for the flux-consistent jump (gvt_jump): sent
  // counts ring pushes (bumped before the push), drained counts ring pops
  // (bumped after the pop is integrated into staging and local_next).
  // Equal counts + an unchanged re-read of sent = no message in flight.
  alignas(64) std::atomic<std::uint64_t> msgs_sent_{0};
  alignas(64) std::atomic<std::uint64_t> msgs_drained_{0};
  std::vector<std::uint64_t> cache_port_free_;       // per LC
  std::vector<std::vector<std::uint64_t>> fe_free_;  // per LC, per FE server
  std::vector<std::uint64_t> fe_busy_;               // per LC, busy cycles
  std::vector<std::uint64_t> request_seq_;           // per LC, fault-mode seqs
  std::vector<std::uint64_t> send_seq_;              // per LC, staging order
  std::uint64_t timeout_base_ = 0;
  std::vector<std::uint64_t> waiting_depth_;  // per LC, currently parked
  std::vector<std::uint64_t> arrival_time_;          // per packet
  std::vector<int> arrival_lc_;                      // per packet
  std::vector<Addr> destinations_;                   // per packet
  // uint8_t, not vector<bool>: neighbouring packets can belong to different
  // shards, and bit-packing would make their flags share a byte.
  std::vector<std::uint8_t> resolved_;               // per packet
  std::uint64_t next_flush_ = 0;
  std::mt19937_64 update_rng_;
  // Live-update pipeline state. lc_tables_ are the mutable per-LC fragments
  // (materialized only when the pipeline is on); the dirty flags make run()
  // rebuild FEs / oracle that a prior run's updates mutated.
  std::vector<typename Family::Update> updates_;
  std::vector<Table> lc_tables_;
  std::vector<std::uint64_t> update_inject_time_;   // per update
  std::vector<std::uint64_t> update_settle_time_;   // kSettlePending in flight
  std::unique_ptr<std::atomic<std::uint32_t>[]> update_outstanding_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> update_settle_max_;
  bool fes_dirty_ = false;
  bool oracle_dirty_ = false;
  bool verify_ = false;
  // Failover subsystem. The replica plan and copies persist across runs
  // like the FEs (copies_dirty_ makes run() rebuild what updates mutated);
  // everything below them is per-run. Sharded-engine ownership: health
  // rows are observer-owned, copies/copy models are holder-owned, and the
  // resync/migration state is only ever touched by solo-engine handlers.
  std::vector<std::vector<int>> replica_plan_;    // fragment -> holder LCs
  std::vector<std::vector<ReplicaCopy>> copies_;  // per holder LC
  std::vector<std::vector<MemoryModel>> copy_models_;  // parallel to copies_
  std::vector<int> copy_index_;  // (lc * num_lcs + frag) -> copy slot or -1
  bool copies_dirty_ = false;
  HealthTracker health_;
  std::uint64_t probe_interval_ = 0;
  std::vector<int> home_remap_;               // fragment -> serving LC
  std::vector<std::uint8_t> stale_;           // per LC: has missed updates
  std::vector<std::uint8_t> resyncing_;       // per LC: fetch in flight
  std::vector<std::uint8_t> resync_sending_;  // per target LC: chain armed
  std::vector<std::vector<std::size_t>> missed_updates_;  // per LC, in order
  std::vector<std::size_t> resync_sent_;      // per LC: entries chunked
  std::vector<std::size_t> resync_head_;      // per LC: entries applied
  MigrationState migration_;
  /// Fragments re-homed here by rebalancer cutovers (per host LC). Solo-
  /// engine state, like the migration machinery that fills it.
  std::vector<std::vector<HostedFragment>> hosted_;
  /// Rebalancer: offered lookups per [window][fragment], precomputed in
  /// run() from the arrival schedule and the static home mapping.
  std::vector<std::vector<std::uint64_t>> window_frag_counts_;
  bool track_outage_ = false;
  /// Merged, sorted union of every configured outage window.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> outage_spans_;
  std::vector<sim::LatencyStats> per_lc_outage_latency_;  // per arrival LC
  RouterResult result_;
};

}  // namespace spal::core
