// The IPv6 SPAL router — the end-to-end form of the paper's Sec. 6 claim
// that SPAL "is feasibly applicable to IPv6". Identical lookup flow to the
// IPv4 router (basic_router_sim.h): 128-bit destinations, RotPartition6
// fragmentation, BasicLrCache<Ipv6Addr> LR-caches, BinaryTrie6 FEs.
//
// Configuration notes vs. the IPv4 router:
//   * `config.trie` / `config.trie_options` are ignored — the v6 FE is the
//     path-compressed DP-style trie (the other compressed tries are
//     IPv4-specific structures); `fe_service_cycles` still sets the FE's
//     abstract service time.
//   * `config.partition_config` is ignored — control bits are selected by
//     the Sec. 3.1 criteria over bits 0..63.
//   * `config.fault` / `config.recovery` work identically to IPv4: the
//     timeout/retry/degraded machinery lives in the shared core, and the
//     degraded slow path resolves against the full-table BinaryTrie6.
#pragma once

#include "core/basic_router_sim.h"
#include "net/prefix6.h"
#include "partition/partition6.h"
#include "trace/trace_gen6.h"
#include "trie/binary_trie6.h"
#include "trie/dp_trie6.h"

namespace spal::core {

/// IPv6 family policy for BasicRouterSim.
struct V6Family {
  using Addr = net::Ipv6Addr;
  using Table = net::RouteTable6;
  using Partition = partition::RotPartition6;
  using Fe = trie::DpTrie6;
  using Oracle = trie::BinaryTrie6;

  static Partition make_partition(const Table& table, int num_lcs,
                                  const RouterConfig& config) {
    return Partition(table, num_lcs, config.partition6_config);
  }
  static Fe build_fe(const Table& table, const RouterConfig& config) {
    (void)config;
    return Fe(table);
  }
  static net::NextHop fe_lookup(const Fe& fe, const Addr& addr) {
    return fe.lookup(addr);
  }
  static void fe_lookup_batch(const Fe& fe, const Addr* keys, std::size_t n,
                              net::NextHop* out) {
    // The v6 FE (DP-style trie) has no interleaved pipeline yet; the batch
    // contract (out[i] == lookup(keys[i])) is met by the scalar loop.
    for (std::size_t i = 0; i < n; ++i) out[i] = fe.lookup(keys[i]);
  }
  static std::size_t fe_storage(const Fe& fe) { return fe.storage_bytes(); }
  // Memory-tier cost model hooks (see V4Family).
  static std::vector<trie::ArenaSpan> fe_arenas(const Fe& fe) {
    return fe.arenas();
  }
  static net::NextHop fe_lookup_counted(const Fe& fe, const Addr& addr,
                                        trie::MemAccessCounter& counter) {
    return fe.lookup_counted(addr, counter);
  }
  static Oracle build_oracle(const Table& table) { return Oracle(table); }
  static net::NextHop oracle_lookup(const Oracle& oracle, const Addr& addr) {
    return oracle.lookup(addr);
  }
  static std::uint64_t hash_bits(const Addr& addr) {
    return addr.hi() * 0x9e3779b97f4a7c15ULL ^ addr.lo();
  }

  // Live route-update pipeline:
  using Update = net::TableUpdate6;
  static std::vector<Update> make_updates(const Table& table,
                                          const net::UpdateStreamConfig& config) {
    return net::generate_update_stream6(table, config);
  }
  static bool fe_supports_update(const Fe& fe) {
    (void)fe;
    return true;  // the DP-style v6 trie always updates in place
  }
  static void fe_insert(Fe& fe, const net::Prefix6& prefix, net::NextHop hop) {
    fe.insert(prefix, hop);
  }
  static void fe_remove(Fe& fe, const net::Prefix6& prefix) { fe.remove(prefix); }
};

class RouterSim6 {
 public:
  RouterSim6(const net::RouteTable6& table, const RouterConfig& config)
      : impl_(table, config) {}

  RouterResult run(const std::vector<std::vector<net::Ipv6Addr>>& streams,
                   bool verify = false) {
    return impl_.run(streams, verify);
  }

  RouterResult run_workload(const trace::WorkloadProfile& profile,
                            bool verify = false) {
    const trace::TraceGenerator6 generator(profile, impl_.table());
    std::vector<std::vector<net::Ipv6Addr>> streams;
    const int num_lcs = impl_.config().num_lcs;
    streams.reserve(static_cast<std::size_t>(num_lcs));
    for (int lc = 0; lc < num_lcs; ++lc) {
      streams.push_back(generator.generate(lc, impl_.config().packets_per_lc));
    }
    return impl_.run(streams, verify);
  }

  const RouterConfig& config() const { return impl_.config(); }
  /// How many shards (worker threads) run() would use; see BasicRouterSim.
  int planned_shards(bool verify = false) const {
    return impl_.planned_shards(verify);
  }
  const partition::RotPartition6& rot() const { return impl_.partition(); }
  std::vector<std::size_t> trie_storage_bytes() const {
    return impl_.fe_storage_bytes();
  }

 private:
  BasicRouterSim<V6Family> impl_;
};

}  // namespace spal::core
