#include "core/router_sim.h"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "trie/simd_dispatch.h"

namespace spal::core {

RouterConfig spal_default_config(int num_lcs) {
  RouterConfig config;
  config.num_lcs = num_lcs;
  config.cache.blocks = 4096;
  config.cache.associativity = 4;
  config.cache.remote_fraction = 0.5;
  config.cache.victim_blocks = 8;
  return config;
}

RouterConfig conventional_config(int num_lcs) {
  RouterConfig config = spal_default_config(num_lcs);
  config.partition = false;
  config.use_lr_cache = false;
  return config;
}

RouterConfig cache_only_config(int num_lcs) {
  RouterConfig config = spal_default_config(num_lcs);
  config.partition = false;
  return config;
}

// --- JSON reporter -------------------------------------------------------
// Hand-rolled emission: the schema is small and fixed (documented in
// DESIGN.md, "JSON report schema"), and the toolchain has no JSON library.

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t value,
                bool comma = true) {
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "\"%s\":%" PRIu64 "%s", key, value,
                comma ? "," : "");
  out += buffer;
}

void append_double(std::string& out, const char* key, double value,
                   bool comma = true) {
  char buffer[96];
  // %.17g round-trips doubles exactly, so a diff of two reports compares
  // the computed values, not a formatting artifact.
  std::snprintf(buffer, sizeof buffer, "\"%s\":%.17g%s", key, value,
                comma ? "," : "");
  out += buffer;
}

void append_latency(std::string& out, const sim::LatencyStats& latency,
                    bool comma = true) {
  out += '{';
  append_u64(out, "count", latency.count());
  append_u64(out, "total_cycles", latency.total_cycles());
  append_double(out, "mean_cycles", latency.mean_cycles());
  append_u64(out, "p50", latency.percentile(0.5));
  append_u64(out, "p90", latency.percentile(0.9));
  append_u64(out, "p99", latency.percentile(0.99));
  append_u64(out, "p999", latency.percentile(0.999));
  append_u64(out, "worst_cycles", latency.worst_cycles(), /*comma=*/false);
  out += '}';
  if (comma) out += ',';
}

void append_cache(std::string& out, const cache::LrCacheStats& stats,
                  bool comma = true) {
  out += '{';
  append_u64(out, "probes", stats.probes);
  append_u64(out, "hits", stats.hits);
  append_u64(out, "loc_hits", stats.loc_hits);
  append_u64(out, "rem_hits", stats.rem_hits);
  append_u64(out, "victim_hits", stats.victim_hits);
  append_u64(out, "waiting_hits", stats.waiting_hits);
  append_u64(out, "misses", stats.misses);
  append_u64(out, "reservations", stats.reservations);
  append_u64(out, "failed_reservations", stats.failed_reservations);
  append_u64(out, "quota_bypasses", stats.quota_bypasses);
  append_u64(out, "failed_promotions", stats.failed_promotions);
  append_u64(out, "fills", stats.fills);
  append_u64(out, "orphan_fills", stats.orphan_fills);
  append_u64(out, "cancelled_reservations", stats.cancelled_reservations);
  append_u64(out, "evictions", stats.evictions);
  append_u64(out, "flushes", stats.flushes);
  append_u64(out, "invalidated_blocks", stats.invalidated_blocks);
  append_double(out, "hit_rate", stats.hit_rate(), /*comma=*/false);
  out += '}';
  if (comma) out += ',';
}

}  // namespace

std::string RouterResult::to_json() const {
  std::string out;
  out.reserve(4096);
  out += '{';
  // Batch-lookup dispatch level the host FE ran at (trie/simd_dispatch.h) —
  // recorded so perf reports are only compared like-for-like.
  out += "\"simd\":\"";
  out += trie::to_string(trie::resolved_simd_level());
  out += "\",";
  append_u64(out, "resolved_packets", resolved_packets);
  append_u64(out, "verify_mismatches", verify_mismatches);
  append_u64(out, "makespan_cycles", makespan_cycles);
  append_u64(out, "fe_lookups", fe_lookups);
  append_u64(out, "remote_requests", remote_requests);
  append_u64(out, "remote_replies", remote_replies);
  append_double(out, "max_fe_utilization", max_fe_utilization);
  append_u64(out, "updates_applied", updates_applied);
  append_u64(out, "blocks_invalidated", blocks_invalidated);
  // Live route-update pipeline counters (all zero with the pipeline off).
  out += "\"update\":{";
  append_u64(out, "applied", update.applied);
  append_u64(out, "announces", update.announces);
  append_u64(out, "withdraws", update.withdraws);
  append_u64(out, "hop_changes", update.hop_changes);
  append_u64(out, "applications", update.applications);
  append_u64(out, "fe_incremental", update.fe_incremental);
  append_u64(out, "fe_rebuilds", update.fe_rebuilds);
  append_u64(out, "update_cost_cycles", update.update_cost_cycles);
  append_u64(out, "update_messages", update.update_messages);
  append_u64(out, "invalidation_messages", update.invalidation_messages);
  append_u64(out, "blocks_invalidated", update.blocks_invalidated);
  append_u64(out, "cache_flushes", update.cache_flushes, /*comma=*/false);
  out += "},";
  // Memory-tier ledger — emitted only when the model ran, so reports from
  // default configurations stay byte-identical to builds without it.
  if (memory.enabled) {
    out += "\"memory\":{";
    append_u64(out, "matching_overhead_cycles", memory.matching_overhead_cycles);
    append_u64(out, "lookups", memory.lookups);
    append_u64(out, "matching_cycles", memory.matching_cycles);
    append_u64(out, "charged_cycles", memory.charged_cycles);
    append_u64(out, "storage_bytes", memory.storage_bytes);
    out += "\"tiers\":[";
    for (std::size_t t = 0; t < memory.tiers.size(); ++t) {
      const MemoryTierStats& tier = memory.tiers[t];
      if (t > 0) out += ',';
      out += "{\"name\":\"";
      out += tier.name;  // tier names are identifiers, no escaping needed
      out += "\",";
      append_u64(out, "capacity_bytes", tier.capacity_bytes);
      append_u64(out, "access_cycles", tier.access_cycles);
      append_u64(out, "placed_bytes", tier.placed_bytes);
      append_u64(out, "placed_arenas", tier.placed_arenas);
      append_u64(out, "accesses", tier.accesses);
      append_u64(out, "cycles", tier.cycles, /*comma=*/false);
      out += '}';
    }
    out += "]},";
  }
  out += "\"latency\":";
  append_latency(out, latency);
  out += "\"cache_total\":";
  append_cache(out, cache_total);
  out += "\"fabric\":{";
  append_u64(out, "messages", fabric.messages);
  append_u64(out, "queueing_cycles", fabric.total_queueing_cycles);
  append_u64(out, "dropped", fabric.dropped);
  append_u64(out, "outage_dropped", fabric.outage_dropped);
  append_u64(out, "jitter_events", fabric.jitter_events);
  append_u64(out, "jitter_cycles", fabric.jitter_cycles);
  out += "\"ports\":[";
  for (std::size_t p = 0; p < fabric.ports.size(); ++p) {
    const fabric::FabricPortStats& port = fabric.ports[p];
    if (p > 0) out += ',';
    out += '{';
    append_u64(out, "sent", port.sent);
    append_u64(out, "received", port.received);
    append_u64(out, "egress_queue_cycles", port.egress_queue_cycles);
    append_u64(out, "ingress_queue_cycles", port.ingress_queue_cycles);
    append_u64(out, "dropped", port.dropped, /*comma=*/false);
    out += '}';
  }
  out += "]},";
  // Fault-and-recovery counters (all zero with the fault layer disabled).
  out += "\"fault\":{";
  append_u64(out, "drops", fault.drops);
  append_u64(out, "outage_drops", fault.outage_drops);
  append_u64(out, "jitter_events", fault.jitter_events);
  append_u64(out, "jitter_cycles", fault.jitter_cycles);
  append_u64(out, "timeouts", fault.timeouts);
  append_u64(out, "retransmits", fault.retransmits);
  append_u64(out, "duplicate_replies", fault.duplicate_replies);
  append_u64(out, "degraded_fallbacks", fault.degraded_fallbacks);
  append_u64(out, "degraded_lookups", fault.degraded_lookups);
  append_u64(out, "reclaimed_waiting_blocks", fault.reclaimed_waiting_blocks);
  out += "\"per_lc_outage_cycles\":[";
  for (std::size_t lc = 0; lc < fault.per_lc_outage_cycles.size(); ++lc) {
    if (lc > 0) out += ',';
    out += std::to_string(fault.per_lc_outage_cycles[lc]);
  }
  out += "]},";
  // Failover ledger — emitted only when replication or migration was
  // configured, so reports from default configurations stay byte-identical
  // to builds without the failover subsystem.
  if (failover.enabled) {
    out += "\"failover\":{";
    append_u64(out, "rerouted_requests", failover.rerouted_requests);
    append_u64(out, "replica_lookups", failover.replica_lookups);
    append_u64(out, "local_replica_serves", failover.local_replica_serves);
    append_u64(out, "probes_sent", failover.probes_sent);
    append_u64(out, "probe_replies_sent", failover.probe_replies_sent);
    append_u64(out, "probe_replies", failover.probe_replies);
    append_u64(out, "suspect_transitions", failover.suspect_transitions);
    append_u64(out, "down_transitions", failover.down_transitions);
    append_u64(out, "recoveries", failover.recoveries);
    append_u64(out, "rejoins", failover.rejoins);
    append_u64(out, "missed_updates", failover.missed_updates);
    append_u64(out, "replica_update_applications",
               failover.replica_update_applications);
    append_u64(out, "acting_primary_applications",
               failover.acting_primary_applications);
    append_u64(out, "resync_fetches", failover.resync_fetches);
    append_u64(out, "resync_chunks", failover.resync_chunks);
    append_u64(out, "resync_entries", failover.resync_entries);
    append_u64(out, "resync_cutovers", failover.resync_cutovers);
    append_u64(out, "migrations", failover.migrations);
    append_u64(out, "migration_chunks", failover.migration_chunks);
    append_u64(out, "snapshot_prefixes", failover.snapshot_prefixes);
    append_u64(out, "double_delivered_updates",
               failover.double_delivered_updates);
    append_u64(out, "cutover_messages", failover.cutover_messages);
    append_u64(out, "migration_invalidated_blocks",
               failover.migration_invalidated_blocks);
    append_u64(out, "cutovers", failover.cutovers);
    append_u64(out, "control_messages", failover.control_messages,
               /*comma=*/false);
    out += "},";
  }
  // Rebalancer ledger — emitted only when the online rebalancer ran, so
  // every other report stays byte-identical. Conservation (checked by
  // spal_report --check): skew_detections == migrations_triggered +
  // skipped_in_flight + skipped_no_target + skipped_budget;
  // skew_detections <= windows; completed + aborted <= triggered; and
  // failover.migrations == completed_migrations.
  if (rebalancer.enabled) {
    out += "\"rebalancer\":{";
    append_u64(out, "windows", rebalancer.windows);
    append_u64(out, "skew_detections", rebalancer.skew_detections);
    append_u64(out, "migrations_triggered", rebalancer.migrations_triggered);
    append_u64(out, "skipped_in_flight", rebalancer.skipped_in_flight);
    append_u64(out, "skipped_no_target", rebalancer.skipped_no_target);
    append_u64(out, "skipped_budget", rebalancer.skipped_budget);
    append_u64(out, "completed_migrations", rebalancer.completed_migrations);
    append_u64(out, "aborted_migrations", rebalancer.aborted_migrations,
               /*comma=*/false);
    out += "},";
  }
  // Lookup latency restricted to arrivals that landed inside an outage
  // window — only priced when the run asked for it.
  if (outage_latency_tracked) {
    out += "\"outage_latency\":";
    append_latency(out, outage_latency);
  }
  out += "\"per_lc\":[";
  for (std::size_t lc = 0; lc < per_lc.size(); ++lc) {
    const LcStats& stats = per_lc[lc];
    if (lc > 0) out += ',';
    out += '{';
    append_u64(out, "lc", lc);
    out += "\"latency\":";
    append_latency(out, lc < per_lc_latency.size() ? per_lc_latency[lc]
                                                   : sim::LatencyStats{});
    out += "\"cache\":";
    append_cache(out, stats.cache);
    out += "\"fe\":{";
    append_u64(out, "lookups", stats.fe_lookups);
    append_u64(out, "busy_cycles", stats.fe_busy_cycles);
    append_u64(out, "queue_wait_cycles", stats.fe_queue_wait_cycles);
    append_double(out, "utilization", stats.fe_utilization, /*comma=*/false);
    out += "},";
    append_u64(out, "waiting_highwater", stats.waiting_highwater,
               /*comma=*/false);
    out += '}';
  }
  out += "],";
  // ψ×ψ request fan-out as an array of rows (src-major).
  out += "\"remote_fanout\":[";
  const std::size_t psi = per_lc.size();
  for (std::size_t src = 0; src < psi; ++src) {
    if (src > 0) out += ',';
    out += '[';
    for (std::size_t home = 0; home < psi; ++home) {
      if (home > 0) out += ',';
      out += std::to_string(remote_fanout[src * psi + home]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

}  // namespace spal::core
