#include "core/router_sim.h"

namespace spal::core {

RouterConfig spal_default_config(int num_lcs) {
  RouterConfig config;
  config.num_lcs = num_lcs;
  config.cache.blocks = 4096;
  config.cache.associativity = 4;
  config.cache.remote_fraction = 0.5;
  config.cache.victim_blocks = 8;
  return config;
}

RouterConfig conventional_config(int num_lcs) {
  RouterConfig config = spal_default_config(num_lcs);
  config.partition = false;
  config.use_lr_cache = false;
  return config;
}

RouterConfig cache_only_config(int num_lcs) {
  RouterConfig config = spal_default_config(num_lcs);
  config.partition = false;
  return config;
}

}  // namespace spal::core
