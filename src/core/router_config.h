// Configuration and result types for the SPAL router simulation, plus
// factory helpers for the paper's comparison points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/lr_cache.h"
#include "core/memory_model.h"
#include "fabric/fabric.h"
#include "partition/partition6.h"
#include "partition/rot_partition.h"
#include "sim/calendar_queue.h"
#include "sim/metrics.h"
#include "trie/lpm.h"

namespace spal::core {

struct RouterConfig {
  int num_lcs = 16;                    ///< ψ
  double line_rate_gbps = 40.0;        ///< per-LC rate (paper: 10 or 40)
  std::size_t packets_per_lc = 300'000;
  int fe_service_cycles = 40;          ///< LPM time at the FE (40 Lulea / 62 DP)
  /// Concurrent lookups one FE can run (deterministic k-server queue).
  /// 1 for SPAL and the conventional router; >1 models designs with
  /// parallel lookup engines such as the length-partitioned baseline [1].
  int fe_parallelism = 1;

  trie::TrieKind trie = trie::TrieKind::kLulea;
  trie::LpmBuildOptions trie_options;

  /// Event-queue implementation driving the simulation. Both engines pop
  /// events in the identical (time, insertion-seq) order, so results are
  /// bit-identical; the calendar queue is O(1) amortized per event and is
  /// the default. kHeap remains for A/B measurement and as a reference.
  sim::EngineKind engine = sim::EngineKind::kCalendar;

  /// How the event engine executes. kSequential runs every LC's events in
  /// one global queue on the calling thread — the bit-identity oracle.
  /// kSharded splits the LCs across worker threads, each owning its LCs'
  /// queue, cache, FE, and trie fragment, exchanging fabric messages over
  /// SPSC rings under a conservative-lookahead protocol; its
  /// RouterResult::to_json() is byte-identical to kSequential.
  /// Configurations the sharded engine cannot reproduce exactly (periodic
  /// cache flushes, verify-under-churn) silently fall back to one shard.
  enum class ExecutionMode : std::uint8_t { kSequential, kSharded };
  ExecutionMode execution = ExecutionMode::kSequential;
  /// Worker threads for kSharded: 0 = one per hardware thread, clamped to
  /// [1, num_lcs]. Thread count never affects results, only wall-clock.
  int threads = 0;

  bool partition = true;               ///< SPAL table fragmentation
  partition::PartitionConfig partition_config;
  /// IPv6 partition knobs (RouterSim6); mirrors partition_config, including
  /// the traffic-aware `weights` vector.
  partition::Partition6Config partition6_config;

  bool use_lr_cache = true;
  cache::LrCacheConfig cache;          ///< per-LC LR-cache (β, γ, ...)

  fabric::FabricConfig fabric;         ///< ports is overridden with num_lcs

  /// Fabric fault injection (drops, jitter, per-port outage windows).
  /// Disabled by default; a disabled fault layer leaves every simulation
  /// bit-identical to a build without it (no RNG draws, no timeout events).
  fabric::FaultConfig fault;

  /// Remote-lookup recovery protocol, armed only when `fault.enabled`:
  /// every fabric request carries a sequence number and arms a timeout in
  /// the event engine; expiry retransmits with exponential backoff, and an
  /// exhausted request falls back to a degraded local full-resolution
  /// lookup so the simulator never strands a packet.
  struct RecoveryConfig {
    /// Cycles before the first retransmit; doubles per retry. 0 = auto:
    /// 16 × (2 × fabric traversal latency + fe_service_cycles), covering a
    /// lightly loaded round trip with generous slack.
    std::uint64_t timeout_cycles = 0;
    int max_retries = 3;
    /// Service time of the degraded slow path: an unpartitioned full-table
    /// LPM at the arrival LC, costed like the paper's conventional router
    /// (62 cycles = the DP-trie FE time it quotes).
    int degraded_service_cycles = 62;
  };
  RecoveryConfig recovery;

  /// Fragment replication for LC failover. With R > 0 every fragment keeps
  /// R live copies on the next R LCs around the ring
  /// (partition::assign_replicas), a per-observer health state machine
  /// tracks remote LCs (alive → suspect after `suspect_after` consecutive
  /// request timeouts → down after `down_after`, probe-based rejoin), and
  /// remote lookups re-route to the best live copy instead of retrying a
  /// dead primary into the degraded fallback. replicas == 0 (default)
  /// leaves every run and report byte-identical to a build without the
  /// subsystem.
  struct ReplicationConfig {
    int replicas = 0;      ///< R failover copies per fragment; 0 = off
    int suspect_after = 2; ///< timeout streak that starts re-routing
    int down_after = 4;    ///< timeout streak that marks the LC down
    /// Minimum cycles between probes an observer sends a non-alive LC.
    /// 0 = auto: the resolved request timeout base.
    std::uint64_t probe_interval_cycles = 0;
  };
  ReplicationConfig replication;

  /// Operator-initiated live fragment migration: at `start_cycle`, LC
  /// `from` snapshots its fragment and streams it to LC `to` in chunks of
  /// `chunk_prefixes` entries every `chunk_interval_cycles`; route updates
  /// applied at `from` during the copy are double-delivered to `to`; once
  /// `to` has built the staged FE the fragment is cut over (home lookups
  /// re-map to `to`, every LR-cache drops blocks homed on the fragment).
  /// The same copy-then-cutover machinery resyncs a rejoining LC that
  /// missed updates during an outage. Forces the sequential engine.
  struct MigrationConfig {
    bool enabled = false;
    int from = -1;
    int to = -1;
    std::uint64_t start_cycle = 0;
    std::size_t chunk_prefixes = 512;
    std::uint64_t chunk_interval_cycles = 8;
  };
  MigrationConfig migration;

  /// Online load rebalancer: samples per-fragment lookup-arrival counters
  /// over fixed windows, and when the per-LC offered load skews past
  /// `skew_threshold` (max / mean), drives the copy-then-cutover migration
  /// machinery to move the hottest fragment off the most-loaded LC onto the
  /// least-loaded *healthy* LC (never one whose port is down, that is
  /// stale, or that any observer's health row marks suspect/down). At most
  /// one migration is in flight at a time and at most `max_migrations` per
  /// run; every decision is ledgered in RebalancerStats (skew_detections ==
  /// migrations_triggered + every skip, audited by `spal_report --check`).
  /// Mutually exclusive with `migration` (operator-initiated). Forces the
  /// sequential engine. Disabled (default) leaves every run and report
  /// byte-identical to builds without the subsystem.
  struct RebalancerConfig {
    bool enabled = false;
    std::uint64_t window_cycles = 50'000;  ///< sampling window length
    double skew_threshold = 1.5;           ///< trigger at max/mean >= this
    int max_migrations = 4;                ///< migration budget per run
    /// Test hook (WILL_FAIL CI leg): drop the deltas buffered during the
    /// copy phase instead of replaying them into the staged table, making
    /// the migrated structure genuinely stale so verify mode must fail.
    bool inject_stale = false;
  };
  RebalancerConfig rebalancer;

  /// Record a second latency histogram restricted to packets that arrived
  /// while any configured outage window was open (the mid-outage latency
  /// timeline bench_failover plots). Off by default: no extra JSON.
  bool track_outage_latency = false;

  /// Early cache-block recording on a miss (the W-bit mechanism). Disabled
  /// only by the ablation bench: without it, every packet of a burst that
  /// misses goes to the FE / fabric individually.
  bool early_reservation = true;

  /// What a routing-table update does to the LR-caches.
  enum class UpdatePolicy {
    kFlushAll,             ///< the paper's mechanism: invalidate everything
    kSelectiveInvalidate,  ///< extension: drop only blocks the changed
                           ///< prefix covers (Sec. 3.2's "incremental and
                           ///< very frequent" regime)
  };

  /// If nonzero, a routing-table update is applied every this-many cycles
  /// (the paper's runs fit within one update period, so its default is off).
  /// Updates are modelled as re-announcements of an existing prefix: cache
  /// state is disturbed per `update_policy` while lookup results stay
  /// verifiable against the oracle.
  std::uint64_t flush_interval_cycles = 0;
  UpdatePolicy update_policy = UpdatePolicy::kFlushAll;

  /// Live route-update pipeline: a BGP-style announce/withdraw/hop-change
  /// stream (net/update_stream.h) injected while packets are in flight.
  /// Each update is routed over the fabric to every home LC whose fragment
  /// holds the prefix, applied there (incrementally when the FE supports
  /// it, by epoch rebuild otherwise), and followed by LR-cache invalidation
  /// on all LCs per `update_policy`. Fully off at interval_cycles == 0:
  /// zero-update runs are bit-identical to builds without this pipeline.
  struct LiveUpdateConfig {
    std::uint64_t interval_cycles = 0;  ///< injection period; 0 = disabled
    std::size_t count = 0;              ///< updates to inject; 0 = fill horizon
    std::uint64_t seed = 7;             ///< update-stream seed
    double announce_fraction = 0.25;
    double withdraw_fraction = 0.25;
    std::uint32_t next_hops = 16;
    /// Cost charged to the home LC's FE per incremental trie update (the
    /// DP-trie insert/remove walk; the paper quotes 62 cycles for a full
    /// DP lookup, and an update walks the same path once).
    std::uint64_t incremental_cost_cycles = 62;
    /// Epoch-rebuild cost for FEs without incremental update support:
    /// base + entries × milli / 1000 cycles (integer math, deterministic).
    std::uint64_t rebuild_base_cycles = 1'000;
    std::uint64_t rebuild_millicycles_per_entry = 250;
  };
  LiveUpdateConfig update;

  /// CRAM-lens memory-tier cost model (core/memory_model.h). When enabled,
  /// each FE's arenas are packed into the configured tiers by cumulative
  /// footprint and every FE job is priced by a counted lookup instead of
  /// the flat `fe_service_cycles`; RouterResult::memory then carries the
  /// per-tier byte/access ledger. Off by default — a disabled model leaves
  /// runs and reports byte-identical to builds without it.
  MemoryModelConfig memory;

  std::uint64_t seed = 42;
};

/// Exponential retry backoff with a clamped shift: `base << attempt`, the
/// doubling capped at kBackoffMaxShift doublings and the result saturated
/// at kBackoffCeilingCycles so `now + 1 + backoff` can never wrap the
/// 64-bit cycle clock no matter how large `timeout_cycles` × `max_retries`
/// is configured. Bit-identical to the historical `base << min(attempt,20)`
/// whenever that expression did not overflow.
inline constexpr int kBackoffMaxShift = 20;
inline constexpr std::uint64_t kBackoffCeilingCycles = std::uint64_t{1} << 62;

inline std::uint64_t backoff_cycles(std::uint64_t base, int attempt) {
  if (base == 0) return 0;
  const int shift =
      attempt < 0 ? 0 : (attempt < kBackoffMaxShift ? attempt : kBackoffMaxShift);
  if (base >= (kBackoffCeilingCycles >> shift)) return kBackoffCeilingCycles;
  return base << shift;
}

/// Fault-and-recovery counters for one run: the fabric-level losses plus
/// the router-level protocol activity they triggered. All zero when the
/// fault layer is disabled. Conservation (checked by `spal_report --check`):
/// timeouts == retransmits + degraded_fallbacks, and every dropped message
/// is answered by a retransmit or a degraded fallback
/// (retransmits + degraded_fallbacks >= drops).
struct FaultStats {
  std::uint64_t drops = 0;           ///< fabric messages lost (random + outage)
  std::uint64_t outage_drops = 0;    ///< subset of drops: an endpoint was down
  std::uint64_t jitter_events = 0;   ///< delivered messages arriving late
  std::uint64_t jitter_cycles = 0;   ///< extra traversal cycles added
  std::uint64_t timeouts = 0;        ///< non-stale request timeouts fired
  std::uint64_t retransmits = 0;     ///< timeout-triggered request resends
  std::uint64_t duplicate_replies = 0;  ///< replies for an already-settled seq
  std::uint64_t degraded_fallbacks = 0;  ///< requests exhausted into slow path
  std::uint64_t degraded_lookups = 0;    ///< packets resolved by the slow path
  std::uint64_t reclaimed_waiting_blocks = 0;  ///< W=1 blocks released on fallback
  /// Configured outage cycles per LC port (from FaultConfig, index = LC).
  std::vector<std::uint64_t> per_lc_outage_cycles;
};

/// Live route-update pipeline counters for one run. All zero when the
/// pipeline is off. Ledger (checked by `spal_report --check`):
/// applied == announces + withdraws + hop_changes;
/// applications == fe_incremental + fe_rebuilds and >= applied (a prefix
/// with star control bits applies at several home LCs);
/// blocks_invalidated == cache_total.invalidated_blocks.
struct UpdateStats {
  std::uint64_t applied = 0;        ///< updates injected and applied
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t hop_changes = 0;
  std::uint64_t applications = 0;   ///< per-home-LC fragment applications
  std::uint64_t fe_incremental = 0; ///< applications via trie insert/remove
  std::uint64_t fe_rebuilds = 0;    ///< applications via epoch rebuild
  std::uint64_t update_cost_cycles = 0;  ///< FE cycles charged for updates
  std::uint64_t update_messages = 0;     ///< fabric control msgs carrying updates
  std::uint64_t invalidation_messages = 0;  ///< fabric invalidation broadcasts
  std::uint64_t blocks_invalidated = 0;  ///< cache blocks dropped by updates
  std::uint64_t cache_flushes = 0;       ///< full flushes under kFlushAll
};

/// Failover / replication / migration ledger for one run. All zero (and
/// absent from the JSON report) unless replication or migration is
/// configured. Conservation rules (checked by `spal_report --check`):
/// control_messages == probes_sent + probe_replies_sent + resync_fetches +
/// resync_chunks + migration_chunks + double_delivered_updates +
/// cutover_messages; probe_replies <= probe_replies_sent <= probes_sent;
/// rejoins <= probe_replies; recoveries >= rejoins;
/// down_transitions <= suspect_transitions; cutovers == migrations +
/// resync_cutovers; resync_entries <= missed_updates;
/// local_replica_serves + rerouted served lookups <= replica_lookups.
/// With failover present the update ledger generalizes to
/// update_messages == applications - resync_entries and
/// invalidation_messages == (applications - replica_update_applications -
/// resync_entries + acting_primary_applications) × (ψ - 1), and the fault
/// rule to drops <= retransmits + degraded_fallbacks + probes_sent +
/// probe_replies_sent (probes are fire-and-forget and may be lost).
struct FailoverStats {
  bool enabled = false;  ///< replication or migration configured
  // Re-routing.
  std::uint64_t rerouted_requests = 0;  ///< requests sent to a non-primary LC
  std::uint64_t replica_lookups = 0;    ///< FE jobs run on a copy (not the
                                        ///< holder's own fragment)
  std::uint64_t local_replica_serves = 0;  ///< misses served from the arrival
                                           ///< LC's own resident copy
  // Health state machine (per-observer view of remote LCs).
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_replies_sent = 0;
  std::uint64_t probe_replies = 0;         ///< received back at the observer
  std::uint64_t suspect_transitions = 0;
  std::uint64_t down_transitions = 0;
  std::uint64_t recoveries = 0;  ///< suspect/down -> alive, any evidence
  std::uint64_t rejoins = 0;     ///< subset of recoveries: via a probe reply
  // Update handling under failover + resync of rejoining LCs.
  std::uint64_t missed_updates = 0;  ///< per-home applications deferred while
                                     ///< the home was down or stale
  std::uint64_t replica_update_applications = 0;  ///< applications to copies
  std::uint64_t acting_primary_applications = 0;  ///< subset of copy
      ///< applications that also broadcast invalidations for a dead primary
  std::uint64_t resync_fetches = 0;
  std::uint64_t resync_chunks = 0;
  std::uint64_t resync_entries = 0;  ///< deferred updates re-applied at the
                                     ///< rejoined primary
  std::uint64_t resync_cutovers = 0;
  // Operator-initiated fragment migration.
  std::uint64_t migrations = 0;
  std::uint64_t migration_chunks = 0;
  std::uint64_t snapshot_prefixes = 0;
  std::uint64_t double_delivered_updates = 0;
  std::uint64_t cutover_messages = 0;  ///< ready + cutover broadcast msgs
  std::uint64_t migration_invalidated_blocks = 0;
  std::uint64_t cutovers = 0;          ///< migrations + resync cutovers
  std::uint64_t control_messages = 0;  ///< every failover fabric send
};

/// Online-rebalancer ledger for one run. All zero (and absent from the
/// JSON report) unless the rebalancer is enabled. Conservation rules
/// (checked by `spal_report --check`):
/// skew_detections == migrations_triggered + skipped_in_flight +
/// skipped_no_target + skipped_budget (every detection is acted on or has
/// a ledgered reason it was not); skew_detections <= windows;
/// completed_migrations + aborted_migrations <= migrations_triggered (a
/// migration still copying at run end is neither); and — the rebalancer
/// being the only migration driver when enabled —
/// failover.migrations == completed_migrations.
struct RebalancerStats {
  bool enabled = false;
  std::uint64_t windows = 0;              ///< sampling windows evaluated
  std::uint64_t skew_detections = 0;      ///< windows with max/mean >= threshold
  std::uint64_t migrations_triggered = 0; ///< kMigrateStart scheduled
  std::uint64_t skipped_in_flight = 0;    ///< a migration was already running
  std::uint64_t skipped_no_target = 0;    ///< no healthy, less-loaded target
  std::uint64_t skipped_budget = 0;       ///< max_migrations exhausted
  std::uint64_t completed_migrations = 0; ///< cutovers reached
  std::uint64_t aborted_migrations = 0;   ///< target died mid-copy; rolled back
};

/// Per-LC structured counters (index = arrival/home LC). The latency
/// breakdown for the same LC lives in RouterResult::per_lc_latency.
struct LcStats {
  cache::LrCacheStats cache;     ///< this LC's LR-cache counters
  std::uint64_t fe_lookups = 0;  ///< FE jobs executed at this LC
  std::uint64_t fe_busy_cycles = 0;        ///< total FE service cycles
  std::uint64_t fe_queue_wait_cycles = 0;  ///< job start minus submission
  double fe_utilization = 0.0;   ///< busy / (makespan × fe_parallelism)
  /// Peak number of requesters simultaneously parked on this LC's waiting
  /// lists (the W-bit structure's worst-case footprint).
  std::uint64_t waiting_highwater = 0;
};

/// Aggregate outcome of one simulation run.
struct RouterResult {
  sim::LatencyStats latency;             ///< per-packet lookup times (cycles)
  /// Per-arrival-LC latency breakdown (index = LC). Exposes load imbalance,
  /// e.g. the hot LC that homes two control-bit groups at non-power-of-2 ψ.
  std::vector<sim::LatencyStats> per_lc_latency;
  /// Per-LC cache/FE/waiting-list counters (index = LC).
  std::vector<LcStats> per_lc;
  cache::LrCacheStats cache_total;       ///< summed over all LR-caches
  fabric::FabricStats fabric;
  FaultStats fault;                      ///< fault injection + recovery
  /// ψ×ψ remote-request fan-out, row-major: [src_lc * ψ + home_lc] counts
  /// the lookup requests src sent to home over the fabric.
  std::vector<std::uint64_t> remote_fanout;
  std::uint64_t fe_lookups = 0;          ///< LPM executions across all FEs
  std::uint64_t remote_requests = 0;     ///< fabric request messages
  std::uint64_t remote_replies = 0;      ///< fabric reply messages
  std::uint64_t makespan_cycles = 0;     ///< last event time
  double max_fe_utilization = 0.0;       ///< busiest FE's busy fraction
  std::uint64_t resolved_packets = 0;
  std::uint64_t verify_mismatches = 0;   ///< vs full-table oracle (verify mode)
  std::uint64_t updates_applied = 0;     ///< routing-table updates simulated
  std::uint64_t blocks_invalidated = 0;  ///< via selective invalidation
  UpdateStats update;                    ///< live update-pipeline counters
  /// Failover/replication/migration ledger; emitted in to_json only when
  /// `failover.enabled` — absent otherwise so R = 0 reports stay
  /// byte-identical to builds without the subsystem.
  FailoverStats failover;
  /// Online-rebalancer ledger; emitted in to_json only when
  /// `rebalancer.enabled` — absent otherwise so disabled-rebalancer reports
  /// stay byte-identical to builds without the subsystem.
  RebalancerStats rebalancer;
  /// Latency of packets that arrived inside an outage window; populated
  /// (and emitted) only when `RouterConfig::track_outage_latency` and an
  /// outage is configured.
  bool outage_latency_tracked = false;
  sim::LatencyStats outage_latency;
  /// Memory-tier ledger; populated (and emitted in to_json) only when
  /// `RouterConfig::memory.enabled` — absent otherwise so reports stay
  /// byte-identical to builds without the model.
  MemoryStats memory;

  double mean_lookup_cycles() const { return latency.mean_cycles(); }
  std::uint64_t worst_lookup_cycles() const { return latency.worst_cycles(); }
  /// Router-level forwarding rate in packets/s (all ψ LCs), the paper's
  /// "336 million packets per second" metric.
  double router_packets_per_second(int num_lcs, double cycle_ns = 5.0) const {
    return latency.lookups_per_second(cycle_ns) * num_lcs;
  }

  /// Machine-readable report: one JSON object with router-wide metrics,
  /// the per-LC breakdown, per-port fabric stats, and the fan-out matrix.
  /// Schema documented in DESIGN.md ("JSON report schema").
  std::string to_json() const;
};

/// The paper's default SPAL configuration: ψ LCs, 4K-block 4-way LR-cache
/// with γ = 50%, victim cache of 8, 40 Gbps line rate, 40-cycle Lulea FE.
RouterConfig spal_default_config(int num_lcs);

/// Baseline A — a conventional router: full table in every LC, no LR-cache.
/// (The paper compares against its FE time with queueing "ignored
/// optimistically"; at 40 Gbps the FE is overloaded and measured means
/// include queueing.)
RouterConfig conventional_config(int num_lcs);

/// Baseline B — LR-caches without table partitioning (the processor-caching
/// approach of Chiueh & Pradhan); every lookup is local.
RouterConfig cache_only_config(int num_lcs);

}  // namespace spal::core
