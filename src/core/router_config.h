// Configuration and result types for the SPAL router simulation, plus
// factory helpers for the paper's comparison points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/lr_cache.h"
#include "core/memory_model.h"
#include "fabric/fabric.h"
#include "partition/rot_partition.h"
#include "sim/calendar_queue.h"
#include "sim/metrics.h"
#include "trie/lpm.h"

namespace spal::core {

struct RouterConfig {
  int num_lcs = 16;                    ///< ψ
  double line_rate_gbps = 40.0;        ///< per-LC rate (paper: 10 or 40)
  std::size_t packets_per_lc = 300'000;
  int fe_service_cycles = 40;          ///< LPM time at the FE (40 Lulea / 62 DP)
  /// Concurrent lookups one FE can run (deterministic k-server queue).
  /// 1 for SPAL and the conventional router; >1 models designs with
  /// parallel lookup engines such as the length-partitioned baseline [1].
  int fe_parallelism = 1;

  trie::TrieKind trie = trie::TrieKind::kLulea;
  trie::LpmBuildOptions trie_options;

  /// Event-queue implementation driving the simulation. Both engines pop
  /// events in the identical (time, insertion-seq) order, so results are
  /// bit-identical; the calendar queue is O(1) amortized per event and is
  /// the default. kHeap remains for A/B measurement and as a reference.
  sim::EngineKind engine = sim::EngineKind::kCalendar;

  /// How the event engine executes. kSequential runs every LC's events in
  /// one global queue on the calling thread — the bit-identity oracle.
  /// kSharded splits the LCs across worker threads, each owning its LCs'
  /// queue, cache, FE, and trie fragment, exchanging fabric messages over
  /// SPSC rings under a conservative-lookahead protocol; its
  /// RouterResult::to_json() is byte-identical to kSequential.
  /// Configurations the sharded engine cannot reproduce exactly (periodic
  /// cache flushes, verify-under-churn) silently fall back to one shard.
  enum class ExecutionMode : std::uint8_t { kSequential, kSharded };
  ExecutionMode execution = ExecutionMode::kSequential;
  /// Worker threads for kSharded: 0 = one per hardware thread, clamped to
  /// [1, num_lcs]. Thread count never affects results, only wall-clock.
  int threads = 0;

  bool partition = true;               ///< SPAL table fragmentation
  partition::PartitionConfig partition_config;

  bool use_lr_cache = true;
  cache::LrCacheConfig cache;          ///< per-LC LR-cache (β, γ, ...)

  fabric::FabricConfig fabric;         ///< ports is overridden with num_lcs

  /// Fabric fault injection (drops, jitter, per-port outage windows).
  /// Disabled by default; a disabled fault layer leaves every simulation
  /// bit-identical to a build without it (no RNG draws, no timeout events).
  fabric::FaultConfig fault;

  /// Remote-lookup recovery protocol, armed only when `fault.enabled`:
  /// every fabric request carries a sequence number and arms a timeout in
  /// the event engine; expiry retransmits with exponential backoff, and an
  /// exhausted request falls back to a degraded local full-resolution
  /// lookup so the simulator never strands a packet.
  struct RecoveryConfig {
    /// Cycles before the first retransmit; doubles per retry. 0 = auto:
    /// 16 × (2 × fabric traversal latency + fe_service_cycles), covering a
    /// lightly loaded round trip with generous slack.
    std::uint64_t timeout_cycles = 0;
    int max_retries = 3;
    /// Service time of the degraded slow path: an unpartitioned full-table
    /// LPM at the arrival LC, costed like the paper's conventional router
    /// (62 cycles = the DP-trie FE time it quotes).
    int degraded_service_cycles = 62;
  };
  RecoveryConfig recovery;

  /// Early cache-block recording on a miss (the W-bit mechanism). Disabled
  /// only by the ablation bench: without it, every packet of a burst that
  /// misses goes to the FE / fabric individually.
  bool early_reservation = true;

  /// What a routing-table update does to the LR-caches.
  enum class UpdatePolicy {
    kFlushAll,             ///< the paper's mechanism: invalidate everything
    kSelectiveInvalidate,  ///< extension: drop only blocks the changed
                           ///< prefix covers (Sec. 3.2's "incremental and
                           ///< very frequent" regime)
  };

  /// If nonzero, a routing-table update is applied every this-many cycles
  /// (the paper's runs fit within one update period, so its default is off).
  /// Updates are modelled as re-announcements of an existing prefix: cache
  /// state is disturbed per `update_policy` while lookup results stay
  /// verifiable against the oracle.
  std::uint64_t flush_interval_cycles = 0;
  UpdatePolicy update_policy = UpdatePolicy::kFlushAll;

  /// Live route-update pipeline: a BGP-style announce/withdraw/hop-change
  /// stream (net/update_stream.h) injected while packets are in flight.
  /// Each update is routed over the fabric to every home LC whose fragment
  /// holds the prefix, applied there (incrementally when the FE supports
  /// it, by epoch rebuild otherwise), and followed by LR-cache invalidation
  /// on all LCs per `update_policy`. Fully off at interval_cycles == 0:
  /// zero-update runs are bit-identical to builds without this pipeline.
  struct LiveUpdateConfig {
    std::uint64_t interval_cycles = 0;  ///< injection period; 0 = disabled
    std::size_t count = 0;              ///< updates to inject; 0 = fill horizon
    std::uint64_t seed = 7;             ///< update-stream seed
    double announce_fraction = 0.25;
    double withdraw_fraction = 0.25;
    std::uint32_t next_hops = 16;
    /// Cost charged to the home LC's FE per incremental trie update (the
    /// DP-trie insert/remove walk; the paper quotes 62 cycles for a full
    /// DP lookup, and an update walks the same path once).
    std::uint64_t incremental_cost_cycles = 62;
    /// Epoch-rebuild cost for FEs without incremental update support:
    /// base + entries × milli / 1000 cycles (integer math, deterministic).
    std::uint64_t rebuild_base_cycles = 1'000;
    std::uint64_t rebuild_millicycles_per_entry = 250;
  };
  LiveUpdateConfig update;

  /// CRAM-lens memory-tier cost model (core/memory_model.h). When enabled,
  /// each FE's arenas are packed into the configured tiers by cumulative
  /// footprint and every FE job is priced by a counted lookup instead of
  /// the flat `fe_service_cycles`; RouterResult::memory then carries the
  /// per-tier byte/access ledger. Off by default — a disabled model leaves
  /// runs and reports byte-identical to builds without it.
  MemoryModelConfig memory;

  std::uint64_t seed = 42;
};

/// Fault-and-recovery counters for one run: the fabric-level losses plus
/// the router-level protocol activity they triggered. All zero when the
/// fault layer is disabled. Conservation (checked by `spal_report --check`):
/// timeouts == retransmits + degraded_fallbacks, and every dropped message
/// is answered by a retransmit or a degraded fallback
/// (retransmits + degraded_fallbacks >= drops).
struct FaultStats {
  std::uint64_t drops = 0;           ///< fabric messages lost (random + outage)
  std::uint64_t outage_drops = 0;    ///< subset of drops: an endpoint was down
  std::uint64_t jitter_events = 0;   ///< delivered messages arriving late
  std::uint64_t jitter_cycles = 0;   ///< extra traversal cycles added
  std::uint64_t timeouts = 0;        ///< non-stale request timeouts fired
  std::uint64_t retransmits = 0;     ///< timeout-triggered request resends
  std::uint64_t duplicate_replies = 0;  ///< replies for an already-settled seq
  std::uint64_t degraded_fallbacks = 0;  ///< requests exhausted into slow path
  std::uint64_t degraded_lookups = 0;    ///< packets resolved by the slow path
  std::uint64_t reclaimed_waiting_blocks = 0;  ///< W=1 blocks released on fallback
  /// Configured outage cycles per LC port (from FaultConfig, index = LC).
  std::vector<std::uint64_t> per_lc_outage_cycles;
};

/// Live route-update pipeline counters for one run. All zero when the
/// pipeline is off. Ledger (checked by `spal_report --check`):
/// applied == announces + withdraws + hop_changes;
/// applications == fe_incremental + fe_rebuilds and >= applied (a prefix
/// with star control bits applies at several home LCs);
/// blocks_invalidated == cache_total.invalidated_blocks.
struct UpdateStats {
  std::uint64_t applied = 0;        ///< updates injected and applied
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t hop_changes = 0;
  std::uint64_t applications = 0;   ///< per-home-LC fragment applications
  std::uint64_t fe_incremental = 0; ///< applications via trie insert/remove
  std::uint64_t fe_rebuilds = 0;    ///< applications via epoch rebuild
  std::uint64_t update_cost_cycles = 0;  ///< FE cycles charged for updates
  std::uint64_t update_messages = 0;     ///< fabric control msgs carrying updates
  std::uint64_t invalidation_messages = 0;  ///< fabric invalidation broadcasts
  std::uint64_t blocks_invalidated = 0;  ///< cache blocks dropped by updates
  std::uint64_t cache_flushes = 0;       ///< full flushes under kFlushAll
};

/// Per-LC structured counters (index = arrival/home LC). The latency
/// breakdown for the same LC lives in RouterResult::per_lc_latency.
struct LcStats {
  cache::LrCacheStats cache;     ///< this LC's LR-cache counters
  std::uint64_t fe_lookups = 0;  ///< FE jobs executed at this LC
  std::uint64_t fe_busy_cycles = 0;        ///< total FE service cycles
  std::uint64_t fe_queue_wait_cycles = 0;  ///< job start minus submission
  double fe_utilization = 0.0;   ///< busy / (makespan × fe_parallelism)
  /// Peak number of requesters simultaneously parked on this LC's waiting
  /// lists (the W-bit structure's worst-case footprint).
  std::uint64_t waiting_highwater = 0;
};

/// Aggregate outcome of one simulation run.
struct RouterResult {
  sim::LatencyStats latency;             ///< per-packet lookup times (cycles)
  /// Per-arrival-LC latency breakdown (index = LC). Exposes load imbalance,
  /// e.g. the hot LC that homes two control-bit groups at non-power-of-2 ψ.
  std::vector<sim::LatencyStats> per_lc_latency;
  /// Per-LC cache/FE/waiting-list counters (index = LC).
  std::vector<LcStats> per_lc;
  cache::LrCacheStats cache_total;       ///< summed over all LR-caches
  fabric::FabricStats fabric;
  FaultStats fault;                      ///< fault injection + recovery
  /// ψ×ψ remote-request fan-out, row-major: [src_lc * ψ + home_lc] counts
  /// the lookup requests src sent to home over the fabric.
  std::vector<std::uint64_t> remote_fanout;
  std::uint64_t fe_lookups = 0;          ///< LPM executions across all FEs
  std::uint64_t remote_requests = 0;     ///< fabric request messages
  std::uint64_t remote_replies = 0;      ///< fabric reply messages
  std::uint64_t makespan_cycles = 0;     ///< last event time
  double max_fe_utilization = 0.0;       ///< busiest FE's busy fraction
  std::uint64_t resolved_packets = 0;
  std::uint64_t verify_mismatches = 0;   ///< vs full-table oracle (verify mode)
  std::uint64_t updates_applied = 0;     ///< routing-table updates simulated
  std::uint64_t blocks_invalidated = 0;  ///< via selective invalidation
  UpdateStats update;                    ///< live update-pipeline counters
  /// Memory-tier ledger; populated (and emitted in to_json) only when
  /// `RouterConfig::memory.enabled` — absent otherwise so reports stay
  /// byte-identical to builds without the model.
  MemoryStats memory;

  double mean_lookup_cycles() const { return latency.mean_cycles(); }
  std::uint64_t worst_lookup_cycles() const { return latency.worst_cycles(); }
  /// Router-level forwarding rate in packets/s (all ψ LCs), the paper's
  /// "336 million packets per second" metric.
  double router_packets_per_second(int num_lcs, double cycle_ns = 5.0) const {
    return latency.lookups_per_second(cycle_ns) * num_lcs;
  }

  /// Machine-readable report: one JSON object with router-wide metrics,
  /// the per-LC breakdown, per-port fabric stats, and the fan-out matrix.
  /// Schema documented in DESIGN.md ("JSON report schema").
  std::string to_json() const;
};

/// The paper's default SPAL configuration: ψ LCs, 4K-block 4-way LR-cache
/// with γ = 50%, victim cache of 8, 40 Gbps line rate, 40-cycle Lulea FE.
RouterConfig spal_default_config(int num_lcs);

/// Baseline A — a conventional router: full table in every LC, no LR-cache.
/// (The paper compares against its FE time with queueing "ignored
/// optimistically"; at 40 Gbps the FE is overloaded and measured means
/// include queueing.)
RouterConfig conventional_config(int num_lcs);

/// Baseline B — LR-caches without table partitioning (the processor-caching
/// approach of Chiueh & Pradhan); every lookup is local.
RouterConfig cache_only_config(int num_lcs);

}  // namespace spal::core
