// CRAM-lens memory-tier cost model for the forwarding engines.
//
// The paper prices every trie memory access at a flat 12 ns because it
// assumes the whole structure sits in line-card SRAM (Sec. 5.1). At
// internet scale (1M+ IPv4 prefixes) that assumption breaks: the built
// structure spills out of SRAM and the cold arenas land in slower tiers.
// This model makes the spill explicit: each trie reports its flat storage
// arenas hottest-first (trie::LpmIndex::arenas()), the model packs them
// into a configurable SRAM/L2/LLC/DRAM hierarchy by cumulative footprint,
// and a counted lookup is priced as
//
//   matching_overhead_cycles + sum_over_arenas(accesses(a) * cycles(tier(a)))
//
// With everything resident in the first tier at its default 2 cycles and a
// 24-cycle matching overhead, the model reproduces the paper's flat
// constants (40 cycles for the ~8-access Lulea walk, 62 for the ~19-access
// DP walk), so enabling it on a paper-sized table is calibration, not a
// behavior change. The model is off by default; a disabled model leaves
// every simulation and JSON report byte-identical to a build without it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trie/lpm.h"

namespace spal::core {

/// One level of the modelled memory hierarchy. Tiers are ordered fastest
/// first; `capacity_bytes == 0` marks an unbounded backing tier (anything
/// listed after an unbounded tier is unreachable).
struct MemoryTier {
  std::string name;                  ///< "sram", "l2", ... (JSON-safe)
  std::uint64_t capacity_bytes = 0;  ///< per-LC budget; 0 = unbounded
  std::uint32_t access_cycles = 1;   ///< cycles per dependent access
};

/// Upper bound on modelled tiers; per-tier counters on the hot path are
/// fixed-size arrays so the event handlers never allocate.
inline constexpr std::size_t kMaxMemoryTiers = 8;

struct MemoryModelConfig {
  /// Off by default: the FE timeline then charges the flat
  /// `fe_service_cycles` and reports carry no "memory" object.
  bool enabled = false;
  /// Fixed per-lookup cost of the matching code around the memory walk —
  /// the paper's ~120 ns (Sec. 5.1) at 5 ns cycles.
  std::uint32_t matching_overhead_cycles = 24;
  std::vector<MemoryTier> tiers = default_tiers();

  /// sram 2 MiB @ 2 cycles, l2 8 MiB @ 8, llc 32 MiB @ 20, dram unbounded
  /// @ 70. The first tier's 2 cycles (10 ns) stands in for the paper's
  /// 12 ns SRAM access.
  static std::vector<MemoryTier> default_tiers();
};

/// Per-shard accumulation of memory-model activity; merged into
/// RouterResult::memory after the run (same discipline as ShardCounters).
struct MemoryCounters {
  std::uint64_t lookups = 0;         ///< counted FE lookups priced
  std::uint64_t charged_cycles = 0;  ///< total service cycles, overhead incl.
  std::array<std::uint64_t, kMaxMemoryTiers> tier_accesses{};
  std::array<std::uint64_t, kMaxMemoryTiers> tier_cycles{};
};

/// Placement of one trie arena into the hierarchy.
struct ArenaPlacement {
  std::string name;          ///< arena name (from trie::ArenaSpan)
  std::uint64_t bytes = 0;
  std::size_t tier = 0;      ///< index into the configured tiers
};

/// Tier placement for one built FE: assigns each arena (hottest first) to
/// the first tier whose cumulative capacity still covers the arena's end
/// offset, then prices counted lookups against the assignment. Arenas are
/// never split across tiers — the cliff when a hot arena first spills is
/// exactly the effect the scale bench measures.
class MemoryModel {
 public:
  MemoryModel() = default;

  /// Throws std::invalid_argument on an empty or oversized tier list.
  /// `base_offset_bytes` shifts the cumulative packing start: an LC that
  /// hosts failover replica copies packs its own FE first (offset 0) and
  /// each copy after the bytes already resident, so a copy's arenas land in
  /// the tiers left over once the primary structure has claimed the fast
  /// ones.
  MemoryModel(const MemoryModelConfig& config,
              const std::vector<trie::ArenaSpan>& arenas,
              std::uint64_t base_offset_bytes = 0);

  const std::vector<ArenaPlacement>& placements() const { return placements_; }

  /// Total bytes placed (== the FE's storage_bytes()).
  std::uint64_t placed_bytes() const { return placed_bytes_; }

  /// Service cycles for one lookup whose per-arena access counts are in
  /// `counter`, without touching any statistics (bench/offline use).
  std::uint64_t lookup_cycles(const trie::MemAccessCounter& counter) const;

  /// lookup_cycles() plus accumulation into the per-tier counters.
  std::uint64_t charge(const trie::MemAccessCounter& counter,
                       MemoryCounters& out) const;

 private:
  std::vector<ArenaPlacement> placements_;
  std::uint64_t placed_bytes_ = 0;
  std::uint32_t matching_overhead_cycles_ = 0;
  std::size_t tier_count_ = 0;
  std::array<std::uint32_t, kMaxMemoryTiers> tier_access_cycles_{};
  /// arena index -> tier index, clamped like MemAccessCounter's arenas.
  std::array<std::uint8_t, trie::kMaxArenas> arena_tier_{};
};

/// Per-tier byte/access accounting for one run, summed over all LCs.
/// Conservation (checked by `spal_report --check` when present):
/// lookups == fe_lookups; charged_cycles == matching_cycles + Σ tier cycles;
/// Σ placed_bytes == storage_bytes; Σ per_lc fe.busy_cycles ==
/// charged_cycles + update.update_cost_cycles.
struct MemoryTierStats {
  std::string name;
  std::uint64_t capacity_bytes = 0;   ///< per-LC budget (config echo)
  std::uint32_t access_cycles = 0;    ///< cycles per access (config echo)
  std::uint64_t placed_bytes = 0;     ///< arena bytes resident, all LCs
  std::uint64_t placed_arenas = 0;    ///< arenas resident, all LCs
  std::uint64_t accesses = 0;
  std::uint64_t cycles = 0;
};

struct MemoryStats {
  bool enabled = false;
  std::uint32_t matching_overhead_cycles = 0;
  std::uint64_t lookups = 0;          ///< priced FE lookups
  std::uint64_t matching_cycles = 0;  ///< lookups × matching_overhead_cycles
  std::uint64_t charged_cycles = 0;   ///< total FE cycles the model charged
  std::uint64_t storage_bytes = 0;    ///< Σ per-LC FE storage placed
  std::vector<MemoryTierStats> tiers;
};

}  // namespace spal::core
