// SPAL — speedy packet lookup for high-performance routers.
//
// Umbrella header for the public API. Typical use:
//
//   #include "core/spal.h"
//
//   auto table = spal::net::make_rt2();                       // routing table
//   auto config = spal::core::spal_default_config(/*ψ=*/16);  // paper defaults
//   spal::core::RouterSim router(table, config);
//   auto result = router.run_workload(spal::trace::profile_d75());
//   std::cout << result.mean_lookup_cycles() << " cycles/lookup\n";
//
// Layers (each usable on its own):
//   net/        addresses, prefixes, routing tables, synthetic BGP tables
//   trie/       LPM indexes: binary, DP, Lulea, LC tries (+ memory models)
//   partition/  SPAL's control-bit selection and ROT-partitions
//   cache/      the LR-cache (M/W bits, γ mix, victim cache)
//   fabric/     switching-fabric latency / port-contention model
//   trace/      synthetic destination streams with tunable locality
//   sim/        event queue, packet timing, latency metrics
//   core/       the assembled router simulation and baselines
#pragma once

#include "cache/lr_cache.h"
#include "core/router_config.h"
#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "fabric/fabric.h"
#include "fabric/queues.h"
#include "net/ip_addr.h"
#include "net/prefix.h"
#include "net/prefix6.h"
#include "net/route_table.h"
#include "net/table_gen.h"
#include "net/update_stream.h"
#include "partition/bit_selector.h"
#include "partition/partition6.h"
#include "partition/rot_partition.h"
#include "sim/calendar_queue.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "sim/packet_source.h"
#include "sim/sweep.h"
#include "trace/trace_gen.h"
#include "trie/binary_trie.h"
#include "trie/binary_trie6.h"
#include "trie/dp_trie.h"
#include "trie/dp_trie6.h"
#include "trie/gupta_trie.h"
#include "trie/lc_trie.h"
#include "trie/lc_trie6.h"
#include "trie/lpm.h"
#include "trie/lulea_trie.h"
#include "trie/stride_trie.h"
