#include "core/memory_model.h"

#include <stdexcept>

namespace spal::core {

std::vector<MemoryTier> MemoryModelConfig::default_tiers() {
  return {
      {"sram", std::uint64_t{2} << 20, 2},
      {"l2", std::uint64_t{8} << 20, 8},
      {"llc", std::uint64_t{32} << 20, 20},
      {"dram", 0, 70},
  };
}

MemoryModel::MemoryModel(const MemoryModelConfig& config,
                         const std::vector<trie::ArenaSpan>& arenas,
                         std::uint64_t base_offset_bytes)
    : matching_overhead_cycles_(config.matching_overhead_cycles),
      tier_count_(config.tiers.size()) {
  if (config.tiers.empty()) {
    throw std::invalid_argument("MemoryModel: at least one tier required");
  }
  if (config.tiers.size() > kMaxMemoryTiers) {
    throw std::invalid_argument("MemoryModel: too many tiers");
  }
  for (std::size_t t = 0; t < tier_count_; ++t) {
    tier_access_cycles_[t] = config.tiers[t].access_cycles;
  }
  // Cumulative packing: arena end offsets are non-decreasing, so walking
  // the tier boundary forward keeps the assignment monotone — once an
  // arena spills past a boundary, every colder arena does too. A nonzero
  // base offset models bytes already resident (the host LC's own FE and any
  // hotter replica copies); packing simply resumes past them.
  placements_.reserve(arenas.size());
  std::uint64_t end = base_offset_bytes;
  std::size_t tier = 0;
  std::uint64_t boundary = config.tiers[0].capacity_bytes;
  bool unbounded = config.tiers[0].capacity_bytes == 0;
  for (std::size_t a = 0; a < arenas.size(); ++a) {
    end += arenas[a].bytes;
    while (!unbounded && end > boundary && tier + 1 < tier_count_) {
      ++tier;
      unbounded = config.tiers[tier].capacity_bytes == 0;
      boundary += config.tiers[tier].capacity_bytes;
    }
    placements_.push_back(ArenaPlacement{std::string(arenas[a].name),
                                         arenas[a].bytes, tier});
    if (a < trie::kMaxArenas) {
      arena_tier_[a] = static_cast<std::uint8_t>(tier);
    }
  }
  // Accesses MemAccessCounter clamped into its last slot price like the
  // coldest placed arena.
  for (std::size_t a = arenas.size(); a < trie::kMaxArenas; ++a) {
    arena_tier_[a] = static_cast<std::uint8_t>(tier);
  }
  placed_bytes_ = end - base_offset_bytes;
}

std::uint64_t MemoryModel::lookup_cycles(
    const trie::MemAccessCounter& counter) const {
  std::uint64_t cycles = matching_overhead_cycles_;
  for (std::size_t a = 0; a < trie::kMaxArenas; ++a) {
    const std::uint64_t accesses = counter.arena_total(a);
    if (accesses == 0) continue;
    cycles += accesses * tier_access_cycles_[arena_tier_[a]];
  }
  return cycles;
}

std::uint64_t MemoryModel::charge(const trie::MemAccessCounter& counter,
                                  MemoryCounters& out) const {
  std::uint64_t cycles = matching_overhead_cycles_;
  for (std::size_t a = 0; a < trie::kMaxArenas; ++a) {
    const std::uint64_t accesses = counter.arena_total(a);
    if (accesses == 0) continue;
    const std::size_t tier = arena_tier_[a];
    const std::uint64_t tier_cycles = accesses * tier_access_cycles_[tier];
    out.tier_accesses[tier] += accesses;
    out.tier_cycles[tier] += tier_cycles;
    cycles += tier_cycles;
  }
  ++out.lookups;
  out.charged_cycles += cycles;
  return cycles;
}

}  // namespace spal::core
