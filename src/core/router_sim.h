// The IPv4 SPAL router: a discrete-event simulation of the full lookup flow
// of paper Sec. 3.3 over ψ line cards.
//
// Per-packet flow (all times in 5 ns cycles):
//   1. A packet arrives at its arrival LC and probes that LC's LR-cache
//      (at most one probe per cycle per cache — probes contend for the
//      port). A completed-block hit resolves the lookup in the next cycle.
//   2. A W=1 hit parks the packet on the block's waiting list.
//   3. On a miss, a block is reserved early (W=1) and the LR1 detector
//      routes the lookup: if the destination's control bits name this LC,
//      the packet enters the local FE queue (deterministic service, e.g.
//      40 cycles for the Lulea trie); otherwise a request crosses the
//      switching fabric to the home LC, where the same probe/reserve/FE
//      flow runs, and the reply crosses back, fills the arrival LC's block
//      with M=REM, and releases all parked packets.
//   4. An FE completion fills the local block with M=LOC and serves every
//      waiter — local packets resolve, remote requesters get replies.
//
// The simulation is event-driven (O(events)); FEs are deterministic
// k-server queues tracked by next-free-time bookkeeping, and the fabric
// model adds traversal latency plus per-port serialization.
//
// With `config.fault.enabled`, the fabric is lossy (seeded drops, jitter,
// per-port outage windows) and every remote request runs a timeout/retry
// protocol: sequence-numbered requests, exponential backoff up to
// `recovery.max_retries`, duplicate-reply suppression, and — when retries
// are exhausted — a degraded local full-table lookup at the
// conventional-router cost, with the arrival LC's W=1 block reclaimed so
// the lost reply cannot leak cache quota. See DESIGN.md ("Fault model").
//
// The machinery is shared with the IPv6 router (basic_router_sim.h /
// router_sim6.h) through an address-family policy.
#pragma once

#include "core/basic_router_sim.h"
#include "net/route_table.h"
#include "partition/rot_partition.h"
#include "trace/trace_gen.h"
#include "trie/binary_trie.h"
#include "trie/lpm.h"

namespace spal::core {

/// IPv4 family policy for BasicRouterSim.
struct V4Family {
  using Addr = net::Ipv4Addr;
  using Table = net::RouteTable;
  using Partition = partition::RotPartition;
  using Fe = std::unique_ptr<trie::LpmIndex>;
  using Oracle = trie::BinaryTrie;

  static Partition make_partition(const Table& table, int num_lcs,
                                  const RouterConfig& config) {
    return Partition(table, num_lcs, config.partition_config);
  }
  static Fe build_fe(const Table& table, const RouterConfig& config) {
    return trie::build_lpm(config.trie, table, config.trie_options);
  }
  static net::NextHop fe_lookup(const Fe& fe, const Addr& addr) {
    return fe->lookup(addr);
  }
  static void fe_lookup_batch(const Fe& fe, const Addr* keys, std::size_t n,
                              net::NextHop* out) {
    fe->lookup_batch(keys, n, out);
  }
  static std::size_t fe_storage(const Fe& fe) { return fe->storage_bytes(); }
  // Memory-tier cost model hooks: the arena list (hottest first) the model
  // places, and the counted lookup it prices jobs with.
  static std::vector<trie::ArenaSpan> fe_arenas(const Fe& fe) {
    return fe->arenas();
  }
  static net::NextHop fe_lookup_counted(const Fe& fe, const Addr& addr,
                                        trie::MemAccessCounter& counter) {
    return fe->lookup_counted(addr, counter);
  }
  static Oracle build_oracle(const Table& table) { return Oracle(table); }
  static net::NextHop oracle_lookup(const Oracle& oracle, const Addr& addr) {
    return oracle.lookup(addr);
  }
  static std::uint64_t hash_bits(const Addr& addr) { return addr.value(); }

  // Live route-update pipeline:
  using Update = net::TableUpdate;
  static std::vector<Update> make_updates(const Table& table,
                                          const net::UpdateStreamConfig& config) {
    return net::generate_update_stream(table, config);
  }
  static bool fe_supports_update(const Fe& fe) {
    return fe->supports_incremental_update();
  }
  static void fe_insert(Fe& fe, const net::Prefix& prefix, net::NextHop hop) {
    fe->insert(prefix, hop);
  }
  static void fe_remove(Fe& fe, const net::Prefix& prefix) { fe->remove(prefix); }
};

class RouterSim {
 public:
  /// Builds the router: fragments `table` (if configured), builds one trie
  /// per LC over its forwarding table, and instantiates LR-caches/fabric.
  RouterSim(const net::RouteTable& table, const RouterConfig& config)
      : impl_(table, config) {}

  /// Runs one simulation over per-LC destination streams (streams.size()
  /// must equal ψ). With `verify` set, every resolved next hop is checked
  /// against a full-table oracle and mismatches are counted.
  RouterResult run(const std::vector<std::vector<net::Ipv4Addr>>& streams,
                   bool verify = false) {
    return impl_.run(streams, verify);
  }

  /// Convenience: generates streams from a workload profile and runs.
  RouterResult run_workload(const trace::WorkloadProfile& profile,
                            bool verify = false) {
    const trace::TraceGenerator generator(profile, full_table_for_traces());
    std::vector<std::vector<net::Ipv4Addr>> streams;
    const int num_lcs = impl_.config().num_lcs;
    streams.reserve(static_cast<std::size_t>(num_lcs));
    for (int lc = 0; lc < num_lcs; ++lc) {
      streams.push_back(generator.generate(lc, impl_.config().packets_per_lc));
    }
    return impl_.run(streams, verify);
  }

  const RouterConfig& config() const { return impl_.config(); }
  /// How many shards (worker threads) run() would use; 1 under kSequential
  /// or when the configuration forces the solo engine (see BasicRouterSim).
  int planned_shards(bool verify = false) const {
    return impl_.planned_shards(verify);
  }
  /// Partition diagnostics (control bits, per-LC table sizes).
  const partition::RotPartition& rot() const { return impl_.partition(); }
  /// Per-LC forwarding-trie storage in bytes.
  std::vector<std::size_t> trie_storage_bytes() const {
    return impl_.fe_storage_bytes();
  }
  /// Host-side lookups through LC `lc`'s built trie (batch pipeline in
  /// chunks of `batch` keys when batch > 1, scalar otherwise).
  void host_fe_lookup(int lc, const net::Ipv4Addr* keys, std::size_t n,
                      net::NextHop* out, std::size_t batch) const {
    impl_.fe_host_lookup(lc, keys, n, out, batch);
  }

 private:
  /// Workload streams are drawn from the whole routing table (the union of
  /// the partitions); the simulation core already holds that copy.
  const net::RouteTable& full_table_for_traces() const { return impl_.table(); }

  BasicRouterSim<V4Family> impl_;
};

}  // namespace spal::core
