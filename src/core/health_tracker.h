// Per-LC health state machine for fragment failover.
//
// Every line card keeps its own view of every remote LC's health — a row of
// alive / suspect / down entries driven purely by evidence the observer
// itself sees: a request timeout against a target bumps its streak
// (alive → suspect at `suspect_after` consecutive timeouts, suspect → down
// at `down_after`), and any reply or probe reply from the target resets it
// to alive. Rows are observer-owned, so in the sharded engine each row is
// read and written only by the shard that owns the observing LC — no locks,
// and the canonical event order makes the state evolution bit-identical to
// the sequential engine.
//
// Probing: an observer that finds a target non-alive may send it a probe,
// paced by `probe_interval` per (observer, target) pair. The tracker only
// does the pacing bookkeeping; sending the probe (and losing it to the same
// outage that killed the target) is the router core's business.
#pragma once

#include <cstdint>
#include <vector>

namespace spal::core {

enum class PeerState : std::uint8_t { kAlive, kSuspect, kDown };

class HealthTracker {
 public:
  /// State-machine edge reported back to the caller so it can keep
  /// shard-local transition counters.
  enum class Transition : std::uint8_t { kNone, kSuspect, kDown };

  HealthTracker() = default;
  HealthTracker(int num_lcs, int suspect_after, int down_after)
      : num_lcs_(num_lcs),
        suspect_after_(suspect_after < 1 ? 1 : suspect_after),
        down_after_(down_after < suspect_after ? suspect_after : down_after),
        entries_(static_cast<std::size_t>(num_lcs) *
                 static_cast<std::size_t>(num_lcs)) {}

  /// Forget everything (between independent runs).
  void reset() {
    for (Entry& e : entries_) e = Entry{};
  }

  PeerState state(int observer, int target) const {
    return at(observer, target).state;
  }
  bool alive(int observer, int target) const {
    return at(observer, target).state == PeerState::kAlive;
  }

  /// A request the observer sent `target` timed out. Returns the state
  /// transition this evidence caused, if any.
  Transition note_timeout(int observer, int target) {
    Entry& e = at(observer, target);
    ++e.streak;
    if (e.state == PeerState::kAlive && e.streak >= suspect_after_) {
      e.state = PeerState::kSuspect;
      return Transition::kSuspect;
    }
    if (e.state == PeerState::kSuspect && e.streak >= down_after_) {
      e.state = PeerState::kDown;
      return Transition::kDown;
    }
    return Transition::kNone;
  }

  /// The observer heard from `target` (data reply or probe reply). Returns
  /// true when this revived a non-alive entry (a recovery).
  bool note_alive(int observer, int target) {
    Entry& e = at(observer, target);
    const bool revived = e.state != PeerState::kAlive;
    e.state = PeerState::kAlive;
    e.streak = 0;
    return revived;
  }

  bool probe_due(int observer, int target, std::uint64_t now) const {
    return now >= at(observer, target).next_probe;
  }
  void probe_sent(int observer, int target, std::uint64_t now,
                  std::uint64_t interval) {
    at(observer, target).next_probe = now + (interval < 1 ? 1 : interval);
  }

  int num_lcs() const { return num_lcs_; }

 private:
  struct Entry {
    PeerState state = PeerState::kAlive;
    int streak = 0;                 ///< consecutive timeouts since last reply
    std::uint64_t next_probe = 0;   ///< earliest cycle the next probe may go
  };

  Entry& at(int observer, int target) {
    return entries_[static_cast<std::size_t>(observer) *
                        static_cast<std::size_t>(num_lcs_) +
                    static_cast<std::size_t>(target)];
  }
  const Entry& at(int observer, int target) const {
    return entries_[static_cast<std::size_t>(observer) *
                        static_cast<std::size_t>(num_lcs_) +
                    static_cast<std::size_t>(target)];
  }

  int num_lcs_ = 0;
  int suspect_after_ = 1;
  int down_after_ = 1;
  std::vector<Entry> entries_;
};

}  // namespace spal::core
