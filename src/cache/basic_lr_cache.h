// Address-family-generic LR-cache implementation. See lr_cache.h for the
// design commentary (M/W bits, γ ways quotas, victim cache) — that header
// also provides the IPv4 alias `LrCache` every IPv4 component uses, while
// the IPv6 router instantiates BasicLrCache<net::Ipv6Addr>.
//
// Requirements on Addr: regular value type with operator==, plus an
// overload of lr_cache_set_bits(addr) yielding the 32 low-entropy bits the
// set index is drawn from.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "net/ip_addr.h"
#include "net/route_table.h"

namespace spal::cache {

/// Conventional replacement policy applied among eviction candidates.
enum class Replacement : std::uint8_t { kLru, kFifo, kRandom };

/// The M status bit: where the cached result was produced.
enum class Origin : std::uint8_t { kLocal, kRemote };

struct LrCacheConfig {
  std::size_t blocks = 4096;          ///< β, total blocks
  std::size_t associativity = 4;      ///< paper's choice (Sec. 3.2)
  double remote_fraction = 0.5;       ///< γ, share of each set for REM blocks
  std::size_t victim_blocks = 8;      ///< 0 disables the victim cache
  Replacement replacement = Replacement::kLru;
  Replacement victim_replacement = Replacement::kLru;
  std::uint64_t seed = 0x1004;        ///< used by the random policy only
};

/// Outcome of a probe.
enum class ProbeState : std::uint8_t {
  kHit,      ///< completed block found; next_hop is valid
  kWaiting,  ///< block found but W=1; park the packet on the waiting list
  kMiss,     ///< not present
};

struct ProbeResult {
  ProbeState state = ProbeState::kMiss;
  net::NextHop next_hop = net::kNoRoute;
};

struct LrCacheStats {
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;          ///< completed-block hits (incl. victim hits)
  std::uint64_t loc_hits = 0;      ///< hits on M=LOC blocks (hits = loc + rem)
  std::uint64_t rem_hits = 0;      ///< hits on M=REM blocks
  std::uint64_t victim_hits = 0;   ///< subset of hits served by the victim cache
  std::uint64_t waiting_hits = 0;  ///< probes that matched a W=1 block
  std::uint64_t misses = 0;
  std::uint64_t reservations = 0;
  std::uint64_t failed_reservations = 0;  ///< quota full of waiting blocks
  std::uint64_t quota_bypasses = 0;       ///< origin has zero ways (not cached)
  std::uint64_t failed_promotions = 0;    ///< victim hit kept in victim cache
  std::uint64_t fills = 0;
  std::uint64_t orphan_fills = 0;  ///< reply arrived after flush removed block
  std::uint64_t cancelled_reservations = 0;  ///< W=1 blocks reclaimed on timeout
  std::uint64_t evictions = 0;
  std::uint64_t flushes = 0;
  std::uint64_t invalidated_blocks = 0;  ///< blocks dropped by invalidate_matching

  double hit_rate() const {
    return probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes);
  }

  void accumulate(const LrCacheStats& other) {
    probes += other.probes;
    hits += other.hits;
    loc_hits += other.loc_hits;
    rem_hits += other.rem_hits;
    victim_hits += other.victim_hits;
    waiting_hits += other.waiting_hits;
    misses += other.misses;
    reservations += other.reservations;
    failed_reservations += other.failed_reservations;
    quota_bypasses += other.quota_bypasses;
    failed_promotions += other.failed_promotions;
    fills += other.fills;
    orphan_fills += other.orphan_fills;
    cancelled_reservations += other.cancelled_reservations;
    evictions += other.evictions;
    flushes += other.flushes;
    invalidated_blocks += other.invalidated_blocks;
  }
};

/// Set-index source bits per address family.
inline std::uint32_t lr_cache_set_bits(net::Ipv4Addr addr) { return addr.value(); }
inline std::uint32_t lr_cache_set_bits(const net::Ipv6Addr& addr) {
  return static_cast<std::uint32_t>(addr.lo());
}

template <typename Addr>
class BasicLrCache {
 public:
  /// Throws std::invalid_argument unless blocks is a nonzero multiple of
  /// the associativity and the set count is a power of two.
  explicit BasicLrCache(const LrCacheConfig& config)
      : config_(config), rng_(config.seed) {
    if (config.associativity == 0 || config.blocks == 0 ||
        config.blocks % config.associativity != 0) {
      throw std::invalid_argument(
          "LrCache: blocks must be a nonzero multiple of associativity");
    }
    sets_ = config.blocks / config.associativity;
    if (!std::has_single_bit(sets_)) {
      throw std::invalid_argument("LrCache: set count must be a power of two");
    }
    if (config.remote_fraction < 0.0 || config.remote_fraction > 1.0) {
      throw std::invalid_argument("LrCache: remote_fraction outside [0,1]");
    }
    blocks_.resize(config.blocks);
    victim_.resize(config.victim_blocks);
  }

  /// Looks `addr` up in its set and the victim cache simultaneously.
  ProbeResult probe(const Addr& addr, std::uint64_t now) {
    ++stats_.probes;
    if (Block* block = find_in_set(addr); block != nullptr) {
      if (block->waiting) {
        ++stats_.waiting_hits;
        return ProbeResult{ProbeState::kWaiting, net::kNoRoute};
      }
      block->last_use = now;
      ++stats_.hits;
      count_hit_origin(block->origin);
      return ProbeResult{ProbeState::kHit, block->next_hop};
    }
    // The victim cache is searched simultaneously (Sec. 3.2); on a hit the
    // block is promoted back into its set.
    if (Block* block = find_victim_entry(addr); block != nullptr) {
      ++stats_.hits;
      ++stats_.victim_hits;
      count_hit_origin(block->origin);
      const Block promoted = *block;
      block->valid = false;  // free the slot: promote() may demote into it
      if (!promote(promoted, now)) {
        // Promotion declined (origin quota entirely waiting, or zero ways
        // at this γ): restore the entry instead of destroying a valid
        // result — it stays servable from the victim cache.
        *block = promoted;
        block->last_use = now;
        ++stats_.failed_promotions;
      }
      return ProbeResult{ProbeState::kHit, promoted.next_hop};
    }
    ++stats_.misses;
    return ProbeResult{ProbeState::kMiss, net::kNoRoute};
  }

  /// Early recording: reserves a W=1 block (see lr_cache.h).
  bool reserve(const Addr& addr, Origin origin, std::uint64_t now) {
    Block* block = choose_victim(set_index(addr), origin, now);
    if (block == nullptr) {
      ++stats_.failed_reservations;
      return false;
    }
    ++stats_.reservations;
    *block = Block{addr, net::kNoRoute, origin, /*valid=*/true,
                   /*waiting=*/true, now, now};
    return true;
  }

  /// Completes the waiting block for `addr`; false if it was flushed away.
  bool fill(const Addr& addr, net::NextHop next_hop, std::uint64_t now) {
    Block* block = find_in_set(addr);
    if (block == nullptr || !block->waiting) {
      ++stats_.orphan_fills;
      return false;
    }
    block->next_hop = next_hop;
    block->waiting = false;
    block->last_use = now;
    ++stats_.fills;
    return true;
  }

  /// Releases the waiting (W=1) block for `addr` without filling it: the
  /// router's timeout path reclaims blocks whose reply was lost so they
  /// stop pinning their origin's γ quota forever. False when no waiting
  /// block exists (already filled, flushed, or never reserved). Completed
  /// blocks are never touched.
  bool cancel_waiting(const Addr& addr) {
    Block* block = find_in_set(addr);
    if (block == nullptr || !block->waiting) return false;
    block->valid = false;
    ++stats_.cancelled_reservations;
    return true;
  }

  /// Inserts a completed result directly (reserve+fill in one step).
  void insert(const Addr& addr, net::NextHop next_hop, Origin origin,
              std::uint64_t now) {
    if (Block* existing = find_in_set(addr); existing != nullptr) {
      existing->next_hop = next_hop;
      existing->origin = origin;
      existing->waiting = false;
      existing->last_use = now;
      return;
    }
    Block* block = choose_victim(set_index(addr), origin, now);
    if (block == nullptr) return;  // no ways for this origin / quota waiting
    *block = Block{addr, next_hop, origin, /*valid=*/true, /*waiting=*/false,
                   now, now};
  }

  /// Invalidates every block including the victim cache (table update).
  void flush() {
    ++stats_.flushes;
    for (Block& block : blocks_) block.valid = false;
    for (Block& block : victim_) block.valid = false;
  }

  /// Cold restart: flush() plus statistics and RNG reset.
  void reset() {
    for (Block& block : blocks_) block = Block{};
    for (Block& block : victim_) block = Block{};
    stats_ = LrCacheStats{};
    rng_.seed(config_.seed);
  }

  /// Selective invalidation: drops completed blocks `prefix` covers
  /// (victim cache included); waiting blocks are left for their fill.
  template <typename PrefixT>
  std::size_t invalidate_matching(const PrefixT& prefix) {
    std::size_t invalidated = 0;
    const auto drop = [&](Block& block) {
      if (block.valid && !block.waiting && prefix.matches(block.addr)) {
        block.valid = false;
        ++invalidated;
      }
    };
    for (Block& block : blocks_) drop(block);
    for (Block& block : victim_) drop(block);
    stats_.invalidated_blocks += invalidated;
    return invalidated;
  }

  /// Predicate invalidation: drops every completed block whose *address*
  /// satisfies `pred` (victim cache included); waiting blocks are left for
  /// their fill. The migration cutover uses this to shed all blocks homed
  /// on a re-homed fragment — a set no single prefix covers.
  template <typename Pred>
  std::size_t invalidate_if(Pred&& pred) {
    std::size_t invalidated = 0;
    const auto drop = [&](Block& block) {
      if (block.valid && !block.waiting && pred(block.addr)) {
        block.valid = false;
        ++invalidated;
      }
    };
    for (Block& block : blocks_) drop(block);
    for (Block& block : victim_) drop(block);
    stats_.invalidated_blocks += invalidated;
    return invalidated;
  }

  const LrCacheStats& stats() const { return stats_; }
  const LrCacheConfig& config() const { return config_; }
  std::size_t set_count() const { return sets_; }

  /// Valid completed blocks of the given origin (test/diagnostic aid).
  std::size_t count_origin(Origin origin) const {
    std::size_t count = 0;
    for (const Block& block : blocks_) {
      if (block.valid && !block.waiting && block.origin == origin) ++count;
    }
    return count;
  }

  /// Ways of each set devoted to the origin. floor(): a fractional REM
  /// share never rounds a LOC way away (γ = 50% on a direct-mapped cache
  /// keeps the single way for LOC results).
  std::size_t ways(Origin origin) const {
    const auto rem = static_cast<std::size_t>(
        config_.remote_fraction * static_cast<double>(config_.associativity));
    return origin == Origin::kRemote ? rem : config_.associativity - rem;
  }

 private:
  struct Block {
    Addr addr{};
    net::NextHop next_hop = net::kNoRoute;
    Origin origin = Origin::kLocal;
    bool valid = false;
    bool waiting = false;
    std::uint64_t last_use = 0;   ///< LRU stamp
    std::uint64_t inserted = 0;   ///< FIFO stamp
  };

  std::size_t set_index(const Addr& addr) const {
    return lr_cache_set_bits(addr) & (sets_ - 1);
  }

  void count_hit_origin(Origin origin) {
    if (origin == Origin::kLocal) {
      ++stats_.loc_hits;
    } else {
      ++stats_.rem_hits;
    }
  }

  /// Moves a victim-cache hit back into its set (Sec. 3.2). Unlike
  /// insert(), a declined allocation is reported to the caller and is not a
  /// quota bypass — the result is not lost, it stays in the victim cache.
  bool promote(const Block& victim, std::uint64_t now) {
    Block* block = choose_victim(set_index(victim.addr), victim.origin, now,
                                 /*count_quota_bypass=*/false);
    if (block == nullptr) return false;
    *block = victim;
    block->last_use = now;
    block->inserted = now;
    return true;
  }

  Block* find_in_set(const Addr& addr) {
    const std::size_t base = set_index(addr) * config_.associativity;
    for (std::size_t i = 0; i < config_.associativity; ++i) {
      Block& block = blocks_[base + i];
      if (block.valid && block.addr == addr) return &block;
    }
    return nullptr;
  }

  Block* find_victim_entry(const Addr& addr) {
    for (Block& block : victim_) {
      if (block.valid && block.addr == addr) return &block;
    }
    return nullptr;
  }

  std::size_t pick_by_policy(std::vector<std::size_t>& candidates,
                             const std::vector<Block>& pool, Replacement policy) {
    switch (policy) {
      case Replacement::kLru:
        return *std::min_element(candidates.begin(), candidates.end(),
                                 [&](std::size_t a, std::size_t b) {
                                   return pool[a].last_use < pool[b].last_use;
                                 });
      case Replacement::kFifo:
        return *std::min_element(candidates.begin(), candidates.end(),
                                 [&](std::size_t a, std::size_t b) {
                                   return pool[a].inserted < pool[b].inserted;
                                 });
      case Replacement::kRandom:
        return candidates[std::uniform_int_distribution<std::size_t>(
            0, candidates.size() - 1)(rng_)];
    }
    return candidates.front();
  }

  /// Picks the block an `origin` insertion may overwrite under the γ ways
  /// quota; nullptr when the origin has no ways or only waiting blocks.
  Block* choose_victim(std::size_t set, Origin origin, std::uint64_t now,
                       bool count_quota_bypass = true) {
    if (ways(origin) == 0) {
      // This origin is not cached at this γ — but a promotion that keeps
      // its victim-cache entry is not a bypassed (lost) result.
      if (count_quota_bypass) ++stats_.quota_bypasses;
      return nullptr;
    }
    const std::size_t base = set * config_.associativity;
    // Same-origin blocks count against the γ quota (waiting ones included).
    std::vector<std::size_t> same_origin;  // evictable (non-waiting) only
    std::size_t same_origin_valid = 0;
    for (std::size_t i = 0; i < config_.associativity; ++i) {
      const Block& block = blocks_[base + i];
      if (!block.valid || block.origin != origin) continue;
      ++same_origin_valid;
      if (!block.waiting) same_origin.push_back(base + i);
    }
    if (same_origin_valid >= ways(origin)) {
      // Quota reached: replace within the origin's own ways.
      if (same_origin.empty()) return nullptr;  // quota entirely waiting
      Block* block =
          &blocks_[pick_by_policy(same_origin, blocks_, config_.replacement)];
      if (config_.victim_blocks > 0) demote(*block, now);
      return block;
    }
    // Below quota: take an idle block first...
    for (std::size_t i = 0; i < config_.associativity; ++i) {
      if (!blocks_[base + i].valid) return &blocks_[base + i];
    }
    // ...else the other origin necessarily exceeds its quota; reclaim.
    std::vector<std::size_t> other;
    for (std::size_t i = 0; i < config_.associativity; ++i) {
      const Block& block = blocks_[base + i];
      if (block.valid && block.origin != origin && !block.waiting) {
        other.push_back(base + i);
      }
    }
    if (other.empty()) return nullptr;
    Block* block = &blocks_[pick_by_policy(other, blocks_, config_.replacement)];
    if (config_.victim_blocks > 0) demote(*block, now);
    return block;
  }

  /// Demotes a valid block into the victim cache.
  void demote(const Block& block, std::uint64_t now) {
    ++stats_.evictions;
    for (Block& slot : victim_) {
      if (!slot.valid) {
        slot = block;
        slot.last_use = now;
        slot.inserted = now;
        return;
      }
    }
    std::vector<std::size_t> all(victim_.size());
    for (std::size_t i = 0; i < victim_.size(); ++i) all[i] = i;
    const std::size_t slot = pick_by_policy(all, victim_, config_.victim_replacement);
    victim_[slot] = block;
    victim_[slot].last_use = now;
    victim_[slot].inserted = now;
  }

  LrCacheConfig config_;
  std::size_t sets_ = 0;
  std::vector<Block> blocks_;         // sets_ * associativity, set-major
  std::vector<Block> victim_;         // fully associative
  LrCacheStats stats_;
  std::mt19937_64 rng_;
};

}  // namespace spal::cache
