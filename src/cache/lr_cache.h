// The LR-cache: SPAL's on-chip lookup-result cache (paper Sec. 3.2).
//
// A set-associative cache whose blocks each hold one lookup result
// <IP address, Next_hop_LC#> plus three status bits:
//   * availability (invalid / shared),
//   * M ("mix"): whether the result was homed locally (LOC — produced by
//     this LC's own FE) or remotely (REM — obtained over the fabric), and
//   * W ("waiting"): set while a reserved block waits for its reply; packets
//     that hit a waiting block are parked on the block's waiting list
//     instead of being forwarded again (early recording, Sec. 3.2).
//
// Replacement is mix-aware: γ is the fraction of each set *devoted* to REM
// results (the paper's mix value — γ = 25% on a 4-way set means exactly one
// block per set for REM results, Sec. 5.2). Each origin owns ⌊γ·assoc⌋ /
// assoc − ⌊γ·assoc⌋ ways: an insertion whose origin is at its quota
// replaces the least-recent same-origin block (per the configured
// LRU / FIFO / random policy), an origin with zero ways is not cached at
// all (γ = 0 ⇒ remote results are never retained), and idle (invalid)
// blocks are usable by either origin. Waiting blocks are never evicted
// (their waiting lists would be orphaned); if an origin's quota is entirely
// waiting, a new reservation fails and the packet proceeds uncached.
//
// Each LR-cache is paired with a small fully-associative victim cache
// (8 blocks in the paper) probed in the same cycle; victim hits are
// promoted back into the main set.
//
// The implementation is address-family generic (basic_lr_cache.h); this
// header provides the IPv4 instantiation the SPAL router uses. The IPv6
// router uses BasicLrCache<net::Ipv6Addr>.
#pragma once

#include "cache/basic_lr_cache.h"

namespace spal::cache {

using LrCache = BasicLrCache<net::Ipv4Addr>;

}  // namespace spal::cache
