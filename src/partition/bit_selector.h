// Control-bit selection for routing-table fragmentation (paper Sec. 3.1).
//
// A chosen bit position ν splits a prefix set into two subsets: prefixes
// whose bit ν is 0, those whose bit ν is 1, and — because a prefix shorter
// than ν+1 bits has "*" there — prefixes that must be replicated into both.
// With Φ0/Φ1/Φ* counting those classes, the paper's two optimality criteria
// are:
//   (1) minimize Φ* (total replication — each subset is as small as
//       possible), and
//   (2) minimize |Φ0 − Φ1| (the subsets are balanced; prefixes with "*" at
//       ν are ignored since they appear on both sides).
// For multiple control bits the criteria are applied recursively: the next
// bit is evaluated over all current subsets jointly and one common bit is
// chosen for every subset (the partitioning hardware examines the same bit
// positions of every destination address).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/route_table.h"

namespace spal::partition {

/// Φ counts for one candidate bit over one prefix subset.
struct BitStats {
  std::size_t phi0 = 0;     ///< prefixes with bit ν = 0
  std::size_t phi1 = 0;     ///< prefixes with bit ν = 1
  std::size_t phi_star = 0; ///< prefixes with bit ν = * (replicated)

  std::size_t imbalance() const {
    return phi0 > phi1 ? phi0 - phi1 : phi1 - phi0;
  }
};

BitStats compute_bit_stats(std::span<const net::RouteEntry> entries, int bit);

/// Joint score of one candidate bit across every current subset. The paper
/// states the two criteria but not how to arbitrate between them; since
/// both are measured in prefixes (extra replicated copies vs. count
/// imbalance), this implementation minimizes their sum, breaking ties by
/// lower replication. Replication-only ordering would accept degenerate
/// splits (e.g. an empty partition on the paper's own P1..P7 example) and
/// imbalance-only ordering would accept mostly-* high bits that replicate
/// nearly the whole table.
struct BitScore {
  std::size_t replication = 0;  ///< Σ Φ* over subsets (Criterion 1)
  std::size_t imbalance = 0;    ///< Σ |Φ0 − Φ1| over subsets (Criterion 2)

  constexpr std::size_t combined() const { return replication + imbalance; }

  friend constexpr bool operator<(const BitScore& a, const BitScore& b) {
    return std::pair(a.combined(), a.replication) <
           std::pair(b.combined(), b.replication);
  }
};

struct BitSelectorConfig {
  /// Highest bit position considered, inclusive. The paper scans 0..31 but
  /// notes Criterion (1) itself rules out large ν (most prefixes are
  /// <= /24, so a high ν would replicate nearly everything).
  int max_bit = 31;
};

/// Greedily selects `count` control bits for fragmenting `table`, applying
/// the two criteria recursively as described in Sec. 3.1. Returns the chosen
/// bit positions in selection order.
std::vector<int> select_control_bits(const net::RouteTable& table, int count,
                                     const BitSelectorConfig& config = {});

/// Score of a specific bit set: splits `table` by `bits` and reports the
/// summed subset sizes and max-min size spread. Used by tests and the
/// partition-quality benches to compare chosen bits against alternatives.
struct SplitQuality {
  std::size_t total_entries = 0;  ///< Σ subset sizes (≥ table size; replication)
  std::size_t largest = 0;
  std::size_t smallest = 0;
};
SplitQuality evaluate_bits(const net::RouteTable& table,
                           std::span<const int> bits);

}  // namespace spal::partition
