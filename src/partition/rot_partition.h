// ROT-partitions: the per-line-card forwarding tables SPAL fragments a
// routing table into, plus the address → home-LC mapping (paper Secs. 3.1,
// 4).
//
// With η = ⌈log2 ψ⌉ control bits there are 2^η bit-pattern groups. When ψ is
// a power of two, group κ simply lives on LCκ. The paper allows any integer
// ψ ("3, 5, 6, 7, etc.") without spelling out the mapping; here the 2^η
// groups are packed onto ψ LCs by longest-processing-time greedy so that
// per-LC prefix counts stay balanced (documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/route_table.h"
#include "partition/bit_selector.h"

namespace spal::partition {

struct PartitionConfig {
  /// Explicit control bits; if empty they are selected by
  /// select_control_bits() per the paper's two criteria.
  std::vector<int> control_bits;
  BitSelectorConfig selector;
  /// Per-prefix popularity weights, parallel to the input table's entries
  /// (e.g. TraceGenerator::prefix_weights()). Empty or uniform weights take
  /// the count-balanced path exactly; otherwise control-bit selection and
  /// group→LC placement minimize max per-LC *expected load* (weighted.h),
  /// never exceeding the count-balanced assignment's max load.
  std::vector<double> weights;
};

/// A fragmented routing table: one forwarding table per LC plus the mapping
/// machinery the FIL's LR1 detector implements in hardware.
class RotPartition {
 public:
  /// Fragments `table` for a router with `num_lcs` line cards (any integer
  /// >= 1). With num_lcs == 1 there is a single partition equal to `table`
  /// and no control bits.
  RotPartition(const net::RouteTable& table, int num_lcs,
               const PartitionConfig& config = {});

  int num_lcs() const { return static_cast<int>(tables_.size()); }
  std::span<const int> control_bits() const { return control_bits_; }

  /// The η-bit group pattern of an address (its control bits, in selection
  /// order, packed MSB-first).
  std::uint32_t group_of(net::Ipv4Addr addr) const {
    std::uint32_t group = 0;
    for (const int bit : control_bits_) group = (group << 1) | static_cast<std::uint32_t>(addr.bit(bit));
    return group;
  }

  /// Home LC of an address: where its lookup is performed on an LR-cache
  /// miss. This is what LR1 computes from the destination address.
  int home_of(net::Ipv4Addr addr) const {
    return group_to_lc_[group_of(addr)];
  }

  /// Forwarding table of one LC.
  const net::RouteTable& table_of(int lc) const {
    return tables_[static_cast<std::size_t>(lc)];
  }
  std::span<const net::RouteTable> tables() const { return tables_; }

  /// Which LC each of the 2^η groups is assigned to.
  std::span<const int> group_to_lc() const { return group_to_lc_; }

  /// Home LCs of a *prefix*: every LC whose fragment holds (a copy of) it.
  /// A prefix replicates into each group compatible with its tri-state
  /// control bits (a kStar control bit matches both groups), mirroring how
  /// the fragmenter assigns entries. Result is sorted and de-duplicated.
  std::vector<int> homes_of(const net::Prefix& prefix) const;

  /// Per-LC prefix counts (the partition sizes Sec. 4 reports).
  std::vector<std::size_t> partition_sizes() const;

 private:
  std::vector<int> control_bits_;
  std::vector<int> group_to_lc_;           // size 2^η
  std::vector<net::RouteTable> tables_;    // size ψ
};

/// Fragment-sizing summary of a partition (what Sec. 4 reads off its
/// partition-size tables): the per-LC fragment extremes plus the replication
/// overhead that kStar control bits introduce by copying a prefix into every
/// compatible group.
struct FragmentSizing {
  std::size_t input_prefixes = 0;  ///< prefixes in the unfragmented table
  std::size_t total_prefixes = 0;  ///< Σ fragment sizes (replicas included)
  std::size_t min_prefixes = 0;    ///< smallest fragment
  std::size_t max_prefixes = 0;    ///< largest fragment (sizes the SRAM)
  double replication = 1.0;        ///< total / input (>= 1)
  // Failover replication (assign_replicas) footprint — zeros when R = 0.
  int replicas = 0;                      ///< R replica copies per fragment
  std::size_t replica_prefixes = 0;      ///< Σ prefixes held as failover copies
  std::size_t max_prefixes_with_replicas = 0;  ///< worst per-LC residency
};

FragmentSizing fragment_sizing(const RotPartition& partition,
                               std::size_t input_prefixes, int replicas = 0);

/// Failover replica placement: fragment f's primary stays on LC f and its
/// R copies live on LCs (f + 1) .. (f + R) mod ψ — a rotation, so every LC
/// hosts exactly R foreign copies and losing any single LC leaves R live
/// copies of its fragment elsewhere. R is clamped to ψ - 1 (more copies than
/// other LCs is meaningless). Returns, per fragment, the ordered replica LC
/// list (primaries excluded); all lists empty when R <= 0 or ψ <= 1.
std::vector<std::vector<int>> assign_replicas(int num_lcs, int replicas);

/// Smallest ψ in [1, max_lcs] whose *largest* fragment fits a per-LC memory
/// budget, estimating a fragment's trie footprint as prefix count ×
/// `bytes_per_prefix` (measure that ratio on the unfragmented table first).
/// This is the provisioning question behind the paper's Fig. 3: how many
/// line cards until each ROT-partition drops into on-chip SRAM. Returns 0
/// when even ψ = max_lcs overflows the budget.
int min_lcs_for_budget(const net::RouteTable& table,
                       std::size_t budget_bytes, double bytes_per_prefix,
                       int max_lcs = 64, const PartitionConfig& config = {});

/// Baseline of Sec. 2.3 (Akhbarizadeh & Nourani [1]): group prefixes by
/// *length*. Subset sizes vary wildly (≈50% of a backbone table is /24) and
/// every LC keeps all subsets, so per-LC storage does not shrink with ψ.
/// Returns the 33 per-length tables (index = prefix length).
std::vector<net::RouteTable> partition_by_length(const net::RouteTable& table);

}  // namespace spal::partition
