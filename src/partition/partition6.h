// IPv6 table partitioning — the paper's Sec. 6 extension. Same two
// criteria and ROT-partition semantics as IPv4, over 128-bit prefixes.
// Control bits are searched in the first `max_bit + 1` positions; /48-heavy
// v6 tables make bits past ~48 mostly "*", so Criterion (1) rules them out
// exactly as it rules out high IPv4 bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/prefix6.h"
#include "partition/bit_selector.h"

namespace spal::partition {

BitStats compute_bit_stats6(std::span<const net::RouteEntry6> entries, int bit);

struct BitSelector6Config {
  int max_bit = 63;  ///< v6 control bits are drawn from the routing half
};

std::vector<int> select_control_bits6(const net::RouteTable6& table, int count,
                                      const BitSelector6Config& config = {});

struct Partition6Config {
  std::vector<int> control_bits;  ///< explicit; selected when empty
  BitSelector6Config selector;
  /// Per-prefix popularity weights, parallel to the input table's entries;
  /// empty or uniform weights take the count-balanced path exactly (see
  /// PartitionConfig::weights).
  std::vector<double> weights;
};

/// Fragmented IPv6 routing table: one forwarding table per LC plus the
/// address -> home-LC mapping.
class RotPartition6 {
 public:
  RotPartition6(const net::RouteTable6& table, int num_lcs,
                const Partition6Config& config = {});

  int num_lcs() const { return static_cast<int>(tables_.size()); }
  std::span<const int> control_bits() const { return control_bits_; }

  std::uint32_t group_of(const net::Ipv6Addr& addr) const {
    std::uint32_t group = 0;
    for (const int bit : control_bits_) {
      group = (group << 1) | static_cast<std::uint32_t>(addr.bit(bit));
    }
    return group;
  }

  int home_of(const net::Ipv6Addr& addr) const {
    return group_to_lc_[group_of(addr)];
  }

  const net::RouteTable6& table_of(int lc) const {
    return tables_[static_cast<std::size_t>(lc)];
  }
  std::span<const int> group_to_lc() const { return group_to_lc_; }
  std::vector<std::size_t> partition_sizes() const;

  /// Home LCs of a prefix: every LC whose fragment holds (a copy of) it;
  /// see RotPartition::homes_of.
  std::vector<int> homes_of(const net::Prefix6& prefix) const;

 private:
  std::vector<int> control_bits_;
  std::vector<int> group_to_lc_;
  std::vector<net::RouteTable6> tables_;
};

}  // namespace spal::partition
