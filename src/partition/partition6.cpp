#include "partition/partition6.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "partition/generic.h"
#include "partition/weighted.h"

namespace spal::partition {
namespace {

int ceil_log2(int value) {
  return value <= 1 ? 0 : std::bit_width(static_cast<unsigned>(value - 1));
}

}  // namespace

BitStats compute_bit_stats6(std::span<const net::RouteEntry6> entries, int bit) {
  return generic::compute_bit_stats(entries, bit);
}

std::vector<int> select_control_bits6(const net::RouteTable6& table, int count,
                                      const BitSelector6Config& config) {
  return generic::select_control_bits(table, count, config.max_bit);
}

RotPartition6::RotPartition6(const net::RouteTable6& table, int num_lcs,
                             const Partition6Config& config) {
  const int eta = ceil_log2(num_lcs);
  const bool weighted = eta > 0 && !uniform_weights(config.weights);
  control_bits_ = config.control_bits;
  if (!weighted) {
    if (control_bits_.empty() && eta > 0) {
      control_bits_ = select_control_bits6(table, eta, config.selector);
    }
    auto lc_entries = generic::assign_groups(
        table.entries(), std::span<const int>(control_bits_), num_lcs,
        group_to_lc_);
    tables_.reserve(static_cast<std::size_t>(num_lcs));
    for (auto& entries : lc_entries) {
      tables_.emplace_back(std::move(entries));
    }
    return;
  }
  if (config.weights.size() != table.size()) {
    throw std::invalid_argument(
        "RotPartition6: weights must parallel table entries");
  }
  const std::span<const double> weights(config.weights);
  // Same candidate comparison as RotPartition: traffic-aware bit sets (η
  // and, for the ψ == 2^η bijection case, η+1 bits) are kept only when they
  // strictly lower the max per-LC expected load.
  std::vector<std::vector<int>> candidates;
  if (control_bits_.empty()) {
    candidates.push_back(select_control_bits6(table, eta, config.selector));
    for (const int bits : {eta, eta + 1}) {
      auto traffic =
          select_control_bits_weighted6(table, weights, bits, config.selector);
      if (std::find(candidates.begin(), candidates.end(), traffic) ==
          candidates.end()) {
        candidates.push_back(std::move(traffic));
      }
    }
  } else {
    candidates.push_back(control_bits_);
  }
  double best_max = 0.0;
  bool have_best = false;
  for (auto& bits : candidates) {
    std::vector<int> group_to_lc;
    auto lc_entries = generic::assign_groups_weighted(
        table.entries(), weights, std::span<const int>(bits), num_lcs,
        group_to_lc);
    const std::vector<double> per_group = generic::group_loads(
        table.entries(), weights, std::span<const int>(bits));
    std::vector<double> lc_loads(static_cast<std::size_t>(num_lcs), 0.0);
    for (std::size_t g = 0; g < per_group.size(); ++g) {
      lc_loads[static_cast<std::size_t>(group_to_lc[g])] += per_group[g];
    }
    const double max_load =
        *std::max_element(lc_loads.begin(), lc_loads.end());
    if (!have_best || max_load < best_max) {
      have_best = true;
      best_max = max_load;
      control_bits_ = std::move(bits);
      group_to_lc_ = std::move(group_to_lc);
      tables_.clear();
      tables_.reserve(static_cast<std::size_t>(num_lcs));
      for (auto& entries : lc_entries) {
        tables_.emplace_back(std::move(entries));
      }
    }
  }
}

std::vector<std::size_t> RotPartition6::partition_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(tables_.size());
  for (const auto& t : tables_) sizes.push_back(t.size());
  return sizes;
}

std::vector<int> RotPartition6::homes_of(const net::Prefix6& prefix) const {
  if (control_bits_.empty()) return {0};
  std::vector<std::uint32_t> groups{0};
  for (const int bit : control_bits_) {
    const net::PrefixBit value = prefix.bit(bit);
    const std::size_t count = groups.size();
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t base = groups[i] << 1;
      switch (value) {
        case net::PrefixBit::kZero:
          groups[i] = base;
          break;
        case net::PrefixBit::kOne:
          groups[i] = base | 1u;
          break;
        case net::PrefixBit::kStar:
          groups[i] = base;
          groups.push_back(base | 1u);
          break;
      }
    }
  }
  std::vector<int> lcs;
  for (const std::uint32_t g : groups) lcs.push_back(group_to_lc_[g]);
  std::sort(lcs.begin(), lcs.end());
  lcs.erase(std::unique(lcs.begin(), lcs.end()), lcs.end());
  return lcs;
}

}  // namespace spal::partition
