#include "partition/rot_partition.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "partition/generic.h"
#include "partition/weighted.h"

namespace spal::partition {
namespace {

int ceil_log2(int value) {
  return value <= 1 ? 0 : std::bit_width(static_cast<unsigned>(value - 1));
}

}  // namespace

RotPartition::RotPartition(const net::RouteTable& table, int num_lcs,
                           const PartitionConfig& config) {
  const int eta = ceil_log2(num_lcs);
  const bool weighted = eta > 0 && !uniform_weights(config.weights);
  control_bits_ = config.control_bits;
  if (!weighted) {
    if (control_bits_.empty() && eta > 0) {
      control_bits_ = select_control_bits(table, eta, config.selector);
    }
    auto lc_entries = generic::assign_groups(
        table.entries(), std::span<const int>(control_bits_), num_lcs,
        group_to_lc_);
    tables_.reserve(static_cast<std::size_t>(num_lcs));
    for (auto& entries : lc_entries) {
      // A group merge may duplicate an entry that was replicated into two
      // groups packed onto the same LC; RouteTable normalization de-dups.
      tables_.emplace_back(std::move(entries));
    }
    return;
  }
  if (config.weights.size() != table.size()) {
    throw std::invalid_argument(
        "RotPartition: weights must parallel table entries");
  }
  const std::span<const double> weights(config.weights);
  // Candidate bit sets: count-balanced first, then traffic-aware with η
  // bits, then traffic-aware with η+1 bits. A weighted candidate is kept
  // only when it strictly lowers the max per-LC expected load, so the
  // weighted path can never do worse than the count-balanced one
  // (tests/test_weighted_partition.cpp property (c)). The η+1 variant
  // matters when ψ == 2^η: there the group→LC map is a bijection and no
  // placement can unpin a hot group, but 2^(η+1) finer groups give the LPT
  // packing real freedom to pair hot groups with cold ones.
  std::vector<std::vector<int>> candidates;
  if (control_bits_.empty()) {
    candidates.push_back(select_control_bits(table, eta, config.selector));
    for (const int bits : {eta, eta + 1}) {
      auto traffic =
          select_control_bits_weighted(table, weights, bits, config.selector);
      if (std::find(candidates.begin(), candidates.end(), traffic) ==
          candidates.end()) {
        candidates.push_back(std::move(traffic));
      }
    }
  } else {
    candidates.push_back(control_bits_);
  }
  double best_max = 0.0;
  bool have_best = false;
  for (auto& bits : candidates) {
    std::vector<int> group_to_lc;
    auto lc_entries = generic::assign_groups_weighted(
        table.entries(), weights, std::span<const int>(bits), num_lcs,
        group_to_lc);
    const std::vector<double> per_group = generic::group_loads(
        table.entries(), weights, std::span<const int>(bits));
    std::vector<double> lc_loads(static_cast<std::size_t>(num_lcs), 0.0);
    for (std::size_t g = 0; g < per_group.size(); ++g) {
      lc_loads[static_cast<std::size_t>(group_to_lc[g])] += per_group[g];
    }
    const double max_load =
        *std::max_element(lc_loads.begin(), lc_loads.end());
    if (!have_best || max_load < best_max) {
      have_best = true;
      best_max = max_load;
      control_bits_ = std::move(bits);
      group_to_lc_ = std::move(group_to_lc);
      tables_.clear();
      tables_.reserve(static_cast<std::size_t>(num_lcs));
      for (auto& entries : lc_entries) {
        tables_.emplace_back(std::move(entries));
      }
    }
  }
}

std::vector<std::size_t> RotPartition::partition_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(tables_.size());
  for (const auto& t : tables_) sizes.push_back(t.size());
  return sizes;
}

std::vector<int> RotPartition::homes_of(const net::Prefix& prefix) const {
  if (control_bits_.empty()) return {0};
  // Enumerate the groups compatible with the prefix's tri-state control
  // bits — the same rule assign_groups replicates entries by.
  std::vector<std::uint32_t> groups{0};
  for (const int bit : control_bits_) {
    const net::PrefixBit value = prefix.bit(bit);
    const std::size_t count = groups.size();
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t base = groups[i] << 1;
      switch (value) {
        case net::PrefixBit::kZero:
          groups[i] = base;
          break;
        case net::PrefixBit::kOne:
          groups[i] = base | 1u;
          break;
        case net::PrefixBit::kStar:
          groups[i] = base;
          groups.push_back(base | 1u);
          break;
      }
    }
  }
  std::vector<int> lcs;
  for (const std::uint32_t g : groups) lcs.push_back(group_to_lc_[g]);
  std::sort(lcs.begin(), lcs.end());
  lcs.erase(std::unique(lcs.begin(), lcs.end()), lcs.end());
  return lcs;
}

FragmentSizing fragment_sizing(const RotPartition& partition,
                               std::size_t input_prefixes, int replicas) {
  FragmentSizing sizing;
  sizing.input_prefixes = input_prefixes;
  const std::vector<std::size_t> sizes = partition.partition_sizes();
  sizing.min_prefixes = sizes.empty() ? 0 : sizes.front();
  for (const std::size_t s : sizes) {
    sizing.total_prefixes += s;
    sizing.min_prefixes = std::min(sizing.min_prefixes, s);
    sizing.max_prefixes = std::max(sizing.max_prefixes, s);
  }
  if (input_prefixes > 0) {
    sizing.replication = static_cast<double>(sizing.total_prefixes) /
                         static_cast<double>(input_prefixes);
  }
  // Price the failover copies: each LC additionally hosts the fragments
  // whose replica rotation lands on it, so its residency is its own
  // fragment plus the R fragments preceding it on the ring.
  const auto plan = assign_replicas(partition.num_lcs(), replicas);
  sizing.replicas = plan.empty() ? 0 : static_cast<int>(plan.front().size());
  std::vector<std::size_t> resident(sizes);
  for (std::size_t frag = 0; frag < plan.size(); ++frag) {
    for (const int lc : plan[frag]) {
      sizing.replica_prefixes += sizes[frag];
      resident[static_cast<std::size_t>(lc)] += sizes[frag];
    }
  }
  for (const std::size_t r : resident) {
    sizing.max_prefixes_with_replicas =
        std::max(sizing.max_prefixes_with_replicas, r);
  }
  return sizing;
}

std::vector<std::vector<int>> assign_replicas(int num_lcs, int replicas) {
  std::vector<std::vector<int>> plan(
      static_cast<std::size_t>(std::max(num_lcs, 0)));
  if (num_lcs <= 1 || replicas <= 0) return plan;
  const int copies = std::min(replicas, num_lcs - 1);
  for (int frag = 0; frag < num_lcs; ++frag) {
    plan[static_cast<std::size_t>(frag)].reserve(
        static_cast<std::size_t>(copies));
    for (int k = 1; k <= copies; ++k) {
      plan[static_cast<std::size_t>(frag)].push_back((frag + k) % num_lcs);
    }
  }
  return plan;
}

int min_lcs_for_budget(const net::RouteTable& table,
                       std::size_t budget_bytes, double bytes_per_prefix,
                       int max_lcs, const PartitionConfig& config) {
  for (int psi = 1; psi <= max_lcs; ++psi) {
    const RotPartition partition(table, psi, config);
    const FragmentSizing sizing = fragment_sizing(partition, table.size());
    const double worst =
        static_cast<double>(sizing.max_prefixes) * bytes_per_prefix;
    if (worst <= static_cast<double>(budget_bytes)) return psi;
  }
  return 0;
}

std::vector<net::RouteTable> partition_by_length(const net::RouteTable& table) {
  std::vector<std::vector<net::RouteEntry>> buckets(net::Prefix::kMaxLength + 1);
  for (const net::RouteEntry& e : table.entries()) {
    buckets[static_cast<std::size_t>(e.prefix.length())].push_back(e);
  }
  std::vector<net::RouteTable> result;
  result.reserve(buckets.size());
  for (auto& bucket : buckets) result.emplace_back(std::move(bucket));
  return result;
}

}  // namespace spal::partition
