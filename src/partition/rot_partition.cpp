#include "partition/rot_partition.h"

#include <bit>

#include "partition/generic.h"

namespace spal::partition {
namespace {

int ceil_log2(int value) {
  return value <= 1 ? 0 : std::bit_width(static_cast<unsigned>(value - 1));
}

}  // namespace

RotPartition::RotPartition(const net::RouteTable& table, int num_lcs,
                           const PartitionConfig& config) {
  const int eta = ceil_log2(num_lcs);
  control_bits_ = config.control_bits;
  if (control_bits_.empty() && eta > 0) {
    control_bits_ = select_control_bits(table, eta, config.selector);
  }
  auto lc_entries = generic::assign_groups(table.entries(),
                                           std::span<const int>(control_bits_),
                                           num_lcs, group_to_lc_);
  tables_.reserve(static_cast<std::size_t>(num_lcs));
  for (auto& entries : lc_entries) {
    // A group merge may duplicate an entry that was replicated into two
    // groups packed onto the same LC; RouteTable normalization de-dups.
    tables_.emplace_back(std::move(entries));
  }
}

std::vector<std::size_t> RotPartition::partition_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(tables_.size());
  for (const auto& t : tables_) sizes.push_back(t.size());
  return sizes;
}

std::vector<net::RouteTable> partition_by_length(const net::RouteTable& table) {
  std::vector<std::vector<net::RouteEntry>> buckets(net::Prefix::kMaxLength + 1);
  for (const net::RouteEntry& e : table.entries()) {
    buckets[static_cast<std::size_t>(e.prefix.length())].push_back(e);
  }
  std::vector<net::RouteTable> result;
  result.reserve(buckets.size());
  for (auto& bucket : buckets) result.emplace_back(std::move(bucket));
  return result;
}

}  // namespace spal::partition
