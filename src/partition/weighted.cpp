#include "partition/weighted.h"

namespace spal::partition {
namespace {

template <typename Partition, typename Table>
std::vector<double> expected_loads_impl(const Partition& partition,
                                        const Table& table,
                                        std::span<const double> weights) {
  if (weights.size() != table.size()) {
    throw std::invalid_argument(
        "expected_loads: weights must parallel table entries");
  }
  std::vector<double> loads(static_cast<std::size_t>(partition.num_lcs()),
                            0.0);
  if (partition.control_bits().empty()) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (!loads.empty()) loads[0] = total;
    return loads;
  }
  const std::vector<double> per_group = generic::group_loads(
      table.entries(), weights, partition.control_bits());
  const auto group_to_lc = partition.group_to_lc();
  for (std::size_t g = 0; g < per_group.size(); ++g) {
    loads[static_cast<std::size_t>(group_to_lc[g])] += per_group[g];
  }
  return loads;
}

}  // namespace

std::vector<int> select_control_bits_weighted(const net::RouteTable& table,
                                              std::span<const double> weights,
                                              int count,
                                              const BitSelectorConfig& config) {
  if (uniform_weights(weights)) {
    return select_control_bits(table, count, config);
  }
  if (weights.size() != table.size()) {
    throw std::invalid_argument(
        "select_control_bits_weighted: weights must parallel table entries");
  }
  return generic::select_control_bits_weighted(table, weights, count,
                                               config.max_bit);
}

std::vector<int> select_control_bits_weighted6(
    const net::RouteTable6& table, std::span<const double> weights, int count,
    const BitSelector6Config& config) {
  if (uniform_weights(weights)) {
    return select_control_bits6(table, count, config);
  }
  if (weights.size() != table.size()) {
    throw std::invalid_argument(
        "select_control_bits_weighted6: weights must parallel table entries");
  }
  return generic::select_control_bits_weighted(table, weights, count,
                                               config.max_bit);
}

std::vector<double> expected_loads(const RotPartition& partition,
                                   const net::RouteTable& table,
                                   std::span<const double> weights) {
  return expected_loads_impl(partition, table, weights);
}

std::vector<double> expected_loads6(const RotPartition6& partition,
                                    const net::RouteTable6& table,
                                    std::span<const double> weights) {
  return expected_loads_impl(partition, table, weights);
}

}  // namespace spal::partition
