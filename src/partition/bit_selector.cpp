#include "partition/bit_selector.h"

#include <limits>

#include "partition/generic.h"

namespace spal::partition {

BitStats compute_bit_stats(std::span<const net::RouteEntry> entries, int bit) {
  return generic::compute_bit_stats(entries, bit);
}

std::vector<int> select_control_bits(const net::RouteTable& table, int count,
                                     const BitSelectorConfig& config) {
  return generic::select_control_bits(table, count, config.max_bit);
}

SplitQuality evaluate_bits(const net::RouteTable& table,
                           std::span<const int> bits) {
  std::vector<std::vector<net::RouteEntry>> subsets(1);
  subsets[0].assign(table.entries().begin(), table.entries().end());
  for (const int bit : bits) {
    std::vector<std::vector<net::RouteEntry>> next;
    next.reserve(subsets.size() * 2);
    for (const auto& subset : subsets) {
      auto& zero = next.emplace_back();
      auto& one = next.emplace_back();
      generic::split_subset(subset, bit, zero, one);
    }
    subsets = std::move(next);
  }
  SplitQuality quality;
  quality.smallest = std::numeric_limits<std::size_t>::max();
  for (const auto& subset : subsets) {
    quality.total_entries += subset.size();
    quality.largest = std::max(quality.largest, subset.size());
    quality.smallest = std::min(quality.smallest, subset.size());
  }
  if (subsets.empty()) quality.smallest = 0;
  return quality;
}

}  // namespace spal::partition
