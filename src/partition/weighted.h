// Traffic-aware table partitioning: control-bit selection and group→LC
// placement driven by per-prefix popularity weights.
//
// The paper's two criteria (bit_selector.h) balance *prefix counts*; under
// a Zipf traffic model a handful of hot prefixes can pin one LC while the
// others idle. The weighted variants here re-run the same greedy machinery
// over expected *load*:
//   * a prefix's weight is the fraction of lookups expected to match it;
//   * a "*" control bit splits a prefix's traffic evenly between the two
//     subsets (uniform host bits), so a prefix replicated into 2^s groups
//     contributes w / 2^s of load to each — total load is conserved, which
//     is the `partition_balance` conservation rule spal_report checks;
//   * bit selection minimizes weighted imbalance Σ|W0 − W1| plus weighted
//     replication Σ W* (weights pre-scaled to sum to the entry count so the
//     two terms stay commensurate with the unweighted score);
//   * group→LC packing is longest-processing-time greedy over group loads.
//
// Guarantees (property-tested in tests/test_weighted_partition.cpp):
//   * uniform (or empty, or all-zero) weights take the count-balanced path
//     exactly — the weighted partitioner is a strict superset;
//   * the weighted assignment's max per-LC expected load never exceeds the
//     count-balanced assignment's, because both candidate placements (and,
//     in RotPartition, both candidate bit sets) are evaluated and the
//     better one kept.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/prefix.h"
#include "partition/generic.h"
#include "partition/partition6.h"
#include "partition/rot_partition.h"

namespace spal::partition {

/// True when the weight vector carries no balancing signal: empty, or every
/// weight exactly equal (including all-zero). Such vectors must reproduce
/// the count-balanced partition bit-for-bit.
inline bool uniform_weights(std::span<const double> weights) {
  if (weights.empty()) return true;
  const double first = weights.front();
  for (const double w : weights) {
    if (w != first) return false;
  }
  return true;
}

/// Jain's fairness index (Σx)² / (n·Σx²) over per-LC loads: 1 when
/// perfectly balanced, 1/n when one LC carries everything. Defined as 1
/// for an empty or all-zero load vector.
inline double jain_fairness(std::span<const double> loads) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : loads) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(loads.size()) * sum_sq);
}

/// Largest per-LC share of the total load (1/n when balanced, 1 when one
/// LC carries everything). 0 for an empty or all-zero load vector.
inline double max_share(std::span<const double> loads) {
  double sum = 0.0;
  double max = 0.0;
  for (const double x : loads) {
    sum += x;
    max = std::max(max, x);
  }
  return sum == 0.0 ? 0.0 : max / sum;
}

namespace generic {

/// Expected load of each of the 2^η control-bit groups: every entry
/// contributes weight / 2^s to each of the 2^s groups its s star control
/// bits expand into. Σ group loads == Σ weights exactly (no dedup — two
/// patterns landing in one group both count).
template <typename Entry>
std::vector<double> group_loads(std::span<const Entry> entries,
                                std::span<const double> weights,
                                std::span<const int> control_bits) {
  const std::size_t num_groups = std::size_t{1} << control_bits.size();
  std::vector<double> loads(num_groups, 0.0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::vector<std::uint32_t> patterns{0};
    for (const int bit : control_bits) {
      const net::PrefixBit value = entries[i].prefix.bit(bit);
      std::vector<std::uint32_t> next;
      next.reserve(patterns.size() * 2);
      for (const std::uint32_t p : patterns) {
        if (value != net::PrefixBit::kOne) next.push_back(p << 1);
        if (value != net::PrefixBit::kZero) next.push_back((p << 1) | 1u);
      }
      patterns = std::move(next);
    }
    const double share =
        weights[i] / static_cast<double>(patterns.size());
    for (const std::uint32_t p : patterns) loads[p] += share;
  }
  return loads;
}

/// Weighted group→LC placement. Builds both candidate mappings — the
/// count-balanced one (exactly assign_groups' rule) and a
/// longest-processing-time greedy over group *loads* — and keeps whichever
/// has the lower max per-LC expected load (ties favor count-balanced, so a
/// weight vector with no useful signal changes nothing). Identity when
/// ψ == 2^η: with one group per LC every bijection yields the same load
/// multiset, and identity keeps the degenerate case aligned with the
/// unweighted mapping.
template <typename Entry>
std::vector<std::vector<Entry>> assign_groups_weighted(
    std::span<const Entry> entries, std::span<const double> weights,
    std::span<const int> control_bits, int num_lcs,
    std::vector<int>& group_to_lc) {
  const std::size_t num_groups = std::size_t{1} << control_bits.size();
  if (static_cast<std::size_t>(num_lcs) == num_groups) {
    return spal::partition::generic::assign_groups(entries, control_bits,
                                                   num_lcs, group_to_lc);
  }
  // Bucket entries exactly as assign_groups does (star bits expand), and
  // accumulate each group's expected load alongside.
  std::vector<std::vector<Entry>> groups(num_groups);
  std::vector<double> loads(num_groups, 0.0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::vector<std::uint32_t> patterns{0};
    for (const int bit : control_bits) {
      const net::PrefixBit value = entries[i].prefix.bit(bit);
      std::vector<std::uint32_t> next;
      next.reserve(patterns.size() * 2);
      for (const std::uint32_t p : patterns) {
        if (value != net::PrefixBit::kOne) next.push_back(p << 1);
        if (value != net::PrefixBit::kZero) next.push_back((p << 1) | 1u);
      }
      patterns = std::move(next);
    }
    const double share = weights[i] / static_cast<double>(patterns.size());
    for (const std::uint32_t p : patterns) {
      groups[p].push_back(entries[i]);
      loads[p] += share;
    }
  }

  // Candidate A: the count-balanced mapping (assign_groups' exact rule —
  // groups in descending size, each onto the LC with the fewest entries).
  std::vector<int> by_count(num_groups, 0);
  {
    std::vector<std::size_t> order(num_groups);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return groups[a].size() > groups[b].size();
                     });
    std::vector<std::size_t> lc_sizes(static_cast<std::size_t>(num_lcs), 0);
    for (const std::size_t g : order) {
      const auto lightest =
          std::min_element(lc_sizes.begin(), lc_sizes.end());
      const auto lc =
          static_cast<std::size_t>(std::distance(lc_sizes.begin(), lightest));
      by_count[g] = static_cast<int>(lc);
      lc_sizes[lc] += groups[g].size();
    }
  }
  // Candidate B: LPT over group loads — groups in descending load, each
  // onto the LC with the least accumulated load.
  std::vector<int> by_load(num_groups, 0);
  {
    std::vector<std::size_t> order(num_groups);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return loads[a] > loads[b];
                     });
    std::vector<double> lc_loads(static_cast<std::size_t>(num_lcs), 0.0);
    for (const std::size_t g : order) {
      const auto lightest =
          std::min_element(lc_loads.begin(), lc_loads.end());
      const auto lc =
          static_cast<std::size_t>(std::distance(lc_loads.begin(), lightest));
      by_load[g] = static_cast<int>(lc);
      lc_loads[lc] += loads[g];
    }
  }
  const auto max_lc_load = [&](const std::vector<int>& mapping) {
    std::vector<double> lc_loads(static_cast<std::size_t>(num_lcs), 0.0);
    for (std::size_t g = 0; g < num_groups; ++g) {
      lc_loads[static_cast<std::size_t>(mapping[g])] += loads[g];
    }
    return *std::max_element(lc_loads.begin(), lc_loads.end());
  };
  group_to_lc =
      max_lc_load(by_load) < max_lc_load(by_count) ? by_load : by_count;

  std::vector<std::vector<Entry>> lc_entries(static_cast<std::size_t>(num_lcs));
  for (std::size_t g = 0; g < num_groups; ++g) {
    auto& bucket = lc_entries[static_cast<std::size_t>(group_to_lc[g])];
    bucket.insert(bucket.end(), groups[g].begin(), groups[g].end());
  }
  return lc_entries;
}

namespace detail {

/// Weighted per-position Φ tallies over one subset: the weight mass of
/// one-bits and star-bits per candidate position, plus the subset total
/// (zero mass falls out by subtraction, like the unweighted tallies).
struct WeightedTallies {
  std::array<double, 128> ones{};
  std::array<double, 128> stars{};
  double total = 0.0;

  void add(const spal::partition::generic::detail::PackedPrefix& p, double w) {
    total += w;
    for (int word = 0; word < 2; ++word) {
      for (std::uint64_t m = p.ones[static_cast<std::size_t>(word)]; m != 0;
           m &= m - 1) {
        ones[static_cast<std::size_t>(word * 64 + std::countr_zero(m))] += w;
      }
      for (std::uint64_t m = p.stars[static_cast<std::size_t>(word)]; m != 0;
           m &= m - 1) {
        stars[static_cast<std::size_t>(word * 64 + std::countr_zero(m))] += w;
      }
    }
  }
};

/// Weighted analogue of BitScore, same arbitration rule: minimize
/// replication + imbalance, ties by lower replication.
struct WeightedBitScore {
  double replication = 0.0;
  double imbalance = 0.0;

  double combined() const { return replication + imbalance; }

  friend bool operator<(const WeightedBitScore& a, const WeightedBitScore& b) {
    if (a.combined() != b.combined()) return a.combined() < b.combined();
    return a.replication < b.replication;
  }
};

}  // namespace detail

/// Greedy recursive control-bit selection over weighted Φ: per subset and
/// candidate bit, replication is the star weight mass and imbalance is
/// |W0 − W1|. Weights are pre-scaled to sum to the entry count so both
/// terms stay on the unweighted score's scale. Structure mirrors
/// generic::select_control_bits (same recursion, same subset splitting).
template <typename Table>
std::vector<int> select_control_bits_weighted(const Table& table,
                                              std::span<const double> weights,
                                              int count, int max_bit) {
  std::vector<int> chosen;
  if (count <= 0 || table.size() == 0 || max_bit < 0 || max_bit > 127) {
    return chosen;
  }
  const int bits = max_bit + 1;
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;
  const double scale =
      total_weight > 0.0
          ? static_cast<double>(table.size()) / total_weight
          : 0.0;

  using PackedPrefix = spal::partition::generic::detail::PackedPrefix;
  struct Member {
    PackedPrefix p;
    double w;
  };
  std::vector<Member> all;
  all.reserve(table.size());
  {
    std::size_t i = 0;
    for (const auto& e : table.entries()) {
      PackedPrefix p;
      for (int b = 0; b < bits; ++b) {
        switch (e.prefix.bit(b)) {
          case net::PrefixBit::kZero: break;
          case net::PrefixBit::kOne:
            p.ones[static_cast<std::size_t>(b >> 6)] |= 1ull << (b & 63);
            break;
          case net::PrefixBit::kStar:
            p.stars[static_cast<std::size_t>(b >> 6)] |= 1ull << (b & 63);
            break;
        }
      }
      all.push_back(Member{p, weights[i] * scale});
      ++i;
    }
  }

  std::vector<std::vector<Member>> subsets(1);
  subsets[0] = std::move(all);

  for (int round = 0; round < count; ++round) {
    std::vector<detail::WeightedTallies> tallies(subsets.size());
    for (std::size_t s = 0; s < subsets.size(); ++s) {
      for (const Member& m : subsets[s]) tallies[s].add(m.p, m.w);
    }
    int best_bit = -1;
    detail::WeightedBitScore best_score{};
    for (int bit = 0; bit < bits; ++bit) {
      if (std::find(chosen.begin(), chosen.end(), bit) != chosen.end()) {
        continue;
      }
      detail::WeightedBitScore score{};
      for (const detail::WeightedTallies& t : tallies) {
        const auto b = static_cast<std::size_t>(bit);
        const double w1 = t.ones[b];
        const double wstar = t.stars[b];
        const double w0 = t.total - w1 - wstar;
        score.replication += wstar;
        score.imbalance += std::abs(w0 - w1);
      }
      if (best_bit < 0 || score < best_score) {
        best_score = score;
        best_bit = bit;
      }
    }
    if (best_bit < 0) break;
    chosen.push_back(best_bit);
    const std::size_t w = static_cast<std::size_t>(best_bit >> 6);
    const std::uint64_t m = 1ull << (best_bit & 63);
    std::vector<std::vector<Member>> next;
    next.reserve(subsets.size() * 2);
    for (const auto& subset : subsets) {
      auto& zero = next.emplace_back();
      auto& one = next.emplace_back();
      for (const Member& member : subset) {
        if (member.p.stars[w] & m) {
          // A star prefix replicates into both subsets; its traffic splits
          // evenly, so each side tallies half the weight from here on.
          zero.push_back(Member{member.p, member.w / 2.0});
          one.push_back(Member{member.p, member.w / 2.0});
        } else if (member.p.ones[w] & m) {
          one.push_back(member);
        } else {
          zero.push_back(member);
        }
      }
    }
    subsets = std::move(next);
  }
  return chosen;
}

}  // namespace generic

/// Weighted control-bit selection for IPv4/IPv6 tables. `weights` must be
/// parallel to `table.entries()`. Uniform weights delegate to the
/// count-based selector (identical result by construction).
std::vector<int> select_control_bits_weighted(
    const net::RouteTable& table, std::span<const double> weights, int count,
    const BitSelectorConfig& config = {});
std::vector<int> select_control_bits_weighted6(
    const net::RouteTable6& table, std::span<const double> weights, int count,
    const BitSelector6Config& config = {});

/// Per-LC expected loads of a partition under `weights` (parallel to
/// `table.entries()`): each entry's weight splits evenly across the groups
/// its star control bits expand into, and group shares accumulate onto the
/// group's LC. Σ expected_loads == Σ weights exactly — the conservation
/// rule behind the `partition_balance` report point.
std::vector<double> expected_loads(const RotPartition& partition,
                                   const net::RouteTable& table,
                                   std::span<const double> weights);
std::vector<double> expected_loads6(const RotPartition6& partition,
                                    const net::RouteTable6& table,
                                    std::span<const double> weights);

}  // namespace spal::partition
