// Address-family-generic core of SPAL's table partitioning.
//
// The control-bit selection of Sec. 3.1 and the ROT-partition construction
// depend only on a tri-state bit view of prefixes, so one implementation
// serves IPv4 (32-bit) and IPv6 (128-bit) tables. The concrete public APIs
// in bit_selector.h / rot_partition.h (IPv4) and partition6.h (IPv6) wrap
// these templates.
//
// Requirements on the types:
//   Entry:  `.prefix` with `bit(int) -> net::PrefixBit`
//   Table:  `entries() -> span<const Entry>`, `size()`, constructible from
//           `std::vector<Entry>`
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "net/prefix.h"
#include "partition/bit_selector.h"

namespace spal::partition::generic {

template <typename Entry>
BitStats compute_bit_stats(std::span<const Entry> entries, int bit) {
  BitStats stats;
  for (const Entry& e : entries) {
    switch (e.prefix.bit(bit)) {
      case net::PrefixBit::kZero: ++stats.phi0; break;
      case net::PrefixBit::kOne: ++stats.phi1; break;
      case net::PrefixBit::kStar: ++stats.phi_star; break;
    }
  }
  return stats;
}

template <typename Entry>
void split_subset(const std::vector<Entry>& subset, int bit,
                  std::vector<Entry>& zero, std::vector<Entry>& one) {
  for (const Entry& e : subset) {
    switch (e.prefix.bit(bit)) {
      case net::PrefixBit::kZero: zero.push_back(e); break;
      case net::PrefixBit::kOne: one.push_back(e); break;
      case net::PrefixBit::kStar:
        zero.push_back(e);
        one.push_back(e);
        break;
    }
  }
}

namespace detail {

/// Tri-state view of one prefix over candidate positions 0..bits-1, packed
/// into bitmasks (two words cover IPv6's 64-bit search window and then
/// some). Positions in neither mask read as zero.
struct PackedPrefix {
  std::array<std::uint64_t, 2> ones{};
  std::array<std::uint64_t, 2> stars{};
};

/// Per-position Φ tallies over one subset, accumulated by iterating each
/// member's set bits (Kernighan-style), so the cost per entry is its
/// popcount rather than one branch per candidate position.
struct SubsetTallies {
  std::array<std::uint64_t, 128> ones{};
  std::array<std::uint64_t, 128> stars{};
  std::size_t members = 0;

  void add(const PackedPrefix& p) {
    ++members;
    for (int w = 0; w < 2; ++w) {
      for (std::uint64_t m = p.ones[w]; m != 0; m &= m - 1) {
        ++ones[static_cast<std::size_t>(w * 64 + std::countr_zero(m))];
      }
      for (std::uint64_t m = p.stars[w]; m != 0; m &= m - 1) {
        ++stars[static_cast<std::size_t>(w * 64 + std::countr_zero(m))];
      }
    }
  }

  BitStats stats(int bit) const {
    BitStats s;
    s.phi1 = ones[static_cast<std::size_t>(bit)];
    s.phi_star = stars[static_cast<std::size_t>(bit)];
    s.phi0 = members - s.phi1 - s.phi_star;
    return s;
  }
};

}  // namespace detail

/// Greedy recursive control-bit selection per the two criteria (see
/// BitScore for the arbitration rule). Prefixes are packed into tri-state
/// bitmasks once; every round then tallies all candidate positions in a
/// single pass per subset. Scores — and therefore the chosen bits — are
/// identical to the direct per-bit scan.
template <typename Table>
std::vector<int> select_control_bits(const Table& table, int count, int max_bit) {
  std::vector<int> chosen;
  if (count <= 0 || table.size() == 0 || max_bit < 0 || max_bit > 127) {
    return chosen;
  }
  const int bits = max_bit + 1;

  std::vector<detail::PackedPrefix> all;
  all.reserve(table.size());
  for (const auto& e : table.entries()) {
    detail::PackedPrefix p;
    for (int b = 0; b < bits; ++b) {
      switch (e.prefix.bit(b)) {
        case net::PrefixBit::kZero: break;
        case net::PrefixBit::kOne:
          p.ones[static_cast<std::size_t>(b >> 6)] |= 1ull << (b & 63);
          break;
        case net::PrefixBit::kStar:
          p.stars[static_cast<std::size_t>(b >> 6)] |= 1ull << (b & 63);
          break;
      }
    }
    all.push_back(p);
  }

  std::vector<std::vector<detail::PackedPrefix>> subsets(1);
  subsets[0] = std::move(all);

  for (int round = 0; round < count; ++round) {
    std::vector<detail::SubsetTallies> tallies(subsets.size());
    for (std::size_t s = 0; s < subsets.size(); ++s) {
      for (const detail::PackedPrefix& p : subsets[s]) tallies[s].add(p);
    }
    int best_bit = -1;
    BitScore best_score{};
    for (int bit = 0; bit < bits; ++bit) {
      if (std::find(chosen.begin(), chosen.end(), bit) != chosen.end()) continue;
      BitScore score{};
      for (const detail::SubsetTallies& t : tallies) {
        const BitStats stats = t.stats(bit);
        score.replication += stats.phi_star;
        score.imbalance += stats.imbalance();
      }
      if (best_bit < 0 || score < best_score) {
        best_score = score;
        best_bit = bit;
      }
    }
    if (best_bit < 0) break;
    chosen.push_back(best_bit);
    const std::size_t w = static_cast<std::size_t>(best_bit >> 6);
    const std::uint64_t m = 1ull << (best_bit & 63);
    std::vector<std::vector<detail::PackedPrefix>> next;
    next.reserve(subsets.size() * 2);
    for (const auto& subset : subsets) {
      auto& zero = next.emplace_back();
      auto& one = next.emplace_back();
      for (const detail::PackedPrefix& p : subset) {
        if (p.stars[w] & m) {
          zero.push_back(p);
          one.push_back(p);
        } else if (p.ones[w] & m) {
          one.push_back(p);
        } else {
          zero.push_back(p);
        }
      }
    }
    subsets = std::move(next);
  }
  return chosen;
}

/// Buckets every entry into each control-bit group it can match ("*" bits
/// expand to both values) and packs 2^η groups onto ψ LCs (identity when
/// ψ = 2^η, longest-processing-time greedy otherwise). Returns the per-LC
/// entry vectors and fills `group_to_lc`.
template <typename Entry>
std::vector<std::vector<Entry>> assign_groups(std::span<const Entry> entries,
                                              std::span<const int> control_bits,
                                              int num_lcs,
                                              std::vector<int>& group_to_lc) {
  const std::size_t num_groups = std::size_t{1} << control_bits.size();
  std::vector<std::vector<Entry>> groups(num_groups);
  for (const Entry& e : entries) {
    std::vector<std::uint32_t> patterns{0};
    for (const int bit : control_bits) {
      const net::PrefixBit value = e.prefix.bit(bit);
      std::vector<std::uint32_t> next;
      next.reserve(patterns.size() * 2);
      for (const std::uint32_t p : patterns) {
        if (value != net::PrefixBit::kOne) next.push_back(p << 1);
        if (value != net::PrefixBit::kZero) next.push_back((p << 1) | 1u);
      }
      patterns = std::move(next);
    }
    for (const std::uint32_t p : patterns) groups[p].push_back(e);
  }

  group_to_lc.assign(num_groups, 0);
  std::vector<std::vector<Entry>> lc_entries(static_cast<std::size_t>(num_lcs));
  if (static_cast<std::size_t>(num_lcs) == num_groups) {
    for (std::size_t g = 0; g < num_groups; ++g) {
      group_to_lc[g] = static_cast<int>(g);
      lc_entries[g] = std::move(groups[g]);
    }
  } else {
    std::vector<std::size_t> order(num_groups);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return groups[a].size() > groups[b].size();
    });
    for (const std::size_t g : order) {
      const auto lightest = std::min_element(
          lc_entries.begin(), lc_entries.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      const auto lc =
          static_cast<std::size_t>(std::distance(lc_entries.begin(), lightest));
      group_to_lc[g] = static_cast<int>(lc);
      auto& bucket = lc_entries[lc];
      bucket.insert(bucket.end(), groups[g].begin(), groups[g].end());
    }
  }
  return lc_entries;
}

}  // namespace spal::partition::generic
