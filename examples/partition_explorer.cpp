// Partition explorer: shows how SPAL's two criteria pick control bits for a
// routing table, what the resulting ROT-partitions look like, and how much
// per-LC SRAM each trie needs before/after fragmentation.
//
// Usage: partition_explorer [psi] [table_size] [seed]
//        partition_explorer 6 50000 7
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "core/spal.h"

using namespace spal;

namespace {

void show_bit_scores(const net::RouteTable& table) {
  std::cout << "Per-bit statistics over the whole table (Sec. 3.1 criteria):\n"
            << "  bit  phi0      phi1      phi*      |phi0-phi1|\n";
  for (int bit = 0; bit < 20; ++bit) {
    const auto stats = partition::compute_bit_stats(table.entries(), bit);
    std::cout << "  " << (bit < 10 ? " " : "") << bit << "   " << stats.phi0
              << "\t" << stats.phi1 << "\t" << stats.phi_star << "\t"
              << stats.imbalance() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int psi = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::size_t size = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 50'000;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  net::TableGenConfig table_config;
  table_config.size = size;
  table_config.seed = seed;
  const net::RouteTable table = net::generate_table(table_config);
  std::cout << "Table: " << table.size() << " prefixes, "
            << table.count_length_at_most(24) << " of length <= 24\n\n";

  show_bit_scores(table);

  const partition::RotPartition rot(table, psi);
  std::cout << "\nChosen control bits for psi=" << psi << ": {";
  for (std::size_t i = 0; i < rot.control_bits().size(); ++i) {
    std::cout << (i ? "," : "") << rot.control_bits()[i];
  }
  std::cout << "}\nGroup -> LC mapping (" << rot.group_to_lc().size()
            << " groups):";
  for (const int lc : rot.group_to_lc()) std::cout << ' ' << lc;

  const auto sizes = rot.partition_sizes();
  const std::size_t total = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  std::cout << "\nPartition sizes:";
  for (const std::size_t s : sizes) std::cout << ' ' << s;
  std::cout << "\nReplication factor: "
            << static_cast<double>(total) / static_cast<double>(table.size())
            << "\n\nPer-LC trie storage (KB), whole table vs largest partition:\n";

  for (const auto kind :
       {trie::TrieKind::kDp, trie::TrieKind::kLulea, trie::TrieKind::kLc}) {
    const auto whole = trie::build_lpm(kind, table);
    std::size_t biggest = 0;
    for (int lc = 0; lc < psi; ++lc) {
      biggest = std::max(biggest,
                         trie::build_lpm(kind, rot.table_of(lc))->storage_bytes());
    }
    std::cout << "  " << trie::to_string(kind) << ": "
              << whole->storage_bytes() / 1024 << " KB -> " << biggest / 1024
              << " KB per LC (saving "
              << (whole->storage_bytes() - biggest) / 1024 << " KB)\n";
  }

  // Demonstrate the home-LC invariant on a few addresses.
  std::cout << "\nHome-LC lookups match the full table (spot check):\n";
  std::mt19937_64 rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto addr = net::random_address_in(
        table.entries()[rng() % table.size()].prefix, rng);
    const int home = rot.home_of(addr);
    const auto full = table.lookup_linear(addr);
    const auto part = rot.table_of(home).lookup_linear(addr);
    std::cout << "  " << addr.to_string() << " -> home LC" << home
              << ", next hop " << part << (part == full ? " (matches)" : " (MISMATCH!)")
              << "\n";
  }
  return 0;
}
