// Router tour: a narrated, component-level walk through SPAL's lookup flow
// (paper Sec. 3.3) using the library's building blocks directly — no
// simulator. Five packets demonstrate the five interesting paths:
//   1. cold miss, locally homed  -> local FE, block filled with M=LOC
//   2. repeat of (1)             -> LR-cache hit
//   3. cold miss, remotely homed -> fabric request, home FE, reply, M=REM
//   4. repeat of (3)             -> satisfied locally from the REM block
//   5. concurrent duplicate      -> W-bit waiting list, one FE lookup only
#include <iostream>

#include "core/spal.h"

using namespace spal;

namespace {

struct Lc {
  explicit Lc(const net::RouteTable& fwd, const cache::LrCacheConfig& config)
      : trie(trie::build_lpm(trie::TrieKind::kLulea, fwd)), lr_cache(config) {}
  std::unique_ptr<trie::LpmIndex> trie;
  cache::LrCache lr_cache;
};

const char* origin_name(cache::Origin origin) {
  return origin == cache::Origin::kLocal ? "LOC" : "REM";
}

}  // namespace

int main() {
  // A small router: 4 LCs over a 10k-prefix table.
  net::TableGenConfig table_config;
  table_config.size = 10'000;
  table_config.seed = 99;
  const net::RouteTable table = net::generate_table(table_config);
  const partition::RotPartition rot(table, 4);

  cache::LrCacheConfig cache_config;
  cache_config.blocks = 1024;
  std::vector<Lc> lcs;
  for (int i = 0; i < 4; ++i) lcs.emplace_back(rot.table_of(i), cache_config);

  fabric::FabricConfig fabric_config;
  fabric_config.ports = 4;
  fabric::Fabric fabric(fabric_config);

  std::cout << "Router assembled: 4 LCs, control bits {";
  for (std::size_t i = 0; i < rot.control_bits().size(); ++i) {
    std::cout << (i ? "," : "") << rot.control_bits()[i];
  }
  std::cout << "}, fabric latency " << fabric.latency_cycles() << " cycles\n\n";

  // Pick one locally-homed and one remotely-homed destination for LC0.
  std::mt19937_64 rng(5);
  net::Ipv4Addr local_addr, remote_addr;
  for (;;) {
    const auto addr = net::random_address_in(
        table.entries()[rng() % table.size()].prefix, rng);
    if (rot.home_of(addr) == 0) {
      local_addr = addr;
      break;
    }
  }
  for (;;) {
    const auto addr = net::random_address_in(
        table.entries()[rng() % table.size()].prefix, rng);
    if (rot.home_of(addr) != 0) {
      remote_addr = addr;
      break;
    }
  }

  std::uint64_t now = 100;

  // --- 1. Cold miss, locally homed ---
  std::cout << "[1] " << local_addr.to_string() << " arrives at LC0 (home LC"
            << rot.home_of(local_addr) << ")\n";
  auto probe = lcs[0].lr_cache.probe(local_addr, now);
  std::cout << "    LR-cache probe: miss; LR1 says local -> reserve W=1, run FE\n";
  lcs[0].lr_cache.reserve(local_addr, cache::Origin::kLocal, now);
  trie::MemAccessCounter accesses;
  const net::NextHop local_hop = lcs[0].trie->lookup_counted(local_addr, accesses);
  std::cout << "    FE (Lulea) result: next hop " << local_hop << " after "
            << accesses.total() << " memory accesses\n";
  lcs[0].lr_cache.fill(local_addr, local_hop, now + 40);
  std::cout << "    block filled, M=LOC\n\n";
  now += 50;

  // --- 2. Repeat: LR-cache hit ---
  probe = lcs[0].lr_cache.probe(local_addr, now);
  std::cout << "[2] same address again: probe -> "
            << (probe.state == cache::ProbeState::kHit ? "HIT" : "miss")
            << ", next hop " << probe.next_hop << " in one cycle\n\n";
  now += 10;

  // --- 3. Cold miss, remotely homed ---
  const int home = rot.home_of(remote_addr);
  std::cout << "[3] " << remote_addr.to_string() << " arrives at LC0 (home LC"
            << home << ")\n";
  probe = lcs[0].lr_cache.probe(remote_addr, now);
  std::cout << "    LR-cache probe: miss; LR1 says remote -> reserve W=1 (M=REM), "
               "request over fabric\n";
  lcs[0].lr_cache.reserve(remote_addr, cache::Origin::kRemote, now);
  const std::uint64_t at_home = fabric.deliver(0, home, now);
  probe = lcs[static_cast<std::size_t>(home)].lr_cache.probe(remote_addr, at_home);
  std::cout << "    request reaches LC" << home << " at cycle " << at_home
            << "; home probe: "
            << (probe.state == cache::ProbeState::kMiss ? "miss -> home FE" : "hit")
            << "\n";
  lcs[static_cast<std::size_t>(home)].lr_cache.reserve(remote_addr,
                                                       cache::Origin::kLocal, at_home);
  const net::NextHop remote_hop =
      lcs[static_cast<std::size_t>(home)].trie->lookup(remote_addr);
  lcs[static_cast<std::size_t>(home)].lr_cache.fill(remote_addr, remote_hop, at_home + 40);
  const std::uint64_t back = fabric.deliver(home, 0, at_home + 40);
  lcs[0].lr_cache.fill(remote_addr, remote_hop, back);
  std::cout << "    home block filled (M=LOC); reply at cycle " << back
            << " fills LC0's block (M=REM): next hop " << remote_hop << "\n\n";
  now = back + 10;

  // --- 4. Repeat of the remote address: now a local hit ---
  probe = lcs[0].lr_cache.probe(remote_addr, now);
  std::cout << "[4] same remote-homed address again at LC0: probe -> "
            << (probe.state == cache::ProbeState::kHit ? "HIT (served from the REM block, no fabric)" : "miss")
            << "\n\n";
  now += 10;

  // --- 5. W-bit: concurrent duplicates are parked, one FE lookup ---
  net::Ipv4Addr burst_addr;
  for (;;) {
    const auto addr = net::random_address_in(
        table.entries()[rng() % table.size()].prefix, rng);
    if (rot.home_of(addr) == 0 &&
        lcs[0].lr_cache.probe(addr, now).state == cache::ProbeState::kMiss) {
      burst_addr = addr;
      break;
    }
  }
  std::cout << "[5] burst of 3 packets for " << burst_addr.to_string() << ":\n";
  lcs[0].lr_cache.reserve(burst_addr, cache::Origin::kLocal, now);
  std::cout << "    packet A: miss -> W=1 reserved, FE started\n";
  for (const char* name : {"B", "C"}) {
    const auto state = lcs[0].lr_cache.probe(burst_addr, ++now).state;
    std::cout << "    packet " << name << ": probe -> "
              << (state == cache::ProbeState::kWaiting
                      ? "WAITING (parked on the block's waiting list)"
                      : "?")
              << "\n";
  }
  const net::NextHop burst_hop = lcs[0].trie->lookup(burst_addr);
  lcs[0].lr_cache.fill(burst_addr, burst_hop, now + 40);
  std::cout << "    FE completes once; fill clears W and releases A, B, C with hop "
            << burst_hop << "\n\n";

  std::cout << "Cache mix at LC0: " << lcs[0].lr_cache.count_origin(cache::Origin::kLocal)
            << " " << origin_name(cache::Origin::kLocal) << " blocks, "
            << lcs[0].lr_cache.count_origin(cache::Origin::kRemote) << " "
            << origin_name(cache::Origin::kRemote) << " blocks\n";
  return 0;
}
