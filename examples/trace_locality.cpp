// Trace-locality explorer: characterizes the five synthetic workloads the
// experiments run on (distinct destinations, head concentration, burst
// structure) and sweeps a standalone LR-cache over them — the paper's
// premise that 4K blocks suffice for >=0.93 hit rates, checked in isolation
// from the router.
//
// Usage: trace_locality [packets]
#include <cstdlib>
#include <iostream>

#include "core/spal.h"

using namespace spal;

int main(int argc, char** argv) {
  const std::size_t packets =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 200'000;
  const net::RouteTable table = net::make_rt1();

  for (const auto& profile : trace::all_profiles()) {
    const trace::TraceGenerator generator(profile, table);
    const auto stream = generator.generate(0, packets);
    const auto stats = trace::analyze_trace(stream);

    std::cout << "workload " << profile.name << " (flows=" << profile.flows
              << ", alpha=" << profile.zipf_alpha
              << ", burst=" << profile.burst_mean << ")\n";
    std::cout << "  packets=" << stats.packets << " distinct=" << stats.distinct
              << "\n  concentration: top-1%="
              << stats.concentration(std::max<std::size_t>(1, stats.distinct / 100))
              << " top-10%="
              << stats.concentration(std::max<std::size_t>(1, stats.distinct / 10))
              << "\n";

    // Standalone LR-cache sweep (4-way, LRU, victim cache of 8). All
    // traffic is treated as locally homed, so γ = 0 devotes every way to it.
    std::cout << "  LR-cache hit rate by size:";
    for (const std::size_t blocks : {1024u, 2048u, 4096u, 8192u}) {
      cache::LrCacheConfig config;
      config.blocks = blocks;
      config.remote_fraction = 0.0;
      cache::LrCache cache(config);
      std::uint64_t now = 0;
      for (const net::Ipv4Addr addr : stream) {
        ++now;
        if (cache.probe(addr, now).state == cache::ProbeState::kMiss) {
          cache.insert(addr, 1, cache::Origin::kLocal, now);
        }
      }
      std::cout << " " << blocks << "->" << cache.stats().hit_rate();
    }
    std::cout << "\n\n";
  }
  return 0;
}
