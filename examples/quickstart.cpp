// Quickstart: build a routing table, assemble a SPAL router with the
// paper's default parameters (ψ = 16 LCs, 4K-block LR-caches, γ = 50%,
// 40 Gbps line cards, 40-cycle Lulea FEs), push one workload through it and
// print the headline numbers.
//
// Usage: quickstart [num_lcs] [packets_per_lc]
#include <cstdlib>
#include <iostream>

#include "core/spal.h"

int main(int argc, char** argv) {
  using namespace spal;

  const int num_lcs = argc > 1 ? std::atoi(argv[1]) : 16;
  const std::size_t packets = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 100'000;

  std::cout << "Generating RT_2-scale routing table (140,838 prefixes)...\n";
  const net::RouteTable table = net::make_rt2();

  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = packets;

  core::RouterSim router(table, config);
  std::cout << "Router: psi=" << num_lcs << " LCs, control bits {";
  for (std::size_t i = 0; i < router.rot().control_bits().size(); ++i) {
    std::cout << (i ? "," : "") << router.rot().control_bits()[i];
  }
  std::cout << "}, partition sizes:";
  for (const std::size_t s : router.rot().partition_sizes()) std::cout << ' ' << s;
  std::cout << "\n";

  const auto profiles = trace::all_profiles();
  for (const auto& profile : profiles) {
    const core::RouterResult result = router.run_workload(profile);
    std::cout << "workload " << profile.name
              << ": mean lookup = " << result.mean_lookup_cycles() << " cycles"
              << ", worst = " << result.worst_lookup_cycles() << " cycles"
              << ", LR-cache hit rate = " << result.cache_total.hit_rate()
              << ", router rate = "
              << result.router_packets_per_second(num_lcs) / 1e6 << " Mpps\n";
  }
  return 0;
}
