// spal_cli: run an arbitrary SPAL router configuration from the command
// line and print a full report — the "I want to try my own point in the
// design space" tool.
//
// Usage:
//   spal_cli [--psi=N] [--beta=BLOCKS] [--gamma=PCT] [--rate=GBPS]
//            [--fe-cycles=N] [--fe-parallel=N] [--trie=lulea|dp|lc|binary|gupta]
//            [--trace=D_75|D_81|L_92-0|L_92-1|B_L] [--packets=N]
//            [--table-size=N] [--seed=N] [--no-partition] [--no-cache]
//            [--update-interval=CYCLES] [--selective-invalidate] [--verify]
//            [--ipv6] [--json]
//
// With --json, the full RouterResult (per-LC cache/FE/fabric/latency
// metrics — schema in DESIGN.md) is printed as one JSON object after the
// human-readable report.
//
// Example:
//   spal_cli --psi=12 --beta=2048 --gamma=25 --trace=L_92-0 --verify
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/spal.h"

using namespace spal;

namespace {

std::optional<std::string> arg_value(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::optional<trie::TrieKind> parse_trie(const std::string& name) {
  if (name == "binary") return trie::TrieKind::kBinary;
  if (name == "dp") return trie::TrieKind::kDp;
  if (name == "lulea") return trie::TrieKind::kLulea;
  if (name == "lc") return trie::TrieKind::kLc;
  if (name == "gupta") return trie::TrieKind::kGupta;
  if (name == "stride") return trie::TrieKind::kStride;
  return std::nullopt;
}

}  // namespace

void print_report(const core::RouterResult& result, int psi, bool use_cache,
                  bool verify, bool json) {
  std::cout << "\n--- results ---\n"
            << "packets resolved:    " << result.resolved_packets << "\n"
            << "mean lookup:         " << result.mean_lookup_cycles()
            << " cycles (" << result.mean_lookup_cycles() * sim::kCycleNs << " ns)\n"
            << "p50 / p99 / worst:   " << result.latency.percentile(0.5) << " / "
            << result.latency.percentile(0.99) << " / "
            << result.worst_lookup_cycles() << " cycles\n"
            << "per-LC rate:         "
            << result.latency.lookups_per_second(sim::kCycleNs) / 1e6 << " Mpps\n"
            << "router rate:         "
            << result.router_packets_per_second(psi) / 1e6 << " Mpps\n";
  if (use_cache) {
    std::cout << "LR-cache hit rate:   " << result.cache_total.hit_rate()
              << " (victim hits " << result.cache_total.victim_hits
              << ", waiting hits " << result.cache_total.waiting_hits << ")\n";
  }
  std::cout << "FE lookups:          " << result.fe_lookups << " ("
            << 100.0 * static_cast<double>(result.fe_lookups) /
                   static_cast<double>(std::max<std::uint64_t>(1, result.resolved_packets))
            << "% of packets), busiest FE at "
            << result.max_fe_utilization * 100 << "%\n"
            << "fabric messages:     " << result.fabric.messages << "\n";
  if (psi > 1 && !result.per_lc_latency.empty()) {
    // Exposes per-LC imbalance, e.g. the hot LC that homes two control-bit
    // groups when psi is not a power of two.
    std::cout << "per-LC mean cycles: ";
    for (const auto& stats : result.per_lc_latency) {
      std::cout << ' ' << stats.mean_cycles();
    }
    std::cout << "\n";
  }
  if (result.updates_applied > 0) {
    std::cout << "table updates:       " << result.updates_applied
              << " (blocks invalidated " << result.blocks_invalidated << ")\n";
  }
  if (verify) {
    std::cout << "oracle mismatches:   " << result.verify_mismatches
              << (result.verify_mismatches == 0 ? " (all lookups correct)" : " (BUG!)")
              << "\n";
  }
  if (json) std::cout << result.to_json() << "\n";
}

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    std::cout << "see the header of examples/spal_cli.cpp for usage\n";
    return 0;
  }

  const int psi = std::stoi(arg_value(argc, argv, "--psi").value_or("16"));
  core::RouterConfig config = core::spal_default_config(psi);
  config.cache.blocks = static_cast<std::size_t>(
      std::stoll(arg_value(argc, argv, "--beta").value_or("4096")));
  config.cache.remote_fraction =
      std::stod(arg_value(argc, argv, "--gamma").value_or("50")) / 100.0;
  config.line_rate_gbps = std::stod(arg_value(argc, argv, "--rate").value_or("40"));
  config.fe_service_cycles =
      std::stoi(arg_value(argc, argv, "--fe-cycles").value_or("40"));
  config.fe_parallelism =
      std::stoi(arg_value(argc, argv, "--fe-parallel").value_or("1"));
  config.packets_per_lc = static_cast<std::size_t>(
      std::stoll(arg_value(argc, argv, "--packets").value_or("100000")));
  config.seed = static_cast<std::uint64_t>(
      std::stoll(arg_value(argc, argv, "--seed").value_or("42")));
  config.partition = !has_flag(argc, argv, "--no-partition");
  config.use_lr_cache = !has_flag(argc, argv, "--no-cache");
  config.flush_interval_cycles = static_cast<std::uint64_t>(
      std::stoll(arg_value(argc, argv, "--update-interval").value_or("0")));
  if (has_flag(argc, argv, "--selective-invalidate")) {
    config.update_policy = core::RouterConfig::UpdatePolicy::kSelectiveInvalidate;
  }
  if (const auto name = arg_value(argc, argv, "--trie")) {
    const auto kind = parse_trie(*name);
    if (!kind) {
      std::cerr << "unknown trie '" << *name << "'\n";
      return 1;
    }
    config.trie = *kind;
  }

  const std::size_t table_size = static_cast<std::size_t>(
      std::stoll(arg_value(argc, argv, "--table-size").value_or("140838")));
  const bool ipv6 = has_flag(argc, argv, "--ipv6");
  const bool verify = has_flag(argc, argv, "--verify");
  const bool json = has_flag(argc, argv, "--json");

  trace::WorkloadProfile profile = trace::profile_d75();
  if (const auto name = arg_value(argc, argv, "--trace")) {
    bool found = false;
    for (const auto& p : trace::all_profiles()) {
      if (p.name == *name) {
        profile = p;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown trace '" << *name << "'\n";
      return 1;
    }
  }

  if (ipv6) {
    net::TableGen6Config table_config;
    table_config.size = table_size;
    table_config.seed = 0x6bed;
    const net::RouteTable6 table = net::generate_table6(table_config);
    std::cout << "IPv6 table: " << table.size() << " prefixes | psi=" << psi
              << " | beta=" << config.cache.blocks
              << " | gamma=" << config.cache.remote_fraction * 100 << "%"
              << " | trace=" << profile.name << "\n";
    core::RouterSim6 router(table, config);
    print_report(router.run_workload(profile, verify), psi,
                 config.use_lr_cache, verify, json);
    return 0;
  }

  net::TableGenConfig table_config;
  table_config.size = table_size;
  table_config.seed = 0x5eed'0002;
  const net::RouteTable table = net::generate_table(table_config);

  std::cout << "table: " << table.size() << " prefixes | psi=" << psi
            << " | trie=" << trie::to_string(config.trie)
            << " | beta=" << config.cache.blocks
            << " | gamma=" << config.cache.remote_fraction * 100 << "%"
            << " | rate=" << config.line_rate_gbps << " Gbps"
            << " | fe=" << config.fe_service_cycles << "cy x"
            << config.fe_parallelism << " | trace=" << profile.name << "\n";

  core::RouterSim router(table, config);
  if (config.partition && psi > 1) {
    std::cout << "control bits:";
    for (const int bit : router.rot().control_bits()) std::cout << ' ' << bit;
    std::cout << " | partition sizes:";
    for (const std::size_t s : router.rot().partition_sizes()) std::cout << ' ' << s;
    std::cout << "\n";
  }
  const auto storage = router.trie_storage_bytes();
  std::size_t max_storage = 0;
  for (const std::size_t s : storage) max_storage = std::max(max_storage, s);
  std::cout << "per-LC trie storage: <= " << max_storage / 1024 << " KB\n";

  print_report(router.run_workload(profile, verify), psi, config.use_lr_cache,
               verify, json);
  return 0;
}
