// Sec. 5.2's four simulated cases: {10, 40} Gbps line rate × {40, 62}-cycle
// FE lookup (Lulea vs DP trie service times). The paper presents only the
// 40 Gbps / 40-cycle case because "those cases see their results follow a
// similar trend" — this bench prints all four so the claim is checkable.
//
// Fixed: ψ = 4, β = 4K, γ = 50%.
//
// Points are independent simulations and run concurrently on the sweep
// runner; rows print in sweep order, identical to the sequential output.
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Sec. 5.2: mean lookup time across the four simulated cases (psi=4)",
      "trace,line_gbps,fe_cycles,mean_cycles,hit_rate");
  bench::rt2();

  struct Point {
    const trace::WorkloadProfile* profile;
    double gbps;
    int fe_cycles;
  };
  const auto profiles = trace::all_profiles();
  std::vector<Point> points;
  for (const auto& profile : profiles) {
    for (const double gbps : {10.0, 40.0}) {
      for (const int fe_cycles : {40, 62}) {
        points.push_back({&profile, gbps, fe_cycles});
      }
    }
  }
  const auto entries = bench::run_sweep(points, [&](const Point& point) {
    core::RouterConfig config = bench::figure_config(4, args.packets_per_lc);
    config.line_rate_gbps = point.gbps;
    config.fe_service_cycles = point.fe_cycles;
    config.trie =
        point.fe_cycles == 40 ? trie::TrieKind::kLulea : trie::TrieKind::kDp;
    core::RouterSim router(bench::rt2(), config);
    const auto result = router.run_workload(*point.profile);
    bench::PointOutput out;
    out.row = bench::rowf("%s,%.0f,%d,%.3f,%.4f\n", point.profile->name.c_str(),
                          point.gbps, point.fe_cycles,
                          result.mean_lookup_cycles(),
                          result.cache_total.hit_rate());
    if (args.json) {
      out.json = bench::json_point(
          bench::rowf("trace=%s,gbps=%.0f,fe_cycles=%d",
                      point.profile->name.c_str(), point.gbps, point.fe_cycles),
          result);
    }
    return out;
  });
  bench::write_json_report(args, "rate_matrix", entries);
  return 0;
}
