// Reproduces Fig. 5: mean lookup time (cycles) versus LR-cache size β for
// ψ = 16, five traces, 40 Gbps LCs, 40-cycle FE lookups. Following
// Sec. 5.2, γ = 50% for β >= 2K and 25% for β = 1K.
//
// Paper shape: larger β consistently lowers mean lookup time; at β = 4K
// every trace is below 9.2 cycles (>21 Mpps per LC, >336 Mpps router-wide).
//
// Sweep points are grouped by β: every trace at one β shares the same
// router build (run() fully resets per-run state). Groups run concurrently
// on the sweep runner; rows print trace-major, identical to the sequential
// per-point output.
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 5: mean lookup time vs LR-cache size (psi=16)",
                      "trace,beta_blocks,mean_cycles,hit_rate,lc_mpps");
  bench::rt2();

  const auto profiles = trace::all_profiles();
  const std::vector<std::size_t> betas{1024, 2048, 4096, 8192};
  const auto points_by_beta =
      sim::parallel_sweep(betas, [&](std::size_t beta) {
        core::RouterConfig config =
            bench::figure_config(16, args.packets_per_lc);
        config.engine = args.engine;
        config.execution = args.execution;
        config.threads = args.threads;
        config.cache.blocks = beta;
        config.cache.remote_fraction = beta == 1024 ? 0.25 : 0.50;
        core::RouterSim router(bench::rt2(), config);
        std::vector<bench::PointOutput> points;
        points.reserve(profiles.size());
        for (const auto& profile : profiles) {
          const auto result = router.run_workload(profile);
          bench::PointOutput point;
          point.row = bench::rowf(
              "%s,%zu,%.3f,%.4f,%.1f\n", profile.name.c_str(), beta,
              result.mean_lookup_cycles(), result.cache_total.hit_rate(),
              result.latency.lookups_per_second(sim::kCycleNs) / 1e6);
          if (args.json) {
            point.json = bench::json_point(
                bench::rowf("trace=%s,beta=%zu", profile.name.c_str(), beta),
                result);
          }
          points.push_back(std::move(point));
        }
        return points;
      });
  std::vector<std::string> entries;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (const auto& points : points_by_beta) {
      std::fputs(points[p].row.c_str(), stdout);
      if (args.json) entries.push_back(points[p].json);
    }
  }
  bench::write_json_report(args, "fig5_cache_size", entries);
  return 0;
}
