// Reproduces Fig. 5: mean lookup time (cycles) versus LR-cache size β for
// ψ = 16, five traces, 40 Gbps LCs, 40-cycle FE lookups. Following
// Sec. 5.2, γ = 50% for β >= 2K and 25% for β = 1K.
//
// Paper shape: larger β consistently lowers mean lookup time; at β = 4K
// every trace is below 9.2 cycles (>21 Mpps per LC, >336 Mpps router-wide).
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 5: mean lookup time vs LR-cache size (psi=16)",
                      "trace,beta_blocks,mean_cycles,hit_rate,lc_mpps");
  for (const auto& profile : trace::all_profiles()) {
    for (const std::size_t beta : {1024u, 2048u, 4096u, 8192u}) {
      core::RouterConfig config = bench::figure_config(16, args.packets_per_lc);
      config.cache.blocks = beta;
      config.cache.remote_fraction = beta == 1024 ? 0.25 : 0.50;
      core::RouterSim router(bench::rt2(), config);
      const auto result = router.run_workload(profile);
      std::printf("%s,%zu,%.3f,%.4f,%.1f\n", profile.name.c_str(), beta,
                  result.mean_lookup_cycles(), result.cache_total.hit_rate(),
                  result.latency.lookups_per_second(sim::kCycleNs) / 1e6);
    }
  }
  return 0;
}
