// Reproduces the paper's headline claim (Secs. 1, 5.2): a SPAL router with
// ψ = 16 and β = 4K forwards >336 million packets/s — 4.2× a conventional
// router whose per-lookup cost is the 40-cycle (200 ns) Lulea FE time with
// queueing "ignored optimistically" (i.e. 5 Mpps per LC, 80 Mpps for 16).
//
// Printed per trace: SPAL mean lookup cycles, per-LC and router-wide Mpps,
// the measured worst case, and the speedup over the optimistic baseline.
// After the simulated table, the bench measures the *host-side* lookup rate
// of LC 0's built trie — the scalar path vs the interleaved batch pipeline
// (chunk width from --batch, default 8) — through the core fe_host_lookup
// path, so the abstract 40-cycle FE model sits next to real ns/lookup.
#include <chrono>
#include <random>

#include "bench_util.h"

using namespace spal;

namespace {

double pass_ns(core::RouterSim& router, const std::vector<net::Ipv4Addr>& keys,
               std::vector<net::NextHop>& out, std::size_t batch) {
  const auto start = std::chrono::steady_clock::now();
  router.host_fe_lookup(0, keys.data(), keys.size(), out.data(), batch);
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         static_cast<double>(keys.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  constexpr int kPsi = 16;
  constexpr double kBaselineCycles = 40.0;  // conventional router, no queueing
  bench::print_header(
      "Headline: psi=16, beta=4K forwarding rate vs conventional router",
      "trace,mean_cycles,worst_cycles,lc_mpps,router_mpps,speedup_vs_40cy");
  core::RouterConfig config = bench::figure_config(kPsi, args.packets_per_lc);
  config.cache.blocks = 4096;
  // One router reused across traces: run() starts every simulation from a
  // cold router, so results are identical to per-trace construction.
  core::RouterSim router(bench::rt2(), config);
  double total_speedup = 0.0;
  int traces = 0;
  std::vector<std::string> entries;
  for (const auto& profile : trace::all_profiles()) {
    const auto result = router.run_workload(profile);
    const double lc_mpps = result.latency.lookups_per_second(sim::kCycleNs) / 1e6;
    const double speedup = kBaselineCycles / result.mean_lookup_cycles();
    total_speedup += speedup;
    ++traces;
    std::printf("%s,%.3f,%llu,%.1f,%.1f,%.2f\n", profile.name.c_str(),
                result.mean_lookup_cycles(),
                static_cast<unsigned long long>(result.worst_lookup_cycles()),
                lc_mpps, lc_mpps * kPsi, speedup);
    if (args.json) {
      entries.push_back(bench::json_point(
          bench::rowf("trace=%s", profile.name.c_str()), result));
    }
  }
  std::printf("# paper: >336 Mpps router-wide, 4.2x over the conventional router\n");
  std::printf("# measured mean speedup over all traces: %.2fx\n",
              total_speedup / traces);

  // Host-side FE rate: wall-clock lookups into LC 0's built trie over its
  // own forwarding-table fragment, scalar vs batch pipeline.
  {
    const net::RouteTable& lc0 = router.rot().table_of(0);
    std::mt19937_64 rng(0x4057f3ULL);
    std::uniform_int_distribution<std::size_t> pick(0, lc0.size() - 1);
    std::vector<net::Ipv4Addr> keys;
    keys.reserve(args.packets_per_lc);
    for (std::size_t i = 0; i < args.packets_per_lc; ++i) {
      keys.push_back(net::random_address_in(lc0.entries()[pick(rng)].prefix, rng));
    }
    std::vector<net::NextHop> scalar_out(keys.size()), batch_out(keys.size());
    const double scalar_ns = pass_ns(router, keys, scalar_out, 1);
    const std::size_t width = args.batch;
    const double batch_ns = pass_ns(router, keys, batch_out, width);
    if (batch_out != scalar_out) {
      std::fprintf(stderr, "host FE batch/scalar next-hop divergence\n");
      return 1;
    }
    std::printf("# host FE (LC 0, %s, simd=%s): scalar %.1f ns/lookup, "
                "batch(width=%zu) %.1f ns/lookup, %.2fx\n",
                std::string(trie::to_string(router.config().trie)).c_str(),
                std::string(trie::to_string(trie::resolved_simd_level()))
                    .c_str(),
                scalar_ns, width, batch_ns,
                batch_ns > 0.0 ? scalar_ns / batch_ns : 0.0);
  }
  bench::write_json_report(args, "throughput", entries);
  return 0;
}
