// Reproduces the paper's headline claim (Secs. 1, 5.2): a SPAL router with
// ψ = 16 and β = 4K forwards >336 million packets/s — 4.2× a conventional
// router whose per-lookup cost is the 40-cycle (200 ns) Lulea FE time with
// queueing "ignored optimistically" (i.e. 5 Mpps per LC, 80 Mpps for 16).
//
// Printed per trace: SPAL mean lookup cycles, per-LC and router-wide Mpps,
// the measured worst case, and the speedup over the optimistic baseline.
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  constexpr int kPsi = 16;
  constexpr double kBaselineCycles = 40.0;  // conventional router, no queueing
  bench::print_header(
      "Headline: psi=16, beta=4K forwarding rate vs conventional router",
      "trace,mean_cycles,worst_cycles,lc_mpps,router_mpps,speedup_vs_40cy");
  double total_speedup = 0.0;
  int traces = 0;
  std::vector<std::string> entries;
  for (const auto& profile : trace::all_profiles()) {
    core::RouterConfig config = bench::figure_config(kPsi, args.packets_per_lc);
    config.cache.blocks = 4096;
    core::RouterSim router(bench::rt2(), config);
    const auto result = router.run_workload(profile);
    const double lc_mpps = result.latency.lookups_per_second(sim::kCycleNs) / 1e6;
    const double speedup = kBaselineCycles / result.mean_lookup_cycles();
    total_speedup += speedup;
    ++traces;
    std::printf("%s,%.3f,%llu,%.1f,%.1f,%.2f\n", profile.name.c_str(),
                result.mean_lookup_cycles(),
                static_cast<unsigned long long>(result.worst_lookup_cycles()),
                lc_mpps, lc_mpps * kPsi, speedup);
    if (args.json) {
      entries.push_back(bench::json_point(
          bench::rowf("trace=%s", profile.name.c_str()), result));
    }
  }
  std::printf("# paper: >336 Mpps router-wide, 4.2x over the conventional router\n");
  std::printf("# measured mean speedup over all traces: %.2fx\n",
              total_speedup / traces);
  bench::write_json_report(args, "throughput", entries);
  return 0;
}
