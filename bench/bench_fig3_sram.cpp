// Reproduces Fig. 3: total SRAM (Kbytes) required for the DP, Lulea and LC
// tries with (X_S) and without (X_W) SPAL partitioning, for ψ ∈ {4, 16} and
// both routing tables.
//
// "Without" means every LC holds the full-table trie (a conventional
// router), so router-total SRAM = ψ × whole-trie size. "With" sums the
// per-LC partition tries. Per-LC numbers are printed too, since Sec. 4
// quotes them (e.g. Lulea RT_1 ψ=4: 87-91 KB per LC vs ~260 KB whole).
#include "bench_util.h"
#include "partition/rot_partition.h"

using namespace spal;

namespace {

void report(const char* table_name, const net::RouteTable& table, int psi) {
  const partition::RotPartition rot(table, psi);
  const struct {
    trie::TrieKind kind;
    const char* label;
  } kTries[] = {
      {trie::TrieKind::kDp, "DP"},
      {trie::TrieKind::kLulea, "LL"},
      {trie::TrieKind::kLc, "LC"},
  };
  for (const auto& [kind, label] : kTries) {
    const auto whole = trie::build_lpm(kind, table);
    std::size_t partitioned_total = 0;
    std::size_t per_lc_min = ~std::size_t{0}, per_lc_max = 0;
    for (int lc = 0; lc < psi; ++lc) {
      const auto part = trie::build_lpm(kind, rot.table_of(lc));
      const std::size_t bytes = part->storage_bytes();
      partitioned_total += bytes;
      per_lc_min = std::min(per_lc_min, bytes);
      per_lc_max = std::max(per_lc_max, bytes);
    }
    const std::size_t replicated_total = whole->storage_bytes() * static_cast<std::size_t>(psi);
    std::printf("%s_S,psi=%d,%s,%zu\n", label, psi, table_name,
                partitioned_total / 1024);
    std::printf("%s_W,psi=%d,%s,%zu\n", label, psi, table_name,
                replicated_total / 1024);
    std::printf("# %s %s psi=%d: whole-trie/LC=%zu KB, partitioned/LC=%zu-%zu KB, per-LC saving>=%zu KB\n",
                label, table_name, psi, whole->storage_bytes() / 1024,
                per_lc_min / 1024, per_lc_max / 1024,
                (whole->storage_bytes() - per_lc_max) / 1024);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3: total SRAM (KB) per trie, partitioned (_S) vs whole-table (_W)",
      "series,psi,table,total_kbytes");
  report("RT_1", bench::rt1(), 4);
  report("RT_2", bench::rt2(), 4);
  report("RT_1", bench::rt1(), 16);
  report("RT_2", bench::rt2(), 16);
  return 0;
}
