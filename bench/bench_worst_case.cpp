// The paper's worst-case claim (Secs. 1, 3, 5.2): partitioning "may
// possibly shorten the worst-case lookup time (thanks to fewer memory
// accesses during longest-prefix matching search)".
//
// This bench measures the maximum memory accesses any lookup performs over
// the whole-table trie vs each ψ=16 partition trie, per algorithm, on RT_2.
// Sampling: every prefix's range endpoints plus 200k matched addresses —
// the boundary addresses are where LPM walks run deepest.
#include <algorithm>

#include "bench_util.h"
#include "partition/rot_partition.h"

using namespace spal;

namespace {

std::uint64_t max_accesses(const trie::LpmIndex& index, const net::RouteTable& table,
                           std::uint64_t seed) {
  std::uint64_t worst = 0;
  const auto probe = [&](net::Ipv4Addr addr) {
    trie::MemAccessCounter counter;
    (void)index.lookup_counted(addr, counter);
    worst = std::max(worst, counter.total());
  };
  for (const net::RouteEntry& e : table.entries()) {
    probe(e.prefix.range_first());
    probe(e.prefix.range_last());
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 200'000; ++i) {
    probe(net::random_address_in(table.entries()[pick(rng)].prefix, rng));
  }
  return worst;
}

}  // namespace

int main() {
  bench::print_header(
      "Worst-case memory accesses per lookup: whole table vs psi=16 partitions",
      "trie,whole_max_accesses,partition_max_accesses(max over LCs)");
  const net::RouteTable& table = bench::rt2();
  const partition::RotPartition rot(table, 16);
  for (const auto kind : {trie::TrieKind::kDp, trie::TrieKind::kLulea,
                          trie::TrieKind::kLc, trie::TrieKind::kBinary}) {
    const auto whole = trie::build_lpm(kind, table);
    const std::uint64_t whole_worst = max_accesses(*whole, table, 0xbad);
    std::uint64_t partition_worst = 0;
    for (int lc = 0; lc < 16; ++lc) {
      const auto part = trie::build_lpm(kind, rot.table_of(lc));
      partition_worst = std::max(
          partition_worst, max_accesses(*part, rot.table_of(lc), 0xbad + lc));
    }
    std::printf("%s,%llu,%llu\n", std::string(trie::to_string(kind)).c_str(),
                static_cast<unsigned long long>(whole_worst),
                static_cast<unsigned long long>(partition_worst));
  }
  std::printf("# paper: partitioning \"may possibly shorten the worst-case lookup time\"\n");
  return 0;
}
