// Google-benchmark micro benches: build time and raw lookup throughput of
// each LPM index over RT_1-scale tables, plus LR-cache probe throughput.
// These are the host-machine numbers behind the simulator's abstract
// 40-/62-cycle FE model.
#include <benchmark/benchmark.h>

#include <random>

#include "cache/lr_cache.h"
#include "net/table_gen.h"
#include "trie/lpm.h"

using namespace spal;

namespace {

const net::RouteTable& bench_table() {
  static const net::RouteTable table = [] {
    net::TableGenConfig config;
    config.size = 41'709;  // RT_1 scale
    config.seed = 0x5eed'0001;
    return net::generate_table(config);
  }();
  return table;
}

std::vector<net::Ipv4Addr> bench_addresses(std::size_t count) {
  const net::RouteTable& table = bench_table();
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  std::vector<net::Ipv4Addr> addresses;
  addresses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    addresses.push_back(net::random_address_in(table.entries()[pick(rng)].prefix, rng));
  }
  return addresses;
}

trie::TrieKind kind_of(int index) {
  switch (index) {
    case 0: return trie::TrieKind::kBinary;
    case 1: return trie::TrieKind::kDp;
    case 2: return trie::TrieKind::kLulea;
    default: return trie::TrieKind::kLc;
  }
}

void BM_TrieBuild(benchmark::State& state) {
  const auto kind = kind_of(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto index = trie::build_lpm(kind, bench_table());
    benchmark::DoNotOptimize(index);
  }
  state.SetLabel(std::string(trie::to_string(kind)));
}
BENCHMARK(BM_TrieBuild)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_TrieLookup(benchmark::State& state) {
  const auto kind = kind_of(static_cast<int>(state.range(0)));
  const auto index = trie::build_lpm(kind, bench_table());
  const auto addresses = bench_addresses(1 << 16);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->lookup(addresses[i++ & 0xffff]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(trie::to_string(kind)));
}
BENCHMARK(BM_TrieLookup)->DenseRange(0, 3);

// Batched path (lookup_batch in chunks of range(1) keys) over the same
// address stream; select scalar vs batch with
// --benchmark_filter='BM_TrieLookup/…' vs 'BM_TrieLookupBatch/…'.
void BM_TrieLookupBatch(benchmark::State& state) {
  const auto kind = kind_of(static_cast<int>(state.range(0)));
  const auto width = static_cast<std::size_t>(state.range(1));
  const auto index = trie::build_lpm(kind, bench_table());
  const auto addresses = bench_addresses(1 << 16);
  std::vector<net::NextHop> out(width);
  std::size_t i = 0;
  for (auto _ : state) {
    index->lookup_batch(addresses.data() + i, width, out.data());
    benchmark::DoNotOptimize(out.data());
    i += width;
    if (i + width > addresses.size()) i = 0;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
  state.SetLabel(std::string(trie::to_string(kind)));
}
BENCHMARK(BM_TrieLookupBatch)
    ->ArgsProduct({benchmark::CreateDenseRange(0, 3, 1), {8, 32}});

void BM_LrCacheProbe(benchmark::State& state) {
  cache::LrCacheConfig config;
  config.blocks = static_cast<std::size_t>(state.range(0));
  cache::LrCache cache(config);
  const auto addresses = bench_addresses(1 << 16);
  std::uint64_t now = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const net::Ipv4Addr addr = addresses[i++ & 0xffff];
    const auto probe = cache.probe(addr, ++now);
    if (probe.state == cache::ProbeState::kMiss) {
      cache.insert(addr, 1, cache::Origin::kLocal, now);
    }
    benchmark::DoNotOptimize(probe);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LrCacheProbe)->Arg(1024)->Arg(4096)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
