// Reproduces Fig. 6: mean lookup time (cycles) versus ψ (number of LCs,
// any integer — 3 included deliberately) for β = 4K, γ = 50%, five traces.
//
// Paper shape: mean lookup time falls as ψ grows (finer fragmentation =>
// better per-LC address-space coverage + more FE parallelism); ψ = 1 is
// also what an LR-cache-without-partitioning router achieves regardless of
// its LC count (the Sec. 5.2 comparison against [6]).
//
// Sweep points are grouped by ψ: every trace at one ψ shares the same
// router build (run() fully resets per-run state), so the expensive
// partition + per-LC trie construction happens once per ψ instead of once
// per (trace, ψ). Groups run concurrently on the sweep runner; rows print
// trace-major, identical to the sequential per-point output.
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 6: mean lookup time vs psi (beta=4K, gamma=50%)",
                      "trace,psi,mean_cycles,hit_rate,remote_fraction");
  bench::rt2();

  const auto profiles = trace::all_profiles();
  const std::vector<int> psis{1, 2, 3, 4, 8, 16};
  const auto points_by_psi =
      sim::parallel_sweep(psis, [&](int psi) {
        core::RouterConfig config =
            bench::figure_config(psi, args.packets_per_lc);
        config.engine = args.engine;
        config.execution = args.execution;
        config.threads = args.threads;
        config.cache.blocks = 4096;
        config.cache.remote_fraction = 0.50;
        core::RouterSim router(bench::rt2(), config);
        std::vector<bench::PointOutput> points;
        points.reserve(profiles.size());
        for (const auto& profile : profiles) {
          const auto result = router.run_workload(profile);
          const double remote_share =
              result.resolved_packets == 0
                  ? 0.0
                  : static_cast<double>(result.remote_requests) /
                        static_cast<double>(result.resolved_packets);
          bench::PointOutput point;
          point.row = bench::rowf(
              "%s,%d,%.3f,%.4f,%.4f\n", profile.name.c_str(), psi,
              result.mean_lookup_cycles(), result.cache_total.hit_rate(),
              remote_share);
          if (args.json) {
            point.json = bench::json_point(
                bench::rowf("trace=%s,psi=%d", profile.name.c_str(), psi),
                result);
          }
          points.push_back(std::move(point));
        }
        return points;
      });
  std::vector<std::string> entries;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (const auto& points : points_by_psi) {
      std::fputs(points[p].row.c_str(), stdout);
      if (args.json) entries.push_back(points[p].json);
    }
  }
  bench::write_json_report(args, "fig6_scaling", entries);
  return 0;
}
