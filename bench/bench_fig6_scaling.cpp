// Reproduces Fig. 6: mean lookup time (cycles) versus ψ (number of LCs,
// any integer — 3 included deliberately) for β = 4K, γ = 50%, five traces.
//
// Paper shape: mean lookup time falls as ψ grows (finer fragmentation =>
// better per-LC address-space coverage + more FE parallelism); ψ = 1 is
// also what an LR-cache-without-partitioning router achieves regardless of
// its LC count (the Sec. 5.2 comparison against [6]).
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 6: mean lookup time vs psi (beta=4K, gamma=50%)",
                      "trace,psi,mean_cycles,hit_rate,remote_fraction");
  for (const auto& profile : trace::all_profiles()) {
    for (const int psi : {1, 2, 3, 4, 8, 16}) {
      core::RouterConfig config = bench::figure_config(psi, args.packets_per_lc);
      config.cache.blocks = 4096;
      config.cache.remote_fraction = 0.50;
      core::RouterSim router(bench::rt2(), config);
      const auto result = router.run_workload(profile);
      const double remote_share =
          result.resolved_packets == 0
              ? 0.0
              : static_cast<double>(result.remote_requests) /
                    static_cast<double>(result.resolved_packets);
      std::printf("%s,%d,%.3f,%.4f,%.4f\n", profile.name.c_str(), psi,
                  result.mean_lookup_cycles(), result.cache_total.hit_rate(),
                  remote_share);
    }
  }
  return 0;
}
