// Ablation benches for the design choices the paper asserts but does not
// plot (DESIGN.md experiment index, last row):
//   A. victim cache (8 blocks) on/off                 [Sec. 3.2]
//   B. early W-bit block recording on/off             [Sec. 3.2]
//   C. set associativity 1/2/4/8 ("4 is nearly best") [Sec. 3.2]
//   D. replacement policy LRU/FIFO/random             [Sec. 3.2]
//   E. criteria-selected control bits vs naive first-η bits vs random bits
//      (partition quality feeding lookup performance) [Sec. 3.1]
//
// Variants are independent simulations: configs are assembled sequentially,
// then every (study, variant) point runs concurrently on the sweep runner.
#include <random>

#include "bench_util.h"

using namespace spal;

namespace {

struct Point {
  std::string study;
  std::string variant;
  core::RouterConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  // Ablations are comparative; half the figure default keeps them quick.
  const std::size_t packets = args.full ? args.packets_per_lc : args.packets_per_lc / 2;
  bench::print_header("Ablations (psi=4, beta=4K, trace L_92-1 unless noted)",
                      "study,variant,mean_cycles,hit_rate,fe_lookups");
  bench::rt2();

  std::vector<Point> points;
  const auto add = [&](const char* study, std::string variant,
                       core::RouterConfig config) {
    config.packets_per_lc = packets;
    points.push_back({study, std::move(variant), std::move(config)});
  };

  {  // A: victim cache
    add("victim_cache", "8_blocks", bench::figure_config(4, packets));
    core::RouterConfig without = bench::figure_config(4, packets);
    without.cache.victim_blocks = 0;
    add("victim_cache", "disabled", without);
  }
  {  // B: early reservation (W bit)
    add("early_reservation", "enabled", bench::figure_config(4, packets));
    core::RouterConfig without = bench::figure_config(4, packets);
    without.early_reservation = false;
    add("early_reservation", "disabled", without);
  }
  {  // C: associativity
    for (const std::size_t assoc : {1u, 2u, 4u, 8u}) {
      core::RouterConfig config = bench::figure_config(4, packets);
      config.cache.associativity = assoc;
      add("associativity", "ways_" + std::to_string(assoc), config);
    }
  }
  {  // D: replacement policy
    const struct {
      cache::Replacement policy;
      const char* label;
    } kPolicies[] = {{cache::Replacement::kLru, "lru"},
                     {cache::Replacement::kFifo, "fifo"},
                     {cache::Replacement::kRandom, "random"}};
    for (const auto& [policy, label] : kPolicies) {
      core::RouterConfig config = bench::figure_config(4, packets);
      config.cache.replacement = policy;
      add("replacement", label, config);
    }
  }
  {  // E: control-bit selection quality
    add("control_bits", "criteria", bench::figure_config(4, packets));
    core::RouterConfig naive = bench::figure_config(4, packets);
    naive.partition_config.control_bits = {0, 1};
    add("control_bits", "first_eta_bits", naive);
    core::RouterConfig random_bits = bench::figure_config(4, packets);
    std::mt19937_64 rng(11);
    while (random_bits.partition_config.control_bits.size() < 2) {
      const int bit = static_cast<int>(rng() % 32);
      auto& bits = random_bits.partition_config.control_bits;
      if (std::find(bits.begin(), bits.end(), bit) == bits.end()) bits.push_back(bit);
    }
    add("control_bits", "random_bits", random_bits);
  }

  const auto entries = bench::run_sweep(points, [&](const Point& point) {
    core::RouterSim router(bench::rt2(), point.config);
    const auto result = router.run_workload(trace::profile_l92_1());
    bench::PointOutput out;
    out.row = bench::rowf("%s,%s,%.3f,%.4f,%llu\n", point.study.c_str(),
                          point.variant.c_str(), result.mean_lookup_cycles(),
                          result.cache_total.hit_rate(),
                          static_cast<unsigned long long>(result.fe_lookups));
    if (args.json) {
      out.json = bench::json_point(
          bench::rowf("study=%s,variant=%s", point.study.c_str(),
                      point.variant.c_str()),
          result);
    }
    return out;
  });
  bench::write_json_report(args, "ablation", entries);
  return 0;
}
