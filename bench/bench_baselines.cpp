// Architecture comparison: SPAL against the three comparators the paper
// discusses, on equal terms (RT_2, 40 Gbps LCs, ψ = 8, five traces).
//
//   spal            — table fragmented, LR-caches (β=4K, γ=50%)
//   conventional    — full table per LC, no cache, 40-cycle Lulea FE; the
//                     paper quotes its mean as the bare 40 cycles with FE
//                     queueing "ignored optimistically" (at 40 Gbps the FE
//                     is oversubscribed, so the measured mean diverges —
//                     both are printed)
//   cache_only      — LR-caches but no partitioning (Chiueh & Pradhan
//                     [5,6]-style); per-LC storage unchanged, no sharing
//   length_parallel — Akhbarizadeh & Nourani [1] (Sec. 2.3): per-length
//                     partitions searched in parallel at the local LC. We
//                     credit it fast lookups (two parallel engines, 12-cycle
//                     exact-match service) but, as the paper critiques, it
//                     keeps ALL subsets at every LC (no storage scaling) and
//                     shares nothing between LCs.
//
// Printed per variant: mean/worst lookup cycles and per-LC table storage.
#include "bench_util.h"
#include "partition/rot_partition.h"

using namespace spal;

namespace {

std::size_t spal_per_lc_prefixes(const net::RouteTable& table, int psi) {
  const partition::RotPartition rot(table, psi);
  std::size_t biggest = 0;
  for (const std::size_t s : rot.partition_sizes()) biggest = std::max(biggest, s);
  return biggest;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  constexpr int kPsi = 8;
  bench::print_header("Architecture comparison (psi=8, RT_2, 40 Gbps)",
                      "trace,variant,mean_cycles,worst_cycles,per_lc_prefixes");

  const std::size_t spal_prefixes = spal_per_lc_prefixes(bench::rt2(), kPsi);
  const std::size_t full_prefixes = bench::rt2().size();

  struct Variant {
    const char* name;
    core::RouterConfig config;
    std::size_t per_lc_prefixes;
  };
  std::vector<Variant> variants;
  {
    Variant v{"spal", bench::figure_config(kPsi, args.packets_per_lc), spal_prefixes};
    variants.push_back(v);
  }
  {
    Variant v{"conventional", bench::figure_config(kPsi, args.packets_per_lc),
              full_prefixes};
    v.config.partition = false;
    v.config.use_lr_cache = false;
    variants.push_back(v);
  }
  {
    Variant v{"cache_only", bench::figure_config(kPsi, args.packets_per_lc),
              full_prefixes};
    v.config.partition = false;
    variants.push_back(v);
  }
  {
    Variant v{"length_parallel", bench::figure_config(kPsi, args.packets_per_lc),
              full_prefixes};
    v.config.partition = false;
    v.config.use_lr_cache = false;
    v.config.fe_service_cycles = 12;  // exact match per length, in parallel
    v.config.fe_parallelism = 2;
    variants.push_back(v);
  }

  std::vector<std::string> entries;
  for (const auto& profile : trace::all_profiles()) {
    for (auto& variant : variants) {
      core::RouterSim router(bench::rt2(), variant.config);
      const auto result = router.run_workload(profile);
      std::printf("%s,%s,%.3f,%llu,%zu\n", profile.name.c_str(), variant.name,
                  result.mean_lookup_cycles(),
                  static_cast<unsigned long long>(result.worst_lookup_cycles()),
                  variant.per_lc_prefixes);
      if (args.json) {
        entries.push_back(bench::json_point(
            bench::rowf("trace=%s,variant=%s", profile.name.c_str(),
                        variant.name),
            result));
      }
    }
  }
  std::printf("# conventional's optimistic (queueing-free) mean per the paper: 40 cycles\n");
  bench::write_json_report(args, "baselines", entries);
  return 0;
}
