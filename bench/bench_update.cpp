// Live route-update sweep: lookup time and update-pipeline overhead as the
// router churns.
//
// Sweeps update rate × ψ × trie kind on the D_75 trace over RT_2. Each point
// runs the live update pipeline (announce/withdraw/hop-change stream routed
// over the fabric to the home LCs, applied incrementally or by epoch
// rebuild, followed by LR-cache invalidation on every LC) and reports the
// mean/p99 lookup time, hit rate, and the update ledger: updates applied,
// per-fragment applications, incremental vs rebuild applications, FE cycles
// charged, fabric control messages, and blocks invalidated.
//
// `--update-rate=N` pins the rate axis (N updates per million cycles;
// 0 = pipeline off), `--update-seed=N` the stream seed, `--trie=KIND` the
// FE structure. With `--verify`, every resolved next hop is checked against
// the churning oracle and the bench exits nonzero on any unexcused mismatch
// or lost packet — staleness under churn is a hard invariant, not a curve.
//
// With --json, every point embeds the full RouterResult (update block
// included) so `spal_report --check` can validate the update ledger
// (applied == announces+withdraws+hop_changes, applications ==
// fe_incremental+fe_rebuilds, invalidation fan-out, fabric conservation).
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Live updates: lookup time and pipeline overhead vs update rate, psi, "
      "trie",
      "updates_per_mcycle,psi,trie,mean_cycles,p99_cycles,hit_rate,"
      "updates_applied,applications,fe_incremental,fe_rebuilds,"
      "update_cost_cycles,update_messages,invalidation_messages,"
      "blocks_invalidated");
  bench::rt2();

  const std::vector<std::uint64_t> rates =
      args.update_rate_set ? std::vector<std::uint64_t>{args.update_rate}
                           : std::vector<std::uint64_t>{100, 1'000, 10'000};
  const std::vector<int> psis{4, 16};
  const std::vector<trie::TrieKind> tries =
      args.trie_set
          ? std::vector<trie::TrieKind>{args.trie}
          : std::vector<trie::TrieKind>{trie::TrieKind::kDp,
                                        trie::TrieKind::kLulea,
                                        trie::TrieKind::kLc};

  struct Point {
    std::uint64_t rate;
    int psi;
    trie::TrieKind trie;
  };
  std::vector<Point> points;
  for (const std::uint64_t rate : rates) {
    for (const int psi : psis) {
      for (const trie::TrieKind kind : tries) {
        points.push_back(Point{rate, psi, kind});
      }
    }
  }

  int failures = 0;
  const auto outputs = sim::parallel_sweep(points, [&](const Point& point) {
    core::RouterConfig config =
        bench::figure_config(point.psi, args.packets_per_lc);
    config.engine = args.engine;
    config.execution = args.execution;
    config.threads = args.threads;
    config.trie = point.trie;
    config.update_policy =
        core::RouterConfig::UpdatePolicy::kSelectiveInvalidate;
    if (point.rate > 0) {
      // rate = updates per 1M cycles -> injection interval in cycles.
      config.update.interval_cycles = 1'000'000 / point.rate;
      config.update.seed = args.update_seed;
    }
    core::RouterSim router(bench::rt2(), config);
    const auto result = router.run_workload(trace::profile_d75(), args.verify);
    const std::uint64_t injected =
        static_cast<std::uint64_t>(args.packets_per_lc) *
        static_cast<std::uint64_t>(point.psi);
    const bool conserved = result.resolved_packets == injected &&
                           result.verify_mismatches == 0;
    bench::PointOutput out;
    out.row = bench::rowf(
        "%llu,%d,%s,%.3f,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu%s\n",
        static_cast<unsigned long long>(point.rate), point.psi,
        std::string(trie::to_string(point.trie)).c_str(),
        result.mean_lookup_cycles(),
        static_cast<unsigned long long>(result.latency.percentile(0.99)),
        result.cache_total.hit_rate(),
        static_cast<unsigned long long>(result.update.applied),
        static_cast<unsigned long long>(result.update.applications),
        static_cast<unsigned long long>(result.update.fe_incremental),
        static_cast<unsigned long long>(result.update.fe_rebuilds),
        static_cast<unsigned long long>(result.update.update_cost_cycles),
        static_cast<unsigned long long>(result.update.update_messages),
        static_cast<unsigned long long>(result.update.invalidation_messages),
        static_cast<unsigned long long>(result.update.blocks_invalidated),
        conserved ? "" : ",CONSERVATION_FAILURE");
    if (args.json) {
      out.json = bench::json_point(
          bench::rowf("rate=%llu,psi=%d,trie=%s",
                      static_cast<unsigned long long>(point.rate), point.psi,
                      std::string(trie::to_string(point.trie)).c_str()),
          result);
    }
    return std::pair<bench::PointOutput, bool>(std::move(out), conserved);
  });

  std::vector<std::string> entries;
  for (const auto& [out, conserved] : outputs) {
    std::fputs(out.row.c_str(), stdout);
    if (!out.json.empty()) entries.push_back(out.json);
    if (!conserved) ++failures;
  }
  bench::write_json_report(args, "live_updates", entries);
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_update: %d point(s) lost packets or resolved a stale "
                 "next hop\n",
                 failures);
    return 1;
  }
  return 0;
}
