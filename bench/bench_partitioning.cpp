// Reproduces Sec. 4's table-partitioning results: the control bits chosen
// for RT_1/RT_2 at ψ = 4 and ψ = 16, the per-partition prefix counts, and
// the replication/balance quality versus naive alternatives.
//
// Paper reference points: RT_1 (FUNET, 41,709 prefixes) partitions on bits
// {12,14} for ψ=4 and {12,14,15,16} for ψ=16; RT_2 (AS1221, 140,838) on
// {8,14} and {11,13,14,16}. Our tables are synthetic stand-ins, so the
// exact bit indices differ; what must reproduce is the *quality*: low
// replication (each partition ≈ 1/ψ of the table) and a small max-min
// spread, with the chosen bits beating naive low-index or random choices.
#include <numeric>
#include <random>

#include "bench_util.h"
#include "partition/rot_partition.h"

using namespace spal;

namespace {

void report(const char* table_name, const net::RouteTable& table, int psi) {
  const partition::RotPartition rot(table, psi);
  const auto sizes = rot.partition_sizes();
  const std::size_t total = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(), sizes.end());

  std::printf("%s,psi=%d,prefixes=%zu,bits=", table_name, psi, table.size());
  for (std::size_t i = 0; i < rot.control_bits().size(); ++i) {
    std::printf("%s%d", i ? "|" : "", rot.control_bits()[i]);
  }
  std::printf(",largest=%zu,smallest=%zu,replication=%.4f\n", *max_it, *min_it,
              static_cast<double>(total) / static_cast<double>(table.size()));
  std::printf("%s,psi=%d,partition_sizes=", table_name, psi);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%s%zu", i ? "|" : "", sizes[i]);
  }
  std::printf("\n");

  // Quality comparison: chosen bits vs the first η bits and random η bits.
  const int eta = static_cast<int>(rot.control_bits().size());
  std::vector<int> naive(static_cast<std::size_t>(eta));
  std::iota(naive.begin(), naive.end(), 0);
  const auto chosen_quality = partition::evaluate_bits(
      table, {rot.control_bits().begin(), rot.control_bits().end()});
  const auto naive_quality = partition::evaluate_bits(table, naive);
  std::mt19937_64 rng(7);
  std::vector<int> random_bits;
  while (static_cast<int>(random_bits.size()) < eta) {
    const int bit = static_cast<int>(rng() % 32);
    if (std::find(random_bits.begin(), random_bits.end(), bit) == random_bits.end()) {
      random_bits.push_back(bit);
    }
  }
  const auto random_quality = partition::evaluate_bits(table, random_bits);
  std::printf("%s,psi=%d,quality(total/spread): chosen=%zu/%zu first_bits=%zu/%zu random=%zu/%zu\n",
              table_name, psi, chosen_quality.total_entries,
              chosen_quality.largest - chosen_quality.smallest,
              naive_quality.total_entries,
              naive_quality.largest - naive_quality.smallest,
              random_quality.total_entries,
              random_quality.largest - random_quality.smallest);
}

}  // namespace

int main() {
  bench::print_header("Sec. 4: routing-table partitioning (control bits + partition sizes)",
                      "table,psi,metrics");
  report("RT_1", bench::rt1(), 4);
  report("RT_1", bench::rt1(), 16);
  report("RT_2", bench::rt2(), 4);
  report("RT_2", bench::rt2(), 16);
  return 0;
}
