// Fault-tolerance sweep: mean lookup time and recovery overhead as the
// fabric gets lossy.
//
// Sweeps per-message drop rate × ψ × outage length (LC 1's fabric port dead
// for the first `outage` cycles — an LC-down-at-boot scenario) on the D_75
// trace and reports, per point, the mean/p99 lookup time, the hit rate, and
// the full recovery ledger: drops, retransmits, timeouts, duplicate
// replies, degraded (slow-path) lookups, and the retry overhead
// (retransmits / remote requests).
//
// Every run executes in verify mode and the bench exits nonzero if any
// packet is unaccounted for (resolved != injected) or any resolved next hop
// disagrees with the full-table oracle — packet conservation under faults
// is a hard invariant, not a plotted curve. `--drop-rate`, `--outage`, and
// `--max-retries` pin one sweep axis each; defaults sweep
// drop ∈ {0, 0.001, 0.01, 0.05}, ψ ∈ {4, 16}, outage ∈ {0, 50000}.
//
// With --json, every point embeds the full RouterResult (fault block
// included) so `spal_report --check` can verify the conservation
// invariants (timeouts == retransmits + degraded_fallbacks, recovery
// actions cover every drop).
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Fault tolerance: lookup time and recovery overhead vs drop rate, psi, "
      "outage",
      "drop_rate,psi,outage_cycles,mean_cycles,p99_cycles,hit_rate,drops,"
      "retransmits,timeouts,duplicate_replies,degraded_lookups,"
      "retry_overhead");
  bench::rt2();

  const std::vector<double> drop_rates =
      args.drop_rate_set ? std::vector<double>{args.drop_rate}
                         : std::vector<double>{0.0, 0.001, 0.01, 0.05};
  const std::vector<int> psis{4, 16};
  const std::vector<std::uint64_t> outages =
      args.outage_set ? std::vector<std::uint64_t>{args.outage_cycles}
                      : std::vector<std::uint64_t>{0, 50'000};

  struct Point {
    double drop;
    int psi;
    std::uint64_t outage;
  };
  std::vector<Point> points;
  for (const double drop : drop_rates) {
    for (const int psi : psis) {
      for (const std::uint64_t outage : outages) {
        points.push_back(Point{drop, psi, outage});
      }
    }
  }

  int conservation_failures = 0;
  const auto outputs = sim::parallel_sweep(points, [&](const Point& point) {
    core::RouterConfig config =
        bench::figure_config(point.psi, args.packets_per_lc);
    config.engine = args.engine;
    config.execution = args.execution;
    config.threads = args.threads;
    config.fault.enabled = true;
    config.fault.drop_probability = point.drop;
    config.recovery.max_retries = args.max_retries;
    if (point.outage > 0 && point.psi > 1) {
      config.fault.outages.push_back(
          fabric::OutageWindow{/*port=*/1, /*start=*/0, point.outage});
    }
    core::RouterSim router(bench::rt2(), config);
    const auto result = router.run_workload(trace::profile_d75(),
                                            /*verify=*/true);
    const std::uint64_t injected =
        static_cast<std::uint64_t>(args.packets_per_lc) *
        static_cast<std::uint64_t>(point.psi);
    const bool conserved = result.resolved_packets == injected &&
                           result.verify_mismatches == 0;
    const double retry_overhead =
        result.remote_requests == 0
            ? 0.0
            : static_cast<double>(result.fault.retransmits) /
                  static_cast<double>(result.remote_requests);
    bench::PointOutput out;
    out.row = bench::rowf(
        "%.4g,%d,%llu,%.3f,%llu,%.4f,%llu,%llu,%llu,%llu,%llu,%.5f%s\n",
        point.drop, point.psi,
        static_cast<unsigned long long>(point.outage),
        result.mean_lookup_cycles(),
        static_cast<unsigned long long>(result.latency.percentile(0.99)),
        result.cache_total.hit_rate(),
        static_cast<unsigned long long>(result.fault.drops),
        static_cast<unsigned long long>(result.fault.retransmits),
        static_cast<unsigned long long>(result.fault.timeouts),
        static_cast<unsigned long long>(result.fault.duplicate_replies),
        static_cast<unsigned long long>(result.fault.degraded_lookups),
        retry_overhead, conserved ? "" : ",CONSERVATION_FAILURE");
    if (args.json) {
      out.json = bench::json_point(
          bench::rowf("drop=%.4g,psi=%d,outage=%llu", point.drop, point.psi,
                      static_cast<unsigned long long>(point.outage)),
          result);
    }
    return std::pair<bench::PointOutput, bool>(std::move(out), conserved);
  });

  std::vector<std::string> entries;
  for (const auto& [out, conserved] : outputs) {
    std::fputs(out.row.c_str(), stdout);
    if (!out.json.empty()) entries.push_back(out.json);
    if (!conserved) ++conservation_failures;
  }
  bench::write_json_report(args, "fault_tolerance", entries);
  if (conservation_failures > 0) {
    std::fprintf(stderr,
                 "bench_fault: %d point(s) lost or mis-resolved packets\n",
                 conservation_failures);
    return 1;
  }
  return 0;
}
