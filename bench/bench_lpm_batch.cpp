// Host-side LPM batch-pipeline micro bench: sweeps lookup batch width ×
// trie × table size and reports wall-clock ns/lookup for the scalar path
// and the interleaved software-prefetch pipeline (lookup_batch). Every
// batched result is compared against the scalar path key-by-key; any
// divergence is a hard failure (exit 1), so the CI smoke run doubles as a
// batch/scalar equivalence check.
//
// With --batch=N only that width is swept; by default widths 1-64 are. Each
// width runs once per SIMD dispatch level the CPU supports (generic up to
// the detected level; pin one with --simd=LEVEL), and every CSV row / JSON
// point carries its level in the `simd` column/field. With --json[=path] a
// machine-readable report is emitted ("lpm_batch" schema in
// DESIGN.md); `spal_report --check` validates it and `spal_report base new`
// flags ns/lookup regressions. The checked-in BENCH_lpm.json is this
// bench's Release-build baseline (see EXPERIMENTS.md).
#include <algorithm>
#include <chrono>
#include <random>

#include "bench_util.h"
#include "net/table_gen.h"
#include "trie/lpm.h"
#include "trie/simd_dispatch.h"

using namespace spal;

namespace {

struct TableSpec {
  std::size_t size;
  std::uint64_t seed;
};

// RT_1 scale plus the 120k-prefix table the perf trajectory tracks.
constexpr TableSpec kTables[] = {{41'709, 0x5eed'0001}, {120'000, 0x5eed'0120}};
constexpr trie::TrieKind kKinds[] = {trie::TrieKind::kLulea, trie::TrieKind::kLc,
                                     trie::TrieKind::kDp};
constexpr std::size_t kWidths[] = {1, 2, 4, 8, 16, 32, 64};
constexpr int kReps = 3;  // timed passes; the fastest is reported

std::vector<net::Ipv4Addr> matched_addresses(const net::RouteTable& table,
                                             std::size_t count) {
  std::mt19937_64 rng(0xba7c4ULL ^ table.size());
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  std::vector<net::Ipv4Addr> addresses;
  addresses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    addresses.push_back(
        net::random_address_in(table.entries()[pick(rng)].prefix, rng));
  }
  return addresses;
}

/// Fastest-of-kReps wall-clock ns for one full pass over `keys`.
template <typename Fn>
double time_pass(Fn&& pass) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    pass();
    const auto stop = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "LPM batch pipeline: ns/lookup, scalar vs interleaved prefetch",
      "trie,table_size,batch,simd,ns_per_lookup,mlookups_per_s,"
      "speedup_vs_scalar,match");

  // Dispatch levels to sweep: generic up to the resolved level — all the
  // CPU supports by default, capped by SPAL_SIMD (so a generic CI leg emits
  // only generic points). --simd pins a single level instead
  // (--simd=auto pins the detected one).
  std::vector<trie::SimdLevel> levels;
  if (args.simd_set) {
    levels.push_back(trie::resolved_simd_level());
  } else {
    for (int l = 0; l <= static_cast<int>(trie::resolved_simd_level()); ++l) {
      levels.push_back(static_cast<trie::SimdLevel>(l));
    }
  }

  std::vector<std::string> entries;
  std::size_t mismatches = 0;
  for (const TableSpec& spec : kTables) {
    net::TableGenConfig config;
    config.size = spec.size;
    config.seed = spec.seed;
    const net::RouteTable table = net::generate_table(config);
    const auto keys = matched_addresses(table, args.packets_per_lc);
    const std::size_t n = keys.size();
    std::vector<net::NextHop> scalar_out(n), batch_out(n);

    for (const trie::TrieKind kind : kKinds) {
      const auto index = trie::build_lpm(kind, table);
      // Scalar reference: result vector + fastest-pass timing. lookup() is
      // dispatch-independent, so one baseline serves every level.
      for (std::size_t i = 0; i < n; ++i) scalar_out[i] = index->lookup(keys[i]);
      const double scalar_ns =
          time_pass([&] {
            for (std::size_t i = 0; i < n; ++i) {
              scalar_out[i] = index->lookup(keys[i]);
            }
          }) /
          static_cast<double>(n);

      // --batch=N restricts the sweep to the scalar reference plus width N.
      std::vector<std::size_t> widths(std::begin(kWidths), std::end(kWidths));
      if (args.batch_set) {
        widths.assign(1, std::size_t{1});
        if (args.batch > 1) widths.push_back(args.batch);
      }
      for (const trie::SimdLevel level : levels) {
        trie::set_simd_mode(static_cast<trie::SimdMode>(level));
        const std::string simd(trie::to_string(level));
        for (const std::size_t width : widths) {
          const double ns =
              width == 1 ? scalar_ns
                         : time_pass([&] {
                             for (std::size_t i = 0; i < n; i += width) {
                               index->lookup_batch(keys.data() + i,
                                                   std::min(width, n - i),
                                                   batch_out.data() + i);
                             }
                           }) / static_cast<double>(n);
          bool match = true;
          if (width > 1) {
            for (std::size_t i = 0; i < n; ++i) {
              if (batch_out[i] != scalar_out[i]) {
                match = false;
                ++mismatches;
              }
            }
          }
          const double speedup = ns > 0.0 ? scalar_ns / ns : 0.0;
          std::printf("%s,%zu,%zu,%s,%.2f,%.2f,%.2f,%d\n",
                      std::string(trie::to_string(kind)).c_str(), spec.size,
                      width, simd.c_str(), ns, 1e3 / ns, speedup, match ? 1 : 0);
          if (args.json) {
            entries.push_back(bench::rowf(
                "{\"label\":\"trie=%s,size=%zu,batch=%zu,simd=%s\","
                "\"result\":{"
                "\"kind\":\"lpm_batch\",\"trie\":\"%s\",\"table_size\":%zu,"
                "\"batch\":%zu,\"simd\":\"%s\",\"lookups\":%zu,"
                "\"ns_per_lookup\":%.3f,"
                "\"lookups_per_second\":%.0f,\"scalar_ns_per_lookup\":%.3f,"
                "\"speedup_vs_scalar\":%.4f,\"storage_bytes\":%zu,"
                "\"match\":%s}}",
                std::string(trie::to_string(kind)).c_str(), spec.size, width,
                simd.c_str(), std::string(trie::to_string(kind)).c_str(),
                spec.size, width, simd.c_str(), n, ns, 1e9 / ns, scalar_ns,
                speedup,
                index->storage_bytes(), match ? "true" : "false"));
          }
        }
      }
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "bench_lpm_batch: %zu batch/scalar next-hop mismatches\n",
                 mismatches);
    return 1;
  }
  bench::write_json_report(args, "lpm_batch", entries);
  return 0;
}
