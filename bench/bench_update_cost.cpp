// Extension bench: the forwarding-table side of routing updates.
//
// SPAL flushes LR-caches per update (Sec. 3.2), but each update also has to
// reach the FE's trie. The compressed structures (Lulea, LC) are built for
// lookup speed, not incremental update — the standard practice the paper's
// [3] citation addresses is periodic rebuild. This bench measures, per
// trie, the wall-clock rebuild cost of the whole-table structure vs the
// per-LC partition structure (SPAL's fragmentation makes rebuilds ~ψ×
// cheaper too), plus the binary trie's truly incremental path as contrast.
#include <chrono>

#include "bench_util.h"
#include "net/update_stream.h"
#include "partition/rot_partition.h"
#include "trie/binary_trie.h"

using namespace spal;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::print_header(
      "Update handling: rebuild cost, whole table vs one SPAL partition (psi=16)",
      "trie,scope,prefixes,rebuild_ms");
  const net::RouteTable& table = bench::rt2();
  const partition::RotPartition rot(table, 16);
  const net::RouteTable& partition_table = rot.table_of(0);

  for (const auto kind : {trie::TrieKind::kDp, trie::TrieKind::kLulea,
                          trie::TrieKind::kLc, trie::TrieKind::kBinary}) {
    for (const auto& [scope, scoped_table] :
         {std::pair<const char*, const net::RouteTable*>{"whole", &table},
          {"partition", &partition_table}}) {
      // Median-ish over 3 builds.
      double best = 1e18;
      for (int i = 0; i < 3; ++i) {
        const auto start = std::chrono::steady_clock::now();
        auto index = trie::build_lpm(kind, *scoped_table);
        best = std::min(best, ms_since(start));
      }
      std::printf("%s,%s,%zu,%.2f\n", std::string(trie::to_string(kind)).c_str(),
                  scope, scoped_table->size(), best);
    }
  }

  // Incremental contrast: the binary trie absorbs updates in place.
  net::RouteTable evolving = table;
  trie::BinaryTrie incremental(evolving);
  const auto updates =
      net::generate_update_stream(evolving, net::UpdateStreamConfig{10'000, 77});
  const auto start = std::chrono::steady_clock::now();
  for (const net::TableUpdate& update : updates) {
    switch (update.kind) {
      case net::UpdateKind::kAnnounce:
      case net::UpdateKind::kHopChange:
        incremental.insert(update.prefix, update.next_hop);
        break;
      case net::UpdateKind::kWithdraw:
        (void)incremental.remove(update.prefix);
        break;
    }
  }
  const double total_ms = ms_since(start);
  std::printf("binary,incremental_10k_updates,%zu,%.2f\n", table.size(), total_ms);
  std::printf("# per-update incremental cost: %.2f us (vs a full rebuild per batch)\n",
              total_ms / 10.0);
  return 0;
}
