// Sec. 6 / Sec. 4 extension bench: SPAL under IPv6.
//
// The paper claims (a) "SPAL is feasibly applicable to IPv6" and (b) the
// per-LC SRAM reduction from partitioning is much larger under IPv6. This
// bench fragments a synthetic global-unicast IPv6 table for ψ ∈ {4, 16},
// prints the chosen 128-bit-space control bits, per-partition sizes, and
// the per-LC binary-trie storage before/after, next to the IPv4 RT_1
// numbers for the same ψ.
#include <numeric>

#include "bench_util.h"
#include "core/router_sim6.h"
#include "net/prefix6.h"
#include "partition/partition6.h"
#include "trie/binary_trie6.h"

using namespace spal;

namespace {

void report_v6(const net::RouteTable6& table, int psi) {
  const partition::RotPartition6 rot(table, psi);
  const trie::BinaryTrie6 whole(table);
  std::size_t biggest = 0;
  for (int lc = 0; lc < psi; ++lc) {
    biggest = std::max(biggest, trie::BinaryTrie6(rot.table_of(lc)).storage_bytes());
  }
  const auto sizes = rot.partition_sizes();
  const std::size_t total = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  std::printf("ipv6,psi=%d,prefixes=%zu,bits=", psi, table.size());
  for (std::size_t i = 0; i < rot.control_bits().size(); ++i) {
    std::printf("%s%d", i ? "|" : "", rot.control_bits()[i]);
  }
  std::printf(",replication=%.4f,whole_kb=%zu,per_lc_kb=%zu,saving_kb=%zu\n",
              static_cast<double>(total) / static_cast<double>(table.size()),
              whole.storage_bytes() / 1024, biggest / 1024,
              (whole.storage_bytes() - biggest) / 1024);
}

void report_v4(const net::RouteTable& table, int psi) {
  const partition::RotPartition rot(table, psi);
  const auto whole = trie::build_lpm(trie::TrieKind::kBinary, table);
  std::size_t biggest = 0;
  for (int lc = 0; lc < psi; ++lc) {
    biggest = std::max(
        biggest,
        trie::build_lpm(trie::TrieKind::kBinary, rot.table_of(lc))->storage_bytes());
  }
  std::printf("ipv4,psi=%d,prefixes=%zu,whole_kb=%zu,per_lc_kb=%zu,saving_kb=%zu\n",
              psi, table.size(), whole->storage_bytes() / 1024, biggest / 1024,
              (whole->storage_bytes() - biggest) / 1024);
}

}  // namespace

int main() {
  bench::print_header("Sec. 6 extension: SPAL partitioning under IPv6 "
                      "(binary-trie storage, same prefix count as RT_1-scale v4)",
                      "family,psi,metrics");
  net::TableGen6Config config;
  config.size = 41'709;  // match RT_1's prefix count for a fair comparison
  config.seed = 0x6bed;
  const net::RouteTable6 v6 = net::generate_table6(config);
  report_v4(bench::rt1(), 4);
  report_v6(v6, 4);
  report_v4(bench::rt1(), 16);
  report_v6(v6, 16);
  std::printf("# paper Sec. 4: \"the reduction amount will be much larger under IPv6\"\n");

  // End-to-end: the Fig. 6 sweep under IPv6 (binary-trie FEs; the longer
  // v6 walk costs ~62 cycles, the paper's DP-trie service band).
  std::printf("# Fig. 6 analogue under IPv6 (beta=4K, gamma=50%%, 62-cycle FE)\n");
  std::printf("trace,psi,mean_cycles,hit_rate\n");
  const trace::WorkloadProfile profile = trace::profile_d81();
  for (const int psi : {1, 2, 4, 8, 16}) {
    core::RouterConfig router_config = core::spal_default_config(psi);
    router_config.packets_per_lc = 50'000;
    router_config.fe_service_cycles = 62;
    core::RouterSim6 router(v6, router_config);
    const auto result = router.run_workload(profile);
    std::printf("%s,%d,%.3f,%.4f\n", profile.name.c_str(), psi,
                result.mean_lookup_cycles(), result.cache_total.hit_rate());
  }
  return 0;
}
