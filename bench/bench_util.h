// Shared helpers for the table/figure reproduction benches.
//
// Every figure bench prints one CSV row per plotted point
// (series,x,y[,extra...]) so the paper's figures can be re-plotted
// directly, plus a human-readable header. Benches default to 100,000
// packets per LC for quick runs; pass --full for the paper's 300,000 (or
// --packets=N for anything else).
//
// With --json[=path], benches additionally emit a machine-readable report:
// one JSON object per simulated point embedding RouterResult::to_json()
// (per-LC cache/FE/fabric/latency metrics — schema in DESIGN.md). The
// report goes to `path`, or to stdout after the CSV when no path is given.
// `tools/spal_report` validates the cross-component invariants of such a
// report and diffs two reports for metric regressions.
#pragma once

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/spal.h"
#include "sim/sweep.h"
#include "trie/simd_dispatch.h"

namespace spal::bench {

struct BenchArgs {
  std::size_t packets_per_lc = 100'000;
  bool full = false;
  // Event-engine override (--engine=heap|calendar|sharded) for A/B
  // wall-clock runs; results are bit-identical either way. `sharded` keeps
  // the calendar queue per shard and turns on the parallel execution mode;
  // --threads=N caps its worker count (0 = hardware concurrency).
  sim::EngineKind engine = sim::EngineKind::kCalendar;
  core::RouterConfig::ExecutionMode execution =
      core::RouterConfig::ExecutionMode::kSequential;
  int threads = 0;
  bool json = false;        ///< --json[=path]: emit the JSON report
  std::string json_path;    ///< empty = stdout
  /// --batch=N: LPM lookup batch width for the host-side measurements
  /// (1 = the scalar path; > 1 routes through lookup_batch in chunks of N).
  std::size_t batch = 8;
  bool batch_set = false;  ///< --batch was given explicitly
  /// Fault-injection knobs (bench_fault): --drop-rate=F is the per-message
  /// loss probability in [0,1], --outage=N a port-0..k outage length in
  /// cycles, --max-retries=N the retransmit budget before the degraded
  /// fallback. All validated strictly; out-of-range or non-numeric values
  /// exit 2.
  double drop_rate = 0.0;
  bool drop_rate_set = false;
  std::uint64_t outage_cycles = 0;
  bool outage_set = false;
  int max_retries = 3;
  bool max_retries_set = false;
  /// Live route-update knobs (bench_update): --update-rate=N injects N
  /// updates per million cycles, --update-seed=N seeds the stream,
  /// --trie=dp|lulea|lc|stride|gupta|binary picks the FE structure,
  /// --verify checks every resolved hop against the churning oracle.
  std::uint64_t update_rate = 0;  ///< updates per 1M cycles
  bool update_rate_set = false;
  std::uint64_t update_seed = 7;
  bool update_seed_set = false;
  trie::TrieKind trie = trie::TrieKind::kLulea;
  bool trie_set = false;
  bool verify = false;
  /// --simd=generic|sse42|avx2|auto pins the batch-lookup dispatch level
  /// for the whole process (applied immediately via trie::set_simd_mode, so
  /// it also overrides a SPAL_SIMD env setting). Unknown levels exit 2.
  /// Requests above the CPU's capability clamp to the detected level with a
  /// warning, exactly like the env variable.
  trie::SimdMode simd = trie::SimdMode::kAuto;
  bool simd_set = false;
  /// --table-size=N: target prefix count for the internet-scale bench
  /// (bench_scale; 0 = the bench's default, the ~1M-route modern DFZ).
  /// Lets the ctest smoke and the sanitizer jobs run the same binary at a
  /// size they can afford.
  std::size_t table_size = 0;
  bool table_size_set = false;
  /// Failover knobs (bench_failover): --replicas=N homes each fragment on
  /// its primary plus N ring-placed replica LCs, --suspect-after=N sets the
  /// health tracker's alive->suspect timeout streak (down follows at 2N),
  /// --migrate=FROM:TO schedules one live fragment migration mid-run. All
  /// validated strictly; malformed values exit 2.
  int replicas = 0;
  bool replicas_set = false;
  int suspect_after = 2;
  bool suspect_after_set = false;
  int migrate_from = -1;
  int migrate_to = -1;
  bool migrate_set = false;
  /// Load-balance knobs (bench_loadbalance): --balance=<count|traffic> pins
  /// the partitioning policy axis (count-balanced vs traffic-weighted),
  /// --rebalance-window=N sets the online rebalancer's sampling window in
  /// cycles (positive), and --inject-staleness arms the rebalancer's
  /// staleness fault hook so the verify sweep must exit nonzero (the
  /// WILL_FAIL CI leg). All validated strictly; malformed values exit 2.
  bool balance_traffic = false;
  bool balance_set = false;
  std::uint64_t rebalance_window = 0;
  bool rebalance_window_set = false;
  bool inject_staleness = false;

  /// Parses the shared bench flags. Malformed values (--packets=0 or
  /// --batch=0, negative or non-numeric counts) and unknown flags are
  /// rejected with exit code 2 instead of silently running a meaningless
  /// simulation.
  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--full") == 0) {
        args.full = true;
        args.packets_per_lc = 300'000;  // the paper's per-LC packet count
      } else if (std::strncmp(arg, "--packets=", 10) == 0) {
        args.packets_per_lc = parse_count(arg + 10, "--packets");
      } else if (std::strncmp(arg, "--batch=", 8) == 0) {
        args.batch = parse_count(arg + 8, "--batch");
        args.batch_set = true;
      } else if (std::strncmp(arg, "--drop-rate=", 12) == 0) {
        args.drop_rate = parse_fraction(arg + 12, "--drop-rate");
        args.drop_rate_set = true;
      } else if (std::strncmp(arg, "--outage=", 9) == 0) {
        args.outage_cycles = parse_nonnegative(arg + 9, "--outage");
        args.outage_set = true;
      } else if (std::strncmp(arg, "--max-retries=", 14) == 0) {
        const std::uint64_t retries =
            parse_nonnegative(arg + 14, "--max-retries");
        if (retries > 64) {
          std::fprintf(stderr, "--max-retries expects at most 64, got %llu\n",
                       static_cast<unsigned long long>(retries));
          usage_error(nullptr);
        }
        args.max_retries = static_cast<int>(retries);
        args.max_retries_set = true;
      } else if (std::strncmp(arg, "--update-rate=", 14) == 0) {
        args.update_rate = parse_nonnegative(arg + 14, "--update-rate");
        args.update_rate_set = true;
      } else if (std::strncmp(arg, "--update-seed=", 14) == 0) {
        args.update_seed = parse_nonnegative(arg + 14, "--update-seed");
        args.update_seed_set = true;
      } else if (std::strncmp(arg, "--trie=", 7) == 0) {
        const auto kind = trie::trie_kind_from_string(arg + 7);
        if (!kind.has_value()) {
          std::fprintf(stderr, "--trie expects a known trie kind, got '%s'\n",
                       arg + 7);
          usage_error(nullptr);
        }
        args.trie = *kind;
        args.trie_set = true;
      } else if (std::strncmp(arg, "--simd=", 7) == 0) {
        const auto mode = trie::simd_mode_from_string(arg + 7);
        if (!mode.has_value()) {
          std::fprintf(stderr,
                       "--simd expects generic, sse42, avx2, or auto, got "
                       "'%s'\n",
                       arg + 7);
          usage_error(nullptr);
        }
        args.simd = *mode;
        args.simd_set = true;
        trie::set_simd_mode(*mode);
      } else if (std::strncmp(arg, "--table-size=", 13) == 0) {
        args.table_size = parse_count(arg + 13, "--table-size");
        args.table_size_set = true;
      } else if (std::strncmp(arg, "--replicas=", 11) == 0) {
        const std::uint64_t replicas = parse_nonnegative(arg + 11, "--replicas");
        if (replicas > 64) {
          std::fprintf(stderr, "--replicas expects at most 64, got %llu\n",
                       static_cast<unsigned long long>(replicas));
          usage_error(nullptr);
        }
        args.replicas = static_cast<int>(replicas);
        args.replicas_set = true;
      } else if (std::strncmp(arg, "--suspect-after=", 16) == 0) {
        const std::size_t streak = parse_count(arg + 16, "--suspect-after");
        if (streak > 1024) {
          std::fprintf(stderr, "--suspect-after expects at most 1024, got "
                       "'%s'\n", arg + 16);
          usage_error(nullptr);
        }
        args.suspect_after = static_cast<int>(streak);
        args.suspect_after_set = true;
      } else if (std::strncmp(arg, "--migrate=", 10) == 0) {
        parse_migrate(arg + 10, args);
        args.migrate_set = true;
      } else if (std::strncmp(arg, "--balance=", 10) == 0) {
        const char* policy = arg + 10;
        if (std::strcmp(policy, "count") == 0) {
          args.balance_traffic = false;
        } else if (std::strcmp(policy, "traffic") == 0) {
          args.balance_traffic = true;
        } else {
          std::fprintf(stderr, "--balance expects count or traffic, got '%s'\n",
                       policy);
          usage_error(nullptr);
        }
        args.balance_set = true;
      } else if (std::strncmp(arg, "--rebalance-window=", 19) == 0) {
        args.rebalance_window =
            parse_count(arg + 19, "--rebalance-window");
        args.rebalance_window_set = true;
      } else if (std::strcmp(arg, "--inject-staleness") == 0) {
        args.inject_staleness = true;
      } else if (std::strcmp(arg, "--verify") == 0) {
        args.verify = true;
      } else if (std::strcmp(arg, "--engine=heap") == 0) {
        args.engine = sim::EngineKind::kHeap;
      } else if (std::strcmp(arg, "--engine=calendar") == 0) {
        args.engine = sim::EngineKind::kCalendar;
      } else if (std::strcmp(arg, "--engine=sharded") == 0) {
        args.execution = core::RouterConfig::ExecutionMode::kSharded;
      } else if (std::strncmp(arg, "--engine=", 9) == 0) {
        std::fprintf(stderr,
                     "--engine expects heap, calendar, or sharded, got '%s'\n",
                     arg + 9);
        usage_error(nullptr);
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        const std::size_t threads = parse_count(arg + 10, "--threads");
        if (threads > 4096) {
          std::fprintf(stderr, "--threads expects at most 4096, got '%s'\n",
                       arg + 10);
          usage_error(nullptr);
        }
        args.threads = static_cast<int>(threads);
      } else if (std::strcmp(arg, "--json") == 0) {
        args.json = true;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        args.json = true;
        args.json_path = arg + 7;
        if (args.json_path.empty()) usage_error("--json= requires a path");
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", arg);
        usage_error(nullptr);
      }
    }
    return args;
  }

 private:
  [[noreturn]] static void usage_error(const char* message) {
    if (message != nullptr) std::fprintf(stderr, "%s\n", message);
    std::fprintf(stderr,
                 "usage: [--full] [--packets=N] [--batch=N] "
                 "[--drop-rate=F] [--outage=N] [--max-retries=N] "
                 "[--update-rate=N] [--update-seed=N] [--trie=KIND] "
                 "[--table-size=N] [--replicas=N] [--suspect-after=N] "
                 "[--migrate=FROM:TO] "
                 "[--balance=count|traffic] [--rebalance-window=N] "
                 "[--inject-staleness] "
                 "[--simd=generic|sse42|avx2|auto] [--verify] "
                 "[--engine=heap|calendar|sharded] [--threads=N] "
                 "[--json[=path]]\n");
    std::exit(2);
  }

  static std::size_t parse_count(const char* text, const char* flag) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (*text == '\0' || *text == '-' || end == text || *end != '\0' ||
        errno != 0 || value == 0) {
      std::fprintf(stderr, "%s expects a positive integer, got '%s'\n", flag,
                   text);
      usage_error(nullptr);
    }
    return static_cast<std::size_t>(value);
  }

  /// Non-negative integer (0 allowed — "no outage" / "no retries" are valid
  /// sweep points, unlike a zero packet count).
  static std::uint64_t parse_nonnegative(const char* text, const char* flag) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (*text == '\0' || *text == '-' || end == text || *end != '\0' ||
        errno != 0) {
      std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                   flag, text);
      usage_error(nullptr);
    }
    return static_cast<std::uint64_t>(value);
  }

  /// FROM:TO pair of distinct LC indices ("1:3"). The bench validates the
  /// indices against its ψ; this only enforces shape and distinctness.
  static void parse_migrate(const char* text, BenchArgs& args) {
    errno = 0;
    char* end = nullptr;
    const long from = std::strtol(text, &end, 10);
    if (end == text || *end != ':' || errno != 0 || from < 0) {
      std::fprintf(stderr, "--migrate expects FROM:TO, got '%s'\n", text);
      usage_error(nullptr);
    }
    const char* to_text = end + 1;
    const long to = std::strtol(to_text, &end, 10);
    if (end == to_text || *end != '\0' || errno != 0 || to < 0 || to == from) {
      std::fprintf(stderr,
                   "--migrate expects distinct non-negative FROM:TO, got "
                   "'%s'\n",
                   text);
      usage_error(nullptr);
    }
    args.migrate_from = static_cast<int>(from);
    args.migrate_to = static_cast<int>(to);
  }

  /// Probability in [0, 1]; rejects non-numeric text and out-of-range values.
  static double parse_fraction(const char* text, const char* flag) {
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (*text == '\0' || end == text || *end != '\0' || errno != 0 ||
        value < 0.0 || value > 1.0) {
      std::fprintf(stderr, "%s expects a probability in [0,1], got '%s'\n",
                   flag, text);
      usage_error(nullptr);
    }
    return value;
  }
};

/// RT_2 stand-in, generated once per process (the paper presents RT_2
/// results; RT_1 trends match).
inline const net::RouteTable& rt2() {
  static const net::RouteTable table = net::make_rt2();
  return table;
}

inline const net::RouteTable& rt1() {
  static const net::RouteTable table = net::make_rt1();
  return table;
}

/// The paper's simulated case for Figs. 4-6: 40 Gbps LCs, 40-cycle (Lulea)
/// FE lookups.
inline core::RouterConfig figure_config(int num_lcs, std::size_t packets_per_lc) {
  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.line_rate_gbps = 40.0;
  config.fe_service_cycles = 40;
  config.packets_per_lc = packets_per_lc;
  return config;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("# %s\n", title);
  std::printf("# paper: SPAL (Tzeng, ICPP 2004); tables/traces are synthetic "
              "stand-ins, see DESIGN.md\n");
  std::printf("%s\n", columns);
}

/// printf-style formatting into a std::string (for sweep points that build
/// their CSV row off the main thread).
inline std::string rowf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[512];
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

/// One simulated point's output: the CSV row (always printed) and its JSON
/// report entry (collected when --json is on; empty otherwise). Sweep
/// lambdas build both off the main thread; emission stays in point order.
struct PointOutput {
  std::string row;
  std::string json;
};

/// Renders one JSON report entry: the point's label (e.g.
/// "trace=D_75,gamma=50") and the full RouterResult.
inline std::string json_point(const std::string& label,
                              const core::RouterResult& result) {
  return "{\"label\":\"" + label + "\",\"result\":" + result.to_json() + "}";
}

/// Writes the JSON report (no-op unless --json): a single object naming the
/// bench and carrying one entry per point. Exits nonzero if the path cannot
/// be written so CI never mistakes a missing report for a passing run.
inline void write_json_report(const BenchArgs& args, const char* bench,
                              const std::vector<std::string>& entries) {
  if (!args.json) return;
  std::string doc = "{\"bench\":\"";
  doc += bench;
  doc += "\",\"schema\":1,\"points\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) doc += ',';
    doc += entries[i];
  }
  doc += "]}\n";
  if (args.json_path.empty()) {
    std::fputs(doc.c_str(), stdout);
    return;
  }
  std::FILE* file = std::fopen(args.json_path.c_str(), "w");
  if (file == nullptr ||
      std::fwrite(doc.data(), 1, doc.size(), file) != doc.size() ||
      std::fclose(file) != 0) {
    std::fprintf(stderr, "cannot write JSON report to '%s'\n",
                 args.json_path.c_str());
    std::exit(1);
  }
}

/// Runs fn over every point on the parallel sweep runner (worker count from
/// SPAL_SWEEP_THREADS or the hardware) and prints the returned rows in point
/// order — output is byte-identical to a sequential run.
template <typename Point, typename Fn>
void print_sweep(const std::vector<Point>& points, Fn fn) {
  for (const std::string& row : sim::parallel_sweep(points, std::move(fn))) {
    std::fputs(row.c_str(), stdout);
  }
}

/// print_sweep for PointOutput-producing lambdas: prints the CSV rows in
/// point order and returns the JSON entries (empty strings filtered out)
/// for write_json_report.
template <typename Point, typename Fn>
std::vector<std::string> run_sweep(const std::vector<Point>& points, Fn fn) {
  std::vector<std::string> entries;
  for (PointOutput& out : sim::parallel_sweep(points, std::move(fn))) {
    std::fputs(out.row.c_str(), stdout);
    if (!out.json.empty()) entries.push_back(std::move(out.json));
  }
  return entries;
}

}  // namespace spal::bench
