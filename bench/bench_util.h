// Shared helpers for the table/figure reproduction benches.
//
// Every figure bench prints one CSV row per plotted point
// (series,x,y[,extra...]) so the paper's figures can be re-plotted
// directly, plus a human-readable header. Benches default to 100,000
// packets per LC for quick runs; pass --full for the paper's 300,000 (or
// --packets=N for anything else).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/spal.h"
#include "sim/sweep.h"

namespace spal::bench {

struct BenchArgs {
  std::size_t packets_per_lc = 100'000;
  bool full = false;
  // Event-engine override (--engine=heap|calendar) for A/B wall-clock runs;
  // results are bit-identical either way.
  sim::EngineKind engine = sim::EngineKind::kCalendar;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
        args.packets_per_lc = 300'000;  // the paper's per-LC packet count
      } else if (std::strncmp(argv[i], "--packets=", 10) == 0) {
        args.packets_per_lc = static_cast<std::size_t>(std::atoll(argv[i] + 10));
      } else if (std::strcmp(argv[i], "--engine=heap") == 0) {
        args.engine = sim::EngineKind::kHeap;
      } else if (std::strcmp(argv[i], "--engine=calendar") == 0) {
        args.engine = sim::EngineKind::kCalendar;
      }
    }
    return args;
  }
};

/// RT_2 stand-in, generated once per process (the paper presents RT_2
/// results; RT_1 trends match).
inline const net::RouteTable& rt2() {
  static const net::RouteTable table = net::make_rt2();
  return table;
}

inline const net::RouteTable& rt1() {
  static const net::RouteTable table = net::make_rt1();
  return table;
}

/// The paper's simulated case for Figs. 4-6: 40 Gbps LCs, 40-cycle (Lulea)
/// FE lookups.
inline core::RouterConfig figure_config(int num_lcs, std::size_t packets_per_lc) {
  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.line_rate_gbps = 40.0;
  config.fe_service_cycles = 40;
  config.packets_per_lc = packets_per_lc;
  return config;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("# %s\n", title);
  std::printf("# paper: SPAL (Tzeng, ICPP 2004); tables/traces are synthetic "
              "stand-ins, see DESIGN.md\n");
  std::printf("%s\n", columns);
}

/// printf-style formatting into a std::string (for sweep points that build
/// their CSV row off the main thread).
inline std::string rowf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buffer[512];
  std::vsnprintf(buffer, sizeof buffer, fmt, args);
  va_end(args);
  return buffer;
}

/// Runs fn over every point on the parallel sweep runner (worker count from
/// SPAL_SWEEP_THREADS or the hardware) and prints the returned rows in point
/// order — output is byte-identical to a sequential run.
template <typename Point, typename Fn>
void print_sweep(const std::vector<Point>& points, Fn fn) {
  for (const std::string& row : sim::parallel_sweep(points, std::move(fn))) {
    std::fputs(row.c_str(), stdout);
  }
}

}  // namespace spal::bench
