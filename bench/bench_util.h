// Shared helpers for the table/figure reproduction benches.
//
// Every figure bench prints one CSV row per plotted point
// (series,x,y[,extra...]) so the paper's figures can be re-plotted
// directly, plus a human-readable header. Benches default to 100,000
// packets per LC for quick runs; pass --full for the paper's 300,000 (or
// --packets=N for anything else).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/spal.h"

namespace spal::bench {

struct BenchArgs {
  std::size_t packets_per_lc = 100'000;
  bool full = false;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
        args.packets_per_lc = 300'000;  // the paper's per-LC packet count
      } else if (std::strncmp(argv[i], "--packets=", 10) == 0) {
        args.packets_per_lc = static_cast<std::size_t>(std::atoll(argv[i] + 10));
      }
    }
    return args;
  }
};

/// RT_2 stand-in, generated once per process (the paper presents RT_2
/// results; RT_1 trends match).
inline const net::RouteTable& rt2() {
  static const net::RouteTable table = net::make_rt2();
  return table;
}

inline const net::RouteTable& rt1() {
  static const net::RouteTable table = net::make_rt1();
  return table;
}

/// The paper's simulated case for Figs. 4-6: 40 Gbps LCs, 40-cycle (Lulea)
/// FE lookups.
inline core::RouterConfig figure_config(int num_lcs, std::size_t packets_per_lc) {
  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.line_rate_gbps = 40.0;
  config.fe_service_cycles = 40;
  config.packets_per_lc = packets_per_lc;
  return config;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("# %s\n", title);
  std::printf("# paper: SPAL (Tzeng, ICPP 2004); tables/traces are synthetic "
              "stand-ins, see DESIGN.md\n");
  std::printf("%s\n", columns);
}

}  // namespace spal::bench
