// Failover sweep: fragment replication, health-tracked re-routing, and live
// migration under a mid-run LC outage with concurrent route churn.
//
// Sweeps replicas × ψ × outage length (LC 1's fabric port dead for `outage`
// cycles starting a quarter of the way into the trace — a primary-LC
// failure while traffic and updates are in flight) on the D_75 trace with a
// live update stream, and reports, per point, the mean/p99 lookup time, the
// latency of packets that arrived during the outage, and the failover
// ledger: re-routed requests, replica/local-copy serves, probes, rejoins,
// deferred updates, resync entries, cutovers, and degraded fallbacks. A
// final fixed point (ψ=4, R=1) performs an operator migration of fragment
// 1 to LC 3 mid-run to exercise the copy-then-cutover path.
//
// Every run executes in verify mode and the bench exits nonzero if any
// packet is unaccounted for, any resolved next hop disagrees with the
// churning full-table oracle (a stale resolution), the failover ledger
// breaks conservation (update messages vs applications − resync entries,
// cutovers vs migrations + resync cutovers, resync entries vs deferrals),
// or — the paper-facing robustness claim — an R=1 point's mean mid-outage
// latency exceeds 2× the same configuration's no-fault mean.
//
// `--replicas`, `--suspect-after`, `--outage`, and `--migrate=FROM:TO` pin
// their axes; defaults sweep R ∈ {0, 1, 2}, ψ ∈ {4, 16}, and outage
// lengths of an eighth and half the trace span (plus the no-outage
// baseline). With --json, every point embeds the full
// RouterResult (failover and outage_latency blocks included) so
// `spal_report --check` can verify the cross-component invariants.
#include "bench_util.h"

using namespace spal;

namespace {

struct Point {
  int replicas;
  int psi;
  std::uint64_t outage;
  bool migrate;
  int from;
  int to;
};

struct PointResult {
  bench::PointOutput out;
  bool ok;
  double mean_cycles;
  double outage_mean_cycles;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Failover: replication, health-tracked re-routing, and live migration "
      "under a mid-run LC outage",
      "replicas,psi,outage_cycles,migrate,mean_cycles,p99_cycles,"
      "outage_mean_cycles,rerouted,local_serves,replica_lookups,probes,"
      "rejoins,missed_updates,resync_entries,cutovers,degraded_lookups");
  bench::rt2();

  const std::vector<int> replica_counts =
      args.replicas_set ? std::vector<int>{args.replicas}
                        : std::vector<int>{0, 1, 2};
  const std::vector<int> psis{4, 16};
  // The outage must overlap the packet trace to measure anything: at
  // 40 Gbps the mean inter-arrival is 10 cycles, so the trace spans about
  // 10 × packets_per_lc cycles. The primary LC goes down a quarter of the
  // way in; the default durations cover a brief blip (the health tracker
  // barely reacts), a sustained outage with rejoin, and one reaching the
  // end of the trace (at the paper's 100k-packet default: start 250k,
  // lengths 125k and 500k — the ISSUE's "mid-run outage" scenario).
  const std::uint64_t est_horizon =
      10 * static_cast<std::uint64_t>(args.packets_per_lc);
  const std::uint64_t outage_start = est_horizon / 4;
  const std::vector<std::uint64_t> outages =
      args.outage_set ? std::vector<std::uint64_t>{args.outage_cycles}
                      : std::vector<std::uint64_t>{0, est_horizon / 8,
                                                   est_horizon / 2};

  std::vector<Point> points;
  for (const int replicas : replica_counts) {
    for (const int psi : psis) {
      if (args.migrate_set && (args.migrate_from >= psi ||
                               args.migrate_to >= psi)) {
        std::fprintf(stderr,
                     "--migrate=%d:%d out of range for psi=%d\n",
                     args.migrate_from, args.migrate_to, psi);
        return 2;
      }
      for (const std::uint64_t outage : outages) {
        points.push_back(Point{replicas, psi, outage, args.migrate_set,
                               args.migrate_from, args.migrate_to});
      }
    }
  }
  if (!args.migrate_set) {
    // Default migration coverage: one operator move of fragment 1 to LC 3
    // mid-run, with a replica in place, no outage.
    points.push_back(Point{1, 4, 0, true, 1, 3});
  }

  const auto outputs = sim::parallel_sweep(points, [&](const Point& point) {
    core::RouterConfig config =
        bench::figure_config(point.psi, args.packets_per_lc);
    config.engine = args.engine;
    config.execution = args.execution;
    config.threads = args.threads;
    config.fault.enabled = true;
    config.recovery.max_retries = args.max_retries;
    config.replication.replicas = point.replicas;
    config.replication.suspect_after = args.suspect_after;
    config.replication.down_after = 2 * args.suspect_after;
    config.track_outage_latency = true;
    if (point.outage > 0 && point.psi > 1) {
      config.fault.outages.push_back(fabric::OutageWindow{
          /*port=*/1, outage_start, outage_start + point.outage});
    }
    if (point.migrate) {
      config.migration.enabled = true;
      config.migration.from = point.from;
      config.migration.to = point.to;
      config.migration.start_cycle = outage_start;
    }
    // Concurrent route churn: the deferral/resync path only matters when
    // updates land while the primary is down.
    config.update.interval_cycles = 4'000;
    config.update.count = 200;
    config.update.seed = args.update_seed;

    core::RouterSim router(bench::rt2(), config);
    const auto result = router.run_workload(trace::profile_d75(),
                                            /*verify=*/true);

    const std::uint64_t injected =
        static_cast<std::uint64_t>(args.packets_per_lc) *
        static_cast<std::uint64_t>(point.psi);
    const auto& fo = result.failover;
    bool ok = result.resolved_packets == injected &&
              result.verify_mismatches == 0;
    // Failover conservation (the same rules spal_report --check applies).
    ok = ok && result.update.update_messages ==
                   result.update.applications - fo.resync_entries;
    ok = ok && fo.cutovers == fo.migrations + fo.resync_cutovers;
    ok = ok && fo.resync_entries <= fo.missed_updates;
    ok = ok && (!point.migrate || fo.migrations == 1);

    const double outage_mean =
        result.outage_latency.count() > 0 ? result.outage_latency.mean_cycles()
                                          : 0.0;
    PointResult pr;
    pr.ok = ok;
    pr.mean_cycles = result.mean_lookup_cycles();
    pr.outage_mean_cycles = outage_mean;
    pr.out.row = bench::rowf(
        "%d,%d,%llu,%s,%.3f,%llu,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu%s\n",
        point.replicas, point.psi,
        static_cast<unsigned long long>(point.outage),
        point.migrate ? "yes" : "no", result.mean_lookup_cycles(),
        static_cast<unsigned long long>(result.latency.percentile(0.99)),
        outage_mean,
        static_cast<unsigned long long>(fo.rerouted_requests),
        static_cast<unsigned long long>(fo.local_replica_serves),
        static_cast<unsigned long long>(fo.replica_lookups),
        static_cast<unsigned long long>(fo.probes_sent),
        static_cast<unsigned long long>(fo.rejoins),
        static_cast<unsigned long long>(fo.missed_updates),
        static_cast<unsigned long long>(fo.resync_entries),
        static_cast<unsigned long long>(fo.cutovers),
        static_cast<unsigned long long>(result.fault.degraded_lookups),
        ok ? "" : ",CONSERVATION_FAILURE");
    if (args.json) {
      pr.out.json = bench::json_point(
          bench::rowf("replicas=%d,psi=%d,outage=%llu,migrate=%s",
                      point.replicas, point.psi,
                      static_cast<unsigned long long>(point.outage),
                      point.migrate ? "yes" : "no"),
          result);
    }
    return pr;
  });

  int failures = 0;
  std::vector<std::string> entries;
  for (const auto& pr : outputs) {
    std::fputs(pr.out.row.c_str(), stdout);
    if (!pr.out.json.empty()) entries.push_back(pr.out.json);
    if (!pr.ok) ++failures;
  }
  // The robustness claim: with one replica, the mean latency of packets
  // arriving during a primary-LC outage stays within 2× the same
  // configuration's no-fault mean (the re-route path absorbs the failure
  // instead of funnelling everything into timeouts and degraded lookups).
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (p.replicas != 1 || p.outage == 0 || p.migrate) continue;
    for (std::size_t j = 0; j < points.size(); ++j) {
      const Point& base = points[j];
      if (base.replicas != 1 || base.psi != p.psi || base.outage != 0 ||
          base.migrate) {
        continue;
      }
      if (outputs[i].outage_mean_cycles >
          2.0 * outputs[j].mean_cycles) {
        std::fprintf(stderr,
                     "bench_failover: R=1 psi=%d outage=%llu mid-outage mean "
                     "%.3f exceeds 2x no-fault mean %.3f\n",
                     p.psi, static_cast<unsigned long long>(p.outage),
                     outputs[i].outage_mean_cycles, outputs[j].mean_cycles);
        ++failures;
      }
      break;
    }
  }
  bench::write_json_report(args, "failover", entries);
  if (failures > 0) {
    std::fprintf(stderr, "bench_failover: %d point(s) failed\n", failures);
    return 1;
  }
  return 0;
}
