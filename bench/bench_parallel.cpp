// Sharded-engine benchmark: wall-clock speedup and bit-identity of the
// per-LC-group parallel event engine against the sequential oracle.
//
// Runs one ψ=16 configuration (the paper's largest router) on the D_75
// trace: first with the sequential engine, then with `--engine=sharded` at
// thread counts {1, 2, 4, 8} (or the single count pinned by `--threads`).
// Every sharded run's RouterResult::to_json() is byte-compared against the
// sequential run; any difference is a correctness failure and the bench
// exits nonzero — the speedup column is meaningless if the answers differ.
//
// Points run one at a time on the main thread (never under parallel_sweep:
// nested parallelism would corrupt the wall-clock measurement), and the
// wall time covers run_workload() only — table build and trace generation
// are excluded. Speedup is sequential_wall / point_wall on THIS host; on a
// single-core container every sharded point will be ~1x or slower (the
// frontier-publication protocol is pure overhead without real cores), which
// is the honest result — see EXPERIMENTS.md.
//
// With --json, every point embeds engine/threads/shards/wall_ms/speedup/
// identical alongside the full RouterResult so `spal_report --check` can
// verify both the invariants and the bit-identity flag.
#include <chrono>

#include "bench_util.h"

using namespace spal;

namespace {

double run_wall_ms(core::RouterSim& router, const trace::WorkloadProfile& profile,
                   core::RouterResult& result) {
  const auto start = std::chrono::steady_clock::now();
  result = router.run_workload(profile, /*verify=*/false);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Sharded parallel engine: wall-clock speedup vs sequential oracle "
      "(psi=16)",
      "engine,threads,shards,wall_ms,speedup,identical");

  constexpr int kPsi = 16;
  const trace::WorkloadProfile profile = trace::profile_d75();
  core::RouterConfig base = bench::figure_config(kPsi, args.packets_per_lc);
  base.engine = args.engine;

  // Sequential oracle first: its JSON is the reference for every point.
  core::RouterConfig sequential = base;
  sequential.execution = core::RouterConfig::ExecutionMode::kSequential;
  core::RouterSim oracle_router(bench::rt2(), sequential);
  core::RouterResult oracle_result;
  const double oracle_ms = run_wall_ms(oracle_router, profile, oracle_result);
  const std::string oracle_json = oracle_result.to_json();

  std::vector<std::string> entries;
  int mismatches = 0;
  auto emit = [&](const char* engine, int threads, int shards, double wall_ms,
                  bool identical, const std::string& result_json) {
    const double speedup = wall_ms > 0.0 ? oracle_ms / wall_ms : 0.0;
    std::fputs(bench::rowf("%s,%d,%d,%.2f,%.3f,%s%s\n", engine, threads,
                           shards, wall_ms, speedup,
                           identical ? "yes" : "no",
                           identical ? "" : ",MISMATCH")
                   .c_str(),
               stdout);
    if (!identical) ++mismatches;
    if (args.json) {
      entries.push_back(
          bench::rowf("{\"label\":\"engine=%s,threads=%d\",\"engine\":\"%s\","
                      "\"threads\":%d,\"shards\":%d,\"wall_ms\":%.3f,"
                      "\"speedup\":%.4f,\"identical\":%s,\"result\":",
                      engine, threads, engine, threads, shards, wall_ms,
                      speedup, identical ? "true" : "false") +
          result_json + "}");
    }
  };
  emit("sequential", 1, 1, oracle_ms, true, oracle_json);

  const std::vector<int> thread_counts =
      args.threads > 0 ? std::vector<int>{args.threads}
                       : std::vector<int>{1, 2, 4, 8};
  for (const int threads : thread_counts) {
    core::RouterConfig config = base;
    config.execution = core::RouterConfig::ExecutionMode::kSharded;
    config.threads = threads;
    core::RouterSim router(bench::rt2(), config);
    const int shards = router.planned_shards();
    core::RouterResult result;
    const double wall_ms = run_wall_ms(router, profile, result);
    const std::string json = result.to_json();
    emit("sharded", threads, shards, wall_ms, json == oracle_json, json);
  }

  bench::write_json_report(args, "parallel", entries);
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "bench_parallel: %d sharded point(s) diverged from the "
                 "sequential oracle\n",
                 mismatches);
    return 1;
  }
  return 0;
}
