// Extension bench: routing-table update handling (paper Sec. 3.2).
//
// The paper flushes every LR-cache on each table update (~20/s, up to
// 100/s) and explicitly notes that "this simple flushing will not work
// effectively if the routing table is updated incrementally and very
// frequently". This bench quantifies that: mean lookup time and hit rate
// under increasing update rates, full flush vs selective invalidation
// (drop only blocks covered by the changed prefix).
//
// Update intervals are in 5 ns cycles: 2,000,000 ≈ the paper's 100/s at
// 10 ms; the smaller intervals model the "incremental and very frequent"
// regime (BGP bursts reach thousands of updates/s).
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Sec. 3.2 extension: full flush vs selective invalidation per update",
      "policy,update_interval_cycles,mean_cycles,hit_rate,updates,invalidated_blocks");
  const trace::WorkloadProfile profile = trace::profile_d81();
  std::vector<std::string> entries;
  for (const std::uint64_t interval : {2'000'000ull, 200'000ull, 20'000ull, 2'000ull}) {
    for (const bool selective : {false, true}) {
      core::RouterConfig config = bench::figure_config(4, args.packets_per_lc);
      config.flush_interval_cycles = interval;
      config.update_policy =
          selective ? core::RouterConfig::UpdatePolicy::kSelectiveInvalidate
                    : core::RouterConfig::UpdatePolicy::kFlushAll;
      core::RouterSim router(bench::rt2(), config);
      const auto result = router.run_workload(profile);
      std::printf("%s,%llu,%.3f,%.4f,%llu,%llu\n",
                  selective ? "selective" : "flush_all",
                  static_cast<unsigned long long>(interval),
                  result.mean_lookup_cycles(), result.cache_total.hit_rate(),
                  static_cast<unsigned long long>(result.updates_applied),
                  static_cast<unsigned long long>(result.blocks_invalidated));
      if (args.json) {
        entries.push_back(bench::json_point(
            bench::rowf("policy=%s,interval=%llu",
                        selective ? "selective" : "flush_all",
                        static_cast<unsigned long long>(interval)),
            result));
      }
    }
  }
  bench::write_json_report(args, "update_policy", entries);
  return 0;
}
