// Internet-scale extension: bulk-build timing at 1M IPv4 / 220k IPv6
// prefixes, the router sweep with the CRAM-lens memory model on, and a
// Fig. 3-style SRAM-budget curve at 1M (DESIGN.md "Memory tiers").
//
// Sections (first CSV column; unused columns are 0):
//   build      bulk-build wall time per trie kind and table size, plus the
//              per-entry/reference baseline and its speedup where the kind
//              has one (dp: the insert() loop; lulea: the kReference
//              std::map builder).
//   router     full simulation with config.memory.enabled over table size ×
//              ψ × trie kind. While every per-LC fragment still fits the
//              first tier the priced lookups reproduce the paper's flat
//              constants (40 cycles Lulea, 62 DP); at 1M the DP fragments
//              outgrow SRAM and the mean climbs.
//   tier       ψ = 16 Lulea fragments of the 1M table under a swept per-LC
//              SRAM budget with a {sram(B), dram} hierarchy: the
//              lookup-cycle cliff where the hot arenas stop fitting.
//   provision  partition::min_lcs_for_budget — the smallest ψ whose largest
//              fragment fits each budget (the Fig. 3 question inverted).
//
// Sections run sequentially on purpose: the build rows are wall-clock
// measurements and the bulk builders already parallelize internally, so a
// concurrent sweep would only add contention noise.
#include <algorithm>
#include <chrono>
#include <memory>
#include <random>

#include "bench_util.h"

using namespace spal;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One "build" row + scale_build JSON point.
struct BuildPoint {
  const char* family;
  std::string trie;
  std::size_t table_size;
  double build_ms;
  double baseline_ms;  ///< 0 when the kind has no per-entry/reference path
  std::size_t storage_bytes;
};

bench::PointOutput render_build(const bench::BenchArgs& args,
                                const BuildPoint& p) {
  const double speedup =
      p.baseline_ms > 0.0 ? p.baseline_ms / p.build_ms : 0.0;
  bench::PointOutput out;
  out.row = bench::rowf(
      "build,%s,%s,%zu,0,0,%.3f,%.3f,%.3f,%zu,0\n", p.family, p.trie.c_str(),
      p.table_size, p.build_ms, p.baseline_ms, speedup, p.storage_bytes);
  if (args.json) {
    out.json = bench::rowf(
        "{\"label\":\"build,family=%s,trie=%s,size=%zu\",\"result\":"
        "{\"kind\":\"scale_build\",\"trie\":\"%s\",\"table_size\":%zu,"
        "\"build_ms\":%.3f,\"baseline_ms\":%.3f,\"speedup\":%.3f,"
        "\"storage_bytes\":%zu}}",
        p.family, p.trie.c_str(), p.table_size, p.trie.c_str(), p.table_size,
        p.build_ms, p.baseline_ms, speedup, p.storage_bytes);
  }
  return out;
}

/// Times the per-entry DP baseline: an empty trie grown by insert(), the
/// path the paper's incremental-update argument is about. The feed is
/// shuffled (fixed seed) because a per-entry load receives routes in
/// arrival order — handing the insert loop pre-sorted input would credit
/// it with the sort that is exactly what the bulk path performs.
double time_dp_insert_loop(const net::RouteTable& table) {
  std::vector<net::RouteEntry> feed(table.entries().begin(),
                                    table.entries().end());
  std::mt19937_64 rng(0xfeedu);
  std::shuffle(feed.begin(), feed.end(), rng);
  const auto start = std::chrono::steady_clock::now();
  trie::DpTrie dp{net::RouteTable{}};
  for (const net::RouteEntry& e : feed) {
    dp.insert(e.prefix, e.next_hop);
  }
  return ms_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Internet scale: 1M-prefix bulk builds + memory-tier cost model",
      "section,family,trie,table_size,psi,budget_bytes,build_ms,baseline_ms,"
      "speedup,storage_bytes,mean_cycles");
  std::vector<std::string> entries;

  // --table-size scales the whole bench down (ctest smoke, sanitizer jobs);
  // the default is the ~1M-route modern DFZ the extension targets.
  const std::size_t base_size =
      args.table_size_set ? args.table_size : 1'000'000;
  const std::vector<std::size_t> v4_sizes{std::max<std::size_t>(base_size / 4,
                                                                1),
                                          base_size};
  const std::size_t v6_size =
      args.table_size_set ? std::max<std::size_t>(base_size / 4, 1) : 220'000;
  std::vector<net::RouteTable> v4_tables;
  for (const std::size_t size : v4_sizes) {
    v4_tables.push_back(net::make_rt_internet(size));
  }

  // --- build ---------------------------------------------------------------
  const trie::TrieKind kinds[] = {trie::TrieKind::kDp, trie::TrieKind::kLulea,
                                  trie::TrieKind::kLc, trie::TrieKind::kGupta,
                                  trie::TrieKind::kStride};
  // Untimed warmup so the first timed build does not absorb the process's
  // allocator and page-fault cold start.
  trie::build_lpm(trie::TrieKind::kDp, v4_tables.front());
  for (std::size_t i = 0; i < v4_sizes.size(); ++i) {
    const net::RouteTable& table = v4_tables[i];
    for (const trie::TrieKind kind : kinds) {
      BuildPoint p{"v4", std::string(trie::to_string(kind)), v4_sizes[i],
                   0.0, 0.0, 0};
      const auto start = std::chrono::steady_clock::now();
      const auto index = trie::build_lpm(kind, table);
      p.build_ms = ms_since(start);
      p.storage_bytes = index->storage_bytes();
      if (kind == trie::TrieKind::kDp) {
        p.baseline_ms = time_dp_insert_loop(table);
      } else if (kind == trie::TrieKind::kLulea) {
        const auto ref_start = std::chrono::steady_clock::now();
        const trie::LuleaTrie reference(table,
                                        trie::LuleaBuildMode::kReference);
        p.baseline_ms = ms_since(ref_start);
      }
      const auto out = render_build(args, p);
      std::fputs(out.row.c_str(), stdout);
      if (args.json) entries.push_back(out.json);
    }
  }
  {
    // IPv6 at the ~220k-prefix scale of the mid-2020s DFZ.
    const net::RouteTable6 table6 = net::make_rt6_internet(v6_size);
    {
      BuildPoint p{"v6", "lc6", table6.size(), 0.0, 0.0, 0};
      const auto start = std::chrono::steady_clock::now();
      const trie::LcTrie6 lc6(table6);
      p.build_ms = ms_since(start);
      p.storage_bytes = lc6.storage_bytes();
      const auto out = render_build(args, p);
      std::fputs(out.row.c_str(), stdout);
      if (args.json) entries.push_back(out.json);
    }
    {
      BuildPoint p{"v6", "dp6", table6.size(), 0.0, 0.0, 0};
      const auto start = std::chrono::steady_clock::now();
      const trie::DpTrie6 dp6(table6);
      p.build_ms = ms_since(start);
      p.storage_bytes = dp6.storage_bytes();
      const auto out = render_build(args, p);
      std::fputs(out.row.c_str(), stdout);
      if (args.json) entries.push_back(out.json);
    }
  }

  // --- router --------------------------------------------------------------
  const std::vector<int> psis{4, 16};
  const trie::TrieKind sim_kinds[] = {trie::TrieKind::kLulea,
                                      trie::TrieKind::kDp};
  const auto profile = trace::profile_d75();
  for (std::size_t i = 0; i < v4_sizes.size(); ++i) {
    for (const int psi : psis) {
      for (const trie::TrieKind kind : sim_kinds) {
        core::RouterConfig config =
            bench::figure_config(psi, args.packets_per_lc);
        config.engine = args.engine;
        config.execution = args.execution;
        config.threads = args.threads;
        config.trie = kind;
        config.memory.enabled = true;
        core::RouterSim router(v4_tables[i], config);
        const auto result = router.run_workload(profile);
        std::printf("router,v4,%s,%zu,%d,0,0,0,0,%llu,%.3f\n",
                    std::string(trie::to_string(kind)).c_str(), v4_sizes[i],
                    psi,
                    static_cast<unsigned long long>(result.memory.storage_bytes),
                    result.mean_lookup_cycles());
        if (args.json) {
          entries.push_back(bench::json_point(
              bench::rowf("router,trie=%s,size=%zu,psi=%d",
                          std::string(trie::to_string(kind)).c_str(),
                          v4_sizes[i], psi),
              result));
        }
      }
    }
  }

  // --- tier + provision ----------------------------------------------------
  {
    const net::RouteTable& table = v4_tables.back();
    const std::size_t table_size = v4_sizes.back();
    constexpr int kPsi = 16;
    const partition::RotPartition partition(table, kPsi);
    std::vector<std::unique_ptr<trie::LpmIndex>> fes;
    std::size_t total_bytes = 0, per_lc_min = 0, per_lc_max = 0;
    for (int lc = 0; lc < kPsi; ++lc) {
      fes.push_back(
          trie::build_lpm(trie::TrieKind::kLulea, partition.table_of(lc)));
      const std::size_t bytes = fes.back()->storage_bytes();
      total_bytes += bytes;
      per_lc_min = lc == 0 ? bytes : std::min(per_lc_min, bytes);
      per_lc_max = std::max(per_lc_max, bytes);
    }
    // Deterministic sample of matched destinations for the priced lookups.
    const std::size_t samples = std::min<std::size_t>(args.packets_per_lc,
                                                      50'000);
    std::mt19937_64 rng(0x5ca1eu);
    std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
    std::vector<net::Ipv4Addr> addrs;
    addrs.reserve(samples);
    for (std::size_t s = 0; s < samples; ++s) {
      addrs.push_back(
          net::random_address_in(table.entries()[pick(rng)].prefix, rng));
    }
    const std::vector<std::uint64_t> budgets{
        128u << 10, 256u << 10, 512u << 10, 1u << 20, 2u << 20, 4u << 20};
    for (const std::uint64_t budget : budgets) {
      core::MemoryModelConfig model_config;
      model_config.enabled = true;
      model_config.tiers = {{"sram", budget, 2}, {"dram", 0, 70}};
      std::vector<core::MemoryModel> models;
      std::uint64_t sram_placed = 0, dram_placed = 0;
      for (const auto& fe : fes) {
        models.emplace_back(model_config, fe->arenas());
        for (const core::ArenaPlacement& placement :
             models.back().placements()) {
          (placement.tier == 0 ? sram_placed : dram_placed) += placement.bytes;
        }
      }
      std::uint64_t total_cycles = 0;
      for (const net::Ipv4Addr addr : addrs) {
        const int lc = partition.home_of(addr);
        trie::MemAccessCounter counter;
        fes[static_cast<std::size_t>(lc)]->lookup_counted(addr, counter);
        total_cycles += models[static_cast<std::size_t>(lc)].lookup_cycles(
            counter);
      }
      const double mean_cycles =
          static_cast<double>(total_cycles) / static_cast<double>(samples);
      std::printf("tier,v4,lulea,%zu,%d,%llu,0,0,0,%zu,%.3f\n", table_size,
                  kPsi, static_cast<unsigned long long>(budget), total_bytes,
                  mean_cycles);
      if (args.json) {
        entries.push_back(bench::rowf(
            "{\"label\":\"tier,budget=%llu\",\"result\":"
            "{\"kind\":\"tier_curve\",\"table_size\":%zu,\"psi\":%d,"
            "\"sram_budget_bytes\":%llu,\"storage_bytes\":%zu,"
            "\"per_lc_bytes_min\":%zu,\"per_lc_bytes_max\":%zu,"
            "\"matching_overhead_cycles\":%u,\"mean_lookup_cycles\":%.3f,"
            "\"tiers\":[{\"name\":\"sram\",\"capacity_bytes\":%llu,"
            "\"access_cycles\":2,\"placed_bytes\":%llu},"
            "{\"name\":\"dram\",\"capacity_bytes\":0,\"access_cycles\":70,"
            "\"placed_bytes\":%llu}]}}",
            static_cast<unsigned long long>(budget), table_size, kPsi,
            static_cast<unsigned long long>(budget), total_bytes, per_lc_min,
            per_lc_max, model_config.matching_overhead_cycles, mean_cycles,
            static_cast<unsigned long long>(budget),
            static_cast<unsigned long long>(sram_placed),
            static_cast<unsigned long long>(dram_placed)));
      }
    }
    // Provisioning: how many LCs until every Lulea fragment of the 1M table
    // fits the budget, estimated from the whole-table bytes/prefix ratio.
    const auto whole = trie::build_lpm(trie::TrieKind::kLulea, table);
    const double bytes_per_prefix =
        static_cast<double>(whole->storage_bytes()) /
        static_cast<double>(table.size());
    for (const std::uint64_t budget :
         {std::uint64_t{1} << 20, std::uint64_t{2} << 20}) {
      const int min_psi = partition::min_lcs_for_budget(
          table, budget, bytes_per_prefix, /*max_lcs=*/32);
      std::printf("provision,v4,lulea,%zu,%d,%llu,0,0,0,0,0\n", table_size,
                  min_psi, static_cast<unsigned long long>(budget));
    }
  }

  bench::write_json_report(args, "scale", entries);
  return 0;
}
